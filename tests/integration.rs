//! Cross-crate integration tests: the selection algorithms driving the
//! optimizer, policy plumbing, and agreement between independent
//! implementations.

use fp_geom::Rect;
use fp_optimizer::stockmeyer::slicing_optimal;
use fp_optimizer::{oracle, OptError, OptimizeConfig, Optimizer, Outcome};
use fp_select::{
    greedy::greedy_r_selection, heuristic_l_reduction, l_selection, l_selection_error, r_selection,
    LReductionPolicy, Metric,
};
use fp_shape::{staircase, LList, RList};
use fp_tree::layout::{realize, Assignment};
use fp_tree::{generators, Chirality, CutDir, FloorplanTree, Module, ModuleLibrary};

/// Facade shorthand keeping this suite's call sites compact.
fn optimize(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<Outcome, OptError> {
    Optimizer::new(tree, library).config(config).run_best()
}

/// A module list reduced by `R_Selection` before optimization behaves like
/// an on-the-fly reduction: the optimizer over the reduced library can
/// never beat the full library, and the gap is bounded by the selection
/// error (loosely).
#[test]
fn preselected_library_is_consistent() {
    let bench = generators::fig1();
    let full = generators::module_library(&bench.tree, 12, 99);
    let reduced: ModuleLibrary = full
        .iter()
        .map(|m| {
            let sel = r_selection(m.implementations(), 4).expect("selection");
            let list = m.implementations().subset(&sel.positions);
            Module::new(m.name(), list.into_vec())
        })
        .collect();
    let best_full = optimize(&bench.tree, &full, &OptimizeConfig::default()).expect("runs");
    let best_reduced = optimize(&bench.tree, &reduced, &OptimizeConfig::default()).expect("runs");
    assert!(best_reduced.area >= best_full.area);
    // Both realize.
    let layout = realize(&bench.tree, &reduced, &best_reduced.assignment).expect("valid");
    assert_eq!(layout.area(), best_reduced.area);
}

/// The three reduction code paths (optimal, heuristic-prefilter-then-
/// optimal, pure heuristic) are ordered by quality exactly as the paper
/// describes.
#[test]
fn reduction_quality_ordering() {
    let list = LList::from_sorted(
        (0..60u64)
            .map(|i| {
                fp_geom::LShape::new_canonical(
                    500 - 5 * i - (i * i) % 4,
                    11,
                    20 + 4 * i + (3 * i) % 7,
                    9 + 2 * i,
                )
            })
            .collect(),
    )
    .expect("valid chain");
    let k = 10;
    let optimal = l_selection(&list, k).expect("selection");
    // Prefilter to 30 then optimal.
    let coarse = heuristic_l_reduction(&list, 30, Metric::L1);
    let inner = l_selection(&list.subset(&coarse), k).expect("selection");
    let prefiltered: Vec<usize> = inner.positions.iter().map(|&i| coarse[i]).collect();
    let prefiltered_err = l_selection_error(&list, &prefiltered);
    // Pure heuristic to k.
    let greedy = heuristic_l_reduction(&list, k, Metric::L1);
    let greedy_err = l_selection_error(&list, &greedy);

    assert!(optimal.error <= prefiltered_err);
    assert!(
        prefiltered_err <= greedy_err * 2,
        "prefilter should roughly track greedy or better"
    );
}

/// Greedy vs optimal R-selection inside a full optimization: the optimal
/// selection never loses more area.
#[test]
fn greedy_selection_costs_area() {
    // A staircase where greedy and optimal genuinely differ.
    let list = RList::from_candidates(vec![
        Rect::new(40, 1),
        Rect::new(39, 2),
        Rect::new(20, 3),
        Rect::new(19, 9),
        Rect::new(2, 10),
        Rect::new(1, 30),
    ]);
    for k in 3..6 {
        let opt = r_selection(&list, k).expect("selection");
        let greedy = greedy_r_selection(&list, k);
        assert!(opt.error <= greedy.error, "k = {k}");
        assert_eq!(staircase::area_between(&list, &opt.positions), opt.error);
    }
}

/// Wheels and slices mix: engine == oracle on a hand-built mixed tree.
#[test]
fn mixed_tree_matches_oracle() {
    let mut t = FloorplanTree::new();
    let w_leaves: Vec<_> = (0..5).map(|m| t.leaf(m)).collect();
    let wheel = t.wheel(
        Chirality::Counterclockwise,
        [
            w_leaves[0],
            w_leaves[1],
            w_leaves[2],
            w_leaves[3],
            w_leaves[4],
        ],
    );
    let side = t.leaf(5);
    t.slice(CutDir::Vertical, vec![wheel, side]);
    let lib = generators::module_library(&t, 3, 4242);
    let engine = optimize(&t, &lib, &OptimizeConfig::default()).expect("runs");
    let (oracle_area, _) = oracle::exhaustive_optimal(&t, &lib, 1 << 22).expect("solvable");
    assert_eq!(engine.area, oracle_area);
}

/// Policy plumbing: theta and prefilter parameters flow through the
/// optimizer configuration and change behaviour monotonically.
#[test]
fn policy_parameters_flow_through() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 5, 8);
    let plain = optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("runs");

    let strict = OptimizeConfig::default().with_l_selection(LReductionPolicy::new(100));
    let lax =
        OptimizeConfig::default().with_l_selection(LReductionPolicy::new(100).with_theta(0.01));
    let out_strict = optimize(&bench.tree, &lib, &strict).expect("runs");
    let out_lax = optimize(&bench.tree, &lib, &lax).expect("runs");
    // A tiny theta vetoes almost every reduction: quality equals plain.
    assert_eq!(out_lax.area, plain.area);
    assert!(out_lax.stats.l_reductions <= out_strict.stats.l_reductions);
    assert!(out_strict.area >= plain.area);
}

/// The Stockmeyer baseline, the engine, and the oracle all agree on a
/// slicing floorplan (three independent implementations).
#[test]
fn three_way_agreement_on_slicing() {
    let bench = generators::random_floorplan(8, 0.0, 5);
    let lib = generators::module_library(&bench.tree, 3, 6);
    let engine = optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("runs");
    let (stock_area, stock_assignment) = slicing_optimal(&bench.tree, &lib).expect("slicing");
    let (oracle_area, _) = oracle::exhaustive_optimal(&bench.tree, &lib, 1 << 22).expect("small");
    assert_eq!(engine.area, stock_area);
    assert_eq!(engine.area, oracle_area);
    let layout = realize(&bench.tree, &lib, &stock_assignment).expect("valid");
    assert_eq!(layout.area(), stock_area);
}

/// Out-of-memory failures surface the paper's ">M" semantics: the peak is
/// reported even though the run died.
#[test]
fn oom_reports_peak() {
    let bench = generators::fp2();
    let lib = generators::module_library(&bench.tree, 6, 77);
    let unbounded =
        optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("fits default budget");
    let budget = unbounded.stats.peak_impls / 2;
    let cfg = OptimizeConfig::default().with_memory_limit(Some(budget));
    match optimize(&bench.tree, &lib, &cfg) {
        Err(OptError::OutOfMemory {
            live, limit, peak, ..
        }) => {
            assert_eq!(limit, budget);
            assert!(live > limit);
            assert!(peak >= live);
        }
        other => panic!("expected OOM, got {other:?}"),
    }
}

/// Assignments round-trip deterministically: the same configuration always
/// produces the same outcome.
#[test]
fn optimization_is_deterministic() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 4, 3);
    let cfg = OptimizeConfig::default()
        .with_r_selection(8)
        .with_l_selection(LReductionPolicy::new(50));
    let a = optimize(&bench.tree, &lib, &cfg).expect("runs");
    let b = optimize(&bench.tree, &lib, &cfg).expect("runs");
    assert_eq!(a.area, b.area);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.stats.peak_impls, b.stats.peak_impls);
}

/// First-fit (non-optimized) assignments are valid but the optimizer never
/// does worse.
#[test]
fn optimizer_beats_first_fit() {
    for seed in 0..5u64 {
        let bench = generators::random_floorplan(10, 0.5, seed);
        let lib = generators::module_library(&bench.tree, 4, seed + 100);
        let naive = realize(&bench.tree, &lib, &Assignment::first_fit(10)).expect("valid");
        let opt = optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("runs");
        assert!(opt.area <= naive.area(), "seed {seed}");
    }
}

/// The shipped sample instances load, optimize, and realize.
#[test]
fn shipped_assets_work() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    for (file, modules) in [("assets/demo.fpt", 10), ("assets/pinwheel.fpt", 5)] {
        let text = std::fs::read_to_string(format!("{root}/{file}")).expect("asset exists");
        let inst = fp_tree::format::parse_instance(&text).expect("asset parses");
        assert_eq!(inst.tree.module_count(), modules, "{file}");
        let out = optimize(&inst.tree, &inst.library, &OptimizeConfig::default()).expect("runs");
        let layout = realize(&inst.tree, &inst.library, &out.assignment).expect("valid");
        assert_eq!(layout.area(), out.area, "{file}");
        assert_eq!(layout.validate(), None, "{file}");
    }
}

/// The domino pinwheel asset tiles its 3x3 envelope exactly.
#[test]
fn pinwheel_asset_is_tight() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let text = std::fs::read_to_string(format!("{root}/assets/pinwheel.fpt")).expect("exists");
    let inst = fp_tree::format::parse_instance(&text).expect("parses");
    let out = optimize(&inst.tree, &inst.library, &OptimizeConfig::default()).expect("runs");
    assert_eq!(out.area, 9);
    let layout = realize(&inst.tree, &inst.library, &out.assignment).expect("valid");
    assert_eq!(layout.dead_space(), 0);
}

/// The error-budget R policy flows through the optimizer: a zero budget
/// reproduces the plain optimum exactly, and a generous budget still
/// yields a realizable floorplan.
#[test]
fn error_budget_policy_in_engine() {
    use fp_select::RReductionPolicy;
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 8, 13);
    let plain = optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("runs");

    let zero_cfg = OptimizeConfig {
        r_policy: Some(RReductionPolicy::error_budget(8, 0)),
        ..OptimizeConfig::default()
    };
    let zero = optimize(&bench.tree, &lib, &zero_cfg).expect("runs");
    assert_eq!(zero.area, plain.area, "zero budget keeps everything");

    let lax_cfg = OptimizeConfig {
        r_policy: Some(RReductionPolicy::error_budget(8, 50)),
        ..OptimizeConfig::default()
    };
    let lax = optimize(&bench.tree, &lib, &lax_cfg).expect("runs");
    assert!(lax.area >= plain.area);
    assert!(lax.stats.peak_impls <= plain.stats.peak_impls);
    let layout = realize(&bench.tree, &lib, &lax.assignment).expect("valid");
    assert_eq!(layout.area(), lax.area);
}

/// The parallel L-reduction path produces byte-identical outcomes to the
/// sequential one through the whole optimizer.
#[test]
fn parallel_policy_is_equivalent_in_engine() {
    let bench = generators::fp2();
    let lib = generators::module_library(&bench.tree, 8, 21);
    let base = OptimizeConfig::default()
        .with_r_selection(12)
        .with_l_selection(LReductionPolicy::new(200).with_prefilter(2000));
    let par = OptimizeConfig::default()
        .with_r_selection(12)
        .with_l_selection(
            LReductionPolicy::new(200)
                .with_prefilter(2000)
                .with_parallel(true),
        );
    let a = optimize(&bench.tree, &lib, &base).expect("runs");
    let b = optimize(&bench.tree, &lib, &par).expect("runs");
    assert_eq!(a.area, b.area);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.stats.peak_impls, b.stats.peak_impls);
}

/// The §6 pipeline end-to-end: discretize a continuous shape curve
/// densely, compress it with error-budgeted R_Selection, and floorplan
/// with the compact library — the area stays near the dense optimum.
#[test]
fn shape_curve_compression_pipeline() {
    use fp_select::curve::r_selection_within;
    use fp_tree::curve::ShapeCurve;

    let bench = generators::random_floorplan(6, 0.5, 31);
    let areas = [320u64, 480, 150, 700, 260, 90];

    let dense_lib: ModuleLibrary = areas
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let curve = ShapeCurve::new(a, 3.0).expect("valid");
            Module::new(format!("m{i}"), curve.dense().into_vec())
        })
        .collect();
    let compact_lib: ModuleLibrary = dense_lib
        .iter()
        .map(|m| {
            let sel = r_selection_within(m.implementations(), 8).expect("selects");
            Module::new(
                m.name(),
                m.implementations().subset(&sel.positions).into_vec(),
            )
        })
        .collect();

    let dense_out = optimize(&bench.tree, &dense_lib, &OptimizeConfig::default()).expect("runs");
    let compact_out =
        optimize(&bench.tree, &compact_lib, &OptimizeConfig::default()).expect("runs");
    assert!(compact_out.area >= dense_out.area);
    let excess = (compact_out.area - dense_out.area) as f64 / dense_out.area as f64;
    assert!(
        excess < 0.05,
        "error-budgeted compression stays near-optimal: {excess}"
    );
    // And the compact library is genuinely smaller.
    let dense_total: usize = dense_lib.iter().map(|m| m.implementations().len()).sum();
    let compact_total: usize = compact_lib.iter().map(|m| m.implementations().len()).sum();
    assert!(
        compact_total < dense_total * 3 / 4,
        "{compact_total} vs {dense_total}"
    );
}
