//! Smoke tests driving the real `fpserved` binary: concurrent batch
//! requests over stdin, per-request deadlines that cancel without
//! killing the server, malformed-line fixtures answered with positional
//! errors, graceful drain on EOF and on `shutdown`, and the TCP
//! listener end to end.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn fpserved() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fpserved"))
}

fn fixture(name: &str) -> String {
    format!(
        "{}/../../tests/fixtures/malformed/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// Pipes `input` through a stdin-mode server and returns (exit code,
/// response lines). EOF after the last request doubles as the drain
/// signal, so a hung drain would hang the test (and trip the harness
/// timeout).
fn batch(args: &[&str], input: &str) -> (i32, Vec<String>) {
    let mut child = fpserved()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("fpserved spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("requests written");
    let out = child.wait_with_output().expect("fpserved exits");
    let lines = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect();
    (out.status.code().unwrap_or(-1), lines)
}

fn status_of(line: &str) -> u64 {
    line.split("\"status\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("no status in {line}"))
}

fn line_with_id(lines: &[String], id: &str) -> String {
    lines
        .iter()
        .find(|l| l.contains(&format!("\"id\":{id},")))
        .unwrap_or_else(|| panic!("no response with id {id} in {lines:?}"))
        .clone()
}

/// Two optimize requests in flight at once on a two-worker pool, plus a
/// ping; all answered, identical instances agree, and the second
/// identical request is served entirely from the shared cache.
#[test]
fn concurrent_batch_is_answered_and_shares_the_cache() {
    let requests = "\
{\"id\": 1, \"method\": \"optimize\", \"builtin\": \"fp1\", \"n\": 5}\n\
{\"id\": 2, \"method\": \"optimize\", \"builtin\": \"fp1\", \"n\": 5}\n\
{\"id\": 3, \"method\": \"ping\"}\n\
{\"id\": 4, \"method\": \"stats\"}\n";
    let (code, lines) = batch(&["--workers", "2"], requests);
    assert_eq!(code, 0, "clean drain on EOF: {lines:?}");
    assert_eq!(lines.len(), 4, "{lines:?}");

    let first = line_with_id(&lines, "1");
    let second = line_with_id(&lines, "2");
    assert_eq!(status_of(&first), 0, "{first}");
    assert_eq!(status_of(&second), 0, "{second}");
    let area = |l: &str| {
        l.split("\"area\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .map(str::to_owned)
    };
    assert_eq!(area(&first), area(&second), "identical requests agree");
    assert_eq!(status_of(&line_with_id(&lines, "3")), 0);
    // With 2 workers racing on identical requests the interleaving is
    // free, but the four fig-tree joins are cached by whichever run
    // commits first; the stats response proves the cache saw traffic.
    let stats = line_with_id(&lines, "4");
    assert!(stats.contains("\"cache_insertions\":"), "{stats}");
}

/// A `pareto` request over a generated netlist answers with a
/// non-dominated front, and a wirelength-weighted `optimize` on the
/// same connection reports its HPWL; both count as heavy traffic, so
/// the stats line sees them.
#[test]
fn pareto_request_returns_a_front_over_the_wire() {
    let requests = "\
{\"id\": 1, \"method\": \"pareto\", \"builtin\": \"fp1\", \"n\": 5, \"nets\": 12, \"net_seed\": 7}\n\
{\"id\": 2, \"method\": \"optimize\", \"builtin\": \"fp1\", \"n\": 5, \"nets\": 12, \"net_seed\": 7, \"alpha\": 0.5}\n\
{\"id\": 3, \"method\": \"stats\"}\n";
    let (code, lines) = batch(&["--workers", "2"], requests);
    assert_eq!(code, 0, "clean drain: {lines:?}");

    let front = line_with_id(&lines, "1");
    assert_eq!(status_of(&front), 0, "{front}");
    assert!(front.contains("\"front\":["), "{front}");
    assert!(front.contains("\"front_size\":"), "{front}");
    assert!(front.contains("\"hypervolume\":"), "{front}");
    assert!(front.contains("\"hpwl\":"), "{front}");
    let front_size: usize = front
        .split("\"front_size\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("front_size is a number");
    assert!(front_size >= 1, "{front}");

    let weighted = line_with_id(&lines, "2");
    assert_eq!(status_of(&weighted), 0, "{weighted}");
    assert!(weighted.contains("\"hpwl\":"), "{weighted}");
    assert!(weighted.contains("\"alpha\":0.5"), "{weighted}");

    // Stats is control traffic and may be answered before the heavy
    // requests finish, so assert the counters are exposed rather than
    // their racy values (serve-level unit tests pin the exact counts).
    let stats = line_with_id(&lines, "3");
    assert!(stats.contains("\"pareto_requests\":"), "{stats}");
    assert!(stats.contains("\"netlist_requests\":"), "{stats}");
    assert!(stats.contains("\"pareto_points\":"), "{stats}");
}

/// A request whose deadline has already passed is answered with status 5
/// — and the server keeps serving afterwards.
#[test]
fn past_deadline_gets_status_5_and_server_survives() {
    let requests = "\
{\"id\": 1, \"method\": \"optimize\", \"builtin\": \"fp2\", \"n\": 8, \"deadline_ms\": 0}\n\
{\"id\": 2, \"method\": \"ping\"}\n";
    let (code, lines) = batch(&["--workers", "1"], requests);
    assert_eq!(code, 0);
    let timed_out = line_with_id(&lines, "1");
    assert_eq!(status_of(&timed_out), 5, "{timed_out}");
    assert_eq!(status_of(&line_with_id(&lines, "2")), 0, "server survived");
}

/// The malformed fixtures: bad JSON answered with a line/column
/// positional error, unknown method named in the error — and in both
/// files the well-formed neighbours are still served.
#[test]
fn malformed_fixture_lines_get_positional_errors() {
    let bad_json = std::fs::read_to_string(fixture("bad_json.jsonl")).expect("fixture");
    let (code, lines) = batch(&[], &bad_json);
    assert_eq!(code, 0);
    let error = lines
        .iter()
        .find(|l| l.contains("\"line\":2"))
        .expect("line-2 response");
    assert_eq!(status_of(error), 2, "{error}");
    assert!(error.contains("\"col\":51"), "{error}");
    assert!(error.contains("bad JSON"), "{error}");
    assert_eq!(status_of(&line_with_id(&lines, "1")), 0);
    assert_eq!(status_of(&line_with_id(&lines, "3")), 0);

    let unknown = std::fs::read_to_string(fixture("unknown_method.jsonl")).expect("fixture");
    let (code, lines) = batch(&[], &unknown);
    assert_eq!(code, 0);
    let error = lines
        .iter()
        .find(|l| l.contains("\"id\":\"q7\""))
        .expect("q7 response");
    assert_eq!(status_of(error), 2, "{error}");
    assert!(error.contains("unknown method `frobnicate`"), "{error}");
}

/// A `shutdown` request drains: it is acknowledged, queued work
/// finishes, and the process exits 0 without reading further input.
#[test]
fn shutdown_request_drains_gracefully() {
    let requests = "\
{\"id\": 1, \"method\": \"optimize\", \"builtin\": \"fig1\", \"n\": 3}\n\
{\"id\": 2, \"method\": \"shutdown\"}\n";
    let (code, lines) = batch(&["--workers", "2"], requests);
    assert_eq!(code, 0);
    assert_eq!(status_of(&line_with_id(&lines, "1")), 0, "{lines:?}");
    let ack = line_with_id(&lines, "2");
    assert!(ack.contains("\"draining\":true"), "{ack}");
}

/// A `shutdown` request must terminate the server even when stdin is
/// held open — the reply-then-hang regression: the main thread used to
/// block in `lines()` and only notice the drain flag at the next line.
#[test]
fn shutdown_exits_even_while_stdin_stays_open() {
    let mut child = fpserved()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("fpserved spawns");
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin
        .write_all(b"{\"id\": 1, \"method\": \"shutdown\"}\n")
        .expect("shutdown written");
    stdin.flush().expect("flushed");
    // Deliberately keep stdin open while waiting for the exit.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            assert_eq!(status.code(), Some(0), "clean exit with stdin open");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server hung: shutdown not honored while stdin stays open"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(stdin);
    let mut out = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut out)
        .expect("stdout read");
    assert!(out.contains("\"draining\":true"), "{out}");
}

fn spawn_tcp() -> (Child, String) {
    spawn_tcp_with(&[])
}

fn spawn_tcp_with(extra: &[&str]) -> (Child, String) {
    let mut child = fpserved()
        .args(["--tcp", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("fpserved spawns");
    // The server announces the bound address on stderr (possibly after
    // other startup lines, e.g. the cache-store replay report).
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("announce line") > 0,
            "stderr closed before the listen announcement"
        );
        if line.contains("listening on ") {
            let addr = line
                .rsplit("listening on ")
                .next()
                .expect("address")
                .trim()
                .to_owned();
            // Keep draining stderr in the background so later server
            // writes (e.g. the drain-flush report) never block or hit
            // a closed pipe.
            std::thread::spawn(move || {
                let mut sink = String::new();
                let _ = stderr.read_to_string(&mut sink);
            });
            break addr;
        }
    };
    (child, addr)
}

/// TCP end to end: connect, pipeline a ping and an optimize, read both
/// responses, then a `shutdown` drains the whole server.
#[test]
fn tcp_mode_serves_and_drains() {
    let (mut child, addr) = spawn_tcp();
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout set");
    stream
        .write_all(
            b"{\"id\": 1, \"method\": \"ping\"}\n\
              {\"id\": 2, \"method\": \"optimize\", \"builtin\": \"fig1\", \"n\": 2}\n",
        )
        .expect("requests written");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut responses = Vec::new();
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        responses.push(line.trim().to_owned());
    }
    assert_eq!(status_of(&line_with_id(&responses, "1")), 0);
    let optimized = line_with_id(&responses, "2");
    assert_eq!(status_of(&optimized), 0, "{optimized}");
    assert!(optimized.contains("\"area\":"), "{optimized}");

    stream
        .write_all(b"{\"id\": 3, \"method\": \"shutdown\"}\n")
        .expect("shutdown written");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain to EOF");
    assert!(rest.contains("\"draining\":true"), "{rest}");
    let status = child.wait().expect("fpserved exits");
    assert_eq!(status.code(), Some(0), "clean TCP drain");
}

/// A request trickled in over writes spaced past the server's 100ms
/// read timeout must still parse whole — the reader used to discard the
/// partially-read prefix on every timeout and answer with a bogus
/// malformed-request error.
#[test]
fn tcp_slow_fragmented_request_is_not_corrupted() {
    let (mut child, addr) = spawn_tcp();
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout set");
    let request = b"{\"id\": 1, \"method\": \"optimize\", \"builtin\": \"fig1\", \"n\": 2}\n";
    for chunk in request.chunks(9) {
        stream.write_all(chunk).expect("chunk written");
        stream.flush().expect("chunk flushed");
        std::thread::sleep(Duration::from_millis(150));
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("response line");
    assert_eq!(status_of(&line), 0, "{line}");
    assert!(line.contains("\"area\":"), "{line}");

    stream
        .write_all(b"{\"method\": \"shutdown\"}\n")
        .expect("shutdown written");
    assert_eq!(child.wait().expect("exits").code(), Some(0));
}

/// Flooding a one-worker, one-slot server sheds the overflow with
/// structured status-7 replies — and still drains cleanly: every line
/// is answered, admitted requests succeed, nothing hangs.
#[test]
fn overload_flood_sheds_with_structured_status_7() {
    let mut requests = String::new();
    for id in 1..=10 {
        requests.push_str(&format!(
            "{{\"id\": {id}, \"method\": \"optimize\", \"builtin\": \"fp1\", \"n\": 4, \"seed\": {id}}}\n"
        ));
    }
    requests.push_str("{\"id\": 99, \"method\": \"stats\"}\n");
    let (code, lines) = batch(&["--workers", "1", "--max-inflight", "1"], &requests);
    assert_eq!(code, 0, "clean drain under flood: {lines:?}");
    assert_eq!(lines.len(), 11, "every line answered: {lines:?}");

    let shed: Vec<&String> = lines.iter().filter(|l| status_of(l) == 7).collect();
    let served = lines
        .iter()
        .filter(|l| status_of(l) == 0 && l.contains("\"area\":"))
        .count();
    assert!(
        !shed.is_empty(),
        "a 1-slot server under a 10-deep flood sheds"
    );
    assert!(served >= 1, "the admitted request completes: {lines:?}");
    assert_eq!(shed.len() + served, 10, "every optimize is shed xor served");
    for line in &shed {
        assert!(line.contains("\"overloaded\":true"), "{line}");
        assert!(line.contains("\"reason\":\"queue_full\""), "{line}");
        assert!(line.contains("\"id\":"), "shed replies echo the id: {line}");
    }
    // Control traffic is never shed — stats got through and reports it.
    let stats = line_with_id(&lines, "99");
    assert_eq!(status_of(&stats), 0, "{stats}");
    assert!(
        stats.contains(&format!("\"shed\":{}", shed.len())),
        "{stats}"
    );
}

/// A silent TCP connection is reclaimed after the read-idle deadline
/// with a clean `timeout` status line, then closed; the server itself
/// keeps serving.
#[test]
fn tcp_idle_connection_times_out_cleanly() {
    let (mut child, addr) = spawn_tcp_with(&["--idle-timeout-ms", "300"]);
    let idle = TcpStream::connect(&addr).expect("connects");
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout set");
    let mut reader = BufReader::new(idle);
    let mut line = String::new();
    reader.read_line(&mut line).expect("timeout line");
    assert!(line.contains("\"timeout\":\"idle\""), "{line}");
    assert!(line.contains("\"idle_ms\":300"), "{line}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("closed after line");
    assert!(rest.is_empty(), "nothing after the timeout line: {rest}");

    // The listener is unaffected: a live connection still gets served.
    let mut live = TcpStream::connect(&addr).expect("reconnects");
    live.write_all(b"{\"id\": 1, \"method\": \"ping\"}\n{\"method\": \"shutdown\"}\n")
        .expect("requests written");
    let mut reader = BufReader::new(live.try_clone().expect("clone"));
    let mut pong = String::new();
    reader.read_line(&mut pong).expect("pong line");
    assert_eq!(status_of(&pong), 0, "{pong}");
    assert_eq!(child.wait().expect("exits").code(), Some(0));
}

/// Beyond `--max-conns`, a new connection receives exactly one
/// status-7 line and is closed — a bounded backlog, not an ever-growing
/// thread list.
#[test]
fn tcp_backlog_is_bounded_by_max_conns() {
    let (mut child, addr) = spawn_tcp_with(&["--max-conns", "1"]);
    let held = TcpStream::connect(&addr).expect("first connects");
    // Give the acceptor time to register the held connection.
    std::thread::sleep(Duration::from_millis(200));

    let refused = TcpStream::connect(&addr).expect("second connects");
    refused
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout set");
    let mut reader = BufReader::new(refused);
    let mut line = String::new();
    reader.read_line(&mut line).expect("refusal line");
    assert_eq!(status_of(&line), 7, "{line}");
    assert!(
        line.contains("\"reason\":\"too_many_connections\""),
        "{line}"
    );
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("closed");
    assert!(rest.is_empty(), "one line then close: {rest}");

    // The held connection still works and can drain the server.
    let mut held = held;
    held.write_all(b"{\"method\": \"shutdown\"}\n")
        .expect("shutdown written");
    assert_eq!(child.wait().expect("exits").code(), Some(0));
}

/// End-to-end warm restart: a `--cache-file` server is run, drained,
/// and restarted over the same store; the replayed entries show up in
/// the Prometheus `/metrics` exposition and the repeat request is
/// served entirely from the recovered cache.
#[test]
fn tcp_warm_restart_shows_recovered_entries_in_metrics() {
    let dir = std::env::temp_dir().join(format!("fpserved-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.to_str().expect("utf-8 temp path").to_owned();
    let request =
        b"{\"id\": 1, \"method\": \"optimize\", \"builtin\": \"fp1\", \"n\": 4}\n" as &[u8];

    // First life: populate the store, drain cleanly (the drain flushes).
    let (mut child, addr) = spawn_tcp_with(&["--cache-file", &store]);
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout set");
    stream.write_all(request).expect("request written");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("response");
    assert_eq!(status_of(&line), 0, "{line}");
    stream
        .write_all(b"{\"method\": \"shutdown\"}\n")
        .expect("shutdown written");
    assert_eq!(child.wait().expect("exits").code(), Some(0));

    // Second life: /metrics proves the replay before any request runs.
    let (mut child, addr) = spawn_tcp_with(&["--cache-file", &store]);
    let mut probe = TcpStream::connect(&addr).expect("probe connects");
    probe
        .write_all(b"GET /metrics HTTP/1.1\r\n\r\n")
        .expect("probe written");
    let mut exposition = String::new();
    BufReader::new(probe)
        .read_to_string(&mut exposition)
        .expect("exposition read");
    let recovered: u64 = exposition
        .lines()
        .find_map(|l| l.strip_prefix("fp_cache_recovered_entries "))
        .expect("recovered gauge present")
        .trim()
        .parse()
        .expect("gauge is a number");
    assert!(
        recovered > 0,
        "warm restart replayed entries:\n{exposition}"
    );
    assert!(
        exposition.contains("fp_cache_persist_appended_records_total"),
        "{exposition}"
    );

    // And the repeat request is a pure cache hit: zero misses.
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout set");
    stream.write_all(request).expect("request written");
    stream
        .write_all(b"{\"id\": 2, \"method\": \"stats\"}\n{\"method\": \"shutdown\"}\n")
        .expect("tail written");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut responses = Vec::new();
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        responses.push(line.trim().to_owned());
    }
    assert_eq!(status_of(&line_with_id(&responses, "1")), 0);
    let stats = line_with_id(&responses, "2");
    assert!(stats.contains("\"cache_persistent\":true"), "{stats}");
    assert!(
        stats.contains(&format!("\"cache_recovered_entries\":{recovered}")),
        "{stats}"
    );
    assert_eq!(child.wait().expect("exits").code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Response `line` numbers count each connection's own stream, as the
/// protocol documents — not a server-global request counter.
#[test]
fn tcp_line_numbers_are_per_connection() {
    let (mut child, addr) = spawn_tcp();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(&addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout set");
        stream
            .write_all(b"{\"id\": 1, \"method\": \"ping\"}\n{\"id\": 2, \"method\": \"ping\"}\n")
            .expect("requests written");
        let mut reader = BufReader::new(stream);
        let mut responses = Vec::new();
        for _ in 0..2 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("response line");
            responses.push(line.trim().to_owned());
        }
        // Every fresh connection starts at line 1 again.
        assert!(
            line_with_id(&responses, "1").contains("\"line\":1"),
            "{responses:?}"
        );
        assert!(
            line_with_id(&responses, "2").contains("\"line\":2"),
            "{responses:?}"
        );
    }
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .write_all(b"{\"method\": \"shutdown\"}\n")
        .expect("shutdown written");
    assert_eq!(child.wait().expect("exits").code(), Some(0));
}
