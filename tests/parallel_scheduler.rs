//! The tree-level scheduler's determinism contract, end to end: at any
//! thread count the optimizer's output is byte-identical to the serial
//! path — same non-redundant frontier, same `DegradationEvent` sequence,
//! same governor counters — on clean runs, on cache-backed runs, and on
//! runs that trip the governor and descend the rescue ladder.

use std::time::Duration;

use fp_optimizer::{
    shared_cache_stats, BlockCache, CancelToken, FaultPlan, Frontier, OptError, OptimizeConfig,
    Optimizer, RunOutcome, RunStats, SharedBlockCache,
};
use fp_select::LReductionPolicy;
use fp_tree::generators::{self, Benchmark};
use fp_tree::{FloorplanTree, ModuleLibrary};

/// Facade shorthand keeping this suite's call sites compact.
fn optimize_frontier(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<Frontier, OptError> {
    Optimizer::new(tree, library).config(config).run_frontier()
}

/// Facade shorthand for the cache-backed runs.
fn optimize_frontier_cached(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
    cache: &(dyn BlockCache + Sync),
) -> Result<Frontier, OptError> {
    Optimizer::new(tree, library)
        .config(config)
        .cache(cache)
        .run_frontier()
}

/// Facade shorthand for the report-carrying runs.
fn optimize_report(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<RunOutcome, OptError> {
    Optimizer::new(tree, library).config(config).run()
}

const SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Split granularities swept alongside thread counts: `0` pins the
/// per-node scheduling the pool shipped with, `4` forces small inline
/// subtree tasks, and `16` mixes inline ranges with auto-serial
/// resolution on the smaller benchmarks. The default threshold would
/// auto-serialize every paper-sized tree, hiding the pool entirely.
const SPLITS: [usize; 3] = [0, 4, 16];

fn benches() -> Vec<(Benchmark, ModuleLibrary)> {
    let mut out = Vec::new();
    for bench in generators::paper_benchmarks() {
        let lib = generators::module_library(&bench.tree, 4, 7);
        out.push((bench, lib));
    }
    for seed in [11u64, 29, 53] {
        let bench = generators::random_floorplan(24, 0.5, seed);
        let lib = generators::module_library(&bench.tree, 5, seed);
        out.push((bench, lib));
    }
    out
}

/// Everything in [`RunStats`] except wall-clock time must match.
fn assert_stats_identical(serial: &RunStats, parallel: &RunStats, label: &str) {
    assert_eq!(serial.generated, parallel.generated, "{label}: generated");
    assert_eq!(serial.peak_impls, parallel.peak_impls, "{label}: peak");
    assert_eq!(serial.final_impls, parallel.final_impls, "{label}: final");
    assert_eq!(serial.max_r_block, parallel.max_r_block, "{label}: max_r");
    assert_eq!(serial.max_l_block, parallel.max_l_block, "{label}: max_l");
    assert_eq!(
        serial.r_reductions, parallel.r_reductions,
        "{label}: r_reductions"
    );
    assert_eq!(
        serial.l_reductions, parallel.l_reductions,
        "{label}: l_reductions"
    );
    assert_eq!(serial.cache_hits, parallel.cache_hits, "{label}: hits");
    assert_eq!(
        serial.cache_misses, parallel.cache_misses,
        "{label}: misses"
    );
    assert_eq!(
        serial.degradations, parallel.degradations,
        "{label}: degradation sequence"
    );
    assert_eq!(
        serial.rescue_attempts, parallel.rescue_attempts,
        "{label}: rescue attempts"
    );
}

/// Clean runs: every thread count reproduces the serial frontier,
/// stats, and traced-back assignment byte for byte.
#[test]
fn thread_sweep_clean_runs_are_bit_identical() {
    for (bench, lib) in benches() {
        let base = OptimizeConfig::default().with_threads(1);
        let serial = optimize_frontier(&bench.tree, &lib, &base).expect("serial run solves");
        for threads in SWEEP {
            for split in SPLITS {
                let config = OptimizeConfig::default()
                    .with_threads(threads)
                    .with_split_threshold(split);
                let parallel =
                    optimize_frontier(&bench.tree, &lib, &config).expect("parallel run solves");
                let label = format!("{} @{threads}/split {split}", bench.name);
                assert_eq!(
                    serial.envelopes(),
                    parallel.envelopes(),
                    "{label}: frontier"
                );
                assert_stats_identical(serial.stats(), parallel.stats(), &label);
                assert_eq!(
                    serial.outcome(0).assignment,
                    parallel.outcome(0).assignment,
                    "{label}: assignment"
                );
            }
        }
    }
}

/// Selection policies (R and L, including the per-join parallel
/// L-reduction) compose with the tree-level pool without changing
/// results.
#[test]
fn thread_sweep_with_selection_policies() {
    for (bench, lib) in benches() {
        let config = |threads: usize| {
            OptimizeConfig::default()
                .with_r_selection(12)
                .with_l_selection(
                    LReductionPolicy::new(24)
                        .with_theta(0.8)
                        .with_parallel(true),
                )
                .with_threads(threads)
                .with_split_threshold(4)
        };
        let serial = optimize_frontier(&bench.tree, &lib, &config(1)).expect("serial run solves");
        for threads in SWEEP {
            let parallel =
                optimize_frontier(&bench.tree, &lib, &config(threads)).expect("parallel solves");
            let label = format!("{} selection @{threads}", bench.name);
            assert_eq!(serial.envelopes(), parallel.envelopes(), "{label}");
            assert_stats_identical(serial.stats(), parallel.stats(), &label);
        }
    }
}

/// Governor-rescued runs: a tight budget sends every thread count down
/// the same rescue ladder — identical degradation events, identical
/// final answer (the parallel pass detects the would-be trip in its
/// serial-schedule replay and defers to the serial path wholesale).
#[test]
fn thread_sweep_rescued_runs_are_bit_identical() {
    for (bench, lib) in benches() {
        let plain = optimize_frontier(&bench.tree, &lib, &OptimizeConfig::default())
            .expect("plain run solves");
        let budget = (plain.stats().peak_impls * 2 / 3).max(1);
        let config = |threads: usize| {
            OptimizeConfig::default()
                .with_l_selection(LReductionPolicy::new(64))
                .with_memory_limit(Some(budget))
                .with_auto_rescue(true)
                .with_threads(threads)
                .with_split_threshold(4)
        };
        let serial = optimize_report(&bench.tree, &lib, &config(1));
        for threads in SWEEP {
            let parallel = optimize_report(&bench.tree, &lib, &config(threads));
            let label = format!("{} rescued @{threads}", bench.name);
            match (&serial, &parallel) {
                (Ok(s), Ok(p)) => {
                    assert_eq!(s.rescued, p.rescued, "{label}: rescue flag");
                    assert_eq!(s.outcome.area, p.outcome.area, "{label}: area");
                    assert_eq!(s.outcome.assignment, p.outcome.assignment, "{label}");
                    assert_stats_identical(&s.outcome.stats, &p.outcome.stats, &label);
                }
                (Err(se), Err(pe)) => {
                    assert_eq!(se.to_string(), pe.to_string(), "{label}: error");
                }
                (s, p) => panic!("{label}: paths diverged: {s:?} vs {p:?}"),
            }
        }
    }
}

/// Injected faults land on the same generated-candidate ordinal at any
/// thread count, so the rescued outcome is identical too.
#[test]
fn thread_sweep_fault_plans_are_bit_identical() {
    let bench = generators::fp2();
    let lib = generators::module_library(&bench.tree, 4, 7);
    let plain =
        optimize_frontier(&bench.tree, &lib, &OptimizeConfig::default()).expect("plain solves");
    let midpoint = plain.stats().generated / 2;
    let config = |threads: usize| {
        OptimizeConfig::default()
            .with_fault_plan(Some(FaultPlan::at_allocations(&[midpoint])))
            .with_auto_rescue(true)
            .with_threads(threads)
            .with_split_threshold(0)
    };
    let serial = optimize_report(&bench.tree, &lib, &config(1)).expect("serial rescue solves");
    for threads in SWEEP {
        let parallel =
            optimize_report(&bench.tree, &lib, &config(threads)).expect("parallel rescue solves");
        assert_eq!(serial.rescued, parallel.rescued, "@{threads}: rescue flag");
        assert_eq!(serial.outcome.area, parallel.outcome.area, "@{threads}");
        assert_stats_identical(
            &serial.outcome.stats,
            &parallel.outcome.stats,
            &format!("fault @{threads}"),
        );
    }
}

/// Cache-backed runs: cold-then-warm pairs produce the same frontiers
/// and the same hit/miss counters at every thread count, and a cache
/// warmed at one thread count serves any other.
#[test]
fn thread_sweep_with_shared_cache() {
    let bench = generators::fp3();
    let lib = generators::module_library(&bench.tree, 4, 7);
    let mut baseline = None;
    for threads in SWEEP {
        let config = OptimizeConfig::default()
            .with_threads(threads)
            .with_split_threshold(4);
        let cache = SharedBlockCache::new(64 << 20);
        let cold =
            optimize_frontier_cached(&bench.tree, &lib, &config, &cache).expect("cold solves");
        let warm =
            optimize_frontier_cached(&bench.tree, &lib, &config, &cache).expect("warm solves");
        assert_eq!(cold.envelopes(), warm.envelopes(), "@{threads}: warm drift");
        assert_eq!(warm.stats().cache_misses, 0, "@{threads}: warm misses");
        assert!(warm.stats().cache_hits > 0, "@{threads}: warm hits");
        let snapshot = (
            cold.envelopes().clone(),
            cold.stats().cache_hits,
            cold.stats().cache_misses,
            warm.stats().cache_hits,
            shared_cache_stats(&cache).insertions,
        );
        match &baseline {
            None => baseline = Some(snapshot),
            Some(expect) => assert_eq!(expect, &snapshot, "@{threads}: cache counters diverge"),
        }
    }
    // Cross-thread-count reuse: warm at 1 thread, serve at 4.
    let cache = SharedBlockCache::new(64 << 20);
    let at1 = optimize_frontier_cached(
        &bench.tree,
        &lib,
        &OptimizeConfig::default().with_threads(1),
        &cache,
    )
    .expect("serial warmup solves");
    let at4 = optimize_frontier_cached(
        &bench.tree,
        &lib,
        &OptimizeConfig::default()
            .with_threads(4)
            .with_split_threshold(4),
        &cache,
    )
    .expect("parallel reuse solves");
    assert_eq!(at1.envelopes(), at4.envelopes());
    assert_eq!(
        at4.stats().cache_misses,
        0,
        "parallel run misses warm cache"
    );
}

/// A token cancelled before the run starts aborts the pool immediately.
#[test]
fn precancelled_token_cancels_the_parallel_run() {
    let bench = generators::fp2();
    let lib = generators::module_library(&bench.tree, 4, 7);
    let token = CancelToken::new();
    token.cancel();
    let config = OptimizeConfig::default()
        .with_cancel(Some(token))
        .with_threads(4)
        .with_split_threshold(4);
    match optimize_frontier(&bench.tree, &lib, &config) {
        Err(OptError::Cancelled { .. }) => {}
        Err(other) => panic!("expected Cancelled, got {other:?}"),
        Ok(_) => panic!("expected Cancelled, got a clean run"),
    }
}

/// Cancelling mid-flight from another thread stops every in-flight
/// worker: the run returns promptly with either the cancellation error
/// or (if it won the race) a clean result — never a hang or a panic.
#[test]
fn mid_flight_cancellation_stops_the_pool() {
    let bench = generators::random_floorplan(48, 0.5, 97);
    let lib = generators::module_library(&bench.tree, 6, 3);
    let token = CancelToken::new();
    let config = OptimizeConfig::default()
        .with_cancel(Some(token.clone()))
        .with_threads(4)
        .with_split_threshold(0);
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(2));
        token.cancel();
    });
    let result = optimize_frontier(&bench.tree, &lib, &config);
    canceller.join().expect("canceller joins");
    match result {
        Ok(frontier) => assert!(!frontier.envelopes().is_empty(), "clean win has a frontier"),
        Err(OptError::Cancelled { .. }) => {}
        Err(other) => panic!("expected Ok or Cancelled, got {other:?}"),
    }
}

/// The mega family obeys the same determinism contract as the paper
/// benchmarks: the FP5-sized 10k-module instance (far above the
/// auto-serial bound at the default split threshold) produces the
/// same frontier, stats, and assignment at every thread count and split
/// granularity.
#[test]
fn mega_instance_thread_sweep_is_bit_identical() {
    use fp_tree::mega::{mega_floorplan, mega_library, MegaConfig};
    let cfg = MegaConfig::new(10_000).with_seed(42);
    let bench = mega_floorplan(&cfg);
    let lib = mega_library(&bench.tree, &cfg);
    let serial = optimize_frontier(
        &bench.tree,
        &lib,
        &OptimizeConfig::default().with_threads(1),
    )
    .expect("serial mega run solves");
    for threads in SWEEP {
        for split in SPLITS {
            let config = OptimizeConfig::default()
                .with_threads(threads)
                .with_split_threshold(split);
            let parallel =
                optimize_frontier(&bench.tree, &lib, &config).expect("parallel mega run solves");
            let label = format!("mega-10k @{threads}/split {split}");
            assert_eq!(
                serial.envelopes(),
                parallel.envelopes(),
                "{label}: frontier"
            );
            assert_stats_identical(serial.stats(), parallel.stats(), &label);
            assert_eq!(
                serial.outcome(0).assignment,
                parallel.outcome(0).assignment,
                "{label}: assignment"
            );
        }
    }
}

/// The pre-SoA pruning kernels (the mega-bench ablation baseline) solve
/// the mega instance to the exact same frontier as the current layout —
/// the optimizer half of the ablation boundary.
#[test]
fn legacy_kernels_match_current_on_mega() {
    use fp_tree::mega::{mega_floorplan, mega_library, MegaConfig};
    let cfg = MegaConfig::new(1_500).with_seed(9);
    let bench = mega_floorplan(&cfg);
    let lib = mega_library(&bench.tree, &cfg);
    let config = OptimizeConfig::default().with_threads(1);
    let current = optimize_frontier(&bench.tree, &lib, &config).expect("current kernels solve");
    fp_shape::legacy::set_legacy_kernels(true);
    let legacy = optimize_frontier(&bench.tree, &lib, &config);
    fp_shape::legacy::set_legacy_kernels(false);
    let legacy = legacy.expect("legacy kernels solve");
    assert_eq!(current.envelopes(), legacy.envelopes(), "frontier");
    assert_stats_identical(current.stats(), legacy.stats(), "legacy kernels");
    assert_eq!(
        current.outcome(0).assignment,
        legacy.outcome(0).assignment,
        "assignment"
    );
}

/// `threads: 0` resolves to the machine's available parallelism and
/// still matches the serial result.
#[test]
fn auto_thread_count_matches_serial() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 3, 1);
    let serial = optimize_frontier(
        &bench.tree,
        &lib,
        &OptimizeConfig::default().with_threads(1),
    )
    .expect("serial solves");
    let auto = optimize_frontier(
        &bench.tree,
        &lib,
        &OptimizeConfig::default()
            .with_threads(0)
            .with_split_threshold(0),
    )
    .expect("auto solves");
    assert_eq!(serial.envelopes(), auto.envelopes());
    assert_stats_identical(serial.stats(), auto.stats(), "auto threads");
}
