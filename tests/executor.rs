//! The executor determinism matrix: one batch of serve-protocol
//! requests, executed as jobs on the shared executor, must produce
//! byte-identical replies at any thread count — across
//! {1, 2, 4} executor threads × {cached, uncached} × anneal-chains
//! {1, 4}.
//!
//! This is the serving-layer face of the repo's core discipline: every
//! parallel path (tree splits, anneal chains, concurrent requests) is
//! a scheduling choice only, never a semantic one. Timing- and
//! cache-occupancy-dependent diagnostics (`elapsed_ms`, `cache_hits`,
//! `trace_summary`, ...) are scrubbed before comparison; everything
//! else — areas, dimensions, fronts, hypervolumes, expressions, status
//! codes, echoed configs — must not drift by a byte.

use std::sync::Arc;

use fp_optimizer::cache::SharedBlockCache;
use fp_optimizer::serve::{execute, parse_request, ServeState};
use fp_optimizer::{Executor, JobClass};

/// The request batch: distinct instances per line (so cross-request
/// cache traffic is incidental, not load-bearing), covering optimize,
/// wirelength-weighted optimize, pareto, and anneal.
fn request_lines(chains: usize) -> Vec<String> {
    vec![
        r#"{"id": 1, "method": "optimize", "builtin": "fp1", "n": 5}"#.to_owned(),
        r#"{"id": 2, "method": "optimize", "builtin": "fp2", "n": 6, "seed": 3}"#.to_owned(),
        r#"{"id": 3, "method": "optimize", "builtin": "fig1", "n": 3}"#.to_owned(),
        r#"{"id": 4, "method": "optimize", "builtin": "fp1", "n": 5, "nets": 10, "net_seed": 7, "alpha": 0.5}"#.to_owned(),
        r#"{"id": 5, "method": "pareto", "builtin": "fp1", "n": 4, "nets": 8, "net_seed": 2}"#.to_owned(),
        format!(
            r#"{{"id": 6, "method": "anneal", "builtin": "fp1", "chains": {chains}, "moves": 40, "anneal_seed": 11}}"#
        ),
        r#"{"id": 7, "method": "ping"}"#.to_owned(),
    ]
}

/// Executes the whole batch as concurrent `JobClass::Serve` jobs on a
/// `threads`-wide executor and returns the replies in request order.
fn reply_batch(threads: usize, cached: bool, chains: usize) -> Vec<String> {
    let cache_bytes = if cached { 4 << 20 } else { 0 };
    let exec = Executor::new(threads);
    let state = Arc::new(
        // The real annealing backend, as the binaries wire it — its
        // chains run nested on the same executor as the request, so the
        // chains=4-on-1-thread cell of the matrix also pins that a
        // nested batch cannot deadlock the pool.
        ServeState::with_cache(SharedBlockCache::new(cache_bytes))
            .with_executor(Arc::clone(&exec))
            .with_anneal_backend(fp_anneal::serve_backend()),
    );
    let handles: Vec<_> = request_lines(chains)
        .into_iter()
        .enumerate()
        .map(|(index, line)| {
            let state = Arc::clone(&state);
            exec.submit(JobClass::Serve, move || {
                let request = parse_request(&line).expect("batch lines are well-formed");
                execute(&request, index as u64 + 1, &state, None).json
            })
        })
        .collect();
    let replies = handles.into_iter().map(|handle| handle.join()).collect();
    exec.shutdown();
    replies
}

/// Scrubs the named keys' values (numbers, strings, or whole nested
/// objects/arrays) to `0`, leaving every other byte untouched.
fn scrub(json: &str, keys: &[&str]) -> String {
    let mut out = json.to_owned();
    for key in keys {
        let needle = format!("\"{key}\":");
        let mut search = 0;
        while let Some(found) = out[search..].find(&needle) {
            let start = search + found + needle.len();
            let end = value_end(&out, start);
            out.replace_range(start..end, "0");
            search = start + 1;
        }
    }
    out
}

/// Index one past a JSON value starting at `start` (string-aware and
/// brace-balanced for objects/arrays).
fn value_end(s: &str, start: usize) -> usize {
    let bytes = s.as_bytes();
    match bytes[start] {
        open @ (b'{' | b'[') => {
            let close = if open == b'{' { b'}' } else { b']' };
            let mut depth = 0usize;
            let mut in_string = false;
            let mut escaped = false;
            for (i, &b) in bytes.iter().enumerate().skip(start) {
                if in_string {
                    if escaped {
                        escaped = false;
                    } else if b == b'\\' {
                        escaped = true;
                    } else if b == b'"' {
                        in_string = false;
                    }
                } else if b == b'"' {
                    in_string = true;
                } else if b == open {
                    depth += 1;
                } else if b == close {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            s.len()
        }
        b'"' => {
            let mut escaped = false;
            for (i, &b) in bytes.iter().enumerate().skip(start + 1) {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    return i + 1;
                }
            }
            s.len()
        }
        _ => bytes
            .iter()
            .enumerate()
            .skip(start)
            .find(|&(_, &b)| b == b',' || b == b'}' || b == b']')
            .map_or(s.len(), |(i, _)| i),
    }
}

/// The diagnostics that legitimately vary with timing, scheduling, and
/// cache occupancy. Everything outside this list is the deterministic
/// contract.
const VOLATILE: &[&str] = &[
    "elapsed_ms",
    "cache_hits",
    "cache_misses",
    "generated",
    "peak_impls",
    "trace_summary",
];

fn normalized_batch(threads: usize, cached: bool, chains: usize) -> Vec<String> {
    reply_batch(threads, cached, chains)
        .iter()
        .map(|reply| scrub(reply, VOLATILE))
        .collect()
}

#[test]
fn replies_are_byte_identical_across_the_executor_matrix() {
    for cached in [false, true] {
        for chains in [1, 4] {
            let baseline = normalized_batch(1, cached, chains);
            // Sanity: the batch actually succeeded (a batch of all-error
            // replies would also be "deterministic").
            for reply in &baseline {
                assert!(
                    reply.contains("\"status\":0"),
                    "cached={cached} chains={chains}: {reply}"
                );
            }
            for threads in [2, 4] {
                let replies = normalized_batch(threads, cached, chains);
                assert_eq!(
                    replies, baseline,
                    "threads={threads} cached={cached} chains={chains}"
                );
            }
        }
    }
}

/// The cache is a pure memo: warm and cold servers answer with the
/// same semantic payload (only the scrubbed diagnostics differ).
#[test]
fn cached_and_uncached_replies_agree_semantically() {
    for chains in [1, 4] {
        let cold = normalized_batch(2, false, chains);
        let warm = normalized_batch(2, true, chains);
        assert_eq!(cold, warm, "chains={chains}");
    }
}

/// The scrubber itself: nested objects, strings with escapes, and
/// repeated keys all reduce to `0` without disturbing neighbors.
#[test]
fn scrubber_handles_nested_and_repeated_values() {
    let json = r#"{"a":1,"t":{"x":[1,2],"s":"b}r\"ace"},"b":"keep","t":7}"#;
    assert_eq!(scrub(json, &["t"]), r#"{"a":1,"t":0,"b":"keep","t":0}"#);
    assert_eq!(scrub(json, &["missing"]), json);
}
