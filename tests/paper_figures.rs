//! Reproductions of the paper's worked figures as executable tests.
//!
//! Each test pins the exact numbers or structures the paper states in
//! prose, so a regression here means the reproduction has drifted from the
//! publication.

use fp_cspp::{constrained_shortest_path, shortest_path, CsppError, Dag};
use fp_geom::{LShape, Rect};
use fp_select::{l_selection, r_selection, LErrorTable, RErrorTable};
use fp_shape::{staircase, LList, RList};
use fp_tree::restructure::{restructure, BinNode, BinOp};
use fp_tree::{generators, CutDir, FloorplanTree, NodeKind};

/// Figure 2: the L-shape and rectangle implementation measurements.
#[test]
fn figure2_implementation_tuples() {
    // An L-shaped block of three basic rectangles and a rectangular block:
    // the implementation records only the outline measurements.
    let l = LShape::new(10, 4, 8, 3).expect("w1 >= w2, h1 >= h2");
    assert_eq!(l.as_tuple(), (10, 4, 8, 3));
    assert_eq!(l.bounding_box(), Rect::new(10, 8));
    // Definition 1: componentwise dominance.
    assert!(LShape::new(11, 4, 8, 3).expect("canonical").dominates(l));
    assert!(!LShape::new(11, 3, 8, 3).expect("canonical").dominates(l));
}

/// Figure 1/3: a floorplan tree restructures into a binary tree whose
/// internal nodes are rectangular or L-shaped blocks.
#[test]
fn figure3_restructure_shapes() {
    // A slice of three over a wheel: T' must contain binary slice joins
    // (rectangular) and the four wheel stages (three L-shaped, one final
    // rectangle).
    let mut t = FloorplanTree::new();
    let leaves: Vec<_> = (0..5).map(|m| t.leaf(m)).collect();
    let wheel = t.wheel(
        fp_tree::Chirality::Clockwise,
        [leaves[0], leaves[1], leaves[2], leaves[3], leaves[4]],
    );
    let extra1 = t.leaf(5);
    let extra2 = t.leaf(6);
    t.slice(CutDir::Vertical, vec![wheel, extra1, extra2]);

    let bin = restructure(&t).expect("valid");
    let slices = bin
        .nodes()
        .iter()
        .filter(|n| {
            matches!(
                n,
                BinNode::Join {
                    op: BinOp::Slice(_),
                    ..
                }
            )
        })
        .count();
    assert_eq!(slices, 2, "3-ary slice becomes 2 binary joins");
    assert_eq!(bin.lshape_count(), 3, "one wheel contributes 3 L-blocks");
    // Bottom-up order: the root is the last slice join.
    assert!(matches!(
        bin.node(bin.root()),
        Some(BinNode::Join {
            op: BinOp::Slice(_),
            ..
        })
    ));
}

/// Figure 4: the CSPP example. The unconstrained shortest path has weight
/// 8 over all six vertices; constrained to k = 4 the optimum is
/// v1 -> v2 -> v4 -> v6 with weight 11, beating the alternatives of weight
/// 12 and 15.
#[test]
fn figure4_constrained_shortest_path() {
    let mut g: Dag<u64> = Dag::new(6);
    for (u, v, w) in [
        (0, 1, 1),
        (1, 2, 2),
        (2, 3, 2),
        (3, 4, 2),
        (4, 5, 1),
        (0, 2, 6),
        (1, 3, 6),
        (3, 5, 4),
        (1, 4, 13),
    ] {
        g.add_edge(u, v, w).expect("valid edge");
    }

    let unconstrained = shortest_path(&g, 0, 5).expect("path exists");
    assert_eq!(unconstrained.weight, 8);
    assert_eq!(unconstrained.vertices, vec![0, 1, 2, 3, 4, 5]);

    let k4 = constrained_shortest_path(&g, 0, 5, 4).expect("path exists");
    assert_eq!(k4.weight, 11);
    assert_eq!(k4.vertices, vec![0, 1, 3, 5]);

    // The paper's two other 4-vertex paths weigh 12 and 15.
    let alt1: u64 = 6 + 2 + 4; // v1 -> v3 -> v4 -> v6
    let alt2: u64 = 1 + 13 + 1; // v1 -> v2 -> v5 -> v6
    assert_eq!((alt1, alt2), (12, 15));
    assert!(k4.weight < alt1 && k4.weight < alt2);
}

/// Figure 5: an irreducible R-list is a staircase whose corners are
/// exactly the non-redundant implementations.
#[test]
fn figure5_staircase_corners() {
    let list = RList::from_candidates(vec![
        Rect::new(12, 1),
        Rect::new(10, 2),
        Rect::new(8, 4),
        Rect::new(6, 5),
        Rect::new(3, 7),
        Rect::new(1, 10),
    ]);
    assert_eq!(list.len(), 6);
    // Points on/above the curve are feasible; corners are minimal.
    for &corner in list.iter() {
        assert_eq!(
            staircase::height_at(&list, corner.w),
            Some(corner.h),
            "corner {corner} lies on the curve"
        );
    }
    // Between corners the curve is flat at the next corner's height.
    assert_eq!(staircase::height_at(&list, 11), Some(2));
    assert_eq!(staircase::height_at(&list, 2), Some(10));
}

/// Figure 6: `ERROR(R, R')` decomposes into the per-gap bounded areas
/// (`A1 + A2` for the selection `{r1, r3, r4, r6}`), which is what
/// `Compute_R_Error` tabulates.
#[test]
fn figure6_error_decomposition() {
    let list = RList::from_candidates(vec![
        Rect::new(12, 1),
        Rect::new(10, 2),
        Rect::new(8, 4),
        Rect::new(6, 5),
        Rect::new(3, 7),
        Rect::new(1, 10),
    ]);
    let table = RErrorTable::new(&list);
    let selection = [0usize, 2, 3, 5]; // r1, r3, r4, r6
    let a1 = table.error(0, 2);
    let a2 = table.error(3, 5);
    assert!(a1 > 0 && a2 > 0);
    assert_eq!(table.error(2, 3), 0, "adjacent corners discard nothing");
    assert_eq!(table.selection_error(&selection), a1 + a2);
    assert_eq!(staircase::area_between(&list, &selection), a1 + a2);
}

/// Figure 7: `R_Selection` builds the complete DAG over the list and the
/// constrained shortest path with k vertices is the optimal selection.
#[test]
fn figure7_selection_equals_cspp() {
    let list = RList::from_candidates(vec![
        Rect::new(12, 1),
        Rect::new(10, 2),
        Rect::new(8, 4),
        Rect::new(6, 5),
        Rect::new(3, 7),
        Rect::new(1, 10),
    ]);
    // Independent CSPP over the explicitly constructed DAG.
    let table = RErrorTable::new(&list);
    let mut g: Dag<u128> = Dag::new(6);
    for i in 0..6 {
        for j in i + 1..6 {
            g.add_edge(i, j, table.error(i, j)).expect("valid edge");
        }
    }
    for k in 2..=6 {
        let via_cspp = constrained_shortest_path(&g, 0, 5, k).expect("path exists");
        let via_selection = r_selection(&list, k).expect("selection");
        assert_eq!(via_cspp.vertices, via_selection.positions, "k = {k}");
        assert_eq!(via_cspp.weight, via_selection.error, "k = {k}");
    }
    // k beyond any path length is correctly infeasible on the DAG side.
    assert_eq!(
        constrained_shortest_path(&g, 0, 5, 7),
        Err(CsppError::InvalidK { k: 7, len: 6 })
    );
}

/// Paragraph 4.3: `L_Selection` on an L-list agrees with its own table and
/// keeps a valid chain.
#[test]
fn section43_l_selection_consistency() {
    let list = LList::from_sorted(
        (0..10u64)
            .map(|i| LShape::new_canonical(60 - 3 * i, 7, 8 + 2 * i, 3 + i))
            .collect(),
    )
    .expect("valid chain");
    let table = LErrorTable::new_l1(&list);
    for k in 2..10 {
        let sel = l_selection(&list, k).expect("selection");
        assert_eq!(sel.error, table.selection_error(&sel.positions), "k = {k}");
        let reduced = list.subset(&sel.positions);
        assert!(LList::from_sorted(reduced.into_vec()).is_ok(), "k = {k}");
    }
}

/// Figure 8: the four benchmark floorplans have the paper's module counts
/// and the wheel-rich structure that produces L-shaped blocks.
#[test]
fn figure8_benchmarks() {
    let benches = generators::paper_benchmarks();
    let counts: Vec<usize> = benches.iter().map(|b| b.tree.module_count()).collect();
    assert_eq!(counts, vec![25, 49, 120, 245]);
    for bench in &benches {
        let wheels = (0..bench.tree.len())
            .filter(|&i| matches!(bench.tree.node(i).expect("node").kind, NodeKind::Wheel(_)))
            .count();
        assert!(wheels >= 5, "{} needs a wheel-rich hierarchy", bench.name);
        let bin = restructure(&bench.tree).expect("valid");
        assert_eq!(bin.lshape_count(), wheels * 3, "{}", bench.name);
    }
}
