//! Lint gate: no panicking constructs on library code paths.
//!
//! The optimizer's contract is that every failure on a library path is a
//! typed [`fp_optimizer::OptError`] (or a parser/writer error in
//! `fp_tree::format`) — panics are reserved for binaries and tests. This
//! test enforces the contract textually: it scans the non-binary sources
//! of `fp-optimizer` and `fp-tree`'s format module and rejects
//! `.unwrap()`, `.expect(`, `panic!(`, `unreachable!(`, `todo!(`, and
//! `unimplemented!(` outside comments and `#[cfg(test)]` modules.
//! (`assert!`/`debug_assert!` stay allowed: they express documented
//! preconditions and checked invariants, not error handling.)

use std::path::{Path, PathBuf};

const FORBIDDEN: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Strips everything from the first `#[cfg(test)]` on — test modules sit
/// at the bottom of every file in this workspace.
fn library_portion(source: &str) -> &str {
    match source.find("#[cfg(test)]") {
        Some(idx) => &source[..idx],
        None => source,
    }
}

fn scan_file(path: &Path, violations: &mut Vec<String>) {
    let source = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    for (idx, line) in library_portion(&source).lines().enumerate() {
        let code = line.trim_start();
        // Comment lines (incl. doc examples) are not library code paths.
        if code.starts_with("//") {
            continue;
        }
        for pat in FORBIDDEN {
            if code.contains(pat) {
                violations.push(format!(
                    "{}:{}: `{pat}` in: {code}",
                    path.display(),
                    idx + 1
                ));
            }
        }
    }
}

fn scan_dir(dir: &Path, skip_bins: bool, violations: &mut Vec<String>) {
    let entries =
        std::fs::read_dir(dir).unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            if skip_bins && path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            scan_dir(&path, skip_bins, violations);
        } else if path.extension().is_some_and(|e| e == "rs") {
            scan_file(&path, violations);
        }
    }
}

#[test]
fn library_paths_are_panic_free() {
    // CARGO_MANIFEST_DIR is crates/optimizer (the [[test]] target's crate).
    let optimizer_src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src");
    let format_rs = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../tree/src/format.rs")
        .canonicalize()
        .expect("fp-tree format.rs exists");

    let mut violations = Vec::new();
    scan_dir(&optimizer_src, true, &mut violations);
    scan_file(&format_rs, &mut violations);

    assert!(
        violations.is_empty(),
        "panicking constructs on library paths:\n{}",
        violations.join("\n")
    );
}
