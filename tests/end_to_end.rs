//! End-to-end runs of the paper's benchmark suite at test-friendly sizes:
//! the qualitative claims of Tables 1-4 must hold on every run.

use fp_optimizer::{OptError, OptimizeConfig, Optimizer, Outcome};
use fp_select::LReductionPolicy;
use fp_tree::generators;
use fp_tree::layout::realize;
use fp_tree::{FloorplanTree, ModuleLibrary};

/// Facade shorthand keeping this suite's call sites compact.
fn optimize(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<Outcome, OptError> {
    Optimizer::new(tree, library).config(config).run_best()
}

/// Table 1/2 shape on FP1: R_Selection cuts peak memory while the area
/// stays within a few percent, and every solution realizes physically.
#[test]
fn fp1_r_selection_tradeoff() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 6, 1);
    let plain = optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("runs");

    let mut last_area = u128::MAX;
    for k1 in [6usize, 10, 16] {
        let cfg = OptimizeConfig::default().with_r_selection(k1);
        let out = optimize(&bench.tree, &lib, &cfg).expect("runs");
        assert!(out.stats.peak_impls <= plain.stats.peak_impls, "K1 = {k1}");
        assert!(out.area >= plain.area, "K1 = {k1}");
        // Larger K1 => at least as good quality (monotone in this sweep).
        assert!(out.area <= last_area, "K1 = {k1}");
        last_area = out.area;
        let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
        assert_eq!(layout.area(), out.area);
        assert_eq!(layout.validate(), None);
        // Area degradation stays modest (paper: < 2%; allow 10% at these
        // tiny test sizes).
        let excess = (out.area - plain.area) as f64 / plain.area as f64;
        assert!(excess < 0.10, "K1 = {k1}: {excess}");
    }
}

/// Table 3/4 shape on FP1 with a budget: the plain algorithm dies, the
/// L-selection run survives and stays realizable.
#[test]
fn budgeted_fp1_requires_l_selection() {
    let bench = generators::fp1();
    // N = 16 implementations per module: large enough that the plain
    // algorithm's storage dwarfs the selection-based one (Table 1 regime).
    let lib = generators::module_library(&bench.tree, 16, 20260706);
    let unbounded =
        optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("fits default budget");
    let budget = unbounded.stats.peak_impls / 2;

    let plain = OptimizeConfig::default().with_memory_limit(Some(budget));
    assert!(matches!(
        optimize(&bench.tree, &lib, &plain),
        Err(OptError::OutOfMemory { .. })
    ));

    let rescued = plain
        .clone()
        .with_r_selection(12)
        .with_l_selection(LReductionPolicy::new(100).with_prefilter(4000));
    let out = optimize(&bench.tree, &lib, &rescued).expect("L_Selection rescues the run");
    assert!(out.stats.peak_impls <= budget);
    assert!(out.stats.l_reductions > 0);
    let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
    assert_eq!(layout.area(), out.area);
    assert_eq!(layout.validate(), None);
}

/// K2 sweep: more budget, better area; less budget, less memory
/// (the Table 4 trend).
#[test]
fn k2_sweep_trends() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 6, 5);
    let mut prev_area = u128::MAX;
    let mut prev_peak = 0usize;
    for k2 in [150usize, 400, 1200] {
        let cfg = OptimizeConfig::default()
            .with_r_selection(12)
            .with_l_selection(LReductionPolicy::new(k2).with_prefilter(4000));
        let out = optimize(&bench.tree, &lib, &cfg).expect("runs");
        assert!(
            out.area <= prev_area,
            "K2 = {k2}: area should improve with budget"
        );
        assert!(
            out.stats.peak_impls >= prev_peak,
            "K2 = {k2}: memory grows with budget"
        );
        prev_area = out.area;
        prev_peak = out.stats.peak_impls;
    }
}

/// FP2 end-to-end at small N: all three configurations and layouts agree
/// with the reported areas.
#[test]
fn fp2_small_n_full_pipeline() {
    let bench = generators::fp2();
    let lib = generators::module_library(&bench.tree, 3, 9);
    let plain = optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("runs");
    let with_sel = optimize(
        &bench.tree,
        &lib,
        &OptimizeConfig::default()
            .with_r_selection(10)
            .with_l_selection(LReductionPolicy::new(300)),
    )
    .expect("runs");
    for out in [&plain, &with_sel] {
        let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
        assert_eq!(layout.area(), out.area);
        assert_eq!(layout.validate(), None);
        assert_eq!(layout.placed.len(), 49);
    }
    assert!(with_sel.stats.peak_impls <= plain.stats.peak_impls);
    assert!(with_sel.area >= plain.area);
}

/// Chirality is a mirror symmetry: flipping every wheel's chirality leaves
/// the optimal area unchanged.
#[test]
fn chirality_is_area_neutral() {
    use fp_tree::{Chirality, FloorplanTree, NodeId};
    let build = |ch: Chirality| {
        let mut t = FloorplanTree::new();
        let inner: Vec<NodeId> = (0..5).map(|m| t.leaf(m)).collect();
        let w1 = t.wheel(ch, [inner[0], inner[1], inner[2], inner[3], inner[4]]);
        let more: Vec<NodeId> = (5..9).map(|m| t.leaf(m)).collect();
        let w2 = t.wheel(ch, [more[0], more[1], more[2], more[3], w1]);
        t.set_root(w2);
        t
    };
    let cw = build(Chirality::Clockwise);
    let ccw = build(Chirality::Counterclockwise);
    let lib = generators::module_library(&cw, 4, 13);
    let out_cw = optimize(&cw, &lib, &OptimizeConfig::default()).expect("runs");
    let out_ccw = optimize(&ccw, &lib, &OptimizeConfig::default()).expect("runs");
    assert_eq!(out_cw.area, out_ccw.area);
    // Both realize validly despite the mirrored placement.
    for (t, out) in [(&cw, &out_cw), (&ccw, &out_ccw)] {
        let layout = realize(t, &lib, &out.assignment).expect("valid");
        assert_eq!(layout.area(), out.area);
        assert_eq!(layout.validate(), None);
    }
}

/// MCNC-flavoured instances (mostly hard macros, wide area spread)
/// optimize and realize cleanly; dead space stays plausible.
#[test]
fn mcnc_like_instances_end_to_end() {
    for (bench, lib) in [generators::ami33_like(), generators::ami49_like()] {
        let out = optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("runs");
        let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
        assert_eq!(layout.area(), out.area, "{}", bench.name);
        assert_eq!(layout.validate(), None, "{}", bench.name);
        let dead = layout.dead_space() as f64 / layout.area() as f64;
        assert!(
            dead < 0.6,
            "{}: implausible dead space {dead:.2}",
            bench.name
        );
    }
}

/// Deep left-leaning slicing chains must not exhaust the stack: the
/// recursive passes (restructure, size computation, placement) all track
/// the tree depth, which we support to at least 2000.
#[test]
fn deep_slicing_chain_is_supported() {
    use fp_tree::{CutDir, FloorplanTree};
    let depth = 2000usize;
    let mut t = FloorplanTree::new();
    let mut acc = t.leaf(0);
    for m in 1..depth {
        let leaf = t.leaf(m);
        acc = t.slice(
            if m % 2 == 0 {
                CutDir::Horizontal
            } else {
                CutDir::Vertical
            },
            vec![acc, leaf],
        );
    }
    t.set_root(acc);
    t.validate().expect("valid");
    let lib = generators::module_library(&t, 2, 5);
    let out = optimize(&t, &lib, &OptimizeConfig::default()).expect("runs");
    let layout = realize(&t, &lib, &out.assignment).expect("valid");
    assert_eq!(layout.placed.len(), depth);
    assert_eq!(layout.area(), out.area);
}
