//! The [`Optimizer`] facade must be a drop-in for the six deprecated
//! entry points: byte-identical frontiers, outcomes, and degradation
//! logs across the serial/parallel × cached/uncached × tracer on/off
//! matrix. These tests are the one sanctioned caller of the legacy
//! functions — everything else in the repository goes through the
//! facade (CI greps for it).

#![allow(deprecated)]

use fp_optimizer::{
    optimize, optimize_cached, optimize_frontier, optimize_frontier_cached, optimize_report,
    optimize_report_cached, OptimizeConfig, Optimizer, SharedBlockCache, Tracer,
};
use fp_select::LReductionPolicy;
use fp_tree::generators::{self, Benchmark};
use fp_tree::ModuleLibrary;

const CACHE_BYTES: usize = 64 << 20;

fn benches() -> Vec<(Benchmark, ModuleLibrary)> {
    let fp1 = generators::fp1();
    let lib1 = generators::module_library(&fp1.tree, 5, 1);
    let rnd = generators::random_floorplan(18, 0.5, 23);
    let lib_rnd = generators::module_library(&rnd.tree, 4, 23);
    vec![(fp1, lib1), (rnd, lib_rnd)]
}

/// Serial, parallel, and selection-heavy configurations. `FP_THREADS`
/// in the environment shifts the unset-thread default identically for
/// the facade and the legacy wrappers, so equivalence is unaffected.
fn configs() -> Vec<OptimizeConfig> {
    let mut out = Vec::new();
    for threads in [1usize, 2, 4] {
        // Split threshold 0 pins per-node parallel scheduling; the
        // default would auto-serialize these paper-sized trees.
        out.push(
            OptimizeConfig::default()
                .with_threads(threads)
                .with_split_threshold(0),
        );
        out.push(
            OptimizeConfig::default()
                .with_threads(threads)
                .with_split_threshold(0)
                .with_r_selection(8)
                .with_l_selection(LReductionPolicy::new(12)),
        );
    }
    out
}

#[test]
fn facade_matches_optimize_frontier() {
    for (bench, lib) in benches() {
        for config in configs() {
            let legacy = optimize_frontier(&bench.tree, &lib, &config).expect("legacy solves");
            let facade = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_frontier()
                .expect("facade solves");
            assert_eq!(legacy.envelopes(), facade.envelopes(), "{}", bench.name);
            assert_eq!(
                legacy.stats().degradations,
                facade.stats().degradations,
                "{}",
                bench.name
            );
            assert_eq!(legacy.stats().peak_impls, facade.stats().peak_impls);
        }
    }
}

#[test]
fn facade_matches_optimize_and_report() {
    for (bench, lib) in benches() {
        for config in configs() {
            let legacy = optimize(&bench.tree, &lib, &config).expect("legacy solves");
            let facade = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_best()
                .expect("facade solves");
            assert_eq!(legacy.area, facade.area, "{}", bench.name);
            assert_eq!(legacy.root_impl, facade.root_impl);
            assert_eq!(legacy.assignment, facade.assignment);

            let legacy_report =
                optimize_report(&bench.tree, &lib, &config).expect("legacy report solves");
            let facade_report = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run()
                .expect("facade report solves");
            assert_eq!(legacy_report.outcome.area, facade_report.outcome.area);
            assert_eq!(
                legacy_report.outcome.assignment,
                facade_report.outcome.assignment
            );
            assert_eq!(legacy_report.rescued, facade_report.rescued);
            assert_eq!(legacy_report.degradations(), facade_report.degradations());
        }
    }
}

#[test]
fn facade_matches_cached_entry_points() {
    for (bench, lib) in benches() {
        for config in configs() {
            // Independent caches, primed by the same cold run each side.
            let legacy_cache = SharedBlockCache::new(CACHE_BYTES);
            let facade_cache = SharedBlockCache::new(CACHE_BYTES);

            let legacy_cold = optimize_frontier_cached(&bench.tree, &lib, &config, &legacy_cache)
                .expect("legacy cold solves");
            let facade_cold = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .cache(&facade_cache)
                .run_frontier()
                .expect("facade cold solves");
            assert_eq!(legacy_cold.envelopes(), facade_cold.envelopes());

            let legacy_warm = optimize_frontier_cached(&bench.tree, &lib, &config, &legacy_cache)
                .expect("legacy warm solves");
            let facade_warm = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .cache(&facade_cache)
                .run_frontier()
                .expect("facade warm solves");
            assert_eq!(legacy_warm.envelopes(), facade_warm.envelopes());
            assert_eq!(
                legacy_warm.stats().cache_hits,
                facade_warm.stats().cache_hits
            );
            assert_eq!(legacy_warm.stats().cache_misses, 0);
            assert_eq!(facade_warm.stats().cache_misses, 0);

            let legacy_best = optimize_cached(&bench.tree, &lib, &config, &legacy_cache)
                .expect("legacy cached best solves");
            let facade_best = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .cache(&facade_cache)
                .run_best()
                .expect("facade cached best solves");
            assert_eq!(legacy_best.area, facade_best.area);
            assert_eq!(legacy_best.assignment, facade_best.assignment);

            let legacy_report = optimize_report_cached(&bench.tree, &lib, &config, &legacy_cache)
                .expect("legacy cached report solves");
            let facade_report = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .cache(&facade_cache)
                .run()
                .expect("facade cached report solves");
            assert_eq!(legacy_report.outcome.area, facade_report.outcome.area);
            assert_eq!(
                legacy_report.outcome.assignment,
                facade_report.outcome.assignment
            );
        }
    }
}

#[test]
fn tracer_does_not_change_results() {
    for (bench, lib) in benches() {
        for config in configs() {
            let untraced = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_frontier()
                .expect("untraced solves");

            let subscribed = Tracer::new();
            let traced = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .tracer(&subscribed)
                .run_frontier()
                .expect("traced solves");
            assert_eq!(untraced.envelopes(), traced.envelopes(), "{}", bench.name);
            assert_eq!(untraced.stats().degradations, traced.stats().degradations);
            assert!(
                subscribed.drain().summary().joins > 0,
                "a subscribed tracer must observe the run"
            );

            let muted = Tracer::unsubscribed();
            let silent = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .tracer(&muted)
                .run_frontier()
                .expect("silent solves");
            assert_eq!(untraced.envelopes(), silent.envelopes());
            assert_eq!(
                muted.drain().events.len(),
                0,
                "unsubscribed collects nothing"
            );
        }
    }
}
