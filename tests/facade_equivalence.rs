//! The [`Optimizer`] facade is the only entry point (the six legacy
//! `optimize*` free functions are gone; CI greps for stragglers). These
//! tests pin the facade's internal consistency across the
//! serial/parallel × cached/uncached × tracer on/off matrix: every run
//! mode must report the same frontiers, outcomes, and degradation logs,
//! and `fp_optimizer::prelude` must expose the whole surface.

use fp_optimizer::prelude::*;
use fp_select::LReductionPolicy;
use fp_tree::generators::{self, Benchmark};
use fp_tree::ModuleLibrary;

const CACHE_BYTES: usize = 64 << 20;

fn benches() -> Vec<(Benchmark, ModuleLibrary)> {
    let fp1 = generators::fp1();
    let lib1 = generators::module_library(&fp1.tree, 5, 1);
    let rnd = generators::random_floorplan(18, 0.5, 23);
    let lib_rnd = generators::module_library(&rnd.tree, 4, 23);
    vec![(fp1, lib1), (rnd, lib_rnd)]
}

/// Serial, parallel, and selection-heavy configurations. `FP_THREADS`
/// in the environment shifts the unset-thread default identically for
/// every run mode, so equivalence is unaffected.
fn configs() -> Vec<OptimizeConfig> {
    let mut out = Vec::new();
    for threads in [1usize, 2, 4] {
        // Split threshold 0 pins per-node parallel scheduling; the
        // default would auto-serialize these paper-sized trees.
        out.push(
            OptimizeConfig::default()
                .with_threads(threads)
                .with_split_threshold(0),
        );
        out.push(
            OptimizeConfig::default()
                .with_threads(threads)
                .with_split_threshold(0)
                .with_r_selection(8)
                .with_l_selection(LReductionPolicy::new(12)),
        );
    }
    out
}

/// `run_best` and `run` are projections of `run_frontier`: the
/// frontier's best pick under the configured objective must be exactly
/// the outcome the shorthand entry points return, and `run` must wrap
/// it unchanged.
#[test]
fn run_modes_agree_on_one_enumeration() {
    for (bench, lib) in benches() {
        for config in configs() {
            let frontier = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_frontier()
                .expect("frontier solves");
            let from_frontier = frontier
                .best(config.objective, config.outline)
                .expect("frontier has a best");

            let best = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_best()
                .expect("run_best solves");
            assert_eq!(from_frontier.area, best.area, "{}", bench.name);
            assert_eq!(from_frontier.root_impl, best.root_impl);
            assert_eq!(from_frontier.assignment, best.assignment);

            let report = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run()
                .expect("run solves");
            assert_eq!(best.area, report.outcome.area);
            assert_eq!(best.assignment, report.outcome.assignment);
            assert_eq!(
                report.rescued,
                !report.outcome.stats.degradations.is_empty(),
                "`rescued` mirrors the degradation log"
            );
            assert_eq!(
                frontier.stats().degradations,
                report.outcome.stats.degradations,
                "{}",
                bench.name
            );
        }
    }
}

/// Deterministic replays: the same inputs produce byte-identical
/// frontiers on every repetition, in every configuration.
#[test]
fn replays_are_byte_identical() {
    for (bench, lib) in benches() {
        for config in configs() {
            let a = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_frontier()
                .expect("first run solves");
            let b = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_frontier()
                .expect("second run solves");
            assert_eq!(a.envelopes(), b.envelopes(), "{}", bench.name);
            assert_eq!(a.stats().degradations, b.stats().degradations);
            assert_eq!(a.stats().peak_impls, b.stats().peak_impls);
        }
    }
}

/// Attaching a cache must never change results: cold-through-cache,
/// warm-from-cache, and uncached runs all report identical frontiers
/// and outcomes, and the warm run is a pure cache replay (zero misses).
#[test]
fn cache_is_transparent_to_results() {
    for (bench, lib) in benches() {
        for config in configs() {
            let uncached = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_frontier()
                .expect("uncached solves");

            let cache = SharedBlockCache::new(CACHE_BYTES);
            let cold = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .cache(&cache)
                .run_frontier()
                .expect("cold solves");
            assert_eq!(uncached.envelopes(), cold.envelopes(), "{}", bench.name);

            let warm = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .cache(&cache)
                .run_frontier()
                .expect("warm solves");
            assert_eq!(uncached.envelopes(), warm.envelopes());
            assert_eq!(warm.stats().cache_misses, 0, "warm run is a pure replay");
            assert!(warm.stats().cache_hits > 0);

            let warm_best = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .cache(&cache)
                .run_best()
                .expect("warm best solves");
            let plain_best = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_best()
                .expect("plain best solves");
            assert_eq!(warm_best.area, plain_best.area);
            assert_eq!(warm_best.assignment, plain_best.assignment);
        }
    }
}

#[test]
fn tracer_does_not_change_results() {
    for (bench, lib) in benches() {
        for config in configs() {
            let untraced = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_frontier()
                .expect("untraced solves");

            let subscribed = Tracer::new();
            let traced = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .tracer(&subscribed)
                .run_frontier()
                .expect("traced solves");
            assert_eq!(untraced.envelopes(), traced.envelopes(), "{}", bench.name);
            assert_eq!(untraced.stats().degradations, traced.stats().degradations);
            assert!(
                subscribed.drain().summary().joins > 0,
                "a subscribed tracer must observe the run"
            );

            let muted = Tracer::unsubscribed();
            let silent = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .tracer(&muted)
                .run_frontier()
                .expect("silent solves");
            assert_eq!(untraced.envelopes(), silent.envelopes());
            assert_eq!(
                muted.drain().events.len(),
                0,
                "unsubscribed collects nothing"
            );
        }
    }
}

/// The prelude really is one-stop: the serve protocol rides along with
/// the optimizer vocabulary, at the pinned wire version.
#[test]
fn prelude_carries_the_serve_protocol() {
    assert_eq!(PROTO_VERSION, 1);
    let state = ServeState::new(CACHE_BYTES);
    let reply: Reply = handle_line(r#"{"id":1,"method":"ping"}"#, 1, &state, None);
    assert!(reply.json.contains("\"pong\":true"), "{}", reply.json);
    assert!(reply.json.contains("\"proto\":1"), "{}", reply.json);

    let parsed = parse_request(r#"{"id":2,"method":"ping"}"#).expect("parses");
    assert_eq!(parsed.proto, PROTO_VERSION);
    assert!(matches!(parsed.method, Method::Ping));
    assert!(matches!(parsed.id, Some(RequestId::Num(n)) if n == 2.0));

    let unsupported = parse_request(r#"{"id":3,"method":"ping","proto":7}"#);
    assert!(matches!(
        unsupported,
        Err(RequestError::UnsupportedProto(_, 7))
    ));
}
