//! Layout post-processing and staircase-equivalence suites.
//!
//! Two invariants pin the new geometry subsystem:
//!
//! * **Conservation** — polygonizing a realized layout is exact in
//!   integer coordinates: whitespace total + Σ block areas == envelope
//!   area, region areas sum to the total, and the report agrees with
//!   the layout's own `dead_space()`. Checked on FP1–FP4, a mega smoke
//!   instance, and a proptest sweep of random floorplans/assignments.
//! * **Byte-identity** — staircases are a strict generalization: a
//!   one-tooth staircase takes exactly the rectangle kernel's path and
//!   a two-tooth staircase exactly the L-shape path, producing the
//!   byte-identical irreducible fronts; pure-rect libraries keep their
//!   fingerprints and frontiers unchanged across {1,2,4} threads ×
//!   cached/uncached.

use fp_geom::{LShape, Rect, Staircase};
use fp_optimizer::{OptimizeConfig, Optimizer, SharedBlockCache};
use fp_shape::{LListSet, RList, SListSet};
use fp_tree::fingerprint::module_fingerprint;
use fp_tree::layout::{realize, Assignment, Layout};
use fp_tree::{generators, mega, FloorplanTree, Module, ModuleLibrary, NodeKind};
use proptest::prelude::*;

/// Exact conservation: blocks + whitespace == bounding box, region
/// areas sum to the total, and the scanline agrees with `dead_space()`.
fn assert_conserved(name: &str, layout: &Layout) {
    let poly = layout.polygonize();
    let ws = &poly.whitespace;
    let blocks: u128 = layout.placed.iter().map(|&(_, p)| p.size.area()).sum();
    assert_eq!(
        blocks + ws.total,
        layout.area(),
        "{name}: blocks + whitespace must equal the envelope exactly"
    );
    assert_eq!(ws.total, layout.dead_space(), "{name}: dead-space mismatch");
    let region_sum: u128 = ws.regions.iter().map(|r| r.area).sum();
    assert_eq!(
        region_sum, ws.total,
        "{name}: region areas must sum to total"
    );
    for r in &ws.regions {
        let rect_sum: u128 = r.rects.iter().map(|p| p.size.area()).sum();
        assert_eq!(rect_sum, r.area, "{name}: region decomposition mismatch");
    }
    assert_eq!(ws.largest(), ws.regions.first().map_or(0, |r| r.area));
}

/// A seed-derived assignment touching implementations beyond the first.
fn varied_assignment(tree: &FloorplanTree, library: &ModuleLibrary, seed: u64) -> Assignment {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let choices = tree
        .leaves_in_order()
        .iter()
        .map(|&leaf| {
            let module = match &tree.node(leaf).expect("leaf exists").kind {
                NodeKind::Leaf(m) => *m,
                other => panic!("leaves_in_order returned {other:?}"),
            };
            let n = library[module].implementations().len();
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize % n
        })
        .collect();
    Assignment::new(choices)
}

#[test]
fn conservation_on_paper_benchmarks() {
    for bench in [
        generators::fp1(),
        generators::fp2(),
        generators::fp3(),
        generators::fp4(),
    ] {
        let library = generators::module_library(&bench.tree, 4, 11);
        let n = bench.tree.module_count();
        let first = realize(&bench.tree, &library, &Assignment::first_fit(n)).expect("realizes");
        assert_conserved(&bench.name, &first);
        let varied = varied_assignment(&bench.tree, &library, 7);
        let layout = realize(&bench.tree, &library, &varied).expect("realizes");
        assert_conserved(&bench.name, &layout);
    }
}

#[test]
fn conservation_on_an_optimized_placement() {
    let bench = generators::fp1();
    let library = generators::module_library(&bench.tree, 5, 3);
    let outcome = Optimizer::new(&bench.tree, &library)
        .config(&OptimizeConfig::default())
        .run_best()
        .expect("FP1 solves");
    let layout = realize(&bench.tree, &library, &outcome.assignment).expect("realizes");
    assert_eq!(layout.area(), outcome.area);
    assert_conserved("FP1-optimized", &layout);
}

#[test]
fn conservation_on_a_mega_smoke_instance() {
    let cfg = mega::MegaConfig::new(1_500).with_seed(42);
    let bench = mega::mega_floorplan(&cfg);
    let library = mega::mega_library(&bench.tree, &cfg);
    let n = bench.tree.module_count();
    let layout = realize(&bench.tree, &library, &Assignment::first_fit(n)).expect("realizes");
    assert_conserved("mega-smoke", &layout);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Conservation holds for every random floorplan, library, and
    /// implementation choice — wheels included.
    #[test]
    fn conservation_on_random_layouts(
        leaves in 2usize..18,
        tree_seed in 0u64..500,
        lib_seed in 0u64..16,
        impls in 1usize..5,
        choice_seed in 0u64..64,
    ) {
        let bench = generators::random_floorplan(leaves, 0.5, tree_seed);
        let library = generators::module_library(&bench.tree, impls, lib_seed);
        let assignment = varied_assignment(&bench.tree, &library, choice_seed);
        let layout = realize(&bench.tree, &library, &assignment).expect("realizes");
        prop_assert_eq!(layout.validate(), None);
        assert_conserved("random", &layout);
    }
}

#[test]
fn one_tooth_staircases_take_the_rect_path_byte_identically() {
    let rects = vec![
        Rect::new(8, 2),
        Rect::new(6, 3),
        Rect::new(4, 4),
        Rect::new(2, 8),
        Rect::new(9, 9), // dominated: both kernels must drop it
        Rect::new(6, 3), // duplicate: both kernels must dedup it
    ];
    let set = SListSet::from_candidates(rects.iter().map(|&r| Staircase::from_rect(r)).collect());
    assert_eq!(set.rects(), &RList::from_candidates(rects));
    assert!(set.lshapes().is_empty());
    assert!(set.stairs().is_empty());
    // The staircase view round-trips: every survivor is still a rect.
    for s in set.iter() {
        assert_eq!(s.teeth(), 1);
        assert!(s.as_rect().is_some());
    }
}

#[test]
fn two_tooth_staircases_take_the_lshape_path_byte_identically() {
    let ls: Vec<LShape> = vec![
        Staircase::new_canonical(vec![(9, 3), (3, 9)])
            .as_lshape()
            .expect("two teeth"),
        Staircase::new_canonical(vec![(12, 2), (5, 6)])
            .as_lshape()
            .expect("two teeth"),
        Staircase::new_canonical(vec![(10, 4), (4, 10)])
            .as_lshape()
            .expect("two teeth"),
    ];
    let set = SListSet::from_candidates(ls.iter().map(|&l| Staircase::from_lshape(l)).collect());
    assert_eq!(set.lshapes(), &LListSet::from_candidates(ls));
    assert!(set.rects().is_empty());
    assert!(set.stairs().is_empty());
    for s in set.iter() {
        assert_eq!(s.teeth(), 2);
        assert!(s.as_lshape().is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Mixed candidate sets route every one-tooth staircase through the
    /// rect kernel and every two-tooth staircase through the L kernel,
    /// reproducing the strata the kernels compute directly.
    #[test]
    fn mixed_staircase_routing_matches_the_dedicated_kernels(
        dims in proptest::collection::vec((1u64..30, 1u64..30), 1..12),
    ) {
        let rects: Vec<Rect> = dims.iter().map(|&(w, h)| Rect::new(w, h)).collect();
        // Interleave rect staircases with L staircases derived from
        // consecutive pairs (wider-lower + narrower-taller).
        let mut stairs: Vec<Staircase> = rects.iter().map(|&r| Staircase::from_rect(r)).collect();
        let mut ls = Vec::new();
        for w in rects.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (wide, tall) = (
                Rect::new(a.w.max(b.w) + 1, a.h.min(b.h)),
                Rect::new(a.w.min(b.w), a.h.max(b.h) + 1),
            );
            let corners = vec![(wide.w, wide.h), (tall.w, tall.h)];
            let s = Staircase::new_canonical(corners);
            if s.teeth() == 2 {
                ls.push(s.as_lshape().expect("two teeth"));
                stairs.push(s);
            }
        }
        let set = SListSet::from_candidates(stairs);
        prop_assert_eq!(set.rects(), &RList::from_candidates(rects));
        prop_assert_eq!(set.lshapes(), &LListSet::from_candidates(ls));
        prop_assert!(set.stairs().is_empty());
    }
}

/// Attaching staircase geometry whose bounding boxes are already in the
/// rectangular frontier changes neither the implementation list nor any
/// optimization result — while pure-rect modules (no staircases) keep
/// their fingerprints exactly as before the shape-API redesign.
#[test]
fn redundant_staircases_leave_the_selection_path_untouched() {
    let bench = generators::fp1();
    let pure = generators::module_library(&bench.tree, 4, 9);

    // Rebuild the library, attaching to every module a staircase whose
    // bounding box duplicates one of its existing implementations.
    let mut modules = Vec::new();
    for id in 0..pure.len() {
        let m = &pure[id];
        let rects = m.implementations().as_slice().to_vec();
        let probe = rects[id % rects.len()];
        let stair = if probe.w > 1 && probe.h > 1 {
            Staircase::new_canonical(vec![(probe.w, probe.h - 1), (probe.w - 1, probe.h)])
        } else {
            Staircase::from_rect(probe)
        };
        assert_eq!(stair.bounding_box(), probe);
        modules.push(Module::with_staircases(m.name(), rects, vec![stair]));
    }
    let mut decorated = ModuleLibrary::new();
    for m in modules {
        decorated.add(m);
    }

    for id in 0..pure.len() {
        assert_eq!(
            pure[id].implementations(),
            decorated[id].implementations(),
            "redundant staircases must not disturb the rect frontier"
        );
    }

    for threads in [1usize, 2, 4] {
        let config = OptimizeConfig::default()
            .with_threads(threads)
            .with_split_threshold(0)
            .with_r_selection(8);
        for cached in [false, true] {
            let cache_a = SharedBlockCache::new(32 << 20);
            let cache_b = SharedBlockCache::new(32 << 20);
            let run = |library: &ModuleLibrary, cache: &SharedBlockCache| {
                let mut opt = Optimizer::new(&bench.tree, library).config(&config);
                if cached {
                    opt = opt.cache(cache);
                }
                opt.run_frontier().expect("solves")
            };
            let a = run(&pure, &cache_a);
            let b = run(&decorated, &cache_b);
            assert_eq!(
                a.envelopes(),
                b.envelopes(),
                "threads {threads} cached {cached}: frontiers diverged"
            );
            assert_eq!(a.stats().degradations, b.stats().degradations);
            assert_eq!(a.stats().peak_impls, b.stats().peak_impls);
            if cached {
                assert_eq!(
                    a.stats().cache_misses,
                    b.stats().cache_misses,
                    "cache addressing must be identical for identical frontiers"
                );
            }
        }
    }
}

/// The fingerprint contract of the redesign: a module without
/// staircases hashes exactly as it did before staircases existed, so
/// every persisted cache address of a pure-rect/L library survives.
#[test]
fn pure_rect_fingerprints_are_stable_under_the_shape_api() {
    let rects = vec![Rect::new(8, 2), Rect::new(4, 4), Rect::new(2, 8)];
    let classic = Module::new("m", rects.clone());
    let via_new_api = Module::with_staircases("m", rects.clone(), Vec::new());
    assert_eq!(
        module_fingerprint(&classic),
        module_fingerprint(&via_new_api)
    );

    // Whereas real staircase geometry must re-address the module even
    // when its bounding box adds nothing to the rect frontier.
    let stair = Staircase::new_canonical(vec![(8, 1), (7, 2)]);
    assert_eq!(stair.bounding_box(), Rect::new(8, 2));
    let with_geometry = Module::with_staircases("m", rects, vec![stair]);
    assert_eq!(classic.implementations(), with_geometry.implementations());
    assert_ne!(
        module_fingerprint(&classic),
        module_fingerprint(&with_geometry)
    );
}
