//! End-to-end tests of the fault-tolerant optimizer engine: the resource
//! governor's trip surfaces (budget, fault injection, deadline,
//! cancellation) and the degrade-and-retry rescue ladder.
//!
//! The central scenario mirrors the paper's SPARCstation memory failures:
//! a plain run whose peak implementation count `M` exceeds the budget
//! trips mid-block; with `auto_rescue` the engine checkpoints committed
//! subtrees, tightens the selection policies, and completes with a
//! realizable (near-optimal) floorplan plus a structured degradation log.

use std::time::Duration;

use fp_optimizer::{
    CancelToken, FaultPlan, OptError, OptimizeConfig, Optimizer, Outcome, RescueReason, RunOutcome,
};
use fp_tree::generators;
use fp_tree::layout::realize;
use fp_tree::{FloorplanTree, ModuleLibrary};
use proptest::prelude::*;

/// Facade shorthand keeping this suite's call sites compact.
fn optimize(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<Outcome, OptError> {
    Optimizer::new(tree, library).config(config).run_best()
}

/// Facade shorthand for the report-carrying runs.
fn optimize_report(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<RunOutcome, OptError> {
    Optimizer::new(tree, library).config(config).run()
}

/// A budget three quarters of the plain run's peak: tight enough to trip
/// mid-enumeration, loose enough that tightened selection can fit.
fn tight_budget(tree: &FloorplanTree, library: &ModuleLibrary) -> (usize, u128) {
    let plain = optimize(tree, library, &OptimizeConfig::default()).expect("plain run solves");
    (plain.stats.peak_impls * 3 / 4, plain.area)
}

#[test]
fn budget_trip_is_rescued_end_to_end() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 6, 3);
    let (budget, plain_area) = tight_budget(&bench.tree, &lib);

    let config = OptimizeConfig::default()
        .with_memory_limit(Some(budget))
        .with_auto_rescue(true);
    let report = optimize_report(&bench.tree, &lib, &config).expect("rescue completes the run");

    assert!(report.rescued);
    assert!(!report.degradations().is_empty());
    assert!(matches!(
        report.degradations()[0].reason,
        RescueReason::Budget { limit, .. } if limit == budget
    ));
    assert_eq!(
        report.outcome.stats.rescue_attempts as usize,
        report.degradations().len()
    );

    // The rescued result is a real floorplan: it realizes and validates.
    let layout =
        realize(&bench.tree, &lib, &report.outcome.assignment).expect("assignment realizes");
    assert_eq!(layout.validate(), None);
    assert_eq!(layout.area(), report.outcome.area);
    // Selection is lossy: never better than the exact optimum.
    assert!(report.outcome.area >= plain_area);
}

#[test]
fn without_rescue_the_same_trip_is_a_typed_error() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 6, 3);
    let (budget, _) = tight_budget(&bench.tree, &lib);

    let config = OptimizeConfig::default().with_memory_limit(Some(budget));
    match optimize_report(&bench.tree, &lib, &config) {
        Err(OptError::OutOfMemory { live, limit, .. }) => {
            assert_eq!(limit, budget);
            assert!(live > limit);
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
}

#[test]
fn degradation_schedule_tightens_monotonically() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 6, 3);
    let (budget, _) = tight_budget(&bench.tree, &lib);

    let config = OptimizeConfig::default()
        .with_memory_limit(Some(budget))
        .with_auto_rescue(true);
    let report = optimize_report(&bench.tree, &lib, &config).expect("rescues");
    let events = report.degradations();
    assert!(!events.is_empty());

    for (i, pair) in events.windows(2).enumerate() {
        let (a, b) = (&pair[0], &pair[1]);
        assert_eq!(b.attempt, a.attempt + 1, "attempts number consecutively");
        // K₁/K₂ never grow, θ never shrinks, the prefilter never turns
        // back off: the ladder only tightens.
        if let (Some(ka), Some(kb)) = (a.k1, b.k1) {
            assert!(kb <= ka, "step {i}: K1 grew {ka} -> {kb}");
        }
        if let (Some(ka), Some(kb)) = (a.k2, b.k2) {
            assert!(kb <= ka, "step {i}: K2 grew {ka} -> {kb}");
        }
        assert!(a.k1.is_none() || b.k1.is_some(), "step {i}: K1 turned off");
        assert!(a.k2.is_none() || b.k2.is_some(), "step {i}: K2 turned off");
        assert!(
            b.theta_millis >= a.theta_millis,
            "step {i}: theta shrank {} -> {}",
            a.theta_millis,
            b.theta_millis
        );
        assert!(
            a.prefilter.is_none() || b.prefilter.is_some(),
            "step {i}: prefilter turned off"
        );
        // Every event renders a human-readable report line.
        assert!(format!("{a}").contains("attempt"));
    }
}

#[test]
fn rescue_report_is_deterministic() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 6, 3);
    let (budget, _) = tight_budget(&bench.tree, &lib);

    let config = OptimizeConfig::default()
        .with_memory_limit(Some(budget))
        .with_auto_rescue(true);
    let first = optimize_report(&bench.tree, &lib, &config).expect("rescues");
    let second = optimize_report(&bench.tree, &lib, &config).expect("rescues");
    assert_eq!(first.degradations(), second.degradations());
    assert_eq!(first.outcome.area, second.outcome.area);
    assert_eq!(first.outcome.assignment, second.outcome.assignment);
}

#[test]
fn injected_fault_is_an_error_without_rescue() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 6, 3);
    let plain = optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("solves");
    let trip_at = plain.stats.generated / 2;
    assert!(trip_at > 0);

    let config =
        OptimizeConfig::default().with_fault_plan(Some(FaultPlan::at_allocations(&[trip_at])));
    match optimize(&bench.tree, &lib, &config) {
        Err(OptError::FaultInjected { allocation, .. }) => assert!(allocation >= trip_at),
        other => panic!("expected FaultInjected, got {other:?}"),
    }
}

#[test]
fn injected_fault_is_rescued_with_auto_rescue() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 6, 3);
    let plain = optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("solves");
    let trip_at = plain.stats.generated / 2;

    let config = OptimizeConfig::default()
        .with_fault_plan(Some(FaultPlan::at_allocations(&[trip_at])))
        .with_auto_rescue(true);
    let report = optimize_report(&bench.tree, &lib, &config).expect("rescued");
    assert!(report.rescued);
    assert!(report
        .degradations()
        .iter()
        .any(|e| matches!(e.reason, RescueReason::Fault { .. })));
    let layout =
        realize(&bench.tree, &lib, &report.outcome.assignment).expect("assignment realizes");
    assert_eq!(layout.validate(), None);
}

#[test]
fn seeded_fault_plans_reproduce() {
    let a = FaultPlan::from_seed(42, 3, 10_000);
    let b = FaultPlan::from_seed(42, 3, 10_000);
    assert_eq!(a.points(), b.points());
    assert_eq!(a.points().len(), 3);
    let c = FaultPlan::from_seed(43, 3, 10_000);
    assert_ne!(a.points(), c.points());

    // A seeded plan drives the engine to the same degradation log twice.
    let bench = generators::fig1();
    let lib = generators::module_library(&bench.tree, 4, 1);
    let plain = optimize(&bench.tree, &lib, &OptimizeConfig::default()).expect("solves");
    let plan = FaultPlan::from_seed(7, 1, plain.stats.generated.max(2));
    let config = OptimizeConfig::default()
        .with_fault_plan(Some(plan))
        .with_auto_rescue(true);
    let first = optimize_report(&bench.tree, &lib, &config).expect("rescued");
    let second = optimize_report(&bench.tree, &lib, &config).expect("rescued");
    assert_eq!(first.degradations(), second.degradations());
}

#[test]
fn zero_deadline_trips_and_is_not_rescuable() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 6, 3);
    // auto_rescue on: deadlines must still be terminal (retrying cannot
    // buy back wall-clock time).
    let config = OptimizeConfig::default()
        .with_deadline(Some(Duration::ZERO))
        .with_auto_rescue(true);
    match optimize(&bench.tree, &lib, &config) {
        Err(OptError::DeadlineExceeded { deadline, .. }) => {
            assert_eq!(deadline, Duration::ZERO);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn cancelled_token_aborts_the_run() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 6, 3);
    let token = CancelToken::new();
    token.cancel();
    let config = OptimizeConfig::default()
        .with_cancel(Some(token))
        .with_auto_rescue(true);
    match optimize(&bench.tree, &lib, &config) {
        Err(OptError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Rescued runs on random floorplans either complete with a
    /// realizable, validated floorplan or fail with a typed error —
    /// never a panic, never an unrealizable assignment.
    #[test]
    fn rescued_runs_yield_realizable_floorplans(
        tree_seed in 0u64..40, lib_seed in 0u64..10, leaves in 4usize..12,
    ) {
        let bench = generators::random_floorplan(leaves, 0.6, tree_seed);
        let lib = generators::module_library(&bench.tree, 5, lib_seed);
        let plain = optimize(&bench.tree, &lib, &OptimizeConfig::default())
            .expect("plain run solves");
        let budget = (plain.stats.peak_impls * 2 / 3).max(1);
        let config = OptimizeConfig::default()
            .with_memory_limit(Some(budget))
            .with_auto_rescue(true);
        match optimize_report(&bench.tree, &lib, &config) {
            Ok(report) => {
                let layout = realize(&bench.tree, &lib, &report.outcome.assignment)
                    .expect("assignment realizes");
                prop_assert_eq!(layout.validate(), None);
                prop_assert!(report.outcome.area >= plain.area);
            }
            // The ladder may hit its floor on tiny budgets; the failure
            // must still be the documented budget error.
            Err(OptError::OutOfMemory { limit, .. }) => prop_assert_eq!(limit, budget),
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }
    }
}
