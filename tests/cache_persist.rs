//! Optimizer-level persistence integration: a warm restart over the
//! segment store must reproduce the cold run's outcome *byte for byte*
//! with zero rebuilds, the on-disk records must round-trip through the
//! [`CachedBlock`] codec identically, and a corrupted store must
//! degrade to recomputation — never to a panic or a stale answer.

use std::path::{Path, PathBuf};

use fp_memo::{scan_store, Codec, SegmentHealth, HEADER_BYTES};
use fp_optimizer::cache::SharedBlockCache;
use fp_optimizer::{policy_fingerprint, CachedBlock, OptimizeConfig, Optimizer, Outcome};
use fp_tree::generators;
use fp_tree::{FloorplanTree, ModuleLibrary};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-cache-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fixed instance every test agrees on.
fn instance() -> (FloorplanTree, ModuleLibrary) {
    let bench = generators::fp1();
    let library = generators::module_library(&bench.tree, 5, 7);
    (bench.tree, library)
}

fn run_with(cache: &SharedBlockCache) -> Outcome {
    let (tree, library) = instance();
    Optimizer::new(&tree, &library)
        .config(&OptimizeConfig::default())
        .cache(cache)
        .run()
        .expect("optimize succeeds")
        .outcome
}

fn open(dir: &Path) -> SharedBlockCache {
    let salt = policy_fingerprint(&OptimizeConfig::default());
    SharedBlockCache::open_persistent(dir, 16 << 20, salt).expect("store opens")
}

#[test]
fn warm_restart_reproduces_the_outcome_with_zero_rebuilds() {
    let dir = scratch("warm");
    let cold = {
        let cache = open(&dir);
        assert_eq!(cache.recovery().recovered_entries, 0, "first open is cold");
        let outcome = run_with(&cache);
        assert!(outcome.stats.cache_misses > 0, "cold run builds blocks");
        cache.flush().expect("flush");
        outcome
    };

    // A brand-new process image would see exactly this: every block
    // replayed, nothing rebuilt, the identical optimum.
    let cache = open(&dir);
    assert!(cache.recovery().recovered_entries > 0, "store replayed");
    let warm = run_with(&cache);
    assert_eq!(warm.stats.cache_misses, 0, "no block rebuilt");
    assert!(warm.stats.cache_hits > 0);
    assert_eq!(warm.area, cold.area);
    assert_eq!(warm.root_impl, cold.root_impl);
    assert_eq!(warm.assignment, cold.assignment);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_records_round_trip_the_block_codec_byte_identically() {
    let dir = scratch("codec");
    let cache = open(&dir);
    run_with(&cache);
    cache.flush().expect("flush");
    drop(cache);

    let salt = policy_fingerprint(&OptimizeConfig::default());
    let scan = scan_store(&dir, salt).expect("scan");
    let records = scan.records();
    assert!(!records.is_empty(), "the run persisted blocks");
    for (key, bytes) in &records {
        let block =
            CachedBlock::decode(bytes).unwrap_or_else(|| panic!("record {key:#034x} decodes"));
        let mut reencoded = Vec::new();
        block.encode(&mut reencoded);
        assert_eq!(
            &reencoded, bytes,
            "record {key:#034x} re-encodes to its stored bytes"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_recomputes_instead_of_panicking() {
    let dir = scratch("corrupt");
    let cold = {
        let cache = open(&dir);
        let outcome = run_with(&cache);
        cache.flush().expect("flush");
        outcome
    };
    let salt = policy_fingerprint(&OptimizeConfig::default());
    let intact = scan_store(&dir, salt).expect("scan").records().len();
    assert!(intact > 0);

    // Flip one payload byte a few records in: everything from that
    // record on fails its CRC and is discarded at recovery.
    let wal = dir.join("wal.fpm");
    let mut bytes = std::fs::read(&wal).expect("read wal");
    let target = HEADER_BYTES + (bytes.len() - HEADER_BYTES) / 3;
    bytes[target] ^= 0x40;
    std::fs::write(&wal, &bytes).expect("rewrite wal");

    let cache = open(&dir);
    let recovered = cache.recovery().recovered_entries;
    assert!(
        recovered < intact,
        "corruption cut the verified prefix ({recovered} of {intact})"
    );
    assert!(cache.recovery().truncated_segments > 0);
    // The optimizer simply recomputes what was lost — same optimum.
    let healed = run_with(&cache);
    assert_eq!(healed.area, cold.area);
    assert_eq!(healed.assignment, cold.assignment);
    assert!(healed.stats.cache_misses > 0, "lost blocks were rebuilt");
    cache.flush().expect("flush after heal");
    drop(cache);

    // And the store is clean again end to end.
    let rescan = scan_store(&dir, salt).expect("rescan");
    assert!(
        rescan
            .segments
            .iter()
            .all(|s| s.health == SegmentHealth::Clean),
        "post-heal store verifies"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn policy_change_cold_starts_the_store() {
    let dir = scratch("salt");
    {
        let cache = open(&dir);
        run_with(&cache);
        cache.flush().expect("flush");
    }
    // Same directory, different selection policy → different salt →
    // cold start; never replays entries from the other policy.
    let other = policy_fingerprint(&OptimizeConfig::default().with_r_selection(64));
    let cache = SharedBlockCache::open_persistent(&dir, 16 << 20, other).expect("reopen");
    assert_eq!(cache.recovery().recovered_entries, 0);
    assert!(cache.recovery().foreign_salt_segments > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
