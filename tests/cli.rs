//! Integration tests for the `fpopt` command-line tool: drive the real
//! binary through its major paths.

use std::process::Command;

fn fpopt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fpopt"))
}

fn repo_root() -> String {
    format!("{}/../..", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn help_prints_usage() {
    let out = fpopt().arg("--help").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage: fpopt"));
    assert!(text.contains("--k1"));
}

#[test]
fn missing_input_fails_with_usage() {
    let out = fpopt().output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing input"));
}

#[test]
fn unknown_option_reports() {
    let out = fpopt().args(["@fig1", "--bogus"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn builtin_benchmark_runs() {
    let out = fpopt()
        .args(["@fig1", "--n", "4", "--seed", "2"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("instance FIG1: 5 modules"));
    assert!(text.contains("optimal area"));
    assert!(text.contains("verified layout: 5 modules placed"));
}

#[test]
fn pinwheel_asset_via_cli_with_ascii() {
    let out = fpopt()
        .args([&format!("{}/assets/pinwheel.fpt", repo_root()), "--ascii"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimal area 9 as 3x3"));
    assert!(text.contains("dead space 0"));
}

#[test]
fn selection_flags_are_applied() {
    let out = fpopt()
        .args([
            "@fp1",
            "--n",
            "8",
            "--k1",
            "10",
            "--k2",
            "200",
            "--prefilter",
            "2000",
            "--parallel",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("L-reductions"));
}

#[test]
fn oom_suggests_selection() {
    let out = fpopt()
        .args(["@fp1", "--n", "12", "--memory", "300"])
        .output()
        .expect("runs");
    // Budget exhaustion has a stable, documented exit code.
    assert_eq!(out.status.code(), Some(4));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("out of memory"));
    assert!(text.contains("--k1/--k2"));
    assert!(text.contains("--auto-rescue"));
}

#[test]
fn oom_with_auto_rescue_completes_and_reports() {
    // The acceptance scenario: the same budget that kills the plain run
    // completes under --auto-rescue, with the degradation log on stderr.
    let out = fpopt()
        .args(["@fp1", "--n", "12", "--memory", "2000", "--auto-rescue"])
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rescue:"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("optimal area"));
    assert!(stdout.contains("verified layout"));
}

#[test]
fn injected_fault_exit_codes() {
    // Deterministic fault injection: without rescue the run dies with the
    // budget/fault exit code; with --auto-rescue it completes.
    let fail = fpopt()
        .args(["@fp3", "--n", "3", "--inject-fault", "200"])
        .output()
        .expect("runs");
    assert_eq!(fail.status.code(), Some(4));
    assert!(String::from_utf8_lossy(&fail.stderr).contains("injected fault"));

    let rescued = fpopt()
        .args(["@fp3", "--n", "3", "--inject-fault", "200", "--auto-rescue"])
        .output()
        .expect("runs");
    assert_eq!(
        rescued.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&rescued.stderr)
    );
    let stderr = String::from_utf8_lossy(&rescued.stderr);
    assert!(stderr.contains("rescue:"), "{stderr}");
    assert!(String::from_utf8_lossy(&rescued.stdout).contains("verified layout"));
}

#[test]
fn zero_deadline_exit_code() {
    let out = fpopt()
        .args(["@fp1", "--n", "4", "--deadline", "0"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(5));
    assert!(String::from_utf8_lossy(&out.stderr).contains("deadline"));
}

#[test]
fn outline_and_objective_flags() {
    let ok = fpopt()
        .args(["@fig1", "--n", "4", "--objective", "hp"])
        .output()
        .expect("runs");
    assert!(ok.status.success());
    let fail = fpopt()
        .args(["@fig1", "--n", "4", "--outline", "2x2"])
        .output()
        .expect("runs");
    assert_eq!(fail.status.code(), Some(6));
    assert!(String::from_utf8_lossy(&fail.stderr).contains("outline"));
    let bad = fpopt()
        .args(["@fig1", "--outline", "nonsense"])
        .output()
        .expect("runs");
    assert!(!bad.status.success());
}

#[test]
fn exports_write_files() {
    let dir = std::env::temp_dir().join("fpopt-cli-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let svg = dir.join("out.svg");
    let dot = dir.join("out.dot");
    let fpt = dir.join("out.fpt");
    let out = fpopt()
        .args([
            "@fig1",
            "--n",
            "3",
            "--svg",
            svg.to_str().expect("utf8"),
            "--dot",
            dot.to_str().expect("utf8"),
            "--fpt",
            fpt.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let svg_text = std::fs::read_to_string(&svg).expect("svg written");
    assert!(svg_text.starts_with("<svg"));
    let dot_text = std::fs::read_to_string(&dot).expect("dot written");
    assert!(dot_text.starts_with("digraph"));
    // The .fpt round-trip reloads through the CLI.
    let reload = fpopt()
        .arg(fpt.to_str().expect("utf8"))
        .output()
        .expect("runs");
    assert!(reload.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_builtin_reports() {
    let out = fpopt().arg("@fp9").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown built-in"));
}

#[test]
fn fpcompress_round_trips() {
    let dir = std::env::temp_dir().join("fpcompress-cli-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let out_path = dir.join("compact.fpt");
    let input = format!("{}/assets/demo.fpt", repo_root());
    let out = Command::new(env!("CARGO_BIN_EXE_fpcompress"))
        .args([&input, "--k", "2", "-o", out_path.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("implementations across 10 modules"));
    // The compressed instance still optimizes, never better than the full.
    let full = fpopt().arg(&input).output().expect("runs");
    let compact = fpopt()
        .arg(out_path.to_str().expect("utf8"))
        .output()
        .expect("runs");
    assert!(full.status.success() && compact.status.success());
    let area = |o: &std::process::Output| -> u128 {
        let text = String::from_utf8_lossy(&o.stdout).to_string();
        let line = text
            .lines()
            .find(|l| l.starts_with("optimal area"))
            .expect("area line")
            .to_owned();
        line.split_whitespace()
            .nth(2)
            .expect("value")
            .parse()
            .expect("number")
    };
    assert!(area(&compact) >= area(&full));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fpcompress_error_budget_zero_is_lossless() {
    let input = format!("{}/assets/demo.fpt", repo_root());
    let out = Command::new(env!("CARGO_BIN_EXE_fpcompress"))
        .args([&input, "--max-error", "0"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("(total staircase error 0)"));
    // Output on stdout parses back.
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("floorplan soc-demo"));
}

#[test]
fn fpcompress_max_impls_cap() {
    // Four dense 8-point shape curves: 32 implementations in total.
    let dir = std::env::temp_dir().join("fpcompress-cap-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let input = dir.join("dense.fpt");
    let curve = "1x8 2x7 3x6 4x5 5x4 6x3 7x2 8x1";
    let text = format!(
        "floorplan dense\nmodule a {curve}\nmodule b {curve}\nmodule c {curve}\n\
         module d {curve}\ntree (hsplit (vsplit a b) (vsplit c d))\n"
    );
    std::fs::write(&input, text).expect("write input");
    let input = input.to_str().expect("utf8");

    // A cap below the compressed size: hard error without rescue...
    let fail = Command::new(env!("CARGO_BIN_EXE_fpcompress"))
        .args([input, "--k", "8", "--max-impls", "12"])
        .output()
        .expect("runs");
    assert_eq!(fail.status.code(), Some(4));
    assert!(String::from_utf8_lossy(&fail.stderr).contains("--auto-rescue"));
    // ...and a degraded-but-fitting output with it (8 -> 4 -> 2 per module).
    let rescued = Command::new(env!("CARGO_BIN_EXE_fpcompress"))
        .args([input, "--k", "8", "--max-impls", "12", "--auto-rescue"])
        .output()
        .expect("runs");
    assert_eq!(
        rescued.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&rescued.stderr)
    );
    let stderr = String::from_utf8_lossy(&rescued.stderr);
    assert!(stderr.contains("rescue:"), "{stderr}");
    // The rescued output still parses and respects the cap.
    let out_text = String::from_utf8_lossy(&rescued.stdout).to_string();
    let impls: usize = out_text
        .lines()
        .filter(|l| l.starts_with("module "))
        .map(|l| l.split_whitespace().skip(2).count())
        .sum();
    assert!(impls <= 12, "{impls} implementations over the cap");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fpcompress_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_fpcompress"))
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let out = Command::new(env!("CARGO_BIN_EXE_fpcompress"))
        .args(["x.fpt", "--k", "1"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains(">= 2"));
}
