//! End-to-end tests of the session subsystem: incremental
//! re-optimization after module edits (the content-addressed cache must
//! rebuild exactly the edited leaf's root-path joins), cache byte
//! accounting and LRU eviction at the block level, and the interaction
//! between caching and the governor's rescue ladder.

use fp_geom::Rect;
use fp_memo::Fingerprint;
use fp_optimizer::{
    policy_fingerprint, shared_cache_stats, BlockCache, CachedBlock, CachedShapes, Frontier,
    OptError, OptimizeConfig, Optimizer, SharedBlockCache,
};
use fp_session::{Session, SessionError};
use fp_tree::fingerprint::block_fingerprints;
use fp_tree::restructure::{restructure, BinNode};
use fp_tree::{generators, FloorplanTree, Module, ModuleLibrary};

/// Facade shorthand keeping this suite's call sites compact.
fn optimize_frontier(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<Frontier, OptError> {
    Optimizer::new(tree, library).config(config).run_frontier()
}

/// Facade shorthand for the cache-backed runs.
fn optimize_frontier_cached(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
    cache: &(dyn BlockCache + Sync),
) -> Result<Frontier, OptError> {
    Optimizer::new(tree, library)
        .config(config)
        .cache(cache)
        .run_frontier()
}

/// The joins whose content address differs between two library states:
/// exactly the edited leaves' root-path ancestors.
fn changed_joins(
    tree: &FloorplanTree,
    before: &ModuleLibrary,
    after: &ModuleLibrary,
    salt: Fingerprint,
) -> (usize, usize) {
    let bin = restructure(tree).expect("restructures");
    let fps_before = block_fingerprints(&bin, before, salt);
    let fps_after = block_fingerprints(&bin, after, salt);
    let mut joins = 0;
    let mut changed = 0;
    for (index, node) in bin.nodes().iter().enumerate() {
        if matches!(node, BinNode::Join { .. }) {
            joins += 1;
            if fps_before[index] != fps_after[index] {
                changed += 1;
            }
        }
    }
    (joins, changed)
}

/// After `update_module` on one leaf, a warm run (a) returns the same
/// frontier as a cold run over the edited instance, byte for byte, and
/// (b) rebuilds exactly the root-path joins — the miss counter equals
/// the number of joins whose fingerprint the edit changed, and that
/// number is small compared to the tree.
#[test]
fn incremental_reoptimize_rebuilds_only_the_root_path() {
    let bench = generators::fp2();
    let before = generators::module_library(&bench.tree, 5, 2);
    let config = OptimizeConfig::default();

    let mut session = Session::open(bench.tree.clone(), before.clone(), config.clone(), 32 << 20);
    let cold = session.optimize().expect("cold run");
    assert_eq!(cold.outcome.stats.cache_hits, 0);

    // Replace module 0's implementation list.
    let edited = Module::new(
        before.get(0).expect("module 0").name().to_owned(),
        vec![Rect::new(3, 9), Rect::new(5, 6), Rect::new(9, 3)],
    );
    session.update_module(0, edited).expect("edit applies");

    let (joins, changed) = changed_joins(
        &bench.tree,
        &before,
        session.library(),
        policy_fingerprint(&config),
    );
    assert!(changed > 0, "the edit must re-address at least the root");
    assert!(
        changed < joins,
        "a single-leaf edit must leave sibling subtrees addressed as before \
         ({changed} of {joins} joins changed)"
    );

    let warm = session.optimize().expect("incremental run");
    assert_eq!(
        warm.outcome.stats.cache_misses, changed,
        "only root-path joins may be rebuilt"
    );
    assert_eq!(
        warm.outcome.stats.cache_hits,
        joins - changed,
        "every off-path join must come from cache"
    );

    // Byte-identical to a from-scratch run over the edited instance.
    let cold_edited = optimize_frontier(&bench.tree, session.library(), &config)
        .expect("cold run over edited instance");
    let warm_frontier =
        optimize_frontier_cached(&bench.tree, session.library(), &config, session.cache())
            .expect("warm frontier");
    assert_eq!(cold_edited.envelopes(), warm_frontier.envelopes());
    assert_eq!(
        cold_edited.stats().degradations,
        warm_frontier.stats().degradations
    );
    let cold_best = Optimizer::new(&bench.tree, session.library())
        .config(&config)
        .run_best()
        .expect("cold optimize over edited instance");
    assert_eq!(warm.outcome.area, cold_best.area);
    assert_eq!(warm.outcome.assignment, cold_best.assignment);

    let stats = session.stats();
    assert_eq!(stats.runs, 2);
    assert_eq!(stats.module_edits, 1);
    assert_eq!(stats.last_run_misses, changed);
}

#[test]
fn session_rejects_invalid_edits_without_dirtying_state() {
    let bench = generators::fp1();
    let library = generators::module_library(&bench.tree, 3, 1);
    let mut session = Session::open(bench.tree, library, OptimizeConfig::default(), 1 << 20);
    let a = session.optimize().expect("runs").outcome.area;
    assert!(matches!(
        session.update_module(usize::MAX, Module::new("x", vec![Rect::new(1, 1)])),
        Err(SessionError::UnknownModule { .. })
    ));
    let b = session.optimize().expect("still runs").outcome.area;
    assert_eq!(a, b);
    assert_eq!(session.stats().last_run_misses, 0);
}

fn block(widths: &[(u64, u64)]) -> CachedBlock {
    let mut rects: Vec<Rect> = widths.iter().map(|&(w, h)| Rect::new(w, h)).collect();
    rects.sort_by_key(|r| std::cmp::Reverse(r.w));
    let prov = (0..rects.len() as u32).map(|i| (i, i)).collect();
    CachedBlock {
        shapes: CachedShapes::Rect { rects, prov },
        degradations: Vec::new(),
    }
}

/// Filling a cache past its byte budget evicts in LRU order, with
/// lookups (not just stores) refreshing recency. Pinned to a single
/// shard: the sharded cache runs an independent LRU per shard.
#[test]
fn cache_fill_past_budget_evicts_least_recently_used() {
    let one = block(&[(8, 1), (4, 2), (2, 4), (1, 8)]);
    let weight = fp_memo::Weigh::weight_bytes(&one) + fp_memo::ENTRY_OVERHEAD_BYTES;
    // Room for exactly three entries.
    let cache = SharedBlockCache::with_shards(3 * weight, 1);

    for key in 1u128..=3 {
        cache.store(key, one.clone());
    }
    assert!(cache.lookup(1).is_some() && cache.lookup(3).is_some());

    // 4 exceeds the budget: 2 is the least recently used (1 and 3 were
    // just looked up) and must go first.
    cache.store(4, one.clone());
    assert!(cache.lookup(2).is_none(), "LRU entry evicted first");
    assert!(cache.lookup(4).is_some());

    // Refresh 1 via lookup, insert 5: now 3 is the oldest.
    assert!(cache.lookup(1).is_some());
    cache.store(5, one.clone());
    assert!(cache.lookup(3).is_none(), "second eviction follows recency");
    assert!(cache.lookup(1).is_some() && cache.lookup(5).is_some());

    let stats = shared_cache_stats(&cache);
    assert_eq!(stats.evictions, 2);
    assert_eq!(stats.insertions, 5);
    let (bytes, budget) = (cache.bytes(), cache.budget_bytes());
    assert!(bytes <= budget, "accounting stays within budget");
}

/// A cached session whose governor trips degrades through the rescue
/// ladder (auto-rescue) instead of aborting, and the cache stays
/// consistent: later runs still return the rescued-run area.
#[test]
fn governor_trip_with_cache_degrades_instead_of_aborting() {
    let bench = generators::fp1();
    let library = generators::module_library(&bench.tree, 6, 3);
    let plain =
        optimize_frontier(&bench.tree, &library, &OptimizeConfig::default()).expect("plain run");
    let budget = plain.stats().peak_impls * 3 / 4;

    let config = OptimizeConfig::default()
        .with_memory_limit(Some(budget))
        .with_auto_rescue(true);
    let mut session = Session::open(
        bench.tree.clone(),
        library.clone(),
        config.clone(),
        32 << 20,
    );

    let first = session.optimize().expect("rescue ladder completes the run");
    assert!(first.rescued, "the tight budget must trip and degrade");
    assert!(!first.outcome.stats.degradations.is_empty());

    // Rescued blocks are never memoized: a rerun under the same config
    // must reproduce the same (degraded) result, not observe rescued
    // lists under clean-policy addresses.
    let second = session.optimize().expect("second run");
    assert_eq!(first.outcome.area, second.outcome.area);
    assert_eq!(
        first.outcome.stats.degradations,
        second.outcome.stats.degradations
    );
}
