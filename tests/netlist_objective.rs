//! Multi-objective invariants for the wirelength-aware layer.
//!
//! The composite objective is a post-pass over the exhaustive root
//! frontier, so it must not perturb the single-objective algorithm at
//! all: `alpha = 1.0` reproduces the seed optimizer byte-for-byte on
//! every paper benchmark, at every thread count, cached or not. The
//! property suite then pins both scalarizations (weighted sum and
//! epsilon constraint) to be deterministic across the same matrix —
//! the guarantee that lets `fpserved` serve composite results from a
//! shared cache.

use fp_optimizer::{
    random_netlist, CompositeObjective, OptimizeConfig, Optimizer, SharedBlockCache,
};
use fp_tree::generators::{self, Benchmark};
use fp_tree::ModuleLibrary;
use proptest::prelude::*;

const CACHE_BYTES: usize = 64 << 20;
const THREADS: [usize; 3] = [1, 2, 4];

fn paper_benches() -> Vec<(Benchmark, ModuleLibrary)> {
    [
        generators::fp1(),
        generators::fp2(),
        generators::fp3(),
        generators::fp4(),
    ]
    .into_iter()
    .map(|bench| {
        let lib = generators::module_library(&bench.tree, 4, 1);
        (bench, lib)
    })
    .collect()
}

/// `alpha = 1.0` must reproduce the area-only optimizer exactly —
/// same area, same root implementation, same assignment — on FP1–FP4
/// across 1/2/4 threads, cached and uncached.
#[test]
fn alpha_one_is_byte_identical_to_the_seed_optimizer() {
    for (bench, lib) in paper_benches() {
        let netlist = random_netlist(&lib, 30, 2);
        let bound = netlist.bind(&lib).expect("generated netlist binds");
        for threads in THREADS {
            let config = OptimizeConfig::default().with_threads(threads);
            let seed = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_best()
                .expect("seed optimizer solves");

            // Uncached.
            let multi = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_composite(&bound, CompositeObjective::weighted(1.0))
                .expect("composite solves");
            assert_eq!(seed.area, multi.outcome.area, "{} x{threads}", bench.name);
            assert_eq!(seed.root_impl, multi.outcome.root_impl);
            assert_eq!(seed.assignment, multi.outcome.assignment);

            // Cached, cold then warm.
            let cache = SharedBlockCache::new(CACHE_BYTES);
            for pass in ["cold", "warm"] {
                let cached = Optimizer::new(&bench.tree, &lib)
                    .config(&config)
                    .cache(&cache)
                    .run_composite(&bound, CompositeObjective::weighted(1.0))
                    .expect("cached composite solves");
                assert_eq!(
                    seed.assignment, cached.outcome.assignment,
                    "{} x{threads} {pass}",
                    bench.name
                );
                assert_eq!(seed.area, cached.outcome.area);
                assert_eq!(multi.hpwl, cached.hpwl);
            }
        }
    }
}

/// A run with a netlist must not change what the *frontier* looks like:
/// the composite layer reads the same envelopes the seed run produces.
#[test]
fn composite_runs_leave_the_frontier_untouched() {
    for (bench, lib) in paper_benches() {
        let netlist = random_netlist(&lib, 25, 5);
        let bound = netlist.bind(&lib).expect("binds");
        let frontier = Optimizer::new(&bench.tree, &lib)
            .run_frontier()
            .expect("frontier solves");
        let pareto = Optimizer::new(&bench.tree, &lib)
            .run_pareto(&bound)
            .expect("pareto solves");
        assert_eq!(
            pareto.evaluated,
            frontier.envelopes().len(),
            "{}: the sweep walks the exhaustive root frontier",
            bench.name
        );
        for p in &pareto.front {
            assert_eq!(
                frontier.envelopes()[p.index].area(),
                p.area,
                "front points index into the frontier's envelope list"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Weighted-sum results are byte-identical across 1/2/4 threads and
    /// cached/uncached execution — alpha anywhere in [0, 1].
    #[test]
    fn weighted_sum_is_thread_and_cache_invariant(
        tree_seed in 0u64..40,
        leaves in 4usize..12,
        nets in 5usize..40,
        net_seed in 0u64..16,
        alpha_pct in 0u32..=100,
    ) {
        let bench = generators::random_floorplan(leaves, 0.5, tree_seed);
        let lib = generators::module_library(&bench.tree, 4, tree_seed);
        let netlist = random_netlist(&lib, nets, net_seed);
        let bound = netlist.bind(&lib).expect("binds");
        let objective = CompositeObjective::weighted(f64::from(alpha_pct) / 100.0);

        let reference = Optimizer::new(&bench.tree, &lib)
            .config(&OptimizeConfig::default().with_threads(1))
            .run_composite(&bound, objective)
            .expect("reference solves");
        for threads in THREADS {
            let config = OptimizeConfig::default().with_threads(threads);
            let plain = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_composite(&bound, objective)
                .expect("solves");
            prop_assert_eq!(&reference.outcome.assignment, &plain.outcome.assignment);
            prop_assert_eq!(reference.outcome.area, plain.outcome.area);
            prop_assert_eq!(reference.hpwl, plain.hpwl);
            prop_assert_eq!(reference.index, plain.index);

            let cache = SharedBlockCache::new(CACHE_BYTES);
            for _pass in 0..2 {
                let cached = Optimizer::new(&bench.tree, &lib)
                    .config(&config)
                    .cache(&cache)
                    .run_composite(&bound, objective)
                    .expect("cached solves");
                prop_assert_eq!(&reference.outcome.assignment, &cached.outcome.assignment);
                prop_assert_eq!(reference.hpwl, cached.hpwl);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Epsilon-constraint results are byte-identical across the same
    /// matrix, whether the budget is feasible or degrades gracefully.
    #[test]
    fn epsilon_constraint_is_thread_and_cache_invariant(
        tree_seed in 0u64..40,
        leaves in 4usize..12,
        nets in 5usize..40,
        net_seed in 0u64..16,
        budget_scale in 0u32..=8,
    ) {
        let bench = generators::random_floorplan(leaves, 0.5, tree_seed);
        let lib = generators::module_library(&bench.tree, 4, tree_seed);
        let netlist = random_netlist(&lib, nets, net_seed);
        let bound = netlist.bind(&lib).expect("binds");

        // Scale the budget off a baseline HPWL so cases hit both the
        // feasible and the infeasible (degrade-to-min-HPWL) paths.
        let baseline = Optimizer::new(&bench.tree, &lib)
            .run_composite(&bound, CompositeObjective::weighted(0.0))
            .expect("baseline solves")
            .hpwl;
        let budget = baseline * u128::from(budget_scale) / 4;
        let objective = CompositeObjective::epsilon(budget);

        let reference = Optimizer::new(&bench.tree, &lib)
            .config(&OptimizeConfig::default().with_threads(1))
            .run_composite(&bound, objective)
            .expect("reference solves");
        for threads in THREADS {
            let config = OptimizeConfig::default().with_threads(threads);
            let plain = Optimizer::new(&bench.tree, &lib)
                .config(&config)
                .run_composite(&bound, objective)
                .expect("solves");
            prop_assert_eq!(&reference.outcome.assignment, &plain.outcome.assignment);
            prop_assert_eq!(reference.hpwl, plain.hpwl);
            prop_assert_eq!(reference.index, plain.index);

            let cache = SharedBlockCache::new(CACHE_BYTES);
            for _pass in 0..2 {
                let cached = Optimizer::new(&bench.tree, &lib)
                    .config(&config)
                    .cache(&cache)
                    .run_composite(&bound, objective)
                    .expect("cached solves");
                prop_assert_eq!(&reference.outcome.assignment, &cached.outcome.assignment);
                prop_assert_eq!(reference.hpwl, cached.hpwl);
            }
        }
    }
}
