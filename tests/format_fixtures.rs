//! Malformed-input corpus for the `.fpt` parser.
//!
//! Each fixture under `tests/fixtures/malformed/` captures a distinct way
//! real inputs go wrong (truncation, arity violations, duplicate names,
//! degenerate sizes). The parser must reject every one with a precise
//! line/column diagnostic — and the `fpopt` CLI must map them all to the
//! documented "bad input" exit code 3.

use std::path::PathBuf;
use std::process::Command;

use fp_tree::format::parse_instance;

fn fixture(name: &str) -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/optimizer; fixtures live at the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/fixtures/malformed/{name}"))
}

fn load(name: &str) -> String {
    let path = fixture(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// `(fixture, expected line, expected column, message fragment)`.
/// Line 0 marks an end-of-input error; column 0 a line-only diagnostic.
const CORPUS: &[(&str, usize, usize, &str)] = &[
    ("truncated.fpt", 0, 0, "expected `)`"),
    (
        "bad_wheel_arity.fpt",
        5,
        7,
        "wheel needs exactly 5 children",
    ),
    ("duplicate_module.fpt", 4, 8, "duplicate module `cpu`"),
    ("zero_dimension.fpt", 3, 12, "zero dimension in `4x0`"),
];

#[test]
fn malformed_corpus_is_rejected_with_positions() {
    for &(name, line, col, needle) in CORPUS {
        let err = parse_instance(&load(name)).expect_err(name);
        assert_eq!((err.line, err.col), (line, col), "{name}: {err}");
        assert!(err.message.contains(needle), "{name}: {err}");
        // The rendered form carries the position for line-anchored errors.
        if line > 0 {
            assert!(err.to_string().contains(&format!("line {line}")), "{err}");
        } else {
            assert!(err.to_string().contains("end of input"), "{err}");
        }
    }
}

#[test]
fn fpopt_exits_3_on_every_malformed_fixture() {
    for &(name, ..) in CORPUS {
        let out = Command::new(env!("CARGO_BIN_EXE_fpopt"))
            .arg(fixture(name))
            .output()
            .expect("fpopt runs");
        assert_eq!(out.status.code(), Some(3), "{name}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("parse error"), "{name}: {stderr}");
    }
}

#[test]
fn fixing_the_fixture_makes_it_parse() {
    // Sanity check on the corpus itself: each failure is the *intended*
    // defect, not an unrelated typo — repairing the marked flaw yields a
    // valid instance.
    type Repair = (&'static str, fn(&str) -> String);
    let repaired: &[Repair] = &[
        ("truncated.fpt", |t| format!("{t} ram))\n")),
        ("bad_wheel_arity.fpt", |t| t.replace("a a a e", "a a a a e")),
        ("duplicate_module.fpt", |t| {
            t.replace("module cpu 3x4", "module gpu 3x4")
        }),
        ("zero_dimension.fpt", |t| t.replace("4x0", "4x1")),
    ];
    for (name, fix) in repaired {
        let text = fix(&load(name));
        assert!(parse_instance(&text).is_ok(), "{name} repair failed");
    }
}
