//! Regression tests for the `fpserved` poll(2) event loop: fragmented
//! request lines across many poll cycles, interleaved partial lines on
//! concurrent connections, many simultaneous peers on one loop thread,
//! flood-then-drain, and HTTP probes coexisting with JSON peers.
//!
//! `tests/fpserved_smoke.rs` pins the protocol behaviors; this file
//! pins the behaviors that only exist because the front end is a
//! single multiplexing loop rather than a thread per connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn fpserved() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fpserved"))
}

fn status_of(line: &str) -> u64 {
    line.split("\"status\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("no status in {line}"))
}

fn spawn_tcp_with(extra: &[&str]) -> (Child, String) {
    let mut child = fpserved()
        .args(["--tcp", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("fpserved spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("announce line") > 0,
            "stderr closed before the listen announcement"
        );
        if line.contains("listening on ") {
            let addr = line
                .rsplit("listening on ")
                .next()
                .expect("address")
                .trim()
                .to_owned();
            std::thread::spawn(move || {
                let mut sink = String::new();
                let _ = stderr.read_to_string(&mut sink);
            });
            break addr;
        }
    };
    (child, addr)
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout set");
    stream
}

fn shutdown_and_wait(mut child: Child, addr: &str) {
    let mut stream = connect(addr);
    stream
        .write_all(b"{\"method\": \"shutdown\"}\n")
        .expect("shutdown written");
    assert_eq!(child.wait().expect("exits").code(), Some(0), "clean drain");
}

/// A request dribbled in one byte at a time — dozens of poll cycles per
/// line — must accumulate into one request, not be answered per
/// fragment or dropped between cycles.
#[test]
fn byte_at_a_time_request_survives_many_poll_cycles() {
    let (child, addr) = spawn_tcp_with(&[]);
    let mut stream = connect(&addr);
    let request = b"{\"id\": 1, \"method\": \"optimize\", \"builtin\": \"fig1\", \"n\": 2}\n";
    for byte in request.iter() {
        stream.write_all(&[*byte]).expect("byte written");
        stream.flush().expect("byte flushed");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("response line");
    assert_eq!(status_of(&line), 0, "{line}");
    assert!(line.contains("\"area\":"), "{line}");
    assert!(line.contains("\"line\":1"), "one request, line 1: {line}");
    shutdown_and_wait(child, &addr);
}

/// Two connections trickling fragments in lockstep: the loop must keep
/// each connection's partial line in its own buffer — interleaving on
/// the wire must never interleave the parsed requests.
#[test]
fn interleaved_fragments_stay_per_connection() {
    let (child, addr) = spawn_tcp_with(&[]);
    let mut a = connect(&addr);
    let mut b = connect(&addr);
    let req_a = b"{\"id\": 11, \"method\": \"ping\"}\n" as &[u8];
    let req_b = b"{\"id\": 22, \"method\": \"ping\"}\n" as &[u8];
    let steps = req_a.len().max(req_b.len());
    for i in 0..steps {
        if let Some(byte) = req_a.get(i) {
            a.write_all(&[*byte]).expect("a byte");
            a.flush().expect("a flush");
        }
        if let Some(byte) = req_b.get(i) {
            b.write_all(&[*byte]).expect("b byte");
            b.flush().expect("b flush");
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for (stream, id) in [(&a, "11"), (&b, "22")] {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        assert_eq!(status_of(&line), 0, "{line}");
        assert!(line.contains(&format!("\"id\":{id},")), "{line}");
        assert!(line.contains("\"pong\":true"), "{line}");
    }
    shutdown_and_wait(child, &addr);
}

/// Twenty simultaneous peers on one loop thread: every connection is
/// served, and each sees its own 1-based line numbering — the loop
/// never mixes up per-connection state.
#[test]
fn twenty_concurrent_connections_multiplex_on_one_loop() {
    let (child, addr) = spawn_tcp_with(&[]);
    let mut streams: Vec<TcpStream> = (0..20).map(|_| connect(&addr)).collect();
    for (i, stream) in streams.iter_mut().enumerate() {
        stream
            .write_all(format!("{{\"id\": {i}, \"method\": \"ping\"}}\n").as_bytes())
            .expect("request written");
    }
    for (i, stream) in streams.iter().enumerate() {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        assert_eq!(status_of(&line), 0, "{line}");
        assert!(line.contains(&format!("\"id\":{i},")), "{line}");
        assert!(line.contains("\"line\":1"), "per-connection lines: {line}");
    }
    shutdown_and_wait(child, &addr);
}

/// A 30-deep pipelined flood against a 2-slot server: every request is
/// answered exactly once (served or shed with status 7), the drain ack
/// arrives, and the server exits 0 — no lost lines, no hang.
#[test]
fn pipelined_flood_answers_every_line_and_drains() {
    let (mut child, addr) = spawn_tcp_with(&["--max-inflight", "2"]);
    let mut stream = connect(&addr);
    let mut requests = String::new();
    for id in 1..=30 {
        requests.push_str(&format!(
            "{{\"id\": {id}, \"method\": \"optimize\", \"builtin\": \"fp1\", \"n\": 4, \"seed\": {id}}}\n"
        ));
    }
    requests.push_str("{\"id\": 99, \"method\": \"shutdown\"}\n");
    stream
        .write_all(requests.as_bytes())
        .expect("flood written");

    let mut all = String::new();
    BufReader::new(stream.try_clone().expect("clone"))
        .read_to_string(&mut all)
        .expect("drain to EOF");
    let lines: Vec<&str> = all.lines().collect();
    assert_eq!(lines.len(), 31, "every line answered once:\n{all}");
    let served = lines
        .iter()
        .filter(|l| status_of(l) == 0 && l.contains("\"area\":"))
        .count();
    let shed = lines.iter().filter(|l| status_of(l) == 7).count();
    assert_eq!(served + shed, 30, "optimizes served xor shed:\n{all}");
    assert!(served >= 1, "at least the admitted requests complete");
    assert!(all.contains("\"draining\":true"), "{all}");
    assert_eq!(child.wait().expect("exits").code(), Some(0));
}

/// An HTTP `GET /metrics` probe is served while JSON peers are live on
/// the same loop, and the exposition reports the executor gauges the
/// event loop submits into.
#[test]
fn http_probe_coexists_with_json_peers_and_reports_executor() {
    let (child, addr) = spawn_tcp_with(&[]);
    let mut json_peer = connect(&addr);
    json_peer
        .write_all(b"{\"id\": 1, \"method\": \"optimize\", \"builtin\": \"fp1\", \"n\": 4}\n")
        .expect("request written");

    let mut probe = connect(&addr);
    probe
        .write_all(b"GET /metrics HTTP/1.1\r\n\r\n")
        .expect("probe written");
    let mut exposition = String::new();
    BufReader::new(probe)
        .read_to_string(&mut exposition)
        .expect("exposition read");
    assert!(exposition.starts_with("HTTP/1.1 200 OK"), "{exposition}");
    assert!(exposition.contains("fp_exec_threads 2"), "{exposition}");
    assert!(
        exposition.contains("fp_exec_completed_total"),
        "{exposition}"
    );
    assert!(
        exposition.contains("fp_server_request_duration_seconds"),
        "{exposition}"
    );

    // The JSON peer was not disturbed by the probe.
    let mut reader = BufReader::new(json_peer.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("response line");
    assert_eq!(status_of(&line), 0, "{line}");
    shutdown_and_wait(child, &addr);
}

/// The `anneal` method end to end over the loop: chains fan out onto
/// the same executor the request runs on, and the reply carries the
/// multi-start diagnostics.
#[test]
fn anneal_request_runs_chains_on_the_shared_executor() {
    let (child, addr) = spawn_tcp_with(&[]);
    let mut stream = connect(&addr);
    stream
        .write_all(
            b"{\"id\": 1, \"method\": \"anneal\", \"builtin\": \"fp1\", \"chains\": 3, \"moves\": 60}\n",
        )
        .expect("request written");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("response line");
    assert_eq!(status_of(&line), 0, "{line}");
    assert!(line.contains("\"chains\":3"), "{line}");
    assert!(line.contains("\"chain_areas\":["), "{line}");
    assert!(line.contains("\"best_chain\":"), "{line}");
    assert!(line.contains("\"expression\":"), "{line}");

    // Determinism across the wire: a repeat request answers with the
    // same area and expression.
    stream
        .write_all(
            b"{\"id\": 2, \"method\": \"anneal\", \"builtin\": \"fp1\", \"chains\": 3, \"moves\": 60}\n",
        )
        .expect("repeat written");
    let mut repeat = String::new();
    reader.read_line(&mut repeat).expect("repeat line");
    let field = |l: &str, key: &str| {
        l.split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .map(str::to_owned)
            .unwrap_or_else(|| panic!("no {key} in {l}"))
    };
    assert_eq!(field(&line, "area"), field(&repeat, "area"));
    assert_eq!(field(&line, "best_chain"), field(&repeat, "best_chain"));
    shutdown_and_wait(child, &addr);
}
