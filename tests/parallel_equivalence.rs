//! Property tests pinning the `--parallel` L-reduction to the serial
//! path, bit for bit: same non-redundant frontier, same
//! `DegradationEvent` sequence — on clean runs and on runs rescued by
//! the governor's ladder. This equivalence is what lets the block cache
//! share one address space across both paths (see
//! `fp_optimizer::cache`): a block committed by a serial run may be
//! reconstituted by a parallel one and vice versa.

use fp_optimizer::{Frontier, OptError, OptimizeConfig, Optimizer, RunOutcome};
use fp_select::LReductionPolicy;
use fp_tree::generators;
use fp_tree::{FloorplanTree, ModuleLibrary};
use proptest::prelude::*;

/// Facade shorthand keeping this suite's call sites compact.
fn optimize_frontier(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<Frontier, OptError> {
    Optimizer::new(tree, library).config(config).run_frontier()
}

/// Facade shorthand for the report-carrying runs.
fn optimize_report(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<RunOutcome, OptError> {
    Optimizer::new(tree, library).config(config).run()
}

fn config(k1: usize, k2: usize, theta: f64, parallel: bool) -> OptimizeConfig {
    OptimizeConfig::default()
        .with_r_selection(k1)
        .with_l_selection(
            LReductionPolicy::new(k2)
                .with_theta(theta)
                .with_parallel(parallel),
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Clean runs: serial and parallel L-reduction yield byte-identical
    /// frontiers and identical degradation sequences.
    #[test]
    fn parallel_l_reduction_is_bit_equal_to_serial(
        tree_seed in 0u64..60,
        lib_seed in 0u64..8,
        leaves in 4usize..14,
        k1 in 4usize..24,
        k2 in 6usize..40,
        theta_pct in 40u32..=100,
    ) {
        let bench = generators::random_floorplan(leaves, 0.6, tree_seed);
        let lib = generators::module_library(&bench.tree, 5, lib_seed);
        let theta = f64::from(theta_pct) / 100.0;

        let serial = optimize_frontier(&bench.tree, &lib, &config(k1, k2, theta, false))
            .expect("serial run solves");
        let parallel = optimize_frontier(&bench.tree, &lib, &config(k1, k2, theta, true))
            .expect("parallel run solves");

        prop_assert_eq!(serial.envelopes(), parallel.envelopes());
        prop_assert_eq!(
            &serial.stats().degradations,
            &parallel.stats().degradations
        );
        prop_assert_eq!(serial.stats().generated, parallel.stats().generated);
        prop_assert_eq!(serial.stats().peak_impls, parallel.stats().peak_impls);
        // The traced-back optimum agrees too (same list, same order).
        prop_assert_eq!(serial.outcome(0).assignment, parallel.outcome(0).assignment);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Rescued runs: when a tight budget sends both paths down the
    /// rescue ladder, they degrade identically — same event sequence,
    /// same final frontier.
    #[test]
    fn parallel_rescue_ladder_is_bit_equal_to_serial(
        tree_seed in 0u64..40,
        lib_seed in 0u64..6,
        leaves in 5usize..12,
    ) {
        let bench = generators::random_floorplan(leaves, 0.6, tree_seed);
        let lib = generators::module_library(&bench.tree, 5, lib_seed);
        let plain = optimize_frontier(&bench.tree, &lib, &OptimizeConfig::default())
            .expect("plain run solves");
        let budget = (plain.stats().peak_impls * 2 / 3).max(1);

        let tight = |parallel: bool| {
            OptimizeConfig::default()
                .with_l_selection(LReductionPolicy::new(64).with_parallel(parallel))
                .with_memory_limit(Some(budget))
                .with_auto_rescue(true)
        };
        let serial = optimize_report(&bench.tree, &lib, &tight(false));
        let parallel = optimize_report(&bench.tree, &lib, &tight(true));

        match (serial, parallel) {
            (Ok(s), Ok(p)) => {
                prop_assert_eq!(s.rescued, p.rescued);
                prop_assert_eq!(s.outcome.area, p.outcome.area);
                prop_assert_eq!(
                    &s.outcome.stats.degradations,
                    &p.outcome.stats.degradations
                );
                prop_assert_eq!(s.outcome.assignment, p.outcome.assignment);
            }
            // The ladder may bottom out on tiny budgets — but then it
            // must bottom out identically on both paths.
            (Err(se), Err(pe)) => prop_assert_eq!(se.to_string(), pe.to_string()),
            (s, p) => prop_assert!(false, "paths diverged: {s:?} vs {p:?}"),
        }
    }
}
