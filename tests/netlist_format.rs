//! Malformed-input corpus for the `.fpn` netlist parser.
//!
//! Each fixture under `tests/fixtures/netlist/` captures a distinct way
//! real netlists go wrong (dangling pin references, pads off the die
//! boundary, duplicate nets, degenerate nets, malformed offsets). The
//! parser must reject every one with a precise line/column diagnostic —
//! and the `fpopt` CLI must map them all to the documented "bad input"
//! exit code 3.

use std::path::PathBuf;
use std::process::Command;

use fp_optimizer::{parse_netlist, random_netlist};
use fp_tree::generators;

fn fixture(name: &str) -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/optimizer; fixtures live at the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/fixtures/netlist/{name}"))
}

fn load(name: &str) -> String {
    let path = fixture(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// `(fixture, expected line, expected column, message fragment)`.
const CORPUS: &[(&str, usize, usize, &str)] = &[
    (
        "dangling_pin.fpn",
        3,
        16,
        "net `n0` references undeclared pin `cpu.data`",
    ),
    ("pad_off_boundary.fpn", 3, 9, "is not on the"),
    ("duplicate_net.fpn", 5, 5, "duplicate net `n0`"),
    ("empty_net.fpn", 3, 5, "net `empty` has 0 endpoint(s)"),
    (
        "pad_before_die.fpn",
        2,
        1,
        "`pad` requires a prior `die` directive",
    ),
    ("unknown_directive.fpn", 2, 1, "unknown directive `module`"),
    ("duplicate_pin.fpn", 3, 9, "duplicate pin `cpu.clk`"),
    (
        "bad_offsets.fpn",
        2,
        23,
        "expected `<dx>,<dy>`, found `3;4`",
    ),
    (
        "repeated_endpoint.fpn",
        4,
        13,
        "net `n0` lists endpoint `a.p0` twice",
    ),
    ("duplicate_die.fpn", 3, 1, "duplicate `die` directive"),
];

#[test]
fn malformed_corpus_is_rejected_with_positions() {
    for &(name, line, col, needle) in CORPUS {
        let err = parse_netlist(&load(name)).expect_err(name);
        assert_eq!((err.line, err.col), (line, col), "{name}: {err}");
        let rendered = err.to_string();
        assert!(rendered.contains(needle), "{name}: {rendered}");
        assert!(rendered.contains(&format!("line {line}")), "{rendered}");
        assert!(rendered.contains(&format!("column {col}")), "{rendered}");
    }
}

#[test]
fn fpopt_exits_3_on_every_malformed_netlist() {
    for &(name, ..) in CORPUS {
        let out = Command::new(env!("CARGO_BIN_EXE_fpopt"))
            .arg("@fp1")
            .arg("--netlist")
            .arg(fixture(name))
            .output()
            .expect("fpopt runs");
        assert_eq!(out.status.code(), Some(3), "{name}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("line"), "{name}: {stderr}");
    }
}

/// Generated netlists survive the writer → parser round trip, so the
/// `.fpn` fixtures and the `--nets` generator describe one format.
#[test]
fn generated_netlists_parse_back_identically() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 4, 1);
    for seed in 0..4 {
        let netlist = random_netlist(&lib, 20, seed);
        let text = fp_netlist::write_netlist(&netlist);
        let parsed = parse_netlist(&text).expect("generated netlists are valid .fpn");
        assert_eq!(netlist, parsed);
    }
}
