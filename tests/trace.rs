//! The observability layer end to end: event-stream integrity, the
//! JSON-lines wire format, summary/profile reconciliation against
//! `RunStats`, and the registry used by `fpserved`.

use fp_optimizer::{
    MetricsRegistry, OptimizeConfig, Optimizer, SharedBlockCache, TraceEvent, Tracer,
};
use fp_tree::generators;

/// Every record serializes as a flat one-line JSON object with the
/// envelope keys first, and the stream is time-ordered.
#[test]
fn jsonl_export_is_wellformed_and_ordered() {
    let bench = generators::fp2();
    let lib = generators::module_library(&bench.tree, 4, 3);
    let tracer = Tracer::new();
    Optimizer::new(&bench.tree, &lib)
        .config(&OptimizeConfig::default().with_r_selection(8))
        .tracer(&tracer)
        .run_best()
        .expect("solves");
    let trace = tracer.drain();
    assert!(trace.events.len() > 10, "a real run emits a real stream");
    assert_eq!(trace.dropped, 0);

    let mut buf: Vec<u8> = Vec::new();
    trace.write_jsonl(&mut buf).expect("in-memory write");
    let text = String::from_utf8(buf).expect("utf-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), trace.events.len());
    for line in &lines {
        assert!(line.starts_with("{\"t_ns\":"), "envelope first: {line}");
        assert!(line.ends_with('}'), "one object per line: {line}");
        assert!(line.contains("\"worker\":"), "worker key: {line}");
        assert!(line.contains("\"event\":\""), "event key: {line}");
        assert!(!line.contains('\n'));
    }
    let stamps: Vec<u64> = trace.events.iter().map(|r| r.t_ns).collect();
    assert!(
        stamps.windows(2).all(|w| w[0] <= w[1]),
        "drain sorts by time"
    );
}

/// The per-phase profile must reconcile with the engine's own
/// `RunStats`: the run and selection spans are stamped from the same
/// measurements, and the named phases never exceed the run span.
#[test]
fn profile_reconciles_with_run_stats() {
    for threads in [1usize, 2] {
        let bench = generators::fp2();
        let lib = generators::module_library(&bench.tree, 4, 3);
        let tracer = Tracer::new();
        let outcome = Optimizer::new(&bench.tree, &lib)
            .config(
                &OptimizeConfig::default()
                    .with_r_selection(8)
                    .with_threads(threads)
                    // Pin per-node scheduling: the default threshold
                    // would auto-serialize this paper-sized tree and the
                    // parallel span path would go untested.
                    .with_split_threshold(0),
            )
            .tracer(&tracer)
            .run_best()
            .expect("solves");
        let profile = tracer.drain().profile();

        let elapsed_ns = u64::try_from(outcome.stats.elapsed.as_nanos()).unwrap();
        let selection_ns = u64::try_from(outcome.stats.selection_time.as_nanos()).unwrap();
        assert_eq!(profile.run_ns, elapsed_ns, "run span is RunStats::elapsed");
        assert_eq!(
            profile.selection_ns, selection_ns,
            "selection span is RunStats::selection_time"
        );
        // Selection nests inside enumerate; enumerate inside run. On
        // parallel runs selection is summed across workers, so compare
        // the serial-nesting invariants only at one thread.
        if threads == 1 {
            assert!(profile.selection_ns <= profile.enumerate_ns);
            assert!(profile.enumerate_ns <= profile.run_ns);
            // Trace-back happens after the frontier run, so it is NOT
            // part of the run span — only restructure and enumerate
            // nest inside it.
            assert!(profile.restructure_ns + profile.enumerate_ns <= profile.run_ns);
        }
    }
}

/// Summary counters must agree with the engine's `RunStats` where the
/// two overlap: joins, cache traffic, and the run span.
#[test]
fn summary_counters_match_run_stats() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 4, 1);
    let cache = SharedBlockCache::new(16 << 20);

    let tracer = Tracer::new();
    let cold = Optimizer::new(&bench.tree, &lib)
        .config(&OptimizeConfig::default())
        .cache(&cache)
        .tracer(&tracer)
        .run_frontier()
        .expect("cold solves");
    let cold_summary = tracer.drain().summary();
    assert_eq!(cold_summary.cache_hits, cold.stats().cache_hits as u64);
    assert_eq!(cold_summary.cache_misses, cold.stats().cache_misses as u64);
    assert!(cold_summary.joins > 0);

    let warm = Optimizer::new(&bench.tree, &lib)
        .config(&OptimizeConfig::default())
        .cache(&cache)
        .tracer(&tracer)
        .run_frontier()
        .expect("warm solves");
    let warm_summary = tracer.drain().summary();
    assert_eq!(warm_summary.cache_hits, warm.stats().cache_hits as u64);
    assert_eq!(warm_summary.cache_misses, 0);
    assert_eq!(
        warm_summary.joins, 0,
        "a fully warm run reconstitutes, never rebuilds"
    );
}

/// Selection events attribute every solve to a kernel, and their solve
/// counts account for the engine's `r_reductions`/`l_reductions`.
#[test]
fn selection_events_attribute_solvers() {
    let bench = generators::fp2();
    let lib = generators::module_library(&bench.tree, 5, 2);
    let tracer = Tracer::new();
    let outcome = Optimizer::new(&bench.tree, &lib)
        .config(&OptimizeConfig::default().with_r_selection(6))
        .tracer(&tracer)
        .run_best()
        .expect("solves");
    assert!(outcome.stats.r_reductions > 0, "k1=6 must fire selection");

    let trace = tracer.drain();
    let mut selections = 0usize;
    let mut solves = 0u64;
    for record in &trace.events {
        if let TraceEvent::Selection {
            legacy,
            dense,
            monge,
            k,
            n,
            ..
        } = record.event
        {
            selections += 1;
            solves += u64::from(legacy) + u64::from(dense) + u64::from(monge);
            assert!(k > 0 && n > 0, "selection events carry the k/n context");
        }
    }
    assert_eq!(
        selections,
        outcome.stats.r_reductions + outcome.stats.l_reductions,
        "one selection event per reduction"
    );
    assert!(
        solves >= selections as u64,
        "each application solves at least once"
    );
}

/// A drained registry reproduces the sum of the absorbed summaries —
/// the invariant the `fpserved` metrics endpoint is built on.
#[test]
fn metrics_registry_sums_summaries() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 4, 1);
    let registry = MetricsRegistry::new();
    let mut expect_joins = 0u64;
    for _ in 0..3 {
        let tracer = Tracer::new();
        Optimizer::new(&bench.tree, &lib)
            .config(&OptimizeConfig::default())
            .tracer(&tracer)
            .run_best()
            .expect("solves");
        let summary = tracer.drain().summary();
        expect_joins += summary.joins;
        registry.absorb(&summary);
    }
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.runs, 3);
    assert_eq!(snapshot.totals.joins, expect_joins);
    let prom = registry.render_prometheus();
    assert!(prom.contains("fp_runs_total 3"));
    assert!(prom.contains(&format!("fp_joins_total {expect_joins}")));
    assert!(prom.contains("fp_run_duration_seconds_bucket"));
}

/// Draining resets the buffers: a second drain with no intervening run
/// is empty, and reuse across runs keeps streams disjoint.
#[test]
fn drain_resets_the_buffers() {
    let bench = generators::fp1();
    let lib = generators::module_library(&bench.tree, 3, 1);
    let tracer = Tracer::new();
    Optimizer::new(&bench.tree, &lib)
        .config(&OptimizeConfig::default())
        .tracer(&tracer)
        .run_best()
        .expect("solves");
    let first = tracer.drain();
    assert!(!first.events.is_empty());
    assert!(
        tracer.drain().events.is_empty(),
        "drain consumes the stream"
    );
}
