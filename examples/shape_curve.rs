//! Continuous shape curves (paper §6, concluding remarks): when modules
//! have *infinitely* many implementations along a continuous `w·h ≥ A`
//! curve, discretize each curve into many points and let the selection
//! algorithms keep the working set tractable.
//!
//! ```sh
//! cargo run --release -p fp-optimizer --example shape_curve
//! ```
//!
//! The experiment sweeps the discretization density: finer sampling gives
//! better floorplans but a bigger memory footprint; `R_Selection` keeps
//! the footprint flat while tracking the fine-grained quality.

use fp_optimizer::{OptimizeConfig, Optimizer};
use fp_tree::curve::ShapeCurve;
use fp_tree::{generators, Module, ModuleLibrary};

/// Samples `points` implementations of a soft module with a continuous
/// shape curve `w · h >= area`, aspect ratio within `[1/3, 3]`.
fn sample_curve(name: &str, area: u64, points: usize) -> Module {
    ShapeCurve::new(area, 3.0)
        .expect("valid curve")
        .sample(name, points)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // FP1: the wheel-of-wheels benchmark, with 25 shape-curve modules.
    let bench = generators::fp1();
    let areas: Vec<u64> = (0..25).map(|i| 80 + 37 * i).collect();

    println!("continuous shape-curve floorplanning on {}:", bench.name);
    println!(
        "{:>8} {:>12} {:>10} {:>14} {:>10}",
        "samples", "plain area", "plain M", "R+L(K2=250) A", "R+L M"
    );

    for points in [4usize, 8, 16, 32, 64] {
        let library: ModuleLibrary = areas
            .iter()
            .enumerate()
            .map(|(i, &a)| sample_curve(&format!("m{i}"), a, points))
            .collect();

        let plain = Optimizer::new(&bench.tree, &library)
            .config(&OptimizeConfig::default())
            .run_best()?;
        let reduced_cfg = OptimizeConfig::default()
            .with_r_selection(24)
            .with_l_selection(fp_select::LReductionPolicy::new(250).with_prefilter(4000));
        let reduced = Optimizer::new(&bench.tree, &library)
            .config(&reduced_cfg)
            .run_best()?;

        println!(
            "{:>8} {:>12} {:>10} {:>14} {:>10}",
            points, plain.area, plain.stats.peak_impls, reduced.area, reduced.stats.peak_impls
        );
    }

    println!(
        "\nfiner curves approach the continuous optimum; the selection\n\
         algorithms keep the peak storage (M) bounded while staying within\n\
         a few percent of the plain result — the paper's §6 use case."
    );
    Ok(())
}
