//! Fixed-outline floorplanning: modern flows fix the die size up front
//! and ask whether the design fits — and with what slack.
//!
//! ```sh
//! cargo run --release -p fp-optimizer --example fixed_outline
//! ```
//!
//! The optimizer's root implementation list *is* the feasible-envelope
//! trade-off curve, so fixed-outline queries are a filter over it: this
//! example binary-searches the smallest square die that fits FP1, then
//! compares area- and half-perimeter-optimal floorplans inside it.

use fp_geom::Rect;
use fp_optimizer::{Objective, OptimizeConfig, Optimizer};
use fp_tree::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = generators::fp1();
    let library = generators::module_library(&bench.tree, 12, 11);

    // One enumeration gives the whole feasible-envelope frontier; every
    // fixed-outline/objective query below is answered from it without
    // re-running the optimizer.
    let frontier = Optimizer::new(&bench.tree, &library)
        .config(&OptimizeConfig::default())
        .run_frontier()?;
    let free = frontier.best(Objective::MinArea, None)?;
    println!(
        "unconstrained optimum: {} (area {}, half-perimeter {}, {} envelopes on the frontier)",
        free.root_impl,
        free.area,
        free.root_impl.half_perimeter(),
        frontier.envelopes().len(),
    );

    // Binary-search the smallest square outline that admits any solution.
    let fits = |side: u64| {
        frontier
            .best(Objective::MinArea, Some(Rect::new(side, side)))
            .is_ok()
    };
    let (mut lo, mut hi) = (1u64, free.root_impl.w.max(free.root_impl.h) * 2);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    println!("smallest feasible square die: {lo}x{lo}");

    // Inside that die, compare the two objectives.
    for (name, objective) in [
        ("min-area", Objective::MinArea),
        ("min-half-perimeter", Objective::MinHalfPerimeter),
    ] {
        let out = frontier.best(objective, Some(Rect::new(lo, lo)))?;
        let layout = fp_tree::layout::realize(&bench.tree, &library, &out.assignment)?;
        assert_eq!(layout.validate(), None);
        println!(
            "  {name:<18}: {} area {} hp {} dead-space {:.1}%",
            out.root_impl,
            out.area,
            out.root_impl.half_perimeter(),
            100.0 * layout.dead_space() as f64 / layout.area() as f64,
        );
    }
    Ok(())
}
