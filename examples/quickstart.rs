//! Quickstart: build a small floorplan, optimize its area, and print the
//! resulting layout.
//!
//! ```sh
//! cargo run -p fp-optimizer --example quickstart
//! ```
//!
//! This walks the full pipeline of the library on a Figure-1 style
//! floorplan: a hand-built topology plus a hand-built module library, the
//! optimal bottom-up area optimization, solution trace-back, and physical
//! realization of the chosen implementations.

use fp_geom::Rect;
use fp_optimizer::{OptimizeConfig, Optimizer};
use fp_tree::layout::realize;
use fp_tree::{CutDir, FloorplanTree, Module, ModuleLibrary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Topology (paper Figure 1 flavour): a two-module row with a
    // three-module row stacked on top of it (horizontal slices stack
    // children bottom-to-top).
    //
    //      +---+----+----+
    //      |io | ctl|dsp |
    //      +---+--+-+----+
    //      | cpu  | sram |
    //      +------+------+
    let mut tree = FloorplanTree::new();
    let cpu = tree.leaf(0);
    let sram = tree.leaf(1);
    let top = tree.slice(CutDir::Vertical, vec![cpu, sram]);
    let io = tree.leaf(2);
    let ctl = tree.leaf(3);
    let dsp = tree.leaf(4);
    let bottom = tree.slice(CutDir::Vertical, vec![io, ctl, dsp]);
    tree.slice(CutDir::Horizontal, vec![top, bottom]);

    // Each module offers a few alternative implementations (soft macros).
    let library: ModuleLibrary = [
        Module::new(
            "cpu",
            vec![Rect::new(12, 6), Rect::new(9, 8), Rect::new(6, 12)],
        ),
        Module::new("sram", vec![Rect::new(10, 5), Rect::new(5, 10)]),
        Module::new(
            "io",
            vec![Rect::new(8, 3), Rect::new(4, 6), Rect::new(3, 8)],
        ),
        Module::new("ctl", vec![Rect::new(6, 4), Rect::new(4, 6)]),
        Module::new(
            "dsp",
            vec![Rect::new(9, 4), Rect::new(6, 6), Rect::new(4, 9)],
        ),
    ]
    .into_iter()
    .collect();

    // Optimize: select one implementation per module so the enveloping
    // rectangle's area is minimal with the topology unchanged.
    let outcome = Optimizer::new(&tree, &library)
        .config(&OptimizeConfig::default())
        .run_best()?;
    println!(
        "optimal floorplan: {} (area {})",
        outcome.root_impl, outcome.area
    );
    println!(
        "peak implementations stored: {}  (generated {})",
        outcome.stats.peak_impls, outcome.stats.generated
    );

    // Show which implementation each module uses.
    let leaf_names = ["cpu", "sram", "io", "ctl", "dsp"];
    for (name, &choice) in leaf_names.iter().zip(&outcome.assignment.choices) {
        println!("  {name:<5} -> implementation #{choice}");
    }

    // Realize and verify the physical layout.
    let layout = realize(&tree, &library, &outcome.assignment)?;
    assert_eq!(layout.area(), outcome.area);
    assert_eq!(layout.validate(), None);
    println!(
        "\nlayout ({} dead space of {} total):\n{}",
        layout.dead_space(),
        layout.area(),
        layout.to_ascii(48)
    );
    Ok(())
}
