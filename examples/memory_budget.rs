//! The paper's headline scenario: a floorplan too large for plain
//! enumeration, rescued by implementation selection.
//!
//! ```sh
//! cargo run --release -p fp-optimizer --example memory_budget
//! ```
//!
//! We run the FP1 benchmark (a wheel of wheels, the structure that makes
//! L-shaped block implementation sets explode) with a deliberately small
//! implementation budget, the way the paper's SPARCstation bounded [9]:
//!
//! 1. the plain optimal algorithm exhausts the budget and dies;
//! 2. `R_Selection` alone cuts the peak but may still overflow;
//! 3. `R_Selection` + `L_Selection` completes within budget, with a final
//!    area within a few percent of the (budget-free) optimum;
//! 4. the *rescue ladder* reaches the same end automatically: the plain
//!    run trips, the engine tightens the policies itself and retries,
//!    reporting every degradation it applied.

use fp_optimizer::{OptError, OptimizeConfig, Optimizer};
use fp_select::LReductionPolicy;
use fp_tree::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = generators::fp1();
    let library = generators::module_library(&bench.tree, 16, 20260706);
    println!(
        "benchmark {}: {} modules, {} implementations each",
        bench.name,
        bench.tree.module_count(),
        16
    );

    // Ground truth: the unconstrained optimum (fits comfortably here).
    let optimum = Optimizer::new(&bench.tree, &library)
        .config(&OptimizeConfig::default())
        .run_best()?;
    println!(
        "\nunconstrained optimum: area {} (peak storage {})",
        optimum.area, optimum.stats.peak_impls
    );

    // Emulate a small machine.
    let budget = optimum.stats.peak_impls / 3;
    println!("\nnow pretend the machine only fits {budget} implementations:");

    let plain = OptimizeConfig::default().with_memory_limit(Some(budget));
    match Optimizer::new(&bench.tree, &library)
        .config(&plain)
        .run_best()
    {
        Err(OptError::OutOfMemory { live, .. }) => {
            println!("  plain [9]                    : FAILED (out of memory at {live} live)");
        }
        Ok(out) => println!("  plain [9]                    : area {}", out.area),
        Err(e) => return Err(e.into()),
    }

    let with_r = plain.clone().with_r_selection(12);
    match Optimizer::new(&bench.tree, &library)
        .config(&with_r)
        .run_best()
    {
        Ok(out) => println!(
            "  [9] + R_Selection (K1=12)    : area {} (+{:.2}% vs optimum, peak {})",
            out.area,
            excess(out.area, optimum.area),
            out.stats.peak_impls
        ),
        Err(OptError::OutOfMemory { live, .. }) => {
            println!("  [9] + R_Selection (K1=12)    : FAILED (out of memory at {live} live)");
        }
        Err(e) => return Err(e.into()),
    }

    let with_rl = with_r.clone().with_l_selection(
        LReductionPolicy::new(200)
            .with_theta(0.9)
            .with_prefilter(4000),
    );
    let out = Optimizer::new(&bench.tree, &library)
        .config(&with_rl)
        .run_best()?;
    println!(
        "  [9] + R + L_Selection (K2=200): area {} (+{:.2}% vs optimum, peak {})",
        out.area,
        excess(out.area, optimum.area),
        out.stats.peak_impls
    );
    println!(
        "    reductions fired: {} rectangular, {} L-shaped; {} candidates generated",
        out.stats.r_reductions, out.stats.l_reductions, out.stats.generated
    );

    // The rescued solution is still physically realizable.
    let layout = fp_tree::layout::realize(&bench.tree, &library, &out.assignment)?;
    assert_eq!(layout.area(), out.area);
    assert_eq!(layout.validate(), None);
    println!(
        "\nrescued layout verified: {} modules placed without overlap",
        layout.placed.len()
    );

    // Act 4: no hand-tuned policies at all — the rescue ladder degrades
    // the failing run by itself and reports what it gave up.
    println!("\nsame budget, no policies, --auto-rescue style:");
    let auto = OptimizeConfig::default()
        .with_memory_limit(Some(budget))
        .with_auto_rescue(true);
    let report = Optimizer::new(&bench.tree, &library).config(&auto).run()?;
    for event in report.degradations() {
        println!("  rescue: {event}");
    }
    let rescued = &report.outcome;
    println!(
        "  auto-rescued: area {} (+{:.2}% vs optimum, peak {})",
        rescued.area,
        excess(rescued.area, optimum.area),
        rescued.stats.peak_impls
    );
    let layout = fp_tree::layout::realize(&bench.tree, &library, &rescued.assignment)?;
    assert_eq!(layout.validate(), None);
    println!(
        "  auto-rescued layout verified: {} modules placed without overlap",
        layout.placed.len()
    );
    Ok(())
}

fn excess(area: u128, optimum: u128) -> f64 {
    100.0 * (area as f64 - optimum as f64) / optimum as f64
}
