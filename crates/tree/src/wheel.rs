//! Closed-form wheel geometry.
//!
//! A **wheel** is the order-5 non-slicing floorplan pattern: four arms
//! spiralling around a centre room (see [`crate::NodeKind`] for the child
//! naming `[A, B, C, D, E]`). Given the realized sizes of the five
//! children, the minimal enveloping rectangle and the four cut positions
//! have closed forms; this module provides them as the ground truth that
//! the optimizer's incremental L-shape joins must reproduce, and that the
//! layout realizer uses to place children.
//!
//! For the clockwise wheel with cuts `x1 < x2` (vertical) and `y1 < y2`
//! (horizontal):
//!
//! ```text
//! A = [0, x1] × [y1, H]      (left column)
//! B = [x1, W] × [y2, H]      (top strip)
//! C = [x2, W] × [0, y2]      (right column)
//! D = [0, x2] × [0, y1]      (bottom strip)
//! E = [x1, x2] × [y1, y2]    (centre)
//! ```
//!
//! The region constraints (`region ⊇ child`) give the minimal cuts
//!
//! ```text
//! x1 = w_A                     y1 = h_D
//! x2 = max(w_A + w_E, w_D)     y2 = max(h_D + h_E, h_C)
//! W  = max(x1 + w_B, x2 + w_C) H  = max(y1 + h_A, y2 + h_B)
//! ```

use fp_geom::{Coord, Rect};

use crate::Chirality;

/// The realized cut positions of a wheel inside its envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelCuts {
    /// Left vertical cut.
    pub x1: Coord,
    /// Right vertical cut (`x1 <= x2`).
    pub x2: Coord,
    /// Lower horizontal cut.
    pub y1: Coord,
    /// Upper horizontal cut (`y1 <= y2`).
    pub y2: Coord,
    /// The minimal envelope for the given children.
    pub envelope: Rect,
}

/// The minimal cuts and envelope of a **clockwise** wheel whose five
/// children realize the sizes `[a, b, c, d, e]`.
///
/// Counterclockwise wheels are mirror images: sizes are unchanged, so
/// [`min_envelope`] is chirality-independent, and the layout realizer
/// mirrors the placement instead.
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
/// use fp_tree::wheel::cuts;
///
/// // Five unit squares cannot tile a pinwheel without slack: the minimal
/// // envelope is 2x2... let's see: x1=1, x2=max(1+1,1)=2, y1=1,
/// // y2=max(1+1,1)=2, W=max(1+1,2+1)=3, H=max(1+1,2+1)=3.
/// let unit = Rect::new(1, 1);
/// let c = cuts([unit; 5]);
/// assert_eq!(c.envelope, Rect::new(3, 3));
/// ```
#[must_use]
pub fn cuts(children: [Rect; 5]) -> WheelCuts {
    let [a, b, c, d, e] = children;
    let x1 = a.w;
    let x2 = (a.w + e.w).max(d.w);
    let y1 = d.h;
    let y2 = (d.h + e.h).max(c.h);
    let w = (x1 + b.w).max(x2 + c.w);
    let h = (y1 + a.h).max(y2 + b.h);
    WheelCuts {
        x1,
        x2,
        y1,
        y2,
        envelope: Rect::new(w, h),
    }
}

/// The minimal enveloping rectangle of a wheel with the given child sizes
/// (chirality-independent).
#[must_use]
pub fn min_envelope(children: [Rect; 5]) -> Rect {
    cuts(children).envelope
}

/// The five child regions of a wheel realized inside `envelope`
/// (which must dominate the minimal envelope), in `[A, B, C, D, E]` order,
/// as `(x, y, w, h)` regions.
///
/// For [`Chirality::Counterclockwise`] the clockwise placement is mirrored
/// about the vertical axis.
///
/// # Panics
///
/// Panics if `envelope` is smaller than the minimal envelope.
#[must_use]
pub fn regions(
    children: [Rect; 5],
    chirality: Chirality,
    envelope: Rect,
) -> [(Coord, Coord, Rect); 5] {
    let WheelCuts {
        x1,
        x2,
        y1,
        y2,
        envelope: min,
    } = cuts(children);
    assert!(
        envelope.dominates(min),
        "envelope {envelope} smaller than the minimal wheel envelope {min}",
    );
    let (w, h) = (envelope.w, envelope.h);
    let cw = [
        (0, y1, Rect::new(x1, h - y1)),        // A: left column
        (x1, y2, Rect::new(w - x1, h - y2)),   // B: top strip
        (x2, 0, Rect::new(w - x2, y2)),        // C: right column
        (0, 0, Rect::new(x2, y1)),             // D: bottom strip
        (x1, y1, Rect::new(x2 - x1, y2 - y1)), // E: centre
    ];
    match chirality {
        Chirality::Clockwise => cw,
        Chirality::Counterclockwise => cw.map(|(x, y, r)| (w - x - r.w, y, r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::{first_overlap, PlacedRect, Point};
    use proptest::prelude::*;

    #[test]
    fn classic_pinwheel_of_dominoes() {
        // Four 2x1 dominoes around a 1x1 centre tile a 3x3 square exactly.
        let children = [
            Rect::new(1, 2), // A: left column, tall
            Rect::new(2, 1), // B: top strip, wide
            Rect::new(1, 2), // C: right column, tall
            Rect::new(2, 1), // D: bottom strip, wide
            Rect::new(1, 1), // E: centre
        ];
        let c = cuts(children);
        assert_eq!(c.envelope, Rect::new(3, 3));
        assert_eq!((c.x1, c.x2, c.y1, c.y2), (1, 2, 1, 2));
    }

    #[test]
    fn regions_tile_exactly_when_tight() {
        let children = [
            Rect::new(1, 2),
            Rect::new(2, 1),
            Rect::new(1, 2),
            Rect::new(2, 1),
            Rect::new(1, 1),
        ];
        for chirality in [Chirality::Clockwise, Chirality::Counterclockwise] {
            let regs = regions(children, chirality, Rect::new(3, 3));
            let placed: Vec<PlacedRect> = regs
                .iter()
                .map(|&(x, y, r)| PlacedRect::new(Point::new(x, y), r))
                .collect();
            assert_eq!(first_overlap(&placed), None, "{chirality:?}");
            let total: u128 = placed.iter().map(PlacedRect::area).sum();
            assert_eq!(total, 9, "{chirality:?}");
            // Children fit in their regions.
            for (i, &(_, _, r)) in regs.iter().enumerate() {
                assert!(children[i].fits_in(r), "{chirality:?} child {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "smaller than the minimal wheel envelope")]
    fn regions_reject_small_envelope() {
        let unit = Rect::new(1, 1);
        let _ = regions([unit; 5], Chirality::Clockwise, Rect::new(2, 2));
    }

    fn arb_children() -> impl Strategy<Value = [Rect; 5]> {
        proptest::array::uniform5((1u64..12, 1u64..12).prop_map(|(w, h)| Rect::new(w, h)))
    }

    proptest! {
        /// The computed regions never overlap, always contain their child,
        /// and always fill the envelope structure (region areas sum to the
        /// envelope area).
        #[test]
        fn regions_are_a_partition(children in arb_children(),
                                   pad_w in 0u64..5, pad_h in 0u64..5,
                                   ccw in proptest::bool::ANY) {
            let chirality = if ccw { Chirality::Counterclockwise } else { Chirality::Clockwise };
            let min = min_envelope(children);
            let envelope = Rect::new(min.w + pad_w, min.h + pad_h);
            let regs = regions(children, chirality, envelope);
            let placed: Vec<PlacedRect> =
                regs.iter().map(|&(x, y, r)| PlacedRect::new(Point::new(x, y), r)).collect();
            prop_assert_eq!(first_overlap(&placed), None);
            let total: u128 = placed.iter().map(PlacedRect::area).sum();
            prop_assert_eq!(total, envelope.area());
            for (i, &(x, y, r)) in regs.iter().enumerate() {
                prop_assert!(children[i].fits_in(r), "child {} does not fit", i);
                prop_assert!(x + r.w <= envelope.w && y + r.h <= envelope.h);
            }
        }

        /// The minimal envelope is monotone in every child dimension.
        #[test]
        fn envelope_monotone(children in arb_children(), idx in 0usize..5,
                             dw in 0u64..4, dh in 0u64..4) {
            let base = min_envelope(children);
            let mut grown = children;
            grown[idx] = Rect::new(grown[idx].w + dw, grown[idx].h + dh);
            prop_assert!(min_envelope(grown).dominates(base));
        }

        /// No child implementation combination can produce an envelope
        /// smaller than any single child demands.
        #[test]
        fn envelope_contains_children(children in arb_children()) {
            let env = min_envelope(children);
            for (i, c) in children.iter().enumerate() {
                prop_assert!(env.w >= c.w && env.h >= c.h, "child {}", i);
            }
        }
    }
}
