//! Canonical content fingerprints of restructured sub-floorplans.
//!
//! A block of the binary tree `T'` is fully determined — up to the
//! optimizer's deterministic enumeration — by its *content*: the module
//! implementation lists at its leaves, the combining operations along the
//! way (cut type for slice joins, stage and arity for wheel joins), and
//! the selection policies in force. This module assigns every binary node
//! a 128-bit fingerprint over exactly that content, computed bottom-up
//! from the child fingerprints:
//!
//! * **leaf** — `H(salt, LEAF, module implementation list)`
//! * **join** — `H(salt, JOIN, op code, wheel arity, fp(left), fp(right))`
//!
//! The `salt` is the caller's policy/limit fingerprint (the optimizer
//! hashes its selection configuration into it), so the same subtree under
//! different policies never shares an address. Two subtrees share a
//! fingerprint iff their canonical content is identical, which is what
//! makes the fingerprint usable as a content address for a cross-run
//! memo cache: mutate one module and only the leaf and its root-path
//! ancestors change address, so every sibling subtree is served from
//! cache.

use fp_memo::{Fingerprint, Fingerprinter};
use fp_shape::combine::Compose;

use crate::restructure::{BinNode, BinOp, BinaryTree};
use crate::{Module, ModuleLibrary};

/// Bumped whenever the canonical encoding changes, so stale cache
/// content from an older scheme can never alias a current address.
pub const FINGERPRINT_VERSION: u64 = 1;

/// Domain tags keeping leaves, joins, and absent modules disjoint.
const TAG_LEAF: u64 = 0x4c45_4146; // "LEAF"
const TAG_JOIN: u64 = 0x4a4f_494e; // "JOIN"
const TAG_MISSING: u64 = 0x4d49_5353; // "MISS"
/// Separates a module's staircase section from its rect list; written
/// only when the module actually has staircases (see
/// [`module_fingerprint`]).
const TAG_STAIRS: u64 = 0x5354_4152; // "STAR"

/// The order of every wheel template in this codebase (the smallest
/// non-slicing pattern); encoded into wheel-join fingerprints so a future
/// higher-order template cannot alias today's addresses.
const WHEEL_ARITY: u64 = 5;

/// Stable code of a combining operation.
fn op_code(op: BinOp) -> u64 {
    match op {
        BinOp::Slice(Compose::Beside) => 1,
        BinOp::Slice(Compose::Stack) => 2,
        BinOp::WheelS1 => 3,
        BinOp::WheelS2 => 4,
        BinOp::WheelS3 => 5,
        BinOp::WheelS4 => 6,
    }
}

/// The content fingerprint of one module's implementation list.
///
/// Only the list participates — the module's *name* does not influence
/// optimization results, so renaming a module must not invalidate cached
/// subtree results built from it.
#[must_use]
pub fn module_fingerprint(module: &Module) -> Fingerprint {
    let mut h = Fingerprinter::new();
    h.write_u64(FINGERPRINT_VERSION);
    let list = module.implementations();
    h.write_usize(list.len());
    for r in list.iter() {
        h.write_u64(r.w);
        h.write_u64(r.h);
    }
    // Staircase geometry participates only when present, so classic
    // rectangular modules keep the exact fingerprints (and thus cache
    // addresses) they had before staircases existed.
    if !module.staircases().is_empty() {
        h.write_u64(TAG_STAIRS);
        h.write_usize(module.staircases().len());
        for s in module.staircases() {
            h.write_usize(s.teeth());
            for &(w, ht) in s.corners() {
                h.write_u64(w);
                h.write_u64(ht);
            }
        }
    }
    h.finish()
}

/// Computes the canonical fingerprint of every node of `bin`, in the
/// arena's bottom-up order (index `i` of the result is node `i`'s
/// fingerprint; the last entry addresses the whole floorplan).
///
/// `salt` is mixed into every node; pass the fingerprint of whatever
/// run configuration affects block content (selection policies, pruning
/// thresholds) so differently configured runs never share addresses.
///
/// A leaf referencing a module absent from `library` is fingerprinted
/// under a distinct domain tag rather than reported as an error — the
/// optimizer validates the library before any fingerprint is consulted.
#[must_use]
pub fn block_fingerprints(
    bin: &BinaryTree,
    library: &ModuleLibrary,
    salt: Fingerprint,
) -> Vec<Fingerprint> {
    let mut fps: Vec<Fingerprint> = Vec::with_capacity(bin.len());
    for node in bin.nodes() {
        let fp = match node {
            BinNode::Leaf { module, .. } => match library.get(*module) {
                Some(m) => {
                    let mut h = Fingerprinter::new();
                    h.write_u64(FINGERPRINT_VERSION);
                    h.write_u128(salt);
                    h.write_u64(TAG_LEAF);
                    h.write_u128(module_fingerprint(m));
                    h.finish()
                }
                None => {
                    let mut h = Fingerprinter::new();
                    h.write_u64(FINGERPRINT_VERSION);
                    h.write_u128(salt);
                    h.write_u64(TAG_MISSING);
                    h.write_usize(*module);
                    h.finish()
                }
            },
            BinNode::Join { op, left, right } => {
                let mut h = Fingerprinter::new();
                h.write_u64(FINGERPRINT_VERSION);
                h.write_u128(salt);
                h.write_u64(TAG_JOIN);
                h.write_u64(op_code(*op));
                if op.produces_lshape() || matches!(op, BinOp::WheelS4) {
                    h.write_u64(WHEEL_ARITY);
                }
                h.write_u128(fps.get(*left).copied().unwrap_or_default());
                h.write_u128(fps.get(*right).copied().unwrap_or_default());
                h.finish()
            }
        };
        fps.push(fp);
    }
    fps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restructure::restructure;
    use crate::{generators, CutDir, FloorplanTree};
    use fp_geom::Rect;

    fn two_stack() -> FloorplanTree {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Horizontal, vec![a, b]);
        t
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 4, 7);
        let bin = restructure(&bench.tree).expect("valid");
        assert_eq!(
            block_fingerprints(&bin, &lib, 9),
            block_fingerprints(&bin, &lib, 9)
        );
    }

    #[test]
    fn salt_separates_policy_spaces() {
        let bench = generators::fig1();
        let lib = generators::module_library(&bench.tree, 4, 7);
        let bin = restructure(&bench.tree).expect("valid");
        let a = block_fingerprints(&bin, &lib, 1);
        let b = block_fingerprints(&bin, &lib, 2);
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn module_edit_changes_only_root_path_ancestors() {
        let bench = generators::fp1();
        let mut lib = generators::module_library(&bench.tree, 4, 7);
        let bin = restructure(&bench.tree).expect("valid");
        let before = block_fingerprints(&bin, &lib, 0);

        // Mutate module 0's list and recompute.
        let touched = 0usize;
        lib.set(
            touched,
            Module::new("m0", vec![Rect::new(13, 11), Rect::new(7, 17)]),
        )
        .expect("module 0 exists");
        let after = block_fingerprints(&bin, &lib, 0);

        // Exactly the touched leaf and its ancestors change address.
        let mut parent = vec![usize::MAX; bin.len()];
        for (i, n) in bin.nodes().iter().enumerate() {
            if let BinNode::Join { left, right, .. } = n {
                parent[*left] = i;
                parent[*right] = i;
            }
        }
        let mut dirty = vec![false; bin.len()];
        for (i, n) in bin.nodes().iter().enumerate() {
            if matches!(n, BinNode::Leaf { module, .. } if *module == touched) {
                let mut at = i;
                loop {
                    dirty[at] = true;
                    if parent[at] == usize::MAX {
                        break;
                    }
                    at = parent[at];
                }
            }
        }
        for i in 0..bin.len() {
            assert_eq!(
                before[i] != after[i],
                dirty[i],
                "node {i}: dirtiness must equal root-path membership"
            );
        }
        assert!(dirty.iter().filter(|&&d| d).count() < bin.len());
    }

    #[test]
    fn cut_type_and_structure_participate() {
        let mut v = FloorplanTree::new();
        let a = v.leaf(0);
        let b = v.leaf(1);
        v.slice(CutDir::Vertical, vec![a, b]);
        let h = two_stack();
        let lib: ModuleLibrary = [
            Module::new("a", vec![Rect::new(2, 3)]),
            Module::new("b", vec![Rect::new(4, 5)]),
        ]
        .into_iter()
        .collect();
        let fv = block_fingerprints(&restructure(&v).expect("valid"), &lib, 0);
        let fh = block_fingerprints(&restructure(&h).expect("valid"), &lib, 0);
        assert_eq!(fv.len(), fh.len());
        // Same leaves, different cut type at the root join.
        assert_eq!(fv[0], fh[0]);
        assert_eq!(fv[1], fh[1]);
        assert_ne!(fv[2], fh[2]);
    }

    #[test]
    fn staircases_participate_only_when_present() {
        use fp_geom::Staircase;
        let impls = vec![Rect::new(12, 6), Rect::new(9, 8)];
        // A module built through `with_staircases` with an empty staircase
        // list keeps the exact pre-staircase fingerprint: cache addresses
        // from older runs stay valid.
        assert_eq!(
            module_fingerprint(&Module::new("m", impls.clone())),
            module_fingerprint(&Module::with_staircases("m", impls.clone(), Vec::new()))
        );
        // Adding staircase geometry changes the address even when the
        // bounding box it contributes is already in the rect list.
        let s = Staircase::from_corners(vec![(12, 2), (9, 4), (5, 6)]).expect("valid");
        let with = Module::with_staircases("m", impls.clone(), vec![s.clone()]);
        assert_ne!(
            module_fingerprint(&Module::new(
                "m",
                with.implementations().as_slice().to_vec()
            )),
            module_fingerprint(&with)
        );
        // And distinct staircase geometry means a distinct address.
        let s2 = Staircase::from_corners(vec![(12, 2), (5, 6)]).expect("valid");
        assert_ne!(
            module_fingerprint(&with),
            module_fingerprint(&Module::with_staircases("m", impls, vec![s2]))
        );
    }

    #[test]
    fn module_name_does_not_affect_address() {
        let impls = vec![Rect::new(3, 4), Rect::new(2, 6)];
        assert_eq!(
            module_fingerprint(&Module::new("alu", impls.clone())),
            module_fingerprint(&Module::new("renamed", impls))
        );
    }
}
