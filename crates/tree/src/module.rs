//! Modules and module libraries.

use core::fmt;

use fp_geom::{Coord, Rect, Staircase};
use fp_prng::StdRng;
use fp_shape::RList;

/// Identifier of a module within a [`ModuleLibrary`].
pub type ModuleId = usize;

/// A module: a named block with a finite set of non-redundant rectangular
/// implementations (its shape list).
///
/// ```
/// use fp_geom::Rect;
/// use fp_tree::Module;
///
/// let m = Module::new("alu", vec![Rect::new(8, 2), Rect::new(4, 4), Rect::new(2, 8)]);
/// assert_eq!(m.implementations().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Module {
    name: String,
    implementations: RList,
    /// Bounded-staircase implementations, if any. Each contributes its
    /// bounding box to `implementations` (the footprint the packing
    /// machinery consumes) while the staircase geometry itself is kept
    /// for layout analytics and export. Empty for classic rect modules —
    /// and an empty list leaves serialization and fingerprints exactly
    /// as they were before staircases existed.
    #[cfg_attr(
        feature = "serde",
        serde(default, skip_serializing_if = "Vec::is_empty")
    )]
    staircases: Vec<Staircase>,
}

impl Module {
    /// Creates a module from candidate implementations (redundant ones are
    /// pruned automatically).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or exceeds [`fp_geom::MAX_COORD`]
    /// (the bound below which all composed floorplan arithmetic is
    /// overflow-free).
    #[must_use]
    pub fn new(name: impl Into<String>, candidates: Vec<Rect>) -> Self {
        Module::with_staircases(name, candidates, Vec::new())
    }

    /// Creates a module from rectangular candidates plus bounded-staircase
    /// implementations. Each staircase's bounding box joins the rectangular
    /// candidate set (that is the footprint selection and packing operate
    /// on); the staircase geometry is retained for whitespace analytics.
    /// Staircases are stored canonically sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any rectangle or staircase dimension is zero or exceeds
    /// [`fp_geom::MAX_COORD`].
    #[must_use]
    pub fn with_staircases(
        name: impl Into<String>,
        mut candidates: Vec<Rect>,
        mut staircases: Vec<Staircase>,
    ) -> Self {
        let name = name.into();
        for s in &staircases {
            let bb = s.bounding_box();
            assert!(
                bb.w <= fp_geom::MAX_COORD && bb.h <= fp_geom::MAX_COORD,
                "module `{name}`: staircase {s} exceeds MAX_COORD = {}",
                fp_geom::MAX_COORD,
            );
            candidates.push(bb);
        }
        for r in &candidates {
            assert!(
                r.w > 0 && r.h > 0,
                "module `{name}`: implementation {r} has a zero dimension",
            );
            assert!(
                r.w <= fp_geom::MAX_COORD && r.h <= fp_geom::MAX_COORD,
                "module `{name}`: implementation {r} exceeds MAX_COORD = {}",
                fp_geom::MAX_COORD,
            );
        }
        staircases.sort_by(|a, b| a.corners().cmp(b.corners()));
        staircases.dedup();
        Module {
            name,
            implementations: RList::from_candidates(candidates),
            staircases,
        }
    }

    /// Creates a hard module with a fixed footprint, optionally rotatable.
    #[must_use]
    pub fn hard(name: impl Into<String>, footprint: Rect, rotatable: bool) -> Self {
        let mut candidates = vec![footprint];
        if rotatable {
            candidates.push(footprint.rotated());
        }
        Module::new(name, candidates)
    }

    /// The module's name.
    #[inline]
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The module's irreducible implementation list.
    #[inline]
    #[must_use]
    pub fn implementations(&self) -> &RList {
        &self.implementations
    }

    /// The module's bounded-staircase implementations, canonically sorted
    /// (empty for classic rectangular modules).
    #[inline]
    #[must_use]
    pub fn staircases(&self) -> &[Staircase] {
        &self.staircases
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} impls)", self.name, self.implementations.len())
    }
}

/// A collection of modules indexed by [`ModuleId`] (the ids floorplan tree
/// leaves reference).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModuleLibrary {
    modules: Vec<Module>,
}

impl ModuleLibrary {
    /// An empty library.
    #[must_use]
    pub fn new() -> Self {
        ModuleLibrary {
            modules: Vec::new(),
        }
    }

    /// Adds a module and returns its id.
    pub fn add(&mut self, module: Module) -> ModuleId {
        self.modules.push(module);
        self.modules.len() - 1
    }

    /// The module with the given id, if present.
    #[inline]
    #[must_use]
    pub fn get(&self, id: ModuleId) -> Option<&Module> {
        self.modules.get(id)
    }

    /// Replaces the module at `id`, returning the previous module.
    ///
    /// This is the mutation hook of the session layer: swapping a
    /// module's implementation list in place (same id, so the floorplan
    /// tree's leaves keep referencing it) invalidates exactly the cached
    /// subtree results along the leaf's root path.
    ///
    /// # Errors
    ///
    /// Returns the offered module back when `id` is out of range.
    pub fn set(&mut self, id: ModuleId, module: Module) -> Result<Module, Module> {
        match self.modules.get_mut(id) {
            Some(slot) => Ok(core::mem::replace(slot, module)),
            None => Err(module),
        }
    }

    /// Number of modules.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// `true` if the library has no modules.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Iterator over the modules in id order.
    pub fn iter(&self) -> core::slice::Iter<'_, Module> {
        self.modules.iter()
    }
}

impl core::ops::Index<ModuleId> for ModuleLibrary {
    type Output = Module;

    fn index(&self, id: ModuleId) -> &Module {
        &self.modules[id]
    }
}

impl FromIterator<Module> for ModuleLibrary {
    fn from_iter<T: IntoIterator<Item = Module>>(iter: T) -> Self {
        ModuleLibrary {
            modules: iter.into_iter().collect(),
        }
    }
}

impl Extend<Module> for ModuleLibrary {
    fn extend<T: IntoIterator<Item = Module>>(&mut self, iter: T) {
        self.modules.extend(iter);
    }
}

/// Generates a module with exactly `n` non-redundant implementations drawn
/// from a discretized soft-module shape curve: the implementations
/// approximate a module of roughly `target_area` with aspect ratios within
/// `[1/max_aspect, max_aspect]`, the way soft macros are modelled (and the
/// way the paper's §6 continuous-shape-curve remark suggests).
///
/// Deterministic for a given `rng` state. The result always has exactly `n`
/// implementations (widths strictly decreasing), with small pseudo-random
/// area jitter so different modules differ.
///
/// # Panics
///
/// Panics if `n == 0`, `target_area == 0`, or `max_aspect < 1.0`.
#[must_use]
pub fn soft_module(
    name: impl Into<String>,
    target_area: u64,
    max_aspect: f64,
    n: usize,
    rng: &mut StdRng,
) -> Module {
    assert!(n > 0, "a module needs at least one implementation");
    assert!(target_area > 0, "target area must be positive");
    assert!(max_aspect >= 1.0, "max aspect ratio must be at least 1");

    build_soft(name.into(), target_area, max_aspect, n, rng, false)
}

/// Like [`soft_module`], but the `n` widths spread across the **whole**
/// aspect range instead of clustering densely near the wide end.
///
/// Dense staircases (the default) reproduce the paper's experimental
/// regime — many near-identical implementations whose combinations
/// explode, which is what the selection algorithms exist for. Spread
/// staircases model coarser shape curves and give topology search
/// (`fp-anneal`) genuinely different module shapes to exploit.
///
/// # Panics
///
/// Same as [`soft_module`].
#[must_use]
pub fn soft_module_spread(
    name: impl Into<String>,
    target_area: u64,
    max_aspect: f64,
    n: usize,
    rng: &mut StdRng,
) -> Module {
    assert!(n > 0, "a module needs at least one implementation");
    assert!(target_area > 0, "target area must be positive");
    assert!(max_aspect >= 1.0, "max aspect ratio must be at least 1");
    build_soft(name.into(), target_area, max_aspect, n, rng, true)
}

fn build_soft(
    name: String,
    target_area: u64,
    max_aspect: f64,
    n: usize,
    rng: &mut StdRng,
    spread: bool,
) -> Module {
    let side = (target_area as f64).sqrt();
    let w_max = side * max_aspect.sqrt();
    let w_min = (side / max_aspect.sqrt()).max(1.0);

    // Build the staircase directly: strictly decreasing widths paired with
    // strictly increasing heights are irreducible by construction, so the
    // module has exactly n implementations. Heights track the (jittered)
    // target area with a strict-increase clamp modelling legalization.
    let mut rects = Vec::with_capacity(n);
    let mut w = (w_max.round() as Coord).max(n as Coord);
    let span = w.saturating_sub(w_min.floor() as Coord);
    let base_step: Coord = if spread && n > 1 {
        (span / (n as Coord - 1)).max(1)
    } else {
        1
    };
    let extra: Coord = if spread { (base_step / 2).max(1) } else { 3 };
    let mut h_prev: Coord = 0;
    for i in 0..n {
        let jitter = 1.0 + 0.1 * rng.gen_range(-1.0..1.0f64);
        let h = ((target_area as f64 * jitter) / w as f64).ceil().max(1.0) as Coord;
        let h = h.max(h_prev + 1);
        rects.push(Rect::new(w, h));
        h_prev = h;
        let remaining = (n - i - 1) as Coord;
        if remaining > 0 {
            // The next width must leave room for `remaining` corners >= 1.
            let step = base_step + rng.gen_range(0..=extra);
            let max_step = w - remaining; // keeps w_next >= remaining
            w -= step.clamp(1, max_step.max(1));
        }
    }
    let module = Module::new(name, rects);
    debug_assert_eq!(module.implementations.len(), n);
    module
}

/// Generates a library of `count` dense soft modules with `n`
/// implementations each, deterministically from `seed`.
#[must_use]
pub fn soft_library(count: usize, n: usize, seed: u64) -> ModuleLibrary {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let area = rng.gen_range(40..400);
            soft_module(format!("m{i}"), area, 4.0, n, &mut rng)
        })
        .collect()
}

/// Generates a library of `count` range-spanning soft modules (see
/// [`soft_module_spread`]), deterministically from `seed`.
#[must_use]
pub fn spread_library(count: usize, n: usize, seed: u64) -> ModuleLibrary {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let area = rng.gen_range(40..400);
            soft_module_spread(format!("m{i}"), area, 4.0, n, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_prunes_redundant_candidates() {
        let m = Module::new("x", vec![Rect::new(4, 4), Rect::new(5, 5), Rect::new(2, 8)]);
        assert_eq!(m.implementations().len(), 2);
        assert_eq!(m.to_string(), "x(2 impls)");
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_COORD")]
    fn oversized_dimensions_rejected() {
        let _ = Module::new("huge", vec![Rect::new(fp_geom::MAX_COORD + 1, 1)]);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dimensions_rejected() {
        let _ = Module::new("flat", vec![Rect::new(0, 5)]);
    }

    #[test]
    fn max_coord_boundary_accepted() {
        let m = Module::new("edge", vec![Rect::new(fp_geom::MAX_COORD, 1)]);
        assert_eq!(m.implementations().len(), 1);
    }

    #[test]
    fn hard_module_orientations() {
        let fixed = Module::hard("ram", Rect::new(6, 2), false);
        assert_eq!(fixed.implementations().len(), 1);
        let free = Module::hard("ram", Rect::new(6, 2), true);
        assert_eq!(free.implementations().len(), 2);
        let square = Module::hard("sq", Rect::new(3, 3), true);
        assert_eq!(square.implementations().len(), 1);
    }

    #[test]
    fn library_indexing() {
        let mut lib = ModuleLibrary::new();
        let a = lib.add(Module::hard("a", Rect::new(2, 3), true));
        let b = lib.add(Module::hard("b", Rect::new(4, 4), false));
        assert_eq!(lib.len(), 2);
        assert_eq!(lib[a].name(), "a");
        assert_eq!(lib.get(b).map(Module::name), Some("b"));
        assert_eq!(lib.get(99), None);
    }

    #[test]
    fn soft_module_hits_requested_count() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 20, 40] {
            let m = soft_module("s", 120, 4.0, n, &mut rng);
            assert_eq!(m.implementations().len(), n, "n = {n}");
        }
    }

    #[test]
    fn soft_module_is_deterministic() {
        let a = soft_module("s", 200, 3.0, 10, &mut StdRng::seed_from_u64(9));
        let b = soft_module("s", 200, 3.0, 10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn soft_library_counts() {
        let lib = soft_library(25, 20, 1);
        assert_eq!(lib.len(), 25);
        assert!(lib.iter().all(|m| m.implementations().len() == 20));
        // Distinct seeds give distinct libraries.
        assert_ne!(lib, soft_library(25, 20, 2));
    }
}
