//! Hierarchical floorplan trees for area optimization.
//!
//! A floorplan for `m` modules is an enveloping rectangle recursively
//! partitioned into `m` basic rectangles (paper §2, Figure 1). This crate
//! provides:
//!
//! * [`Module`] / [`ModuleLibrary`] — modules with finite sets of
//!   non-redundant implementations, plus seeded generators.
//! * [`FloorplanTree`] — the hierarchical description: slicing nodes
//!   (horizontal/vertical cut lines, any arity) and order-5 **wheel** nodes
//!   (the smallest non-slicing pattern), over module leaves.
//! * [`restructure`] — the Figure-3 transformation of a floorplan tree `T`
//!   into a binary tree `T'` whose internal nodes are rectangular or
//!   L-shaped blocks, the form the bottom-up optimizer consumes.
//! * [`wheel`] — the closed-form minimal enveloping rectangle and cut
//!   positions of a wheel given its five children's sizes (the ground truth
//!   the optimizer's incremental L-shape joins must reproduce).
//! * [`layout`] — realization of an implementation choice into placed
//!   rectangles, with overlap/containment validation and whitespace
//!   polygonization.
//! * [`ost`] — orderly-spanning-tree style initial topologies (grid-shaped
//!   deterministic seeds for the annealer).
//! * [`generators`] — the FP1–FP4 benchmark floorplans of paper §5
//!   (Figure 8) and seeded random floorplans.
//!
//! # Example
//!
//! ```
//! use fp_tree::{generators, layout};
//!
//! let fp = generators::fp1();                       // 25-module wheel of wheels
//! assert_eq!(fp.tree.module_count(), 25);
//! let lib = generators::module_library(&fp.tree, 4, 42); // 4 impls per module
//! assert_eq!(lib.len(), 25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
pub mod export;
pub mod fingerprint;
pub mod format;
pub mod generators;
pub mod layout;
pub mod mega;
mod module;
pub mod ost;
pub mod restructure;
pub mod soa;
mod tree;
pub mod wheel;

pub use module::{
    soft_library, soft_module, soft_module_spread, spread_library, Module, ModuleId, ModuleLibrary,
};
pub use tree::{Chirality, CutDir, FloorplanTree, Node, NodeId, NodeKind, TreeError};
