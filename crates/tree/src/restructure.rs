//! Restructuring a floorplan tree `T` into a binary tree `T'` (paper §3,
//! Figure 3).
//!
//! The bottom-up optimizer wants every internal node to combine exactly two
//! blocks, each combination producing either a rectangular or an L-shaped
//! block:
//!
//! * a slice with `k` children becomes a left-deep chain of `k − 1` binary
//!   slice joins (all rectangular);
//! * a wheel `[A, B, C, D, E]` becomes the four-stage chain
//!   `(((A ⊕ E) ⊕ B) ⊕ C) ⊕ D`: the first three stages produce L-shaped
//!   blocks (the partially assembled pinwheel), the last completes the
//!   enveloping rectangle.
//!
//! Chirality does not appear in `T'`: the counterclockwise wheel is the
//! mirror image of the clockwise one and mirroring preserves every
//! measurement, so the two optimize identically (the layout realizer
//! mirrors the placement instead).

use fp_shape::combine::Compose;

use crate::soa::SoaTree;
use crate::{CutDir, FloorplanTree, ModuleId, NodeId, NodeKind, TreeError};

/// Identifier of a node within a [`BinaryTree`] arena.
pub type BinId = usize;

/// The combining operation of a binary internal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// A slice join: two rectangular blocks compose into a rectangle.
    Slice(Compose),
    /// Wheel stage 1: arm `A` beside centre `E`, bottom-aligned → L-block.
    WheelS1,
    /// Wheel stage 2: the stage-1 L plus top strip `B` → L-block.
    WheelS2,
    /// Wheel stage 3: the stage-2 L plus right column `C` → L-block.
    WheelS3,
    /// Wheel stage 4: the stage-3 L plus bottom strip `D` → rectangle.
    WheelS4,
}

impl BinOp {
    /// `true` if the operation produces an L-shaped block.
    #[must_use]
    pub fn produces_lshape(self) -> bool {
        matches!(self, BinOp::WheelS1 | BinOp::WheelS2 | BinOp::WheelS3)
    }
}

/// A node of the restructured binary tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinNode {
    /// A basic rectangle: one module instance. Records the originating
    /// leaf of `T` so solutions can be mapped back.
    Leaf {
        /// The leaf node in the original tree.
        tree_leaf: NodeId,
        /// The module occupying it.
        module: ModuleId,
    },
    /// A binary join of two previously built blocks.
    Join {
        /// The combining operation.
        op: BinOp,
        /// Left operand (for wheel stages: the partial assembly).
        left: BinId,
        /// Right operand (for wheel stages: the arm being attached).
        right: BinId,
    },
}

/// The binary tree `T'`: an arena in **bottom-up (topological) order** —
/// every join's operands have smaller ids than the join itself, and the
/// root is the last node. The optimizer can therefore evaluate nodes by a
/// single forward scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryTree {
    nodes: Vec<BinNode>,
}

impl BinaryTree {
    /// The nodes in bottom-up order.
    #[inline]
    #[must_use]
    pub fn nodes(&self) -> &[BinNode] {
        &self.nodes
    }

    /// The node with the given id, if present.
    #[inline]
    #[must_use]
    pub fn node(&self, id: BinId) -> Option<&BinNode> {
        self.nodes.get(id)
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree has no nodes.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root id (the last node).
    ///
    /// # Panics
    ///
    /// Panics on an empty tree.
    #[must_use]
    pub fn root(&self) -> BinId {
        assert!(!self.nodes.is_empty(), "empty binary tree has no root");
        self.nodes.len() - 1
    }

    /// Number of L-shaped internal blocks.
    #[must_use]
    pub fn lshape_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, BinNode::Join { op, .. } if op.produces_lshape()))
            .count()
    }

    /// Number of leaf blocks.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, BinNode::Leaf { .. }))
            .count()
    }
}

/// Restructures a validated floorplan tree into its binary form.
///
/// # Errors
///
/// Returns the [`TreeError`] from [`FloorplanTree::validate`] if the input
/// is malformed.
pub fn restructure(tree: &FloorplanTree) -> Result<BinaryTree, TreeError> {
    let mut out = BinaryTree {
        nodes: Vec::with_capacity(tree.len() * 2),
    };
    if fp_shape::legacy::legacy_kernels() {
        // Ablation baseline: the pre-SoA walk chases one child `Vec`
        // allocation per node. Output is identical to the SoA walk.
        tree.validate()?;
        if tree.is_empty() {
            return Ok(out);
        }
        build_ptr(tree, tree.root(), &mut out);
        return Ok(out);
    }
    // The SoA conversion performs the full validation, and the build walk
    // below then runs over the flat CSR arrays instead of chasing one
    // child `Vec` allocation per node — the difference is noise on FP1–4
    // but dominates restructuring time on mega-scale trees.
    let soa = SoaTree::from_tree(tree)?;
    if soa.is_empty() {
        return Ok(out);
    }
    build(&soa, soa.root(), &mut out);
    Ok(out)
}

/// Pre-SoA pointer-chasing build, kept behind
/// [`fp_shape::legacy::legacy_kernels`] as the mega-bench ablation
/// baseline. Emits exactly the same node sequence as [`build`].
fn build_ptr(tree: &FloorplanTree, root: NodeId, out: &mut BinaryTree) {
    enum Task {
        Visit(NodeId),
        Emit(BinOp),
    }
    let mut tasks = vec![Task::Visit(root)];
    let mut values: Vec<BinId> = Vec::new();
    while let Some(task) = tasks.pop() {
        match task {
            Task::Emit(op) => {
                let right = values.pop().expect("emit follows two visits");
                let left = values.pop().expect("emit follows two visits");
                out.nodes.push(BinNode::Join { op, left, right });
                values.push(out.nodes.len() - 1);
            }
            Task::Visit(id) => {
                let node = tree.node(id).expect("validated tree");
                match &node.kind {
                    NodeKind::Leaf(module) => {
                        out.nodes.push(BinNode::Leaf {
                            tree_leaf: id,
                            module: *module,
                        });
                        values.push(out.nodes.len() - 1);
                    }
                    NodeKind::Slice(dir) => {
                        let how = match dir {
                            CutDir::Vertical => Compose::Beside,
                            CutDir::Horizontal => Compose::Stack,
                        };
                        for &child in node.children[1..].iter().rev() {
                            tasks.push(Task::Emit(BinOp::Slice(how)));
                            tasks.push(Task::Visit(child));
                        }
                        tasks.push(Task::Visit(node.children[0]));
                    }
                    NodeKind::Wheel(_) => {
                        let c = &node.children;
                        tasks.push(Task::Emit(BinOp::WheelS4));
                        tasks.push(Task::Visit(c[3]));
                        tasks.push(Task::Emit(BinOp::WheelS3));
                        tasks.push(Task::Visit(c[2]));
                        tasks.push(Task::Emit(BinOp::WheelS2));
                        tasks.push(Task::Visit(c[1]));
                        tasks.push(Task::Emit(BinOp::WheelS1));
                        tasks.push(Task::Visit(c[4]));
                        tasks.push(Task::Visit(c[0]));
                    }
                }
            }
        }
    }
    debug_assert_eq!(values.len(), 1, "one value remains: the root");
}

/// Emits the binary nodes for the subtree at `root`, iteratively (an
/// explicit task stack keeps arbitrarily deep floorplans from exhausting
/// the call stack).
fn build(tree: &SoaTree, root: NodeId, out: &mut BinaryTree) {
    enum Task {
        Visit(NodeId),
        Emit(BinOp),
    }
    let mut tasks = vec![Task::Visit(root)];
    let mut values: Vec<BinId> = Vec::new();
    while let Some(task) = tasks.pop() {
        match task {
            Task::Emit(op) => {
                let right = values.pop().expect("emit follows two visits");
                let left = values.pop().expect("emit follows two visits");
                out.nodes.push(BinNode::Join { op, left, right });
                values.push(out.nodes.len() - 1);
            }
            Task::Visit(id) => {
                match tree.kind(id) {
                    NodeKind::Leaf(module) => {
                        out.nodes.push(BinNode::Leaf {
                            tree_leaf: id,
                            module,
                        });
                        values.push(out.nodes.len() - 1);
                    }
                    NodeKind::Slice(dir) => {
                        let how = match dir {
                            CutDir::Vertical => Compose::Beside,
                            CutDir::Horizontal => Compose::Stack,
                        };
                        let children = tree.node_children(id);
                        // Execution order: visit c0, then for each further
                        // child visit it and emit a join. Push in reverse.
                        for &child in children[1..].iter().rev() {
                            tasks.push(Task::Emit(BinOp::Slice(how)));
                            tasks.push(Task::Visit(child as NodeId));
                        }
                        tasks.push(Task::Visit(children[0] as NodeId));
                    }
                    NodeKind::Wheel(_) => {
                        // (((A ⊕ E) ⊕ B) ⊕ C) ⊕ D, pushed in reverse.
                        let c = tree.node_children(id);
                        tasks.push(Task::Emit(BinOp::WheelS4));
                        tasks.push(Task::Visit(c[3] as NodeId));
                        tasks.push(Task::Emit(BinOp::WheelS3));
                        tasks.push(Task::Visit(c[2] as NodeId));
                        tasks.push(Task::Emit(BinOp::WheelS2));
                        tasks.push(Task::Visit(c[1] as NodeId));
                        tasks.push(Task::Emit(BinOp::WheelS1));
                        tasks.push(Task::Visit(c[4] as NodeId));
                        tasks.push(Task::Visit(c[0] as NodeId));
                    }
                }
            }
        }
    }
    debug_assert_eq!(values.len(), 1, "one value remains: the root");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Chirality;

    #[test]
    fn figure3_style_slice_chain() {
        // A 4-child vertical slice becomes 3 binary joins.
        let mut t = FloorplanTree::new();
        let leaves: Vec<NodeId> = (0..4).map(|m| t.leaf(m)).collect();
        t.slice(CutDir::Vertical, leaves);
        let b = restructure(&t).expect("valid tree");
        assert_eq!(b.leaf_count(), 4);
        assert_eq!(b.len(), 7);
        assert_eq!(b.lshape_count(), 0);
        // Left-deep: the root joins the previous accumulator with leaf 3.
        match b.node(b.root()).expect("root") {
            BinNode::Join {
                op: BinOp::Slice(Compose::Beside),
                left,
                right,
            } => {
                assert!(matches!(
                    b.node(*right),
                    Some(BinNode::Leaf { module: 3, .. })
                ));
                assert!(*left < b.root());
            }
            other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn wheel_expands_to_four_stages() {
        let mut t = FloorplanTree::new();
        let leaves: Vec<NodeId> = (0..5).map(|m| t.leaf(m)).collect();
        t.wheel(
            Chirality::Clockwise,
            [leaves[0], leaves[1], leaves[2], leaves[3], leaves[4]],
        );
        let b = restructure(&t).expect("valid tree");
        assert_eq!(b.len(), 9); // 5 leaves + 4 joins
        assert_eq!(b.lshape_count(), 3);
        let ops: Vec<BinOp> = b
            .nodes()
            .iter()
            .filter_map(|n| match n {
                BinNode::Join { op, .. } => Some(*op),
                BinNode::Leaf { .. } => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                BinOp::WheelS1,
                BinOp::WheelS2,
                BinOp::WheelS3,
                BinOp::WheelS4
            ]
        );
        // Stage 1 joins A (module 0) with E (module 4).
        let s1 = b
            .nodes()
            .iter()
            .position(|n| {
                matches!(
                    n,
                    BinNode::Join {
                        op: BinOp::WheelS1,
                        ..
                    }
                )
            })
            .expect("stage 1 exists");
        if let BinNode::Join { left, right, .. } = &b.nodes()[s1] {
            assert!(matches!(
                b.node(*left),
                Some(BinNode::Leaf { module: 0, .. })
            ));
            assert!(matches!(
                b.node(*right),
                Some(BinNode::Leaf { module: 4, .. })
            ));
        }
    }

    #[test]
    fn chirality_does_not_change_structure() {
        let make = |ch: Chirality| {
            let mut t = FloorplanTree::new();
            let l: Vec<NodeId> = (0..5).map(|m| t.leaf(m)).collect();
            t.wheel(ch, [l[0], l[1], l[2], l[3], l[4]]);
            restructure(&t).expect("valid tree")
        };
        assert_eq!(
            make(Chirality::Clockwise),
            make(Chirality::Counterclockwise)
        );
    }

    #[test]
    fn topological_order_invariant() {
        // Nested: wheel of slices of leaves.
        let mut t = FloorplanTree::new();
        let mut blocks = Vec::new();
        for i in 0..5 {
            let a = t.leaf(2 * i);
            let b = t.leaf(2 * i + 1);
            blocks.push(t.slice(CutDir::Horizontal, vec![a, b]));
        }
        t.wheel(
            Chirality::Clockwise,
            [blocks[0], blocks[1], blocks[2], blocks[3], blocks[4]],
        );
        let b = restructure(&t).expect("valid tree");
        for (id, node) in b.nodes().iter().enumerate() {
            if let BinNode::Join { left, right, .. } = node {
                assert!(*left < id && *right < id, "node {id} not topological");
            }
        }
        assert_eq!(b.leaf_count(), 10);
        assert_eq!(b.lshape_count(), 3);
        assert_eq!(b.len(), 10 + 5 + 4);
    }

    #[test]
    fn invalid_tree_propagates_error() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        t.slice(CutDir::Vertical, vec![a]);
        assert!(restructure(&t).is_err());
    }

    #[test]
    fn empty_tree_restructures_to_empty() {
        let b = restructure(&FloorplanTree::new()).expect("empty is valid");
        assert!(b.is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        /// The legacy pointer-chasing restructure and the SoA walk emit
        /// bit-identical binary join sequences — the fp-tree half of the
        /// mega-bench ablation boundary.
        #[test]
        fn legacy_restructure_matches_soa(leaves in 2usize..40, seed in 0u64..1_000) {
            let bench = crate::generators::random_floorplan(leaves, 0.4, seed);
            fp_shape::legacy::set_legacy_kernels(true);
            let via_ptr = restructure(&bench.tree);
            fp_shape::legacy::set_legacy_kernels(false);
            let via_soa = restructure(&bench.tree);
            match (via_ptr, via_soa) {
                (Ok(a), Ok(b)) => proptest::prop_assert_eq!(a.nodes(), b.nodes()),
                (a, b) => proptest::prop_assert_eq!(a.err(), b.err()),
            }
        }
    }
}
