//! Mega-scale benchmark generators: the FP5+ family (10k–500k modules).
//!
//! The paper's FP1–FP4 floorplans top out at 245 modules — small enough
//! that every join fits in L1 and the parallel scheduler never amortizes
//! its overhead. Modern floorplanners operate at SoC scale, so this module
//! grows deterministic instances in the 10k–500k-module league:
//!
//! * [`MegaConfig`] — module count, depth profile, wheel density,
//!   implementation-list fatness, seed;
//! * [`mega_floorplan`] — iterative (stack-safe) top-down generation; the
//!   same config always produces the same tree, on every platform;
//! * [`mega_library`] — an MCNC-flavoured large library whose soft-macro
//!   shape curves carry the configured number of points;
//! * [`fp5`] … [`fp8`] / [`mega_family`] — the named FP5-10k … FP8-500k
//!   instances the benchmarks and CI refer to.
//!
//! Wheel clusters are fringe-local (a wheel is only placed over a span of
//! at most [`MegaConfig::wheel_span`] modules), mirroring FP1–FP4's
//! pinwheel fabric: the L-shape machinery is exercised densely near the
//! leaves while slice joins dominate asymptotically, keeping L-block
//! candidate counts bounded independent of instance size.

use fp_prng::StdRng;

use crate::generators::Benchmark;
use crate::{Chirality, CutDir, FloorplanTree, ModuleLibrary, NodeKind};

/// Shape of the generated hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DepthProfile {
    /// Mixed arity 2–4 slices: depth ~ `log n` (the FP1–FP4 texture).
    #[default]
    Balanced,
    /// Skewed binary slices (the light child gets 1/16–1/8 of the span):
    /// roughly 8× deeper than [`DepthProfile::Balanced`], stressing
    /// root-path length, while still bounded by `O(log n)` so recursive
    /// consumers (layout realization, rendering) stay stack-safe.
    Deep,
    /// Arity 8–16 slices: shallow and bushy, stressing slice-chain width.
    Wide,
}

impl DepthProfile {
    /// Parses `balanced` / `deep` / `wide` (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<DepthProfile, String> {
        match s.to_ascii_lowercase().as_str() {
            "balanced" => Ok(DepthProfile::Balanced),
            "deep" => Ok(DepthProfile::Deep),
            "wide" => Ok(DepthProfile::Wide),
            other => Err(format!(
                "unknown depth profile `{other}` (expected balanced, deep, or wide)"
            )),
        }
    }

    /// The canonical lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DepthProfile::Balanced => "balanced",
            DepthProfile::Deep => "deep",
            DepthProfile::Wide => "wide",
        }
    }
}

/// Configuration of a mega-scale instance. All fields deterministic: the
/// same config always generates the same tree and library.
#[derive(Debug, Clone, PartialEq)]
pub struct MegaConfig {
    /// Number of module leaves (≥ 1).
    pub modules: usize,
    /// Hierarchy shape.
    pub profile: DepthProfile,
    /// Probability that an eligible span becomes a wheel cluster.
    pub wheel_density: f64,
    /// Maximum span (in modules) a wheel may cover. Keeps L-block
    /// candidate counts bounded regardless of instance size.
    pub wheel_span: usize,
    /// Implementations per module in the generated library (soft-macro
    /// shape-curve points for [`mega_library`]).
    pub impls: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for MegaConfig {
    fn default() -> Self {
        MegaConfig {
            modules: 10_000,
            profile: DepthProfile::Balanced,
            wheel_density: 0.25,
            wheel_span: 60,
            impls: 8,
            seed: 5,
        }
    }
}

impl MegaConfig {
    /// A config for `modules` leaves with every other knob at its default.
    #[must_use]
    pub fn new(modules: usize) -> Self {
        MegaConfig {
            modules,
            ..MegaConfig::default()
        }
    }

    /// Sets the depth profile.
    #[must_use]
    pub fn with_profile(mut self, profile: DepthProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the wheel density (probability in `[0, 1]`).
    #[must_use]
    pub fn with_wheel_density(mut self, wheel_density: f64) -> Self {
        self.wheel_density = wheel_density;
        self
    }

    /// Sets the implementation-list fatness.
    #[must_use]
    pub fn with_impls(mut self, impls: usize) -> Self {
        self.impls = impls;
        self
    }

    /// Sets the PRNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The instance name (`MEGA<modules>-<profile>-<seed>`).
    #[must_use]
    pub fn name(&self) -> String {
        format!("MEGA{}-{}-{}", self.modules, self.profile.name(), self.seed)
    }
}

/// A lightweight plan node: the tree shape is decided top-down first, then
/// emitted bottom-up into the arena (both passes iterative, so 500k-module
/// instances never touch the call stack).
enum PlanKind {
    Leaf,
    Slice(CutDir),
    Wheel(Chirality),
}

struct PlanNode {
    kind: PlanKind,
    /// Indices into the plan arena (empty for leaves).
    children: Vec<usize>,
}

/// Generates the floorplan tree for `cfg`. Deterministic in `cfg`; the
/// construction is fully iterative, so arbitrarily large instances are
/// stack-safe.
///
/// # Panics
///
/// Panics if `cfg.modules == 0` or `cfg.wheel_density` is not a
/// probability.
#[must_use]
pub fn mega_floorplan(cfg: &MegaConfig) -> Benchmark {
    assert!(cfg.modules > 0, "need at least one module");
    assert!(
        (0.0..=1.0).contains(&cfg.wheel_density),
        "wheel_density must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4d45_4741); // "MEGA"

    // Phase 1: top-down plan. Work items carry (plan index, span, cut
    // direction for the next slice level).
    let mut plan: Vec<PlanNode> = Vec::with_capacity(cfg.modules * 2);
    plan.push(PlanNode {
        kind: PlanKind::Leaf,
        children: Vec::new(),
    });
    let mut work: Vec<(usize, usize, CutDir)> = vec![(0, cfg.modules, CutDir::Horizontal)];
    let mut parts: Vec<usize> = Vec::new();
    while let Some((idx, span, dir)) = work.pop() {
        if span == 1 {
            continue; // already a leaf placeholder
        }
        let wheel = span >= 5
            && span <= cfg.wheel_span
            && cfg.wheel_density > 0.0
            && rng.gen_bool(cfg.wheel_density);
        if wheel {
            split_spans(&mut rng, span, 5, &mut parts);
            let ch = if rng.gen_bool(0.5) {
                Chirality::Clockwise
            } else {
                Chirality::Counterclockwise
            };
            plan[idx].kind = PlanKind::Wheel(ch);
        } else {
            let arity = match cfg.profile {
                DepthProfile::Balanced => rng.gen_range(2..=4usize.min(span)),
                DepthProfile::Deep => 2,
                DepthProfile::Wide => rng.gen_range(8..=16usize).min(span).max(2),
            };
            if matches!(cfg.profile, DepthProfile::Deep) && span >= 4 {
                // Skewed split: the light child gets 1/16–1/8 of the span,
                // so depth grows ~ log_{16/15}(n) — deep but bounded.
                let light = rng.gen_range((span / 16).max(1)..=(span / 8).max(1));
                parts.clear();
                if rng.gen_bool(0.5) {
                    parts.extend([light, span - light]);
                } else {
                    parts.extend([span - light, light]);
                }
            } else {
                split_spans(&mut rng, span, arity, &mut parts);
            }
            plan[idx].kind = PlanKind::Slice(dir);
        }
        for &part in &parts {
            let child = plan.len();
            plan.push(PlanNode {
                kind: PlanKind::Leaf,
                children: Vec::new(),
            });
            plan[idx].children.push(child);
            work.push((child, part, dir.perpendicular()));
        }
    }

    // Phase 2: iterative post-order emission into the arena. Visiting
    // children left-to-right before the parent makes leaf emission order
    // equal canonical left-to-right leaf order, so sequential module ids
    // line up with `leaves_in_order`.
    enum Task {
        Visit(usize),
        Emit(usize),
    }
    let mut tree = FloorplanTree::new();
    let mut next_module = 0usize;
    let mut ids = vec![usize::MAX; plan.len()];
    let mut tasks = vec![Task::Visit(0)];
    while let Some(task) = tasks.pop() {
        match task {
            Task::Visit(idx) => {
                let node = &plan[idx];
                if node.children.is_empty() {
                    ids[idx] = tree.leaf(next_module);
                    next_module += 1;
                } else {
                    tasks.push(Task::Emit(idx));
                    for &c in node.children.iter().rev() {
                        tasks.push(Task::Visit(c));
                    }
                }
            }
            Task::Emit(idx) => {
                let kids: Vec<usize> = plan[idx].children.iter().map(|&c| ids[c]).collect();
                ids[idx] = match plan[idx].kind {
                    PlanKind::Leaf => unreachable!("leaves have no children"),
                    PlanKind::Slice(dir) => tree.slice(dir, kids),
                    PlanKind::Wheel(ch) => {
                        tree.wheel(ch, [kids[0], kids[1], kids[2], kids[3], kids[4]])
                    }
                };
            }
        }
    }
    tree.set_root(ids[0]);
    debug_assert_eq!(next_module, cfg.modules);
    Benchmark {
        name: cfg.name(),
        tree,
    }
}

/// Splits `span` into `parts` positive summands in O(parts): proportional
/// to random weights, remainder to the first parts.
fn split_spans(rng: &mut StdRng, span: usize, parts: usize, out: &mut Vec<usize>) {
    debug_assert!(span >= parts);
    out.clear();
    let mut weights = [0usize; 16];
    let mut total = 0usize;
    for w in weights.iter_mut().take(parts) {
        *w = rng.gen_range(1..=100);
        total += *w;
    }
    let spare = span - parts; // each part gets 1 guaranteed
    let mut assigned = 0usize;
    for &w in weights.iter().take(parts) {
        let extra = spare * w / total;
        out.push(1 + extra);
        assigned += extra;
    }
    // Distribute the rounding remainder one unit at a time.
    let mut rem = spare - assigned;
    let mut i = 0;
    while rem > 0 {
        out[i] += 1;
        rem -= 1;
        i = (i + 1) % parts;
    }
}

/// An MCNC-flavoured library for a mega instance: 75% hard rotatable
/// macros with log-uniform areas in `[50, 5000]`, 25% soft macros whose
/// shape curves carry `cfg.impls` points (the fatness knob). Deterministic
/// in `cfg.seed`.
#[must_use]
pub fn mega_library(tree: &FloorplanTree, cfg: &MegaConfig) -> ModuleLibrary {
    use crate::{soft_module, Module};
    use fp_geom::{Coord, Rect};
    let count = tree.module_count();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4d43_4e43); // "MCNC"
    (0..count)
        .map(|i| {
            let area = (50.0 * (100.0f64).powf(rng.gen_range(0.0..1.0))).round() as u64;
            if rng.gen_bool(0.75) {
                let aspect = rng.gen_range(1.0..3.0f64);
                let w = ((area as f64 * aspect).sqrt().round() as Coord).max(1);
                let h = area.div_ceil(w).max(1);
                Module::hard(format!("hm{i}"), Rect::new(w, h), true)
            } else {
                soft_module(
                    format!("sm{i}"),
                    area,
                    2.5,
                    cfg.impls.clamp(2, 16),
                    &mut rng,
                )
            }
        })
        .collect()
}

/// Renames a generated benchmark to its family name.
fn named(mut bench: Benchmark, name: &str) -> Benchmark {
    bench.name = name.to_owned();
    bench
}

/// **FP5-10k**: 10 000 modules, balanced profile.
#[must_use]
pub fn fp5() -> Benchmark {
    named(mega_floorplan(&fp5_config()), "FP5-10k")
}

/// The [`MegaConfig`] behind [`fp5`].
#[must_use]
pub fn fp5_config() -> MegaConfig {
    MegaConfig::new(10_000)
}

/// **FP6-50k**: 50 000 modules, deep profile.
#[must_use]
pub fn fp6() -> Benchmark {
    named(mega_floorplan(&fp6_config()), "FP6-50k")
}

/// The [`MegaConfig`] behind [`fp6`].
#[must_use]
pub fn fp6_config() -> MegaConfig {
    MegaConfig::new(50_000)
        .with_profile(DepthProfile::Deep)
        .with_seed(6)
}

/// **FP7-150k**: 150 000 modules, wide profile.
#[must_use]
pub fn fp7() -> Benchmark {
    named(mega_floorplan(&fp7_config()), "FP7-150k")
}

/// The [`MegaConfig`] behind [`fp7`].
#[must_use]
pub fn fp7_config() -> MegaConfig {
    MegaConfig::new(150_000)
        .with_profile(DepthProfile::Wide)
        .with_seed(7)
}

/// **FP8-500k**: 500 000 modules, balanced profile.
#[must_use]
pub fn fp8() -> Benchmark {
    named(mega_floorplan(&fp8_config()), "FP8-500k")
}

/// The [`MegaConfig`] behind [`fp8`].
#[must_use]
pub fn fp8_config() -> MegaConfig {
    MegaConfig::new(500_000).with_seed(8)
}

/// The named mega family in size order: `(name, config)`.
#[must_use]
pub fn mega_family() -> Vec<(&'static str, MegaConfig)> {
    vec![
        ("FP5-10k", fp5_config()),
        ("FP6-50k", fp6_config()),
        ("FP7-150k", fp7_config()),
        ("FP8-500k", fp8_config()),
    ]
}

/// The number of leaves in a benchmark whose module ids must be
/// sequential (generator invariant check helper, used by tests).
#[must_use]
pub fn sequential_module_count(tree: &FloorplanTree) -> usize {
    let leaves = tree.leaves_in_order();
    for (expect, &id) in leaves.iter().enumerate() {
        match tree.node(id).map(|n| &n.kind) {
            Some(&NodeKind::Leaf(m)) if m == expect => {}
            _ => return 0,
        }
    }
    leaves.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restructure::restructure;

    #[test]
    fn smoke_sizes_and_validity() {
        for modules in [1usize, 2, 5, 64, 1000] {
            let cfg = MegaConfig::new(modules);
            let bench = mega_floorplan(&cfg);
            assert_eq!(bench.tree.module_count(), modules);
            assert!(bench.tree.validate().is_ok());
            assert_eq!(sequential_module_count(&bench.tree), modules);
        }
    }

    #[test]
    fn deterministic_in_config() {
        let cfg = MegaConfig::new(2_000).with_wheel_density(0.3);
        assert_eq!(mega_floorplan(&cfg), mega_floorplan(&cfg));
        let other = cfg.clone().with_seed(99);
        assert_ne!(mega_floorplan(&cfg), mega_floorplan(&other));
    }

    #[test]
    fn profiles_change_depth() {
        let n = 4_000;
        let balanced = mega_floorplan(&MegaConfig::new(n)).tree.depth();
        let deep = mega_floorplan(&MegaConfig::new(n).with_profile(DepthProfile::Deep))
            .tree
            .depth();
        let wide = mega_floorplan(&MegaConfig::new(n).with_profile(DepthProfile::Wide))
            .tree
            .depth();
        assert!(deep > balanced, "deep {deep} <= balanced {balanced}");
        assert!(wide < balanced, "wide {wide} >= balanced {balanced}");
        // Deep stays bounded so recursive consumers are stack-safe.
        assert!(deep < 400, "deep profile unexpectedly deep: {deep}");
    }

    #[test]
    fn wheels_respect_span_bound_and_restructure() {
        let cfg = MegaConfig::new(3_000).with_wheel_density(0.5);
        let bench = mega_floorplan(&cfg);
        let bin = restructure(&bench.tree).expect("valid");
        assert_eq!(bin.leaf_count(), 3_000);
        assert!(bin.lshape_count() > 0, "wheel density 0.5 placed no wheels");
    }

    #[test]
    fn zero_wheel_density_is_pure_slicing() {
        let bench = mega_floorplan(&MegaConfig::new(500).with_wheel_density(0.0));
        let bin = restructure(&bench.tree).expect("valid");
        assert_eq!(bin.lshape_count(), 0);
    }

    #[test]
    fn library_matches_fatness() {
        let cfg = MegaConfig::new(200).with_impls(6);
        let bench = mega_floorplan(&cfg);
        let lib = mega_library(&bench.tree, &cfg);
        assert_eq!(lib.len(), 200);
        // Deterministic.
        assert_eq!(lib, mega_library(&bench.tree, &cfg));
    }

    #[test]
    fn depth_profile_parse_round_trips() {
        for p in [
            DepthProfile::Balanced,
            DepthProfile::Deep,
            DepthProfile::Wide,
        ] {
            assert_eq!(DepthProfile::parse(p.name()), Ok(p));
        }
        assert!(DepthProfile::parse("bogus").is_err());
    }
}
