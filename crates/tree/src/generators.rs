//! Benchmark floorplan generators: the FP1–FP4 test floorplans of paper §5
//! (Figure 8), the Figure-1 style example, and seeded random floorplans.
//!
//! The paper's Figure 8 drawings are not machine-readable; these
//! reconstructions preserve the documented structure — the module counts
//! (25 / 49 / 120 / 245), deep hierarchies mixing wheels and slices, and
//! the FP3/FP4 composition "a wheel of five blocks, each block a smaller
//! benchmark floorplan". See `DESIGN.md` for the substitution note.

use fp_prng::StdRng;

use crate::{soft_library, Chirality, CutDir, FloorplanTree, ModuleLibrary, NodeId, NodeKind};

/// A named benchmark floorplan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Benchmark {
    /// Benchmark name (`FP1` … `FP4`, `FIG1`, …).
    pub name: String,
    /// The floorplan topology. Leaf module ids are `0 .. module_count`.
    pub tree: FloorplanTree,
}

/// Incremental builder that hands out sequential module ids.
struct Builder {
    tree: FloorplanTree,
    next_module: usize,
}

impl Builder {
    fn new() -> Self {
        Builder {
            tree: FloorplanTree::new(),
            next_module: 0,
        }
    }

    fn leaf(&mut self) -> NodeId {
        let id = self.tree.leaf(self.next_module);
        self.next_module += 1;
        id
    }

    /// A wheel whose five children are fresh leaves.
    fn leaf_wheel(&mut self, ch: Chirality) -> NodeId {
        let a = self.leaf();
        let b = self.leaf();
        let c = self.leaf();
        let d = self.leaf();
        let e = self.leaf();
        self.tree.wheel(ch, [a, b, c, d, e])
    }

    /// An `rows × cols` grid of fresh leaves built from slices.
    fn grid(&mut self, rows: usize, cols: usize) -> NodeId {
        let mut row_ids = Vec::with_capacity(rows);
        for _ in 0..rows {
            let cells: Vec<NodeId> = (0..cols).map(|_| self.leaf()).collect();
            row_ids.push(if cells.len() == 1 {
                cells[0]
            } else {
                self.tree.slice(CutDir::Vertical, cells)
            });
        }
        if row_ids.len() == 1 {
            row_ids[0]
        } else {
            self.tree.slice(CutDir::Horizontal, row_ids)
        }
    }

    fn finish(self, name: &str, root: NodeId) -> Benchmark {
        let mut tree = self.tree;
        tree.set_root(root);
        tree.validate().expect("generator produced a valid tree");
        Benchmark {
            name: name.to_owned(),
            tree,
        }
    }
}

/// The Figure-1 style running example: a 5-module floorplan with nested
/// slices (two modules beside each other on top of a three-module row).
#[must_use]
pub fn fig1() -> Benchmark {
    let mut b = Builder::new();
    let m0 = b.leaf();
    let m1 = b.leaf();
    let top = b.tree.slice(CutDir::Vertical, vec![m0, m1]);
    let m2 = b.leaf();
    let m3 = b.leaf();
    let m4 = b.leaf();
    let bottom = b.tree.slice(CutDir::Vertical, vec![m2, m3, m4]);
    let root = b.tree.slice(CutDir::Horizontal, vec![top, bottom]);
    b.finish("FIG1", root)
}

/// **FP1** (25 modules): a wheel of five 5-module wheels.
#[must_use]
pub fn fp1() -> Benchmark {
    let mut b = Builder::new();
    let blocks: Vec<NodeId> = (0..5).map(|i| b.leaf_wheel(chirality_for(i))).collect();
    let root = b.tree.wheel(
        Chirality::Clockwise,
        [blocks[0], blocks[1], blocks[2], blocks[3], blocks[4]],
    );
    b.finish("FP1", root)
}

/// The 24-module block of Figure 8(c): a wheel of four 5-wheels around a
/// 2×2 slicing grid (4·5 + 4 = 24).
fn fig8c_block(b: &mut Builder) -> NodeId {
    let arms: Vec<NodeId> = (0..4).map(|i| b.leaf_wheel(chirality_for(i))).collect();
    let centre = b.grid(2, 2);
    b.tree.wheel(
        Chirality::Clockwise,
        [arms[0], arms[1], arms[2], arms[3], centre],
    )
}

/// The 49-module block of Figure 8(b): a wheel of four 10-module cells
/// (two stacked 5-wheels each) around a 3×3 grid (4·10 + 9 = 49).
fn fp2_block(b: &mut Builder) -> NodeId {
    let mut arms = Vec::with_capacity(4);
    for i in 0..4 {
        let lower = b.leaf_wheel(chirality_for(i));
        let upper = b.leaf_wheel(chirality_for(i + 1));
        arms.push(b.tree.slice(CutDir::Horizontal, vec![lower, upper]));
    }
    let centre = b.grid(3, 3);
    b.tree.wheel(
        Chirality::Clockwise,
        [arms[0], arms[1], arms[2], arms[3], centre],
    )
}

/// **FP2** (49 modules): the Figure 8(b) block.
#[must_use]
pub fn fp2() -> Benchmark {
    let mut b = Builder::new();
    let root = fp2_block(&mut b);
    b.finish("FP2", root)
}

/// **FP3** (120 modules): Figure 8(d) — a wheel of five Figure 8(c)
/// 24-module blocks.
#[must_use]
pub fn fp3() -> Benchmark {
    let mut b = Builder::new();
    let blocks: Vec<NodeId> = (0..5).map(|_| fig8c_block(&mut b)).collect();
    let root = b.tree.wheel(
        Chirality::Clockwise,
        [blocks[0], blocks[1], blocks[2], blocks[3], blocks[4]],
    );
    b.finish("FP3", root)
}

/// **FP4** (245 modules): Figure 8(d) with each block the 49-module
/// Figure 8(b) floorplan.
#[must_use]
pub fn fp4() -> Benchmark {
    let mut b = Builder::new();
    let blocks: Vec<NodeId> = (0..5).map(|_| fp2_block(&mut b)).collect();
    let root = b.tree.wheel(
        Chirality::Clockwise,
        [blocks[0], blocks[1], blocks[2], blocks[3], blocks[4]],
    );
    b.finish("FP4", root)
}

/// All four paper benchmarks in order.
#[must_use]
pub fn paper_benchmarks() -> Vec<Benchmark> {
    vec![fp1(), fp2(), fp3(), fp4()]
}

fn chirality_for(i: usize) -> Chirality {
    if i.is_multiple_of(2) {
        Chirality::Clockwise
    } else {
        Chirality::Counterclockwise
    }
}

/// A seeded random floorplan with exactly `leaves` modules: hierarchies
/// are grown top-down, splitting blocks into slices (arity 2–4) or wheels
/// with probability `wheel_prob`.
///
/// # Panics
///
/// Panics if `leaves == 0` or `wheel_prob` is outside `[0, 1]`.
#[must_use]
pub fn random_floorplan(leaves: usize, wheel_prob: f64, seed: u64) -> Benchmark {
    assert!(leaves > 0, "need at least one module");
    assert!(
        (0.0..=1.0).contains(&wheel_prob),
        "wheel_prob must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::new();
    let root = grow(&mut b, leaves, wheel_prob, &mut rng);
    b.finish(&format!("RAND{leaves}-{seed}"), root)
}

fn grow(b: &mut Builder, leaves: usize, wheel_prob: f64, rng: &mut StdRng) -> NodeId {
    if leaves == 1 {
        return b.leaf();
    }
    if leaves >= 5 && rng.gen_bool(wheel_prob) {
        // Split into 5 parts of at least 1 each.
        let parts = split_into(rng, leaves, 5);
        let kids: Vec<NodeId> = parts.iter().map(|&p| grow(b, p, wheel_prob, rng)).collect();
        let ch = if rng.gen_bool(0.5) {
            Chirality::Clockwise
        } else {
            Chirality::Counterclockwise
        };
        return b
            .tree
            .wheel(ch, [kids[0], kids[1], kids[2], kids[3], kids[4]]);
    }
    let arity = rng.gen_range(2..=4usize.min(leaves));
    let parts = split_into(rng, leaves, arity);
    let kids: Vec<NodeId> = parts.iter().map(|&p| grow(b, p, wheel_prob, rng)).collect();
    let dir = if rng.gen_bool(0.5) {
        CutDir::Horizontal
    } else {
        CutDir::Vertical
    };
    b.tree.slice(dir, kids)
}

/// Splits `total` into `parts` positive summands, pseudo-randomly.
fn split_into(rng: &mut StdRng, total: usize, parts: usize) -> Vec<usize> {
    debug_assert!(total >= parts);
    let mut sizes = vec![1usize; parts];
    for _ in 0..total - parts {
        let idx = rng.gen_range(0..parts);
        sizes[idx] += 1;
    }
    sizes
}

/// Generates an MCNC-flavoured module library for `tree`: mostly hard,
/// rotatable macros whose areas spread over two orders of magnitude
/// (log-uniform), plus a minority of soft macros with a few shape-curve
/// points — the composition of the classic `ami33`/`ami49` benchmark
/// suites. Deterministic in `seed`.
#[must_use]
pub fn mcnc_like_library(tree: &FloorplanTree, seed: u64) -> ModuleLibrary {
    use crate::{soft_module, Module};
    use fp_geom::{Coord, Rect};
    let count = tree.module_count();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4d43_4e43); // "MCNC"
    (0..count)
        .map(|i| {
            // Areas log-uniform in [50, 5000].
            let area = (50.0 * (100.0f64).powf(rng.gen_range(0.0..1.0))).round() as u64;
            if rng.gen_bool(0.75) {
                // Hard macro with a bounded random aspect ratio, rotatable.
                let aspect = rng.gen_range(1.0..3.0f64);
                let w = ((area as f64 * aspect).sqrt().round() as Coord).max(1);
                let h = area.div_ceil(w).max(1);
                Module::hard(format!("hm{i}"), Rect::new(w, h), true)
            } else {
                let points = rng.gen_range(3..=6);
                soft_module(format!("sm{i}"), area, 2.5, points, &mut rng)
            }
        })
        .collect()
}

/// An `ami33`-flavoured instance: 33 modules, mostly-slicing topology,
/// MCNC-like library. Deterministic.
#[must_use]
pub fn ami33_like() -> (Benchmark, ModuleLibrary) {
    // Seed chosen so the realized layout keeps plausible dead space under
    // the workspace PRNG streams.
    let mut bench = random_floorplan(33, 0.15, 34);
    bench.name = "AMI33L".to_owned();
    let lib = mcnc_like_library(&bench.tree, 34);
    (bench, lib)
}

/// An `ami49`-flavoured instance: 49 modules. Deterministic.
#[must_use]
pub fn ami49_like() -> (Benchmark, ModuleLibrary) {
    let mut bench = random_floorplan(49, 0.15, 49);
    bench.name = "AMI49L".to_owned();
    let lib = mcnc_like_library(&bench.tree, 49);
    (bench, lib)
}

/// Generates a module library sized for `tree`: one soft module per leaf,
/// each with exactly `n` non-redundant implementations, deterministic in
/// `seed`. This mirrors the paper's protocol of testing each floorplan
/// with several module sets (vary the seed) and several `N` values.
#[must_use]
pub fn module_library(tree: &FloorplanTree, n: usize, seed: u64) -> ModuleLibrary {
    let count = tree
        .leaves_in_order()
        .iter()
        .map(|&id| match tree.node(id).expect("leaf exists").kind {
            NodeKind::Leaf(m) => m,
            _ => unreachable!("leaves_in_order returns leaves"),
        })
        .max()
        .map_or(0, |m| m + 1);
    soft_library(count, n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restructure::restructure;

    #[test]
    fn paper_benchmark_module_counts() {
        let counts: Vec<(String, usize)> = paper_benchmarks()
            .into_iter()
            .map(|b| (b.name.clone(), b.tree.module_count()))
            .collect();
        assert_eq!(
            counts,
            vec![
                ("FP1".to_owned(), 25),
                ("FP2".to_owned(), 49),
                ("FP3".to_owned(), 120),
                ("FP4".to_owned(), 245),
            ]
        );
    }

    #[test]
    fn benchmarks_are_valid_and_restructurable() {
        for bench in paper_benchmarks().into_iter().chain([fig1()]) {
            assert!(bench.tree.validate().is_ok(), "{}", bench.name);
            let bin = restructure(&bench.tree).expect("restructure");
            assert_eq!(
                bin.leaf_count(),
                bench.tree.module_count(),
                "{}",
                bench.name
            );
        }
    }

    #[test]
    fn fp1_has_six_wheels() {
        let fp1 = fp1();
        let wheels = (0..fp1.tree.len())
            .filter(|&i| matches!(fp1.tree.node(i).expect("node").kind, NodeKind::Wheel(_)))
            .count();
        assert_eq!(wheels, 6);
        // 4 wheel stages each => 24 joins; 25 leaves => 49 binary nodes.
        let bin = restructure(&fp1.tree).expect("restructure");
        assert_eq!(bin.len(), 49);
        assert_eq!(bin.lshape_count(), 18);
    }

    #[test]
    fn fig1_is_five_modules() {
        let f = fig1();
        assert_eq!(f.tree.module_count(), 5);
        assert_eq!(f.tree.depth(), 3);
    }

    #[test]
    fn module_ids_are_sequential() {
        for bench in paper_benchmarks() {
            let mut ids: Vec<usize> = bench
                .tree
                .leaves_in_order()
                .iter()
                .map(|&id| match bench.tree.node(id).expect("leaf").kind {
                    NodeKind::Leaf(m) => m,
                    _ => unreachable!(),
                })
                .collect();
            ids.sort_unstable();
            let expected: Vec<usize> = (0..bench.tree.module_count()).collect();
            assert_eq!(ids, expected, "{}", bench.name);
        }
    }

    #[test]
    fn random_floorplans_hit_leaf_counts() {
        for (leaves, seed) in [(1usize, 0u64), (2, 1), (7, 2), (30, 3), (64, 4)] {
            let b = random_floorplan(leaves, 0.5, seed);
            assert_eq!(b.tree.module_count(), leaves, "leaves {leaves}");
            assert!(b.tree.validate().is_ok());
        }
        // Determinism.
        assert_eq!(random_floorplan(20, 0.4, 9), random_floorplan(20, 0.4, 9));
        assert_ne!(random_floorplan(20, 0.4, 9), random_floorplan(20, 0.4, 10));
    }

    #[test]
    fn mcnc_like_instances() {
        let (b33, l33) = ami33_like();
        assert_eq!(b33.tree.module_count(), 33);
        assert_eq!(l33.len(), 33);
        assert!(b33.tree.validate().is_ok());
        let (b49, l49) = ami49_like();
        assert_eq!(b49.tree.module_count(), 49);
        assert_eq!(l49.len(), 49);
        // Deterministic.
        assert_eq!(ami33_like(), ami33_like());
        // Areas spread over at least one order of magnitude.
        let areas: Vec<u128> = l49
            .iter()
            .map(|m| m.implementations().min_area_value().expect("non-empty"))
            .collect();
        let max = areas.iter().max().expect("non-empty");
        let min = areas.iter().min().expect("non-empty");
        assert!(max / min.max(&1) >= 10, "spread {max}/{min}");
    }

    #[test]
    fn module_library_covers_all_leaves() {
        let fp1 = fp1();
        let lib = module_library(&fp1.tree, 6, 11);
        assert_eq!(lib.len(), 25);
        assert!(lib.iter().all(|m| m.implementations().len() == 6));
    }
}
