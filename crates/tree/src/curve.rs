//! Continuous soft-module shape curves (paper §6).
//!
//! The concluding remarks of the paper point out that modules with an
//! *infinite* implementation set along a continuous shape curve
//! `w · h >= area` can still be handled: approximate the curve by a large
//! number of points and let the selection algorithms keep the working set
//! small. [`ShapeCurve`] models such a module analytically and produces
//! the discretizations — including an error-controlled one that samples
//! densely and then keeps the *optimal* subset within a staircase-error
//! budget (via `fp-select`'s machinery downstream; here the dense sampling
//! itself is provided).

use core::fmt;

use fp_geom::{Coord, Rect};
use fp_shape::RList;

use crate::Module;

/// A continuous soft-module shape curve: any `w × h` with
/// `w · h >= area` and aspect ratio `max(w,h)/min(w,h) <= max_aspect` is
/// realizable.
///
/// # Example
///
/// ```
/// use fp_tree::curve::ShapeCurve;
///
/// let curve = ShapeCurve::new(600, 3.0)?;
/// assert!(curve.feasible(30, 20));  // 600 at 1.5:1
/// assert!(!curve.feasible(60, 10)); // 6:1 is too elongated
/// assert!(!curve.feasible(20, 20)); // 400 < 600
/// let module = curve.sample("alu", 8);
/// assert_eq!(module.implementations().len(), 8);
/// # Ok::<(), fp_tree::curve::InvalidCurveError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeCurve {
    area: u64,
    max_aspect: f64,
}

/// Error for invalid curve parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidCurveError {
    area: u64,
    max_aspect: f64,
}

impl fmt::Display for InvalidCurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid shape curve (area {}, max aspect {}): area must be positive and aspect >= 1",
            self.area, self.max_aspect
        )
    }
}

impl std::error::Error for InvalidCurveError {}

impl ShapeCurve {
    /// Creates a curve for a module of `area` with aspect ratios bounded
    /// by `max_aspect >= 1`.
    ///
    /// # Errors
    ///
    /// [`InvalidCurveError`] when `area == 0` or `max_aspect < 1`.
    pub fn new(area: u64, max_aspect: f64) -> Result<Self, InvalidCurveError> {
        if area == 0 || max_aspect < 1.0 || max_aspect.is_nan() || !max_aspect.is_finite() {
            return Err(InvalidCurveError { area, max_aspect });
        }
        Ok(ShapeCurve { area, max_aspect })
    }

    /// The module area under the curve.
    #[must_use]
    pub fn area(&self) -> u64 {
        self.area
    }

    /// The aspect-ratio bound.
    #[must_use]
    pub fn max_aspect(&self) -> f64 {
        self.max_aspect
    }

    /// The narrowest integer width with a feasible height. A width below
    /// `⌈side/√aspect⌉ − 1` forces `h/w` past the aspect bound.
    #[must_use]
    pub fn min_width(&self) -> Coord {
        let side = (self.area as f64).sqrt();
        let lo = (((side / self.max_aspect.sqrt()).floor() as Coord).max(1))
            .saturating_sub(1)
            .max(1);
        (lo..lo + 4)
            .find(|&w| self.height_at(w).is_some())
            .unwrap_or(lo)
    }

    /// The widest *useful* integer width: beyond it, implementations still
    /// exist (pad the height to keep the aspect legal) but are dominated
    /// by a narrower one, so a shape list never needs them.
    #[must_use]
    pub fn max_width(&self) -> Coord {
        let side = (self.area as f64).sqrt();
        let hi = (side * self.max_aspect.sqrt()).ceil() as Coord + 1;
        let lo = self.min_width();
        (lo..=hi.max(lo))
            .rev()
            .find(|&w| self.height_at(w).is_some())
            .unwrap_or(lo)
    }

    /// `true` when a `w × h` rectangle realizes this module.
    #[must_use]
    pub fn feasible(&self, w: Coord, h: Coord) -> bool {
        if w == 0 || h == 0 {
            return false;
        }
        let aspect = (w.max(h) as f64) / (w.min(h) as f64);
        u128::from(w) * u128::from(h) >= u128::from(self.area) && aspect <= self.max_aspect + 1e-9
    }

    /// The minimal feasible height at width `w`, if any.
    ///
    /// Integer rounding means the minimal area-covering height can break
    /// the aspect bound in two ways: if the rectangle is too *flat*,
    /// raising the height to `⌈w/aspect⌉` can legalize it; if it is too
    /// *tall* (the width itself is too small), nothing helps.
    #[must_use]
    pub fn height_at(&self, w: Coord) -> Option<Coord> {
        if w == 0 {
            return None;
        }
        let h = self.area.div_ceil(w); // minimal area-covering height
        if self.feasible(w, h) {
            return Some(h);
        }
        if h < w {
            // Too flat: the smallest aspect-legal height.
            let h_legal = ((w as f64) / self.max_aspect).ceil() as Coord;
            let h_legal = h_legal.max(h);
            if self.feasible(w, h_legal) {
                return Some(h_legal);
            }
        }
        None
    }

    /// The curve discretized at every integer width — the densest exact
    /// staircase (the “large number of points” of §6).
    #[must_use]
    pub fn dense(&self) -> RList {
        let rects: Vec<Rect> = (self.min_width()..=self.max_width())
            .filter_map(|w| self.height_at(w).map(|h| Rect::new(w, h)))
            .collect();
        RList::from_candidates(rects)
    }

    /// A module sampling `points` implementations geometrically across the
    /// width range (the coarse discretization used when memory is tight
    /// up front).
    ///
    /// The result may hold fewer than `points` implementations if rounding
    /// collapses adjacent samples.
    ///
    /// # Panics
    ///
    /// Panics if `points == 0`.
    #[must_use]
    pub fn sample(&self, name: impl Into<String>, points: usize) -> Module {
        assert!(points > 0, "need at least one sample");
        let (lo, hi) = (self.min_width() as f64, self.max_width() as f64);
        let rects: Vec<Rect> = (0..points)
            .filter_map(|i| {
                let t = if points == 1 {
                    0.5
                } else {
                    i as f64 / (points - 1) as f64
                };
                let w = (lo * (hi / lo).powf(t)).round() as Coord;
                self.height_at(w).map(|h| Rect::new(w, h))
            })
            .collect();
        Module::new(name, rects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(ShapeCurve::new(0, 2.0).is_err());
        assert!(ShapeCurve::new(10, 0.5).is_err());
        assert!(ShapeCurve::new(10, f64::NAN).is_err());
        let c = ShapeCurve::new(10, 1.0).expect("square-only curve");
        assert_eq!(c.area(), 10);
        assert!(ShapeCurve::new(0, 0.0)
            .unwrap_err()
            .to_string()
            .contains("invalid shape curve"));
    }

    #[test]
    fn width_range_and_heights() {
        let c = ShapeCurve::new(600, 3.0).expect("valid");
        // sqrt(600) ~ 24.5; the feasible width range brackets [14.2, 42.4].
        assert!(
            c.min_width() >= 14 && c.min_width() <= 15,
            "{}",
            c.min_width()
        );
        assert!(
            c.max_width() >= 42 && c.max_width() <= 44,
            "{}",
            c.max_width()
        );
        assert_eq!(c.height_at(30), Some(20));
        assert_eq!(c.height_at(13), None, "13x47 needed, aspect 3.6");
        // Every width in the advertised range is feasible.
        for w in c.min_width()..=c.max_width() {
            assert!(c.height_at(w).is_some(), "width {w}");
        }
    }

    #[test]
    fn dense_staircase_is_exact() {
        let c = ShapeCurve::new(600, 3.0).expect("valid");
        let dense = c.dense();
        assert!(!dense.is_empty());
        for &r in dense.iter() {
            assert!(c.feasible(r.w, r.h), "{r}");
            // Minimality: one unit shorter is infeasible.
            assert!(!c.feasible(r.w, r.h - 1), "{r} not minimal");
        }
    }

    #[test]
    fn sampling_is_a_subset_quality_wise() {
        let c = ShapeCurve::new(600, 3.0).expect("valid");
        let coarse = c.sample("m", 5);
        for &r in coarse.implementations().iter() {
            assert!(c.feasible(r.w, r.h));
        }
        assert!(coarse.implementations().len() <= c.dense().len());
    }

    proptest! {
        /// Every dense corner is feasible and minimal; the staircase covers
        /// the whole width range.
        #[test]
        fn dense_correct(area in 1u64..5000, aspect in 1.0f64..6.0) {
            let c = ShapeCurve::new(area, aspect).expect("valid parameters");
            let dense = c.dense();
            prop_assert!(!dense.is_empty(), "at least the square-ish point");
            for &r in dense.iter() {
                prop_assert!(c.feasible(r.w, r.h));
            }
        }

        /// feasible() is monotone: growing a feasible rectangle inside the
        /// aspect bound stays feasible.
        #[test]
        fn feasibility_monotone(area in 1u64..2000, w in 1u64..200, h in 1u64..200) {
            let c = ShapeCurve::new(area, 4.0).expect("valid");
            if c.feasible(w, h) {
                // Grow the SHORTER side (keeps the aspect from worsening).
                let (gw, gh) = if w <= h { (w + 1, h) } else { (w, h + 1) };
                prop_assert!(c.feasible(gw, gh));
            }
        }
    }
}
