//! Struct-of-arrays floorplan tree layout.
//!
//! [`FloorplanTree`] stores one heap-allocated `Vec<NodeId>` per node, so
//! a traversal of an `n`-node tree chases `n` scattered allocations. At
//! mega scale (10k–500k modules) that dominates the cost of validation
//! and restructuring. [`SoaTree`] packs the same tree into four flat
//! arrays — a kind tag, a leaf payload, and a CSR (compressed sparse row)
//! child adjacency — so every traversal is a linear walk over contiguous
//! memory.
//!
//! The conversion performs the full structural validation of
//! [`FloorplanTree::validate`] (same errors, same precedence), so a
//! `SoaTree` is valid by construction and downstream passes (the
//! restructurer, fingerprints) can index without re-checking.

use crate::{Chirality, CutDir, FloorplanTree, NodeId, NodeKind, TreeError};

/// Node kind tags for the flat layout (one byte per node).
const TAG_LEAF: u8 = 0;
const TAG_HSLICE: u8 = 1;
const TAG_VSLICE: u8 = 2;
const TAG_WHEEL_CW: u8 = 3;
const TAG_WHEEL_CCW: u8 = 4;

/// A validated floorplan tree in struct-of-arrays form: kind tags, leaf
/// payloads, and a CSR child list, all contiguous.
///
/// Build with [`SoaTree::from_tree`]; the conversion validates, so every
/// accessor can assume structural invariants hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaTree {
    /// One kind tag per node (`TAG_*`).
    tags: Vec<u8>,
    /// Leaf module id (undefined for internal nodes).
    payload: Vec<u32>,
    /// CSR offsets: node `i`'s children are
    /// `children[child_start[i] .. child_start[i + 1]]`.
    child_start: Vec<u32>,
    /// Flat child id array, grouped by parent in node order.
    children: Vec<u32>,
    root: u32,
}

impl SoaTree {
    /// Converts (and fully validates) a pointer tree.
    ///
    /// # Errors
    ///
    /// The same [`TreeError`]s as [`FloorplanTree::validate`], detected in
    /// the same order.
    pub fn from_tree(tree: &FloorplanTree) -> Result<SoaTree, TreeError> {
        let n = tree.len();
        assert!(n < u32::MAX as usize, "tree too large for SoA layout");
        let mut out = SoaTree {
            tags: Vec::with_capacity(n),
            payload: Vec::with_capacity(n),
            child_start: Vec::with_capacity(n + 1),
            children: Vec::new(),
            root: tree.root() as u32,
        };
        out.child_start.push(0);
        let mut parent_count = vec![0u32; n];
        for id in 0..n {
            let node = tree.node(id).expect("id in range");
            for &c in &node.children {
                if c >= n {
                    return Err(TreeError::DanglingChild {
                        parent: id,
                        child: c,
                    });
                }
                parent_count[c] += 1;
                out.children.push(c as u32);
            }
            let (tag, payload) = match node.kind {
                NodeKind::Leaf(m) => {
                    if !node.children.is_empty() {
                        return Err(TreeError::LeafWithChildren { node: id });
                    }
                    (TAG_LEAF, m as u32)
                }
                NodeKind::Slice(dir) => {
                    if node.children.len() < 2 {
                        return Err(TreeError::SliceTooSmall {
                            node: id,
                            arity: node.children.len(),
                        });
                    }
                    let tag = match dir {
                        CutDir::Horizontal => TAG_HSLICE,
                        CutDir::Vertical => TAG_VSLICE,
                    };
                    (tag, 0)
                }
                NodeKind::Wheel(ch) => {
                    if node.children.len() != 5 {
                        return Err(TreeError::WheelArity {
                            node: id,
                            arity: node.children.len(),
                        });
                    }
                    let tag = match ch {
                        Chirality::Clockwise => TAG_WHEEL_CW,
                        Chirality::Counterclockwise => TAG_WHEEL_CCW,
                    };
                    (tag, 0)
                }
            };
            out.tags.push(tag);
            out.payload.push(payload);
            out.child_start.push(out.children.len() as u32);
        }
        if n == 0 {
            return Ok(out);
        }
        if parent_count[out.root as usize] != 0 {
            return Err(TreeError::NotATree {
                node: out.root as usize,
            });
        }
        for (id, &count) in parent_count.iter().enumerate() {
            if count > 1 {
                return Err(TreeError::NotATree { node: id });
            }
        }
        // Reachability from the root over the flat adjacency.
        let mut seen = vec![false; n];
        let mut stack = vec![out.root];
        seen[out.root as usize] = true;
        while let Some(id) = stack.pop() {
            for &c in out.node_children(id as usize) {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    stack.push(c);
                }
            }
        }
        if let Some(orphan) = seen.iter().position(|&s| !s) {
            return Err(TreeError::Unreachable { node: orphan });
        }
        Ok(out)
    }

    /// The root node id.
    #[inline]
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root as usize
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// `true` if the tree has no nodes.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// The children of `id` as a contiguous slice.
    #[inline]
    #[must_use]
    pub fn node_children(&self, id: NodeId) -> &[u32] {
        let lo = self.child_start[id] as usize;
        let hi = self.child_start[id + 1] as usize;
        &self.children[lo..hi]
    }

    /// `true` if `id` is a leaf.
    #[inline]
    #[must_use]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.tags[id] == TAG_LEAF
    }

    /// The node kind of `id`, reconstructed from the packed tag.
    #[must_use]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        match self.tags[id] {
            TAG_LEAF => NodeKind::Leaf(self.payload[id] as usize),
            TAG_HSLICE => NodeKind::Slice(CutDir::Horizontal),
            TAG_VSLICE => NodeKind::Slice(CutDir::Vertical),
            TAG_WHEEL_CW => NodeKind::Wheel(Chirality::Clockwise),
            TAG_WHEEL_CCW => NodeKind::Wheel(Chirality::Counterclockwise),
            other => unreachable!("invalid SoA tag {other}"),
        }
    }

    /// Leaf node ids in depth-first left-to-right order — the canonical
    /// leaf order, identical to [`FloorplanTree::leaves_in_order`].
    #[must_use]
    pub fn leaves_in_order(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if self.is_leaf(id as usize) {
                out.push(id as usize);
            } else {
                stack.extend(self.node_children(id as usize).iter().rev());
            }
        }
        out
    }

    /// Maximum depth (root = 1; empty tree = 0), identical to
    /// [`FloorplanTree::depth`].
    #[must_use]
    pub fn depth(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        let mut max = 0usize;
        let mut stack = vec![(self.root, 1usize)];
        while let Some((id, d)) = stack.pop() {
            max = max.max(d);
            for &c in self.node_children(id as usize) {
                stack.push((c, d + 1));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trips_kinds_and_children() {
        let fp1 = generators::fp1();
        let soa = SoaTree::from_tree(&fp1.tree).expect("valid");
        assert_eq!(soa.len(), fp1.tree.len());
        assert_eq!(soa.root(), fp1.tree.root());
        for id in 0..soa.len() {
            let node = fp1.tree.node(id).expect("exists");
            assert_eq!(soa.kind(id), node.kind, "node {id}");
            let kids: Vec<usize> = soa.node_children(id).iter().map(|&c| c as usize).collect();
            assert_eq!(kids, node.children, "node {id}");
        }
    }

    #[test]
    fn traversals_match_pointer_tree() {
        for bench in generators::paper_benchmarks() {
            let soa = SoaTree::from_tree(&bench.tree).expect("valid");
            assert_eq!(
                soa.leaves_in_order(),
                bench.tree.leaves_in_order(),
                "{}",
                bench.name
            );
            assert_eq!(soa.depth(), bench.tree.depth(), "{}", bench.name);
        }
    }

    #[test]
    fn validation_errors_match_pointer_tree() {
        use crate::{CutDir, FloorplanTree};
        // Slice arity.
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        t.slice(CutDir::Vertical, vec![a]);
        assert_eq!(SoaTree::from_tree(&t).err(), t.validate().err());
        // Dangling child.
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        t.slice(CutDir::Vertical, vec![a, 99]);
        assert_eq!(SoaTree::from_tree(&t).err(), t.validate().err());
        // Shared child.
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Vertical, vec![a, b]);
        let d = t.leaf(2);
        t.slice(CutDir::Horizontal, vec![2, d, b]);
        assert_eq!(SoaTree::from_tree(&t).err(), t.validate().err());
        // Unreachable node.
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        let s = t.slice(CutDir::Vertical, vec![a, b]);
        let _orphan = t.leaf(2);
        t.set_root(s);
        assert_eq!(SoaTree::from_tree(&t).err(), t.validate().err());
    }

    #[test]
    fn empty_tree_is_valid() {
        let soa = SoaTree::from_tree(&FloorplanTree::new()).expect("valid");
        assert!(soa.is_empty());
        assert_eq!(soa.depth(), 0);
        assert!(soa.leaves_in_order().is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        /// On random floorplans (wheels included) the SoA mirror agrees
        /// with the pointer tree on every per-node query and every
        /// whole-tree traversal.
        #[test]
        fn soa_matches_pointer_tree(leaves in 2usize..40, seed in 0u64..1_000) {
            let bench = generators::random_floorplan(leaves, 0.4, seed);
            let soa = SoaTree::from_tree(&bench.tree).expect("generated tree is valid");
            proptest::prop_assert_eq!(soa.len(), bench.tree.len());
            proptest::prop_assert_eq!(soa.root(), bench.tree.root());
            proptest::prop_assert_eq!(soa.depth(), bench.tree.depth());
            proptest::prop_assert_eq!(soa.leaves_in_order(), bench.tree.leaves_in_order());
            for id in 0..soa.len() {
                let node = bench.tree.node(id).expect("node exists");
                proptest::prop_assert_eq!(soa.kind(id), node.kind);
                let kids: Vec<usize> =
                    soa.node_children(id).iter().map(|&c| c as usize).collect();
                proptest::prop_assert_eq!(kids, node.children.clone());
            }
        }
    }
}
