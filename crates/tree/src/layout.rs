//! Layout realization: turning an implementation choice into placed
//! rectangles, and validating the result.
//!
//! Given a floorplan tree, a module library, and one chosen implementation
//! per leaf, the realizer computes every block's minimal size bottom-up
//! (slice composition and the closed-form wheel envelope) and then assigns
//! concrete coordinates top-down. The resulting layout is the physical
//! witness of an optimizer solution: the envelope area must equal the
//! optimizer's reported area, no two modules may overlap, and every module
//! must lie inside the envelope — all of which [`Layout::validate`] checks.

use core::fmt;

use fp_geom::{first_overlap, Area, Coord, PlacedRect, Point, Rect};
use fp_shape::combine::Compose;

use crate::{wheel, CutDir, FloorplanTree, ModuleLibrary, NodeId, NodeKind};

/// One implementation choice per leaf, in [`FloorplanTree::leaves_in_order`]
/// order: `choices[i]` indexes the implementation list of the module at the
/// `i`-th leaf.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Assignment {
    /// Implementation indices, one per leaf.
    pub choices: Vec<usize>,
}

impl Assignment {
    /// Wraps a choice vector.
    #[must_use]
    pub fn new(choices: Vec<usize>) -> Self {
        Assignment { choices }
    }

    /// The all-zeros assignment (every module's first implementation) for
    /// a tree with `leaves` leaves.
    #[must_use]
    pub fn first_fit(leaves: usize) -> Self {
        Assignment {
            choices: vec![0; leaves],
        }
    }
}

/// Errors reported when realizing an assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutError {
    /// The assignment length does not match the leaf count.
    ChoiceCount {
        /// Choices supplied.
        got: usize,
        /// Leaves in the tree.
        expected: usize,
    },
    /// A leaf references a module missing from the library.
    MissingModule {
        /// The leaf node.
        leaf: NodeId,
        /// The missing module id.
        module: usize,
    },
    /// A choice index is out of range for its module's implementation list.
    ChoiceOutOfRange {
        /// The leaf node.
        leaf: NodeId,
        /// The choice index.
        choice: usize,
        /// The implementation count.
        len: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::ChoiceCount { got, expected } => {
                write!(f, "assignment has {got} choices for {expected} leaves")
            }
            LayoutError::MissingModule { leaf, module } => {
                write!(f, "leaf {leaf} references missing module {module}")
            }
            LayoutError::ChoiceOutOfRange { leaf, choice, len } => {
                write!(
                    f,
                    "leaf {leaf} choice {choice} out of range ({len} implementations)"
                )
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A realized floorplan: every module placed, plus the enveloping
/// rectangle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// `(leaf node id, placed rectangle)` for every module instance.
    pub placed: Vec<(NodeId, PlacedRect)>,
    /// The enveloping rectangle (minimal for the given choices).
    pub envelope: Rect,
}

impl Layout {
    /// The envelope area.
    #[must_use]
    pub fn area(&self) -> Area {
        self.envelope.area()
    }

    /// Envelope area minus the summed module areas (all padding).
    #[must_use]
    pub fn dead_space(&self) -> Area {
        let used: Area = self.placed.iter().map(|(_, r)| r.area()).sum();
        self.area() - used
    }

    /// Polygonizes the dead space into connected whitespace regions
    /// (scanline union over the placed rectangles). The report's total is
    /// exactly [`Layout::dead_space`].
    #[must_use]
    pub fn whitespace(&self) -> fp_geom::WhitespaceReport {
        let rects: Vec<PlacedRect> = self.placed.iter().map(|&(_, r)| r).collect();
        fp_geom::whitespace(self.envelope, &rects)
    }

    /// Full layout post-processing: whitespace regions plus the merged
    /// rectilinear outlines of the occupied area, for export.
    #[must_use]
    pub fn polygonize(&self) -> fp_geom::Polygonized {
        let rects: Vec<PlacedRect> = self.placed.iter().map(|&(_, r)| r).collect();
        fp_geom::polygonize(self.envelope, &rects)
    }

    /// Renders the layout as ASCII art, at most `max_cols` characters wide.
    /// Each module is filled with a letter (`a`–`z` cycling by leaf order);
    /// dead space is `.`.
    ///
    /// ```
    /// use fp_tree::{generators, layout};
    ///
    /// let bench = generators::fig1();
    /// let lib = generators::module_library(&bench.tree, 3, 7);
    /// let realized = layout::realize(&bench.tree, &lib, &layout::Assignment::first_fit(5))?;
    /// let art = realized.to_ascii(40);
    /// assert!(art.lines().count() > 1);
    /// # Ok::<(), fp_tree::layout::LayoutError>(())
    /// ```
    #[must_use]
    pub fn to_ascii(&self, max_cols: usize) -> String {
        let max_cols = max_cols.max(4) as u64;
        if self.envelope.w == 0 || self.envelope.h == 0 {
            return String::new();
        }
        // Scale so the envelope fits in max_cols columns (2 chars per cell
        // horizontally keeps aspect roughly square in terminals).
        let scale = self.envelope.w.div_ceil(max_cols).max(1);
        let cols = (self.envelope.w.div_ceil(scale)) as usize;
        let rows = (self.envelope.h.div_ceil(scale)) as usize;
        let mut grid = vec![vec![b'.'; cols]; rows];
        for (ord, &(_, r)) in self.placed.iter().enumerate() {
            let glyph = b'a' + (ord % 26) as u8;
            let x0 = (r.x_min() / scale) as usize;
            let x1 = ((r.x_max().div_ceil(scale)) as usize).min(cols);
            let y0 = (r.y_min() / scale) as usize;
            let y1 = ((r.y_max().div_ceil(scale)) as usize).min(rows);
            for row in grid.iter_mut().take(y1).skip(y0) {
                for cell in row.iter_mut().take(x1).skip(x0) {
                    *cell = glyph;
                }
            }
        }
        // y grows upward: print top row first.
        let mut out = String::with_capacity(rows * (cols + 1));
        for row in grid.iter().rev() {
            out.push_str(core::str::from_utf8(row).expect("ascii"));
            out.push('\n');
        }
        out
    }

    /// Checks physical validity: no two modules overlap and every module
    /// lies inside the envelope. Returns a description of the first
    /// violation, if any.
    #[must_use]
    pub fn validate(&self) -> Option<String> {
        let rects: Vec<PlacedRect> = self.placed.iter().map(|&(_, r)| r).collect();
        if let Some((i, j)) = first_overlap(&rects) {
            return Some(format!(
                "modules at leaves {} and {} overlap ({} vs {})",
                self.placed[i].0, self.placed[j].0, rects[i], rects[j]
            ));
        }
        let env = PlacedRect::new(Point::ORIGIN, self.envelope);
        for &(leaf, r) in &self.placed {
            if !r.contained_in(&env) {
                return Some(format!("module at leaf {leaf} escapes the envelope: {r}"));
            }
        }
        None
    }
}

/// Realizes an assignment into a concrete layout with the minimal
/// envelope.
///
/// # Errors
///
/// Returns a [`LayoutError`] if the assignment does not match the tree and
/// library.
///
/// # Panics
///
/// Panics if `tree` fails validation (call [`FloorplanTree::validate`]
/// first for a graceful error).
///
/// # Example
///
/// ```
/// use fp_tree::{generators, layout};
///
/// let bench = generators::fig1();
/// let lib = generators::module_library(&bench.tree, 3, 7);
/// let assignment = layout::Assignment::first_fit(5);
/// let realized = layout::realize(&bench.tree, &lib, &assignment)?;
/// assert_eq!(realized.placed.len(), 5);
/// assert_eq!(realized.validate(), None);
/// # Ok::<(), fp_tree::layout::LayoutError>(())
/// ```
pub fn realize(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    assignment: &Assignment,
) -> Result<Layout, LayoutError> {
    assert!(tree.validate().is_ok(), "realize requires a valid tree");
    let leaves = tree.leaves_in_order();
    if assignment.choices.len() != leaves.len() {
        return Err(LayoutError::ChoiceCount {
            got: assignment.choices.len(),
            expected: leaves.len(),
        });
    }

    // Resolve each leaf's chosen rectangle.
    let mut chosen: Vec<Option<Rect>> = vec![None; tree.len()];
    for (&leaf, &choice) in leaves.iter().zip(&assignment.choices) {
        let module = match tree.node(leaf).expect("leaf exists").kind {
            NodeKind::Leaf(m) => m,
            _ => unreachable!("leaves_in_order returns leaves"),
        };
        let m = library
            .get(module)
            .ok_or(LayoutError::MissingModule { leaf, module })?;
        let rect = m
            .implementations()
            .get(choice)
            .ok_or(LayoutError::ChoiceOutOfRange {
                leaf,
                choice,
                len: m.implementations().len(),
            })?;
        chosen[leaf] = Some(rect);
    }

    if tree.is_empty() {
        return Ok(Layout {
            placed: Vec::new(),
            envelope: Rect::new(0, 0),
        });
    }

    // Bottom-up minimal sizes.
    let mut size: Vec<Rect> = vec![Rect::new(0, 0); tree.len()];
    compute_size(tree, tree.root(), &chosen, &mut size);

    // Top-down placement.
    let mut placed = Vec::with_capacity(leaves.len());
    place(
        tree,
        tree.root(),
        Point::ORIGIN,
        size[tree.root()],
        &size,
        &mut placed,
    );

    Ok(Layout {
        placed,
        envelope: size[tree.root()],
    })
}

/// Iterative post-order size computation (explicit stack: arbitrarily
/// deep floorplans must not exhaust the call stack).
fn compute_size(tree: &FloorplanTree, root: NodeId, chosen: &[Option<Rect>], size: &mut [Rect]) {
    let mut stack = vec![(root, false)];
    while let Some((id, expanded)) = stack.pop() {
        let node = tree.node(id).expect("valid tree");
        if !expanded {
            stack.push((id, true));
            for &c in node.children.iter().rev() {
                stack.push((c, false));
            }
            continue;
        }
        size[id] = match &node.kind {
            NodeKind::Leaf(_) => chosen[id].expect("all leaves resolved"),
            NodeKind::Slice(dir) => {
                let how = match dir {
                    CutDir::Vertical => Compose::Beside,
                    CutDir::Horizontal => Compose::Stack,
                };
                node.children
                    .iter()
                    .map(|&c| size[c])
                    .reduce(|a, b| how.apply(a, b))
                    .expect("slices have children")
            }
            NodeKind::Wheel(_) => wheel::min_envelope([
                size[node.children[0]],
                size[node.children[1]],
                size[node.children[2]],
                size[node.children[3]],
                size[node.children[4]],
            ]),
        };
    }
}

/// Iterative pre-order placement.
fn place(
    tree: &FloorplanTree,
    root: NodeId,
    origin: Point,
    region: Rect,
    size: &[Rect],
    placed: &mut Vec<(NodeId, PlacedRect)>,
) {
    let mut stack = vec![(root, origin, region)];
    while let Some((id, origin, region)) = stack.pop() {
        debug_assert!(region.dominates(size[id]), "region must fit the block");
        let node = tree.node(id).expect("valid tree");
        match &node.kind {
            NodeKind::Leaf(_) => {
                placed.push((id, PlacedRect::new(origin, size[id])));
            }
            NodeKind::Slice(dir) => {
                // Children anchored at cumulative offsets of their minimal
                // extent along the cut axis; they span the region across it.
                let mut offset: Coord = 0;
                for &c in &node.children {
                    match dir {
                        CutDir::Vertical => {
                            stack.push((
                                c,
                                Point::new(origin.x + offset, origin.y),
                                Rect::new(size[c].w, region.h),
                            ));
                            offset += size[c].w;
                        }
                        CutDir::Horizontal => {
                            stack.push((
                                c,
                                Point::new(origin.x, origin.y + offset),
                                Rect::new(region.w, size[c].h),
                            ));
                            offset += size[c].h;
                        }
                    }
                }
            }
            NodeKind::Wheel(ch) => {
                let kids = [
                    size[node.children[0]],
                    size[node.children[1]],
                    size[node.children[2]],
                    size[node.children[3]],
                    size[node.children[4]],
                ];
                for (i, (x, y, r)) in wheel::regions(kids, *ch, region).into_iter().enumerate() {
                    stack.push((node.children[i], Point::new(origin.x + x, origin.y + y), r));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::{Chirality, Module};
    use proptest::prelude::*;

    fn domino_wheel() -> (FloorplanTree, ModuleLibrary) {
        let mut t = FloorplanTree::new();
        let ids: Vec<NodeId> = (0..5).map(|m| t.leaf(m)).collect();
        t.wheel(
            Chirality::Clockwise,
            [ids[0], ids[1], ids[2], ids[3], ids[4]],
        );
        let lib: ModuleLibrary = [
            Module::hard("a", Rect::new(1, 2), false),
            Module::hard("b", Rect::new(2, 1), false),
            Module::hard("c", Rect::new(1, 2), false),
            Module::hard("d", Rect::new(2, 1), false),
            Module::hard("e", Rect::new(1, 1), false),
        ]
        .into_iter()
        .collect();
        (t, lib)
    }

    #[test]
    fn domino_pinwheel_tiles_perfectly() {
        let (t, lib) = domino_wheel();
        let layout = realize(&t, &lib, &Assignment::first_fit(5)).expect("realizes");
        assert_eq!(layout.envelope, Rect::new(3, 3));
        assert_eq!(layout.dead_space(), 0);
        assert_eq!(layout.validate(), None);
    }

    #[test]
    fn slice_stack_positions() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Horizontal, vec![a, b]);
        let lib: ModuleLibrary = [
            Module::hard("a", Rect::new(4, 2), false),
            Module::hard("b", Rect::new(3, 3), false),
        ]
        .into_iter()
        .collect();
        let layout = realize(&t, &lib, &Assignment::first_fit(2)).expect("realizes");
        assert_eq!(layout.envelope, Rect::new(4, 5));
        // b sits on top of a.
        let positions: Vec<(NodeId, Point)> = layout
            .placed
            .iter()
            .map(|&(id, r)| (id, r.origin))
            .collect();
        assert!(positions.contains(&(a, Point::new(0, 0))));
        assert!(positions.contains(&(b, Point::new(0, 2))));
        assert_eq!(layout.validate(), None);
        assert_eq!(layout.dead_space(), 20 - 8 - 9);
    }

    #[test]
    fn whitespace_report_matches_dead_space() {
        let (t, lib) = domino_wheel();
        let tiled = realize(&t, &lib, &Assignment::first_fit(5)).expect("realizes");
        let ws = tiled.whitespace();
        assert_eq!(ws.total, 0);
        assert_eq!(ws.count(), 0);

        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Horizontal, vec![a, b]);
        let lib: ModuleLibrary = [
            Module::hard("a", Rect::new(4, 2), false),
            Module::hard("b", Rect::new(3, 3), false),
        ]
        .into_iter()
        .collect();
        let layout = realize(&t, &lib, &Assignment::first_fit(2)).expect("realizes");
        let ws = layout.whitespace();
        assert_eq!(ws.total, layout.dead_space());
        assert_eq!(ws.count(), 1, "the 1x3 slot right of b is one region");
        assert_eq!(ws.largest(), 3);
        let poly = layout.polygonize();
        assert_eq!(poly.whitespace.total, ws.total);
        assert!(!poly.outlines.is_empty());
    }

    #[test]
    fn error_cases() {
        let (t, lib) = domino_wheel();
        assert_eq!(
            realize(&t, &lib, &Assignment::first_fit(3)),
            Err(LayoutError::ChoiceCount {
                got: 3,
                expected: 5
            })
        );
        assert_eq!(
            realize(&t, &lib, &Assignment::new(vec![0, 0, 9, 0, 0])),
            Err(LayoutError::ChoiceOutOfRange {
                leaf: 2,
                choice: 9,
                len: 1
            })
        );
        let small: ModuleLibrary = [Module::hard("only", Rect::new(1, 1), false)]
            .into_iter()
            .collect();
        assert_eq!(
            realize(&t, &small, &Assignment::first_fit(5)),
            Err(LayoutError::MissingModule { leaf: 1, module: 1 })
        );
    }

    #[test]
    fn counterclockwise_wheel_also_valid() {
        let mut t = FloorplanTree::new();
        let ids: Vec<NodeId> = (0..5).map(|m| t.leaf(m)).collect();
        t.wheel(
            Chirality::Counterclockwise,
            [ids[0], ids[1], ids[2], ids[3], ids[4]],
        );
        let lib = generators::module_library(&t, 3, 5);
        let layout = realize(&t, &lib, &Assignment::first_fit(5)).expect("realizes");
        assert_eq!(layout.validate(), None);
    }

    proptest! {
        /// Any assignment of any benchmark realizes to a physically valid
        /// layout whose envelope area is at least the module area sum.
        #[test]
        fn random_assignments_realize_validly(
            seed in 0u64..50,
            tree_seed in 0u64..10,
            leaves in 2usize..20,
        ) {
            let bench = generators::random_floorplan(leaves, 0.4, tree_seed);
            let lib = generators::module_library(&bench.tree, 4, seed);
            // Pseudo-random but in-range choices.
            let choices: Vec<usize> =
                (0..leaves).map(|i| (seed as usize + i * 7) % 4).collect();
            let layout = realize(&bench.tree, &lib, &Assignment::new(choices))
                .expect("realizes");
            prop_assert_eq!(layout.validate(), None);
            prop_assert_eq!(layout.placed.len(), leaves);
        }

        /// The envelope from `realize` is monotone: upgrading one module to
        /// a dominating implementation cannot shrink the floorplan.
        #[test]
        fn envelope_monotone_in_choices(tree_seed in 0u64..10, leaves in 2usize..12) {
            let bench = generators::random_floorplan(leaves, 0.4, tree_seed);
            let lib = generators::module_library(&bench.tree, 3, 77);
            let base = realize(&bench.tree, &lib, &Assignment::first_fit(leaves))
                .expect("realizes");
            // Every single-leaf change still realizes validly.
            for i in 0..leaves {
                let mut choices = vec![0usize; leaves];
                choices[i] = 2;
                let alt = realize(&bench.tree, &lib, &Assignment::new(choices))
                    .expect("realizes");
                prop_assert_eq!(alt.validate(), None);
                // No dominance claim between different implementations —
                // just validity; sizes differ arbitrarily.
                prop_assert!(alt.area() > 0 && base.area() > 0);
            }
        }
    }
}
