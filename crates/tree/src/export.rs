//! Visual exports: SVG renderings of layouts and Graphviz DOT renderings
//! of floorplan trees.

use std::fmt::Write as _;

use crate::layout::Layout;
use crate::{FloorplanTree, ModuleLibrary, NodeKind};

/// A muted qualitative palette cycled across modules.
const PALETTE: [&str; 10] = [
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462", "#b3de69", "#fccde5",
    "#d9d9d9", "#bc80bd",
];

/// Renders a realized layout as a standalone SVG document.
///
/// Every module becomes a filled rectangle with a label (the module name
/// when `library` covers the leaf, else the leaf id); the envelope is
/// outlined. The y-axis is flipped so that the floorplan's origin sits at
/// the bottom-left, as in the geometry model.
///
/// ```
/// use fp_tree::{export, generators, layout};
///
/// let bench = generators::fig1();
/// let lib = generators::module_library(&bench.tree, 3, 7);
/// let realized = layout::realize(&bench.tree, &lib, &layout::Assignment::first_fit(5))?;
/// let svg = export::layout_to_svg(&realized, &bench.tree, &lib, 480);
/// assert!(svg.starts_with("<svg"));
/// assert_eq!(svg.matches("<rect").count(), 6); // envelope + 5 modules
/// # Ok::<(), fp_tree::layout::LayoutError>(())
/// ```
#[must_use]
pub fn layout_to_svg(
    layout: &Layout,
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    width_px: u32,
) -> String {
    let env_w = layout.envelope.w.max(1) as f64;
    let env_h = layout.envelope.h.max(1) as f64;
    let scale = f64::from(width_px.max(64)) / env_w;
    let height_px = (env_h * scale).ceil();
    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.2} {:.2}" font-family="monospace">"##,
        f64::from(width_px),
        height_px,
        env_w * scale,
        env_h * scale,
    );
    let _ = write!(
        svg,
        r##"<rect x="0" y="0" width="{:.2}" height="{:.2}" fill="none" stroke="#333" stroke-width="1.5"/>"##,
        env_w * scale,
        env_h * scale,
    );
    for (ord, &(leaf, r)) in layout.placed.iter().enumerate() {
        let x = r.x_min() as f64 * scale;
        // SVG's y grows downward; our layouts grow upward.
        let y = (env_h - r.y_max() as f64) * scale;
        let w = r.size.w as f64 * scale;
        let h = r.size.h as f64 * scale;
        let fill = PALETTE[ord % PALETTE.len()];
        let label = match tree.node(leaf).map(|n| &n.kind) {
            Some(NodeKind::Leaf(m)) => library
                .get(*m)
                .map_or_else(|| format!("leaf{leaf}"), |module| module.name().to_owned()),
            _ => format!("leaf{leaf}"),
        };
        let _ = write!(
            svg,
            r##"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}" stroke="#555" stroke-width="0.75"/>"##,
        );
        let font = (w.min(h) * 0.35).clamp(4.0, 16.0);
        let _ = write!(
            svg,
            r##"<text x="{:.2}" y="{:.2}" font-size="{font:.1}" text-anchor="middle" dominant-baseline="middle">{label}</text>"##,
            x + w / 2.0,
            y + h / 2.0,
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Renders a floorplan tree as Graphviz DOT (leaves labelled with module
/// names when the library covers them).
///
/// ```
/// use fp_tree::{export, generators};
///
/// let bench = generators::fig1();
/// let lib = generators::module_library(&bench.tree, 2, 1);
/// let dot = export::tree_to_dot(&bench.tree, &lib);
/// assert!(dot.starts_with("digraph floorplan {"));
/// assert!(dot.contains("->"));
/// ```
#[must_use]
pub fn tree_to_dot(tree: &FloorplanTree, library: &ModuleLibrary) -> String {
    let mut dot =
        String::from("digraph floorplan {\n  rankdir=TB;\n  node [fontname=monospace];\n");
    for id in 0..tree.len() {
        let node = tree.node(id).expect("in range");
        let (label, shape) = match &node.kind {
            NodeKind::Leaf(m) => {
                let name = library
                    .get(*m)
                    .map_or_else(|| format!("m{m}"), |module| module.name().to_owned());
                (name, "box")
            }
            NodeKind::Slice(dir) => (
                match dir {
                    crate::CutDir::Horizontal => "hsplit".to_owned(),
                    crate::CutDir::Vertical => "vsplit".to_owned(),
                },
                "ellipse",
            ),
            NodeKind::Wheel(ch) => (
                match ch {
                    crate::Chirality::Clockwise => "wheel cw".to_owned(),
                    crate::Chirality::Counterclockwise => "wheel ccw".to_owned(),
                },
                "diamond",
            ),
        };
        let _ = writeln!(dot, "  n{id} [label=\"{label}\", shape={shape}];");
        for &c in &node.children {
            let _ = writeln!(dot, "  n{id} -> n{c};");
        }
    }
    dot.push_str("}\n");
    dot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{realize, Assignment};
    use crate::{generators, CutDir, Module};
    use fp_geom::Rect;

    #[test]
    fn svg_contains_all_modules_and_labels() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Vertical, vec![a, b]);
        let lib: ModuleLibrary = [
            Module::hard("alu", Rect::new(4, 2), false),
            Module::hard("rom", Rect::new(3, 3), false),
        ]
        .into_iter()
        .collect();
        let layout = realize(&t, &lib, &Assignment::first_fit(2)).expect("realizes");
        let svg = layout_to_svg(&layout, &t, &lib, 400);
        assert!(svg.contains(">alu</text>"));
        assert!(svg.contains(">rom</text>"));
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn svg_of_wheel_benchmark() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 3, 5);
        let layout = realize(&bench.tree, &lib, &Assignment::first_fit(25)).expect("realizes");
        let svg = layout_to_svg(&layout, &bench.tree, &lib, 640);
        assert_eq!(svg.matches("<rect").count(), 26);
        assert_eq!(svg.matches("<text").count(), 25);
    }

    #[test]
    fn dot_structure() {
        let bench = generators::fig1();
        let lib = generators::module_library(&bench.tree, 2, 1);
        let dot = tree_to_dot(&bench.tree, &lib);
        // 8 nodes (5 leaves + 3 slices), 7 edges.
        assert_eq!(dot.matches("shape=box").count(), 5);
        assert_eq!(dot.matches("shape=ellipse").count(), 3);
        assert_eq!(dot.matches("->").count(), 7);
        assert!(dot.contains("m0") || dot.contains("label=\"m0\""));
    }

    #[test]
    fn dot_marks_wheels() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 2, 1);
        let dot = tree_to_dot(&bench.tree, &lib);
        assert_eq!(dot.matches("shape=diamond").count(), 6);
    }
}
