//! The hierarchical floorplan tree (paper §2, Figure 1).

use core::fmt;

use crate::ModuleId;

/// Identifier of a node within a [`FloorplanTree`] arena.
pub type NodeId = usize;

/// Direction of a slice cut line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CutDir {
    /// Horizontal cut lines: the children are stacked bottom-to-top.
    Horizontal,
    /// Vertical cut lines: the children sit left-to-right.
    Vertical,
}

impl CutDir {
    /// The perpendicular direction.
    #[must_use]
    pub const fn perpendicular(self) -> CutDir {
        match self {
            CutDir::Horizontal => CutDir::Vertical,
            CutDir::Vertical => CutDir::Horizontal,
        }
    }
}

/// Chirality of a wheel (the order-5 non-slicing pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Chirality {
    /// The clockwise pinwheel (arms spiral clockwise).
    #[default]
    Clockwise,
    /// The counterclockwise pinwheel — the mirror image of
    /// [`Chirality::Clockwise`]; its implementation sets are identical
    /// because mirroring preserves all sizes.
    Counterclockwise,
}

/// The payload of a floorplan tree node.
///
/// Wheel children are ordered `[A, B, C, D, E]` for the clockwise wheel of
/// paper Figure 8-style pinwheels:
///
/// ```text
///       +----+---------+
///       | A  |    B    |      A: left column   (x < x1, y > y1)
///       |    +----+----+      B: top strip     (x > x1, y > y2)
///       |    | E  |    |      C: right column  (x > x2, y < y2)
///       +----+----+  C |      D: bottom strip  (x < x2, y < y1)
///       |   D     |    |      E: centre
///       +---------+----+
/// ```
///
/// For a counterclockwise wheel, mirror the picture about the vertical
/// axis; the child order keeps the same meaning (`A` the column touching
/// the left or right edge after mirroring, etc.).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeKind {
    /// A basic rectangle holding one module.
    Leaf(ModuleId),
    /// A slice with the given cut direction; any arity ≥ 2.
    Slice(CutDir),
    /// An order-5 wheel; exactly 5 children `[A, B, C, D, E]`.
    Wheel(Chirality),
}

/// One node of the floorplan tree.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    /// What the node is.
    pub kind: NodeKind,
    /// Child node ids (empty for leaves).
    pub children: Vec<NodeId>,
}

/// Errors reported by [`FloorplanTree`] validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeError {
    /// A child id does not refer to an existing node.
    DanglingChild {
        /// The parent node.
        parent: NodeId,
        /// The missing child id.
        child: NodeId,
    },
    /// A slice node has fewer than two children.
    SliceTooSmall {
        /// The offending node.
        node: NodeId,
        /// Its arity.
        arity: usize,
    },
    /// A wheel node does not have exactly five children.
    WheelArity {
        /// The offending node.
        node: NodeId,
        /// Its arity.
        arity: usize,
    },
    /// A leaf has children.
    LeafWithChildren {
        /// The offending node.
        node: NodeId,
    },
    /// A node is referenced by more than one parent, or the root is a
    /// child: the structure is not a tree.
    NotATree {
        /// The node with multiple parents (or the root).
        node: NodeId,
    },
    /// A node is unreachable from the root.
    Unreachable {
        /// The orphaned node.
        node: NodeId,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::DanglingChild { parent, child } => {
                write!(f, "node {parent} references missing child {child}")
            }
            TreeError::SliceTooSmall { node, arity } => {
                write!(
                    f,
                    "slice node {node} has {arity} children; needs at least 2"
                )
            }
            TreeError::WheelArity { node, arity } => {
                write!(f, "wheel node {node} has {arity} children; needs exactly 5")
            }
            TreeError::LeafWithChildren { node } => write!(f, "leaf node {node} has children"),
            TreeError::NotATree { node } => write!(f, "node {node} has multiple parents"),
            TreeError::Unreachable { node } => write!(f, "node {node} unreachable from the root"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A hierarchical floorplan: an arena of [`Node`]s with a designated root.
///
/// Build bottom-up with [`FloorplanTree::leaf`], [`FloorplanTree::slice`],
/// and [`FloorplanTree::wheel`]; the last node added is the root unless
/// [`FloorplanTree::set_root`] overrides it. [`FloorplanTree::validate`]
/// checks structural invariants.
///
/// # Example
///
/// ```
/// use fp_tree::{CutDir, FloorplanTree};
///
/// // Figure-1 style: ((m0 | m1) over m2)
/// let mut t = FloorplanTree::new();
/// let a = t.leaf(0);
/// let b = t.leaf(1);
/// let row = t.slice(CutDir::Vertical, vec![a, b]);
/// let c = t.leaf(2);
/// let root = t.slice(CutDir::Horizontal, vec![row, c]);
/// assert_eq!(t.root(), root);
/// assert_eq!(t.module_count(), 3);
/// t.validate()?;
/// # Ok::<(), fp_tree::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FloorplanTree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl FloorplanTree {
    /// An empty tree.
    #[must_use]
    pub fn new() -> Self {
        FloorplanTree {
            nodes: Vec::new(),
            root: 0,
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.root = self.nodes.len() - 1;
        self.root
    }

    /// Adds a leaf for `module` and returns its id.
    pub fn leaf(&mut self, module: ModuleId) -> NodeId {
        self.push(Node {
            kind: NodeKind::Leaf(module),
            children: Vec::new(),
        })
    }

    /// Adds a slice node over `children` and returns its id.
    pub fn slice(&mut self, dir: CutDir, children: Vec<NodeId>) -> NodeId {
        self.push(Node {
            kind: NodeKind::Slice(dir),
            children,
        })
    }

    /// Adds a wheel node over `children` (`[A, B, C, D, E]`) and returns
    /// its id.
    pub fn wheel(&mut self, chirality: Chirality, children: [NodeId; 5]) -> NodeId {
        self.push(Node {
            kind: NodeKind::Wheel(chirality),
            children: children.to_vec(),
        })
    }

    /// The root node id (the last node added, unless overridden).
    #[inline]
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Overrides the root.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a node of this tree.
    pub fn set_root(&mut self, root: NodeId) {
        assert!(root < self.nodes.len(), "root {root} out of range");
        self.root = root;
    }

    /// The node with the given id, if present.
    #[inline]
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id)
    }

    /// Number of nodes (internal + leaves).
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree has no nodes.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of leaves (= number of module instances).
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf(_)))
            .count()
    }

    /// The leaf node ids in depth-first (left-to-right) order from the
    /// root. This is the canonical leaf order used by assignments.
    #[must_use]
    pub fn leaves_in_order(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        if self.nodes.is_empty() {
            return out;
        }
        // Depth-first, children left-to-right.
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if matches!(node.kind, NodeKind::Leaf(_)) {
                out.push(id);
            } else {
                stack.extend(node.children.iter().rev());
            }
        }
        out
    }

    /// The maximum depth (root = 1; empty tree = 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut max = 0;
        let mut stack = vec![(self.root, 1usize)];
        while let Some((id, d)) = stack.pop() {
            max = max.max(d);
            for &c in &self.nodes[id].children {
                stack.push((c, d + 1));
            }
        }
        max
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`TreeError`].
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        let n = self.nodes.len();
        let mut parent_count = vec![0usize; n];
        for (id, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                if c >= n {
                    return Err(TreeError::DanglingChild {
                        parent: id,
                        child: c,
                    });
                }
                parent_count[c] += 1;
            }
            match node.kind {
                NodeKind::Leaf(_) if !node.children.is_empty() => {
                    return Err(TreeError::LeafWithChildren { node: id });
                }
                NodeKind::Slice(_) if node.children.len() < 2 => {
                    return Err(TreeError::SliceTooSmall {
                        node: id,
                        arity: node.children.len(),
                    });
                }
                NodeKind::Wheel(_) if node.children.len() != 5 => {
                    return Err(TreeError::WheelArity {
                        node: id,
                        arity: node.children.len(),
                    });
                }
                _ => {}
            }
        }
        if parent_count[self.root] != 0 {
            return Err(TreeError::NotATree { node: self.root });
        }
        for (id, &count) in parent_count.iter().enumerate() {
            if count > 1 {
                return Err(TreeError::NotATree { node: id });
            }
        }
        // Reachability from the root.
        let mut seen = vec![false; n];
        let mut stack = vec![self.root];
        seen[self.root] = true;
        while let Some(id) = stack.pop() {
            for &c in &self.nodes[id].children {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        if let Some(orphan) = seen.iter().position(|&s| !s) {
            return Err(TreeError::Unreachable { node: orphan });
        }
        Ok(())
    }
}

impl fmt::Display for FloorplanTree {
    /// Indented textual rendering of the hierarchy, e.g.
    ///
    /// ```text
    /// hsplit
    ///   vsplit
    ///     leaf m0
    ///     leaf m1
    ///   leaf m2
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(
            tree: &FloorplanTree,
            id: NodeId,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let node = tree.node(id).expect("display walks valid ids");
            let indent = "  ".repeat(depth);
            match &node.kind {
                NodeKind::Leaf(m) => writeln!(f, "{indent}leaf m{m}")?,
                NodeKind::Slice(CutDir::Horizontal) => writeln!(f, "{indent}hsplit")?,
                NodeKind::Slice(CutDir::Vertical) => writeln!(f, "{indent}vsplit")?,
                NodeKind::Wheel(Chirality::Clockwise) => writeln!(f, "{indent}wheel cw")?,
                NodeKind::Wheel(Chirality::Counterclockwise) => writeln!(f, "{indent}wheel ccw")?,
            }
            for &c in &node.children {
                go(tree, c, depth + 1, f)?;
            }
            Ok(())
        }
        if self.is_empty() {
            return writeln!(f, "(empty floorplan)");
        }
        go(self, self.root, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_tree() -> FloorplanTree {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        let row = t.slice(CutDir::Vertical, vec![a, b]);
        let c = t.leaf(2);
        t.slice(CutDir::Horizontal, vec![row, c]);
        t
    }

    #[test]
    fn build_and_count() {
        let t = figure1_tree();
        assert_eq!(t.len(), 5);
        assert_eq!(t.module_count(), 3);
        assert_eq!(t.depth(), 3);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn leaves_in_canonical_order() {
        let t = figure1_tree();
        let leaves = t.leaves_in_order();
        let modules: Vec<_> = leaves
            .iter()
            .map(|&id| match t.node(id).expect("exists").kind {
                NodeKind::Leaf(m) => m,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(modules, vec![0, 1, 2]);
    }

    #[test]
    fn wheel_arity_checked() {
        let mut t = FloorplanTree::new();
        let leaves: Vec<NodeId> = (0..5).map(|m| t.leaf(m)).collect();
        t.wheel(
            Chirality::Clockwise,
            [leaves[0], leaves[1], leaves[2], leaves[3], leaves[4]],
        );
        assert!(t.validate().is_ok());

        // Break it manually.
        let mut bad = FloorplanTree::new();
        let a = bad.leaf(0);
        let b = bad.leaf(1);
        bad.push(Node {
            kind: NodeKind::Wheel(Chirality::Clockwise),
            children: vec![a, b],
        });
        assert_eq!(
            bad.validate(),
            Err(TreeError::WheelArity { node: 2, arity: 2 })
        );
    }

    #[test]
    fn slice_arity_checked() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        t.slice(CutDir::Vertical, vec![a]);
        assert_eq!(
            t.validate(),
            Err(TreeError::SliceTooSmall { node: 1, arity: 1 })
        );
    }

    #[test]
    fn shared_child_rejected() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Vertical, vec![a, b]);
        let d = t.leaf(2);
        // Node `b` appears under two parents.
        t.slice(CutDir::Horizontal, vec![2, d, b]);
        assert_eq!(t.validate(), Err(TreeError::NotATree { node: b }));
    }

    #[test]
    fn dangling_child_rejected() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        t.slice(CutDir::Vertical, vec![a, 99]);
        assert_eq!(
            t.validate(),
            Err(TreeError::DanglingChild {
                parent: 1,
                child: 99
            })
        );
    }

    #[test]
    fn unreachable_node_rejected() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        let s = t.slice(CutDir::Vertical, vec![a, b]);
        let _orphan = t.leaf(2);
        t.set_root(s);
        assert_eq!(t.validate(), Err(TreeError::Unreachable { node: 3 }));
    }

    #[test]
    fn empty_tree_is_valid() {
        assert!(FloorplanTree::new().validate().is_ok());
        assert_eq!(FloorplanTree::new().depth(), 0);
        assert!(FloorplanTree::new().leaves_in_order().is_empty());
    }

    #[test]
    fn display_renders_hierarchy() {
        let t = figure1_tree();
        let text = t.to_string();
        assert_eq!(
            text,
            "hsplit\n  vsplit\n    leaf m0\n    leaf m1\n  leaf m2\n"
        );
        assert_eq!(FloorplanTree::new().to_string(), "(empty floorplan)\n");
    }

    #[test]
    fn cut_dir_perpendicular() {
        assert_eq!(CutDir::Horizontal.perpendicular(), CutDir::Vertical);
        assert_eq!(CutDir::Vertical.perpendicular(), CutDir::Horizontal);
    }
}
