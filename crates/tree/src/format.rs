//! A human-writable text format for floorplan instances (`.fpt`).
//!
//! ```text
//! # comment
//! floorplan demo
//! module cpu 12x6 9x8 6x12
//! module ram 10x5 5x10
//! module io  8x3 4x6
//! tree (hsplit (vsplit cpu ram) io)
//! ```
//!
//! * `floorplan <name>` — optional header naming the instance.
//! * `module <name> [rot] <w>x<h> [...]` — a module and its
//!   implementations (redundant candidates are pruned on load); with the
//!   `rot` keyword every size also contributes its 90°-rotated variant
//!   (free-orientation macros). A size written as slash-joined corners
//!   (`12x2/9x4/5x6`, widths descending, heights ascending) declares a
//!   bounded-staircase implementation: its bounding box joins the
//!   rectangular list and the staircase geometry is kept on the module
//!   (with `rot`, the transposed staircase too).
//! * `tree <expr>` — the topology, where `<expr>` is a module name (one
//!   leaf instance per occurrence) or one of:
//!   * `(hsplit e1 e2 …)` — horizontal cut lines, children stacked
//!     bottom-to-top;
//!   * `(vsplit e1 e2 …)` — vertical cut lines, children left-to-right;
//!   * `(wheel cw|ccw a b c d e)` — an order-5 wheel, children in the
//!     `[A, B, C, D, E]` order of [`crate::NodeKind`].
//!
//! `#` starts a comment anywhere; whitespace is free-form. The format
//! round-trips through [`write_instance`] / [`parse_instance`].

use core::fmt;
use std::collections::HashMap;

use fp_geom::{Coord, Rect};

use crate::{Chirality, CutDir, FloorplanTree, Module, ModuleLibrary, NodeId, NodeKind};

/// A parsed floorplan instance: topology plus module library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloorplanInstance {
    /// Instance name (from the `floorplan` header; defaults to
    /// `"floorplan"`).
    pub name: String,
    /// The topology; leaf module ids index `library`.
    pub tree: FloorplanTree,
    /// The module library.
    pub library: ModuleLibrary,
}

/// A parse error with 1-based line and column information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseInstanceError {
    /// 1-based line number of the offending token (0 for end-of-input).
    pub line: usize,
    /// 1-based column of the offending token's first character (0 when no
    /// single token is at fault, e.g. a structural error).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseInstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error at end of input: {}", self.message)
        } else if self.col == 0 {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        } else {
            write!(
                f,
                "parse error at line {}, column {}: {}",
                self.line, self.col, self.message
            )
        }
    }
}

impl std::error::Error for ParseInstanceError {}

/// `(line, column)` of a token's first character, both 1-based.
type Pos = (usize, usize);

/// A position for errors not tied to any single token.
const NO_POS: Pos = (0, 0);

fn err_at(pos: Pos, message: String) -> ParseInstanceError {
    ParseInstanceError {
        line: pos.0,
        col: pos.1,
        message,
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Open,
    Close,
    Word(String),
}

/// Tokenized input: `(token, position)` pairs.
fn tokenize(input: &str) -> Vec<(Token, Pos)> {
    let mut tokens = Vec::new();
    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("");
        let mut word = String::new();
        let mut word_col = 0usize;
        let flush = |word: &mut String, word_col: usize, tokens: &mut Vec<(Token, Pos)>| {
            if !word.is_empty() {
                tokens.push((Token::Word(std::mem::take(word)), (line_no, word_col)));
            }
        };
        for (col0, ch) in line.chars().enumerate() {
            let col = col0 + 1;
            match ch {
                '(' => {
                    flush(&mut word, word_col, &mut tokens);
                    tokens.push((Token::Open, (line_no, col)));
                }
                ')' => {
                    flush(&mut word, word_col, &mut tokens);
                    tokens.push((Token::Close, (line_no, col)));
                }
                c if c.is_whitespace() => flush(&mut word, word_col, &mut tokens),
                c => {
                    if word.is_empty() {
                        word_col = col;
                    }
                    word.push(c);
                }
            }
        }
        flush(&mut word, word_col, &mut tokens);
    }
    tokens
}

struct Parser {
    tokens: Vec<(Token, Pos)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(Token, Pos)> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<(Token, Pos)> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_word(&mut self, what: &str) -> Result<(String, Pos), ParseInstanceError> {
        match self.next() {
            Some((Token::Word(w), pos)) => Ok((w, pos)),
            Some((other, pos)) => Err(err_at(pos, format!("expected {what}, found {other:?}"))),
            None => Err(err_at(NO_POS, format!("expected {what}"))),
        }
    }
}

fn parse_size(word: &str, pos: Pos) -> Result<Rect, ParseInstanceError> {
    let bad = || err_at(pos, format!("expected <width>x<height>, found `{word}`"));
    let (w, h) = word.split_once(['x', 'X']).ok_or_else(bad)?;
    let w: Coord = w.parse().map_err(|_| bad())?;
    let h: Coord = h.parse().map_err(|_| bad())?;
    if w == 0 || h == 0 {
        return Err(err_at(pos, format!("zero dimension in `{word}`")));
    }
    if w > fp_geom::MAX_COORD || h > fp_geom::MAX_COORD {
        return Err(err_at(
            pos,
            format!(
                "dimension in `{word}` exceeds the supported maximum {}",
                fp_geom::MAX_COORD
            ),
        ));
    }
    Ok(Rect::new(w, h))
}

/// Parses a staircase token: slash-joined corner sizes
/// (`12x2/9x4/5x6`), validated and canonicalized by
/// [`fp_geom::Staircase::from_corners`].
fn parse_staircase(word: &str, pos: Pos) -> Result<fp_geom::Staircase, ParseInstanceError> {
    let mut corners = Vec::new();
    for part in word.split('/') {
        let r = parse_size(part, pos)?;
        corners.push((r.w, r.h));
    }
    fp_geom::Staircase::from_corners(corners)
        .map_err(|e| err_at(pos, format!("invalid staircase `{word}`: {e}")))
}

/// Parses an instance from its text form.
///
/// # Errors
///
/// Returns a [`ParseInstanceError`] with the offending line for syntax
/// errors, unknown module references, arity violations, and structural
/// problems ([`FloorplanTree::validate`] failures).
pub fn parse_instance(input: &str) -> Result<FloorplanInstance, ParseInstanceError> {
    let mut parser = Parser {
        tokens: tokenize(input),
        pos: 0,
    };
    let mut name = "floorplan".to_owned();
    let mut library = ModuleLibrary::new();
    let mut by_name: HashMap<String, usize> = HashMap::new();
    let mut tree: Option<FloorplanTree> = None;

    while let Some((token, pos)) = parser.next() {
        let keyword = match token {
            Token::Word(w) => w,
            other => {
                return Err(err_at(
                    pos,
                    format!("expected a directive, found {other:?}"),
                ))
            }
        };
        match keyword.as_str() {
            "floorplan" => {
                name = parser.expect_word("an instance name")?.0;
            }
            "module" => {
                let (mod_name, name_pos) = parser.expect_word("a module name")?;
                if by_name.contains_key(&mod_name) {
                    return Err(err_at(name_pos, format!("duplicate module `{mod_name}`")));
                }
                let mut rotatable = false;
                if let Some((Token::Word(w), _)) = parser.peek() {
                    if w == "rot" {
                        rotatable = true;
                        parser.pos += 1;
                    }
                }
                let mut sizes = Vec::new();
                let mut stairs = Vec::new();
                while let Some((Token::Word(w), wpos)) = parser.peek().cloned() {
                    if !w.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                        break;
                    }
                    parser.pos += 1;
                    if w.contains('/') {
                        // Staircase implementation: slash-joined corner
                        // sizes `w1xh1/w2xh2/...`, widths descending.
                        let s = parse_staircase(&w, wpos)?;
                        if rotatable {
                            stairs.push(s.transposed());
                        }
                        stairs.push(s);
                    } else {
                        let r = parse_size(&w, wpos)?;
                        sizes.push(r);
                        if rotatable {
                            sizes.push(r.rotated());
                        }
                    }
                }
                if sizes.is_empty() && stairs.is_empty() {
                    return Err(err_at(
                        name_pos,
                        format!("module `{mod_name}` has no implementations"),
                    ));
                }
                let id = library.add(Module::with_staircases(mod_name.clone(), sizes, stairs));
                by_name.insert(mod_name, id);
            }
            "tree" => {
                if tree.is_some() {
                    return Err(err_at(pos, "duplicate `tree` directive".to_owned()));
                }
                let mut t = FloorplanTree::new();
                let root = parse_expr(&mut parser, &by_name, &mut t, 0)?;
                t.set_root(root);
                tree = Some(t);
            }
            other => {
                return Err(err_at(
                    pos,
                    format!("unknown directive `{other}` (expected floorplan/module/tree)"),
                ))
            }
        }
    }

    let tree = tree.ok_or_else(|| err_at(NO_POS, "missing `tree` directive".to_owned()))?;
    tree.validate()
        .map_err(|e| err_at(NO_POS, format!("invalid tree: {e}")))?;
    Ok(FloorplanInstance {
        name,
        tree,
        library,
    })
}

/// Maximum expression nesting the parser accepts; a recursive-descent
/// parser must bound its depth or adversarial inputs (`"((((…"`) exhaust
/// the call stack.
const MAX_NESTING: usize = 200;

fn parse_expr(
    parser: &mut Parser,
    by_name: &HashMap<String, usize>,
    tree: &mut FloorplanTree,
    depth: usize,
) -> Result<NodeId, ParseInstanceError> {
    if depth > MAX_NESTING {
        return Err(err_at(
            NO_POS,
            format!("expression nesting exceeds {MAX_NESTING} levels"),
        ));
    }
    match parser.next() {
        Some((Token::Word(w), pos)) => {
            let id = by_name
                .get(&w)
                .ok_or_else(|| err_at(pos, format!("unknown module `{w}`")))?;
            Ok(tree.leaf(*id))
        }
        Some((Token::Open, _)) => {
            let (op, op_pos) = parser.expect_word("an operator (hsplit/vsplit/wheel)")?;
            match op.as_str() {
                "hsplit" | "vsplit" => {
                    let dir = if op == "hsplit" {
                        CutDir::Horizontal
                    } else {
                        CutDir::Vertical
                    };
                    let mut children = Vec::new();
                    while !matches!(parser.peek(), Some((Token::Close, _)) | None) {
                        children.push(parse_expr(parser, by_name, tree, depth + 1)?);
                    }
                    expect_close(parser)?;
                    if children.len() < 2 {
                        return Err(err_at(op_pos, format!("{op} needs at least 2 children")));
                    }
                    Ok(tree.slice(dir, children))
                }
                "wheel" => {
                    let (ch, ch_pos) = parser.expect_word("a chirality (cw/ccw)")?;
                    let chirality = match ch.as_str() {
                        "cw" => Chirality::Clockwise,
                        "ccw" => Chirality::Counterclockwise,
                        other => {
                            return Err(err_at(
                                ch_pos,
                                format!("expected cw or ccw, found `{other}`"),
                            ))
                        }
                    };
                    let mut children = Vec::new();
                    while !matches!(parser.peek(), Some((Token::Close, _)) | None) {
                        children.push(parse_expr(parser, by_name, tree, depth + 1)?);
                    }
                    expect_close(parser)?;
                    let arr: [NodeId; 5] = children.try_into().map_err(|c: Vec<NodeId>| {
                        err_at(
                            op_pos,
                            format!("wheel needs exactly 5 children, found {}", c.len()),
                        )
                    })?;
                    Ok(tree.wheel(chirality, arr))
                }
                other => Err(err_at(op_pos, format!("unknown operator `{other}`"))),
            }
        }
        Some((Token::Close, pos)) => Err(err_at(pos, "unexpected `)`".to_owned())),
        None => Err(err_at(
            NO_POS,
            "unexpected end of input in expression".to_owned(),
        )),
    }
}

fn expect_close(parser: &mut Parser) -> Result<(), ParseInstanceError> {
    match parser.next() {
        Some((Token::Close, _)) => Ok(()),
        Some((other, pos)) => Err(err_at(pos, format!("expected `)`, found {other:?}"))),
        None => Err(err_at(NO_POS, "expected `)`".to_owned())),
    }
}

/// Errors reported by [`write_instance`] for instances whose tree and
/// library disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteInstanceError {
    /// A leaf references a module that the library does not contain.
    MissingModule {
        /// The offending tree node.
        node: NodeId,
        /// The module id it references.
        module: usize,
    },
    /// A node id is out of range for the tree.
    InvalidNode {
        /// The offending node id.
        node: NodeId,
    },
}

impl fmt::Display for WriteInstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteInstanceError::MissingModule { node, module } => write!(
                f,
                "tree node {node} references module {module}, which is missing from the library"
            ),
            WriteInstanceError::InvalidNode { node } => {
                write!(f, "tree node {node} is out of range")
            }
        }
    }
}

impl std::error::Error for WriteInstanceError {}

/// Serializes an instance back to its text form (round-trips through
/// [`parse_instance`]).
///
/// # Errors
///
/// [`WriteInstanceError`] when the tree references nodes or modules that
/// do not exist — the instance cannot be represented faithfully.
pub fn write_instance(instance: &FloorplanInstance) -> Result<String, WriteInstanceError> {
    let mut out = String::new();
    out.push_str(&format!("floorplan {}\n", instance.name));
    for module in instance.library.iter() {
        out.push_str(&format!("module {}", module.name()));
        for r in module.implementations().iter() {
            out.push_str(&format!(" {}x{}", r.w, r.h));
        }
        for s in module.staircases() {
            // Staircase Display is the slash-joined corner syntax the
            // parser accepts.
            out.push_str(&format!(" {s}"));
        }
        out.push('\n');
    }
    out.push_str("tree ");
    if !instance.tree.is_empty() {
        write_expr(instance, instance.tree.root(), &mut out)?;
    }
    out.push('\n');
    Ok(out)
}

fn write_expr(
    instance: &FloorplanInstance,
    id: NodeId,
    out: &mut String,
) -> Result<(), WriteInstanceError> {
    let node = instance
        .tree
        .node(id)
        .ok_or(WriteInstanceError::InvalidNode { node: id })?;
    match &node.kind {
        NodeKind::Leaf(m) => {
            let module = instance
                .library
                .get(*m)
                .ok_or(WriteInstanceError::MissingModule {
                    node: id,
                    module: *m,
                })?;
            out.push_str(module.name());
        }
        NodeKind::Slice(dir) => {
            out.push_str(match dir {
                CutDir::Horizontal => "(hsplit",
                CutDir::Vertical => "(vsplit",
            });
            for &c in &node.children {
                out.push(' ');
                write_expr(instance, c, out)?;
            }
            out.push(')');
        }
        NodeKind::Wheel(ch) => {
            out.push_str(match ch {
                Chirality::Clockwise => "(wheel cw",
                Chirality::Counterclockwise => "(wheel ccw",
            });
            for &c in &node.children {
                out.push(' ');
                write_expr(instance, c, out)?;
            }
            out.push(')');
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "\
# a demo instance
floorplan demo
module cpu 12x6 9x8 6x12
module ram 10x5 5x10
module io  8x3 4x6      # trailing comment
tree (hsplit (vsplit cpu ram) io)
";

    #[test]
    fn parses_the_demo() {
        let inst = parse_instance(DEMO).expect("parses");
        assert_eq!(inst.name, "demo");
        assert_eq!(inst.library.len(), 3);
        assert_eq!(inst.tree.module_count(), 3);
        assert_eq!(inst.library[0].implementations().len(), 3);
        assert!(inst.tree.validate().is_ok());
    }

    #[test]
    fn wheel_and_reuse() {
        let text = "\
module a 2x1 1x2
module e 1x1
tree (wheel cw a a a a e)
";
        let inst = parse_instance(text).expect("parses");
        assert_eq!(inst.tree.module_count(), 5);
        // Four instances of the same module `a`.
        let bin = crate::restructure::restructure(&inst.tree).expect("valid");
        assert_eq!(bin.lshape_count(), 3);
        assert_eq!(inst.name, "floorplan");
    }

    #[test]
    fn round_trip() {
        for text in [
            DEMO,
            "module a 2x1 1x2\nmodule e 1x1\ntree (wheel ccw a a a a e)\n",
            "module a 1x1\nmodule b 2x2\ntree (vsplit a b a)\n",
        ] {
            let inst = parse_instance(text).expect("parses");
            let written = write_instance(&inst).expect("writable");
            let reparsed = parse_instance(&written).expect("round-trips");
            assert_eq!(inst.name, reparsed.name);
            assert_eq!(inst.library, reparsed.library);
            assert_eq!(inst.tree.module_count(), reparsed.tree.module_count());
            // Second write is a fixpoint.
            assert_eq!(written, write_instance(&reparsed).expect("writable"));
        }
    }

    #[test]
    fn staircase_modules_round_trip() {
        let text = "\
module cpu 12x2/9x4/5x6
module ram rot 10x3/6x5
module io 8x3
tree (hsplit (vsplit cpu ram) io)
";
        let inst = parse_instance(text).expect("parses");
        // The staircase geometry survives on the module, and its bounding
        // box joined the rectangular implementation list.
        assert_eq!(inst.library[0].staircases().len(), 1);
        assert_eq!(
            inst.library[0].staircases()[0].corners(),
            &[(12, 2), (9, 4), (5, 6)]
        );
        assert!(inst.library[0]
            .implementations()
            .iter()
            .any(|r| *r == fp_geom::Rect::new(12, 6)));
        // `rot` adds the transposed staircase as a second implementation.
        assert_eq!(inst.library[1].staircases().len(), 2);

        let written = write_instance(&inst).expect("writable");
        let reparsed = parse_instance(&written).expect("round-trips");
        assert_eq!(inst.library, reparsed.library);
        assert_eq!(written, write_instance(&reparsed).expect("fixpoint"));
    }

    #[test]
    fn staircase_syntax_errors_report_the_line() {
        // Ten strictly-descending teeth exceed MAX_STAIRCASE_STEPS.
        let deep: String = (0..10)
            .map(|i| format!("{}x{}", 20 - i, 2 + i))
            .collect::<Vec<_>>()
            .join("/");
        for (text, needle) in [
            (
                format!("module m {deep}\ntree m\n"),
                "invalid staircase".to_owned(),
            ),
            (
                "module m 12x2/9xx4\ntree m\n".to_owned(),
                "expected <width>x<height>".to_owned(),
            ),
            (
                "module m 12x0/9x4\ntree m\n".to_owned(),
                "zero dimension".to_owned(),
            ),
        ] {
            let err = parse_instance(&text).expect_err(&text);
            assert_eq!(err.line, 1, "{text}");
            assert!(err.message.contains(&needle), "{}: {}", text, err.message);
        }
    }

    #[test]
    fn error_reporting_lines() {
        let cases: &[(&str, usize, &str)] = &[
            ("module m 3xx4\ntree m\n", 1, "expected <width>x<height>"),
            ("module m 0x4\ntree m\n", 1, "zero dimension"),
            (
                "module m 1099511627777x4\ntree m\n",
                1,
                "exceeds the supported maximum",
            ),
            (
                "module m 1x1\nmodule m 2x2\ntree m\n",
                2,
                "duplicate module",
            ),
            ("module m 1x1\ntree (vsplit m)\n", 2, "at least 2 children"),
            (
                "module m 1x1\ntree (wheel cw m m m)\n",
                2,
                "exactly 5 children",
            ),
            (
                "module m 1x1\ntree (wheel sideways m m m m m)\n",
                2,
                "expected cw or ccw",
            ),
            ("module m 1x1\ntree nope\n", 2, "unknown module"),
            ("module m 1x1\ntree (spiral m m)\n", 2, "unknown operator"),
            ("module m 1x1\n", 0, "missing `tree`"),
            ("module m\ntree m\n", 1, "no implementations"),
            ("blorp\n", 1, "unknown directive"),
        ];
        for (text, line, needle) in cases {
            let err = parse_instance(text).expect_err(text);
            assert_eq!(err.line, *line, "{text}");
            assert!(err.message.contains(needle), "{text} -> {}", err.message);
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn rot_keyword_adds_rotations() {
        let inst = parse_instance("module m rot 4x2\ntree (vsplit m m)\n").expect("parses");
        assert_eq!(inst.library[0].implementations().len(), 2);
        let square = parse_instance("module m rot 3x3\ntree (vsplit m m)\n").expect("parses");
        assert_eq!(square.library[0].implementations().len(), 1);
        // `rot` with no sizes is still an error.
        let err = parse_instance("module m rot\ntree m\n").expect_err("no sizes");
        assert!(err.message.contains("no implementations"));
    }

    #[test]
    fn parser_never_panics_on_garbage() {
        // A light fuzz over adversarial inputs: errors are fine, panics
        // are not.
        let inputs = [
            "",
            "(",
            ")",
            "((((",
            "tree",
            "tree (",
            "module",
            "module x",
            "module x 1x1 tree x",
            "tree (wheel cw)",
            "floorplan",
            "module \u{1F600} 1x1\ntree \u{1F600}\n",
            "tree (vsplit (vsplit (vsplit",
            "module m 1x1\ntree ((((m",
            "module m 99999999999999999999x1\ntree m\n",
            "# only a comment",
            "module m 1x1 2x2 3x3 4x4\ntree m m\n",
        ];
        for text in inputs {
            let _ = parse_instance(text);
        }
    }

    #[test]
    fn adversarial_nesting_is_rejected_not_crashed() {
        let bomb = format!(
            "module m 1x1\ntree {}m{}\n",
            "(vsplit m ".repeat(2000),
            ")".repeat(2000)
        );
        let err = parse_instance(&bomb).expect_err("too deep");
        assert!(err.message.contains("nesting exceeds"));
        // At a reasonable depth it parses fine.
        let ok = format!(
            "module m 1x1\ntree {}m m{}\n",
            "(vsplit m ".repeat(150),
            ")".repeat(150)
        );
        assert!(parse_instance(&ok).is_ok());
    }

    #[test]
    fn unbalanced_parens() {
        assert!(parse_instance("module m 1x1\ntree (vsplit m m\n").is_err());
        assert!(parse_instance("module m 1x1\ntree (vsplit m m))\n").is_err());
    }

    #[test]
    fn redundant_implementations_pruned_on_load() {
        let inst = parse_instance("module m 3x3 4x4 2x5\ntree (vsplit m m)\n").expect("parses");
        assert_eq!(inst.library[0].implementations().len(), 2); // 4x4 dominated
    }

    proptest::proptest! {
        /// No input string can panic the parser.
        #[test]
        fn parser_total_on_random_input(text in ".{0,200}") {
            let _ = parse_instance(&text);
        }

        /// Structured-ish random inputs exercise deeper paths.
        #[test]
        fn parser_total_on_token_soup(
            tokens in proptest::collection::vec(
                proptest::prop_oneof![
                    proptest::prelude::Just("module".to_owned()),
                    proptest::prelude::Just("tree".to_owned()),
                    proptest::prelude::Just("floorplan".to_owned()),
                    proptest::prelude::Just("(".to_owned()),
                    proptest::prelude::Just(")".to_owned()),
                    proptest::prelude::Just("vsplit".to_owned()),
                    proptest::prelude::Just("wheel".to_owned()),
                    proptest::prelude::Just("cw".to_owned()),
                    proptest::prelude::Just("rot".to_owned()),
                    proptest::prelude::Just("m".to_owned()),
                    proptest::prelude::Just("3x4".to_owned()),
                ],
                0..40,
            )
        ) {
            let _ = parse_instance(&tokens.join(" "));
        }
    }

    #[test]
    fn generated_benchmarks_round_trip() {
        // Convert a generated benchmark into an instance and round-trip it.
        let bench = crate::generators::fp1();
        let library = crate::generators::module_library(&bench.tree, 3, 5);
        let inst = FloorplanInstance {
            name: bench.name.clone(),
            tree: bench.tree,
            library,
        };
        let text = write_instance(&inst).expect("writable");
        let reparsed = parse_instance(&text).expect("round-trips");
        assert_eq!(reparsed.tree.module_count(), 25);
        assert_eq!(reparsed.library.len(), 25);
    }

    #[test]
    fn error_reporting_columns() {
        // The offending token's column, not just its line.
        let err = parse_instance("module m 3xx4\ntree m\n").expect_err("bad size");
        assert_eq!((err.line, err.col), (1, 10));
        let err = parse_instance("module m 1x1\ntree nope\n").expect_err("unknown module");
        assert_eq!((err.line, err.col), (2, 6));
        let err = parse_instance("module m 1x1\nmodule m 2x2\ntree m\n").expect_err("dup");
        assert_eq!((err.line, err.col), (2, 8));
        // Structural errors carry no column.
        let err = parse_instance("module m 1x1\n").expect_err("missing tree");
        assert_eq!((err.line, err.col), (0, 0));
        assert!(err.to_string().contains("end of input"));
        // Display mentions both coordinates when known.
        let err = parse_instance("module m 0x4\ntree m\n").expect_err("zero dim");
        assert!(err.to_string().contains("line 1, column 10"), "{err}");
    }

    #[test]
    fn write_instance_reports_missing_modules() {
        let mut tree = FloorplanTree::new();
        tree.leaf(7); // no module 7 in the (empty) library
        let inst = FloorplanInstance {
            name: "broken".into(),
            tree,
            library: ModuleLibrary::new(),
        };
        match write_instance(&inst) {
            Err(WriteInstanceError::MissingModule { node: _, module }) => assert_eq!(module, 7),
            other => panic!("expected MissingModule, got {other:?}"),
        }
    }
}
