//! Orderly-spanning-tree style initial topologies.
//!
//! *Compact Floor-Planning via Orderly Spanning Trees* (Chiang–Lin–Lu)
//! derives a compact floorplan in `O(n)` from an orderly spanning tree of
//! the module adjacency graph: vertices are labelled in preorder, every
//! subtree owns a contiguous label interval, and the floorplan follows
//! the tree shape directly. This codebase has no adjacency graph — the
//! modules arrive as a bare library — so [`orderly_tree`] constructs the
//! orderly spanning tree of the canonical grid triangulation instead:
//! modules ranked by their smallest implementation area (largest first),
//! the largest at the root, the rest dealt into `⌈√(n−1)⌉` side-by-side
//! columns, labels assigned in preorder. [`OrderlyTree::to_slicing_tree`]
//! then turns that tree into a slicing topology with depth-alternating
//! cuts, which yields a near-square grid seed for the annealer — a much
//! better-shaped start than the all-in-a-row default, still `O(n)` and
//! fully deterministic (no randomness anywhere).

use core::cmp::Reverse;

use fp_geom::Area;

use crate::{CutDir, FloorplanTree, ModuleId, ModuleLibrary, NodeId};

/// An ordered rooted tree over the modules whose node ids are exactly
/// preorder ranks (the orderly labelling): the root is node `0`, every
/// child id exceeds its parent's, children are listed in increasing id
/// order, and each subtree owns a contiguous id interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderlyTree {
    /// Ordered children per node (ids are preorder ranks).
    children: Vec<Vec<usize>>,
    /// `order[rank]` is the module placed at that node; ranks run in
    /// decreasing smallest-implementation area.
    order: Vec<ModuleId>,
}

impl OrderlyTree {
    /// Number of nodes (= modules).
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the tree has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The root's preorder rank (always `0`).
    #[must_use]
    pub fn root(&self) -> usize {
        0
    }

    /// The ordered children of node `rank`.
    #[must_use]
    pub fn children(&self, rank: usize) -> &[usize] {
        &self.children[rank]
    }

    /// The module occupying node `rank`.
    #[must_use]
    pub fn module_at(&self, rank: usize) -> ModuleId {
        self.order[rank]
    }

    /// Checks the orderly labelling: a preorder walk from the root visits
    /// the nodes exactly in id order `0, 1, 2, …` (which implies every
    /// subtree spans a contiguous id interval and every child id exceeds
    /// its parent's), and the module assignment is a permutation.
    #[must_use]
    pub fn is_orderly(&self) -> bool {
        let n = self.len();
        if n == 0 || self.children.len() != n {
            return false;
        }
        let mut next = 0usize;
        let mut stack = vec![0usize];
        while let Some(v) = stack.pop() {
            if v != next {
                return false;
            }
            next += 1;
            for &c in self.children[v].iter().rev() {
                if c >= n || c <= v {
                    return false;
                }
                stack.push(c);
            }
        }
        let mut seen = vec![false; n];
        for &m in &self.order {
            if m >= n || seen[m] {
                return false;
            }
            seen[m] = true;
        }
        next == n
    }

    /// Realizes the orderly tree as a slicing topology: each node becomes
    /// its module's leaf placed beside (even depth, vertical cuts) or
    /// below (odd depth, horizontal cuts) the strip of its children's
    /// sub-floorplans. For the grid-shaped trees [`orderly_tree`] builds
    /// this is the classic column layout: the root module followed by
    /// `⌈√(n−1)⌉` vertical stacks, side by side.
    #[must_use]
    pub fn to_slicing_tree(&self) -> FloorplanTree {
        assert!(!self.is_empty(), "an orderly tree has at least one node");
        let mut tree = FloorplanTree::new();
        let root = self.build(0, 0, &mut tree);
        tree.set_root(root);
        tree
    }

    fn build(&self, v: usize, depth: usize, tree: &mut FloorplanTree) -> NodeId {
        let leaf = tree.leaf(self.order[v]);
        if self.children[v].is_empty() {
            return leaf;
        }
        let mut kids = Vec::with_capacity(1 + self.children[v].len());
        kids.push(leaf);
        for &c in &self.children[v] {
            kids.push(self.build(c, depth + 1, tree));
        }
        let dir = if depth.is_multiple_of(2) {
            CutDir::Vertical
        } else {
            CutDir::Horizontal
        };
        tree.slice(dir, kids)
    }
}

/// Builds the orderly spanning tree of the canonical grid triangulation
/// over `library`: modules ranked by smallest implementation area
/// (largest first, ties by id), the largest at the root, the remaining
/// `n − 1` dealt — in rank order — into `⌈√(n−1)⌉` columns of near-equal
/// height hanging off the root.
///
/// Deterministic in the library alone.
///
/// # Panics
///
/// Panics if the library is empty or a module has no implementations.
#[must_use]
pub fn orderly_tree(library: &ModuleLibrary) -> OrderlyTree {
    assert!(
        !library.is_empty(),
        "orderly tree needs at least one module"
    );
    let n = library.len();
    let min_area = |m: ModuleId| -> Area {
        library[m]
            .implementations()
            .iter()
            .map(|r| r.area())
            .min()
            .expect("modules have at least one implementation")
    };
    let mut order: Vec<ModuleId> = (0..n).collect();
    order.sort_by_key(|&m| (Reverse(min_area(m)), m));

    let mut children = vec![Vec::new(); n];
    let rest = n - 1;
    if rest > 0 {
        let cols = (1..).find(|&b| b * b >= rest).expect("sqrt exists");
        let mut next = 1usize;
        for c in 0..cols {
            let take = rest / cols + usize::from(c < rest % cols);
            if take == 0 {
                continue;
            }
            children[0].push(next);
            children[next] = (next + 1..next + take).collect();
            next += take;
        }
    }
    OrderlyTree { children, order }
}

/// Convenience: the orderly-spanning-tree topology of `library` as a
/// ready-to-optimize slicing [`FloorplanTree`]
/// ([`orderly_tree`] + [`OrderlyTree::to_slicing_tree`]).
///
/// # Panics
///
/// Panics if the library is empty or a module has no implementations.
#[must_use]
pub fn ost_tree(library: &ModuleLibrary) -> FloorplanTree {
    orderly_tree(library).to_slicing_tree()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{realize, Assignment};
    use crate::spread_library;

    #[test]
    fn grid_shape_and_orderly_labels() {
        let library = spread_library(10, 3, 7);
        let ost = orderly_tree(&library);
        assert!(ost.is_orderly());
        assert_eq!(ost.len(), 10);
        // 9 non-root modules over ceil(sqrt(9)) = 3 columns of 3.
        assert_eq!(ost.children(0), &[1, 4, 7]);
        assert_eq!(ost.children(1), &[2, 3]);
        assert_eq!(ost.children(4), &[5, 6]);
        assert_eq!(ost.children(7), &[8, 9]);
    }

    #[test]
    fn ranks_are_area_sorted_largest_first() {
        let library = spread_library(12, 4, 3);
        let ost = orderly_tree(&library);
        let area = |rank: usize| {
            library[ost.module_at(rank)]
                .implementations()
                .iter()
                .map(|r| r.area())
                .min()
                .expect("non-empty")
        };
        for rank in 1..ost.len() {
            assert!(area(rank - 1) >= area(rank), "rank {rank} out of order");
        }
    }

    #[test]
    fn slicing_tree_is_valid_and_realizes() {
        for n in [1usize, 2, 3, 5, 10, 17] {
            let library = spread_library(n, 3, n as u64);
            let tree = ost_tree(&library);
            assert!(tree.validate().is_ok(), "n = {n}");
            assert_eq!(tree.module_count(), n);
            let layout = realize(&tree, &library, &Assignment::first_fit(n)).expect("ost realizes");
            assert_eq!(layout.validate(), None);
        }
    }

    #[test]
    fn deterministic_in_the_library() {
        let library = spread_library(9, 3, 5);
        assert_eq!(orderly_tree(&library), orderly_tree(&library));
    }

    #[test]
    fn orderly_checker_rejects_broken_labellings() {
        let library = spread_library(6, 3, 1);
        let good = orderly_tree(&library);
        // Swap a parent/child pair: child id no longer exceeds parent's.
        let mut bad = good.clone();
        let first_col = bad.children[0][0];
        bad.children[0][0] = bad.children[first_col][0];
        bad.children[first_col][0] = first_col;
        assert!(!bad.is_orderly());
        // Duplicate a module in the assignment.
        let mut dup = good.clone();
        dup.order[1] = dup.order[0];
        assert!(!dup.is_orderly());
    }
}
