//! Equivalence suite for the flat selection kernels: on *any* weighted
//! selection DAG — randomized, Monge-by-construction, or adversarially
//! non-Monge — [`solve_selection`] must return the same optimal weight
//! **and the same path** as the reference `Constrained_Shortest_Path`
//! DP on the equivalent [`Dag::complete`] instance, and the D&C kernel
//! must engage only when the Monge certification passes.

use fp_cspp::{
    constrained_shortest_path, monge_certified, solve_selection, solve_selection_dense,
    CsppScratch, Dag, FlatKernel, OrderedF64,
};
use proptest::prelude::*;

/// Deterministic pseudo-random interval weights from a seed.
fn lcg_weight(seed: u64) -> impl Fn(usize, usize) -> u64 + Copy {
    move |i: usize, j: usize| {
        let x = seed ^ ((i as u64) << 32) ^ (j as u64);
        let x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (x >> 40) + 1
    }
}

/// Reference solve on the equivalent complete DAG.
fn reference(n: usize, k: usize, w: impl Fn(usize, usize) -> u64) -> (u64, Vec<usize>) {
    let g = Dag::complete(n, &w);
    let sol = constrained_shortest_path(&g, 0, n - 1, k).expect("complete DAG has all k-paths");
    (sol.weight, sol.vertices)
}

/// A staircase-gap error table from strictly decreasing widths and
/// strictly increasing heights — the `R_Selection` weight shape, which
/// is strictly Monge (the quadrangle-inequality margin for the adjacent
/// quadruple `(i, j)` is `(width[i] - width[i+1]) * (height[j+1] -
/// height[j]) > 0`).
fn staircase_table(n: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = seed | 1;
    let mut step = move || {
        rng = rng
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        1 + (rng >> 48) % 9
    };
    let mut heights = Vec::with_capacity(n);
    let mut acc = 1u64;
    for _ in 0..n {
        acc += step();
        heights.push(acc);
    }
    let mut widths = Vec::with_capacity(n);
    let mut acc = 1u64;
    for _ in 0..n {
        acc += step();
        widths.push(acc);
    }
    widths.reverse();

    let mut err = vec![vec![0u64; n]; n];
    for i in 0..n {
        let mut acc = 0u64;
        for j in i + 2..n {
            acc += (widths[i] - widths[j - 1]) * (heights[j] - heights[j - 1]);
            err[i][j] = acc;
        }
    }
    err
}

proptest! {
    /// Randomized weights are essentially never Monge: the auto-dispatch
    /// must fall back to the dense kernel and still agree byte-for-byte
    /// with the reference DP on weight and path.
    #[test]
    fn flat_matches_reference_on_random_weights(
        n in 2usize..24,
        k_raw in 0usize..64,
        seed in 0u64..1_000_000,
    ) {
        let k = 2 + k_raw % (n - 1).max(1);
        let w = lcg_weight(seed);
        let (rw, rp) = reference(n, k, w);
        let mut scratch = CsppScratch::new();
        let out = solve_selection(n, k, w, &mut scratch).expect("solvable");
        prop_assert_eq!(out.weight, rw);
        prop_assert_eq!(scratch.path(), &rp[..]);
        let dense = solve_selection_dense(n, k, w, &mut scratch).expect("solvable");
        prop_assert_eq!(dense.weight, rw);
        prop_assert_eq!(scratch.path(), &rp[..]);
    }

    /// Monge-by-construction staircase weights at D&C scale: the
    /// certification must pass, the D&C kernel must engage, and weight
    /// and path must be byte-identical to both the dense kernel and the
    /// reference DP.
    #[test]
    fn dc_kernel_is_byte_identical_on_monge_weights(
        n in 48usize..72,
        k_raw in 0usize..32,
        seed in 0u64..1_000_000,
    ) {
        let k = 4 + k_raw % (n - 4);
        let table = staircase_table(n, seed);
        let w = |i: usize, j: usize| table[i][j];
        prop_assert!(monge_certified(n, &w));

        let mut scratch = CsppScratch::new();
        let auto = solve_selection(n, k, w, &mut scratch).expect("solvable");
        prop_assert_eq!(auto.kernel, FlatKernel::DivideConquer);
        let auto_path = scratch.path().to_vec();

        let dense = solve_selection_dense(n, k, w, &mut scratch).expect("solvable");
        prop_assert_eq!(auto.weight, dense.weight);
        prop_assert_eq!(&auto_path, &scratch.path().to_vec());

        let (rw, rp) = reference(n, k, w);
        prop_assert_eq!(auto.weight, rw);
        prop_assert_eq!(auto_path, rp);
    }

    /// Adversarial weights: a staircase table with one planted
    /// quadrangle-inequality violation. The certification must reject
    /// it (forced fallback), the dense kernel must run, and the result
    /// must still match the reference DP exactly.
    #[test]
    fn planted_violation_forces_dense_fallback(
        n in 48usize..72,
        k_raw in 0usize..32,
        seed in 0u64..1_000_000,
    ) {
        let k = 4 + k_raw % (n - 4);
        let mut table = staircase_table(n, seed);
        // Plant a spike inside the certification domain: `violated(a, b)`
        // is then guaranteed because only the left-hand side grows.
        let (a, b) = (n / 4, n / 2);
        table[a][b] += 1_000_000_000;
        let w = |i: usize, j: usize| table[i][j];
        prop_assert!(!monge_certified(n, &w));

        let mut scratch = CsppScratch::new();
        let out = solve_selection(n, k, w, &mut scratch).expect("solvable");
        prop_assert_eq!(out.kernel, FlatKernel::Dense);
        let (rw, rp) = reference(n, k, w);
        prop_assert_eq!(out.weight, rw);
        prop_assert_eq!(scratch.path(), &rp[..]);
    }

    /// Float weights take the same code path and must agree bitwise with
    /// the reference DP (identical addition order layer by layer).
    #[test]
    fn float_weights_match_reference(
        n in 2usize..16,
        k_raw in 0usize..32,
        seed in 0u64..1_000_000,
    ) {
        let k = 2 + k_raw % (n - 1).max(1);
        let base = lcg_weight(seed);
        let w = move |i: usize, j: usize| {
            OrderedF64::new((base(i, j) as f64).sqrt()).expect("finite")
        };
        let g = Dag::complete(n, w);
        let sol = constrained_shortest_path(&g, 0, n - 1, k).expect("path");
        let mut scratch = CsppScratch::new();
        let out = solve_selection(n, k, w, &mut scratch).expect("solvable");
        prop_assert_eq!(out.weight, sol.weight);
        prop_assert_eq!(scratch.path(), &sol.vertices[..]);
    }
}

/// One arena across many differently-shaped solves: buffer reuse must
/// never leak state between instances.
#[test]
fn shared_scratch_across_instances_is_sound() {
    let mut scratch = CsppScratch::new();
    for round in 0..3u64 {
        for &(n, k) in &[(64usize, 9usize), (5, 2), (50, 48), (2, 2), (31, 17)] {
            let table = staircase_table(n, 7 + round);
            let w = |i: usize, j: usize| table[i][j];
            let out = solve_selection(n, k, w, &mut scratch).expect("solvable");
            let (rw, rp) = reference(n, k, w);
            assert_eq!(out.weight, rw, "n={n} k={k} round={round}");
            assert_eq!(scratch.path(), &rp[..], "n={n} k={k} round={round}");
        }
    }
}
