//! The constrained shortest path problem (CSPP) on weighted DAGs.
//!
//! Given a weighted directed acyclic graph, two vertices `s` and `t`, and a
//! positive integer `k`, the CSPP asks for a minimum-total-weight path from
//! `s` to `t` with **exactly `k` vertices** (Wang–Wong DAC'92, §4.1). This
//! differs from the classical shortest path problem, which places no
//! constraint on the number of vertices.
//!
//! The solver is the paper's `Constrained_Shortest_Path` dynamic program:
//! `W(s, v, l)`, the least weight of an `s → v` path with exactly `l`
//! vertices, satisfies
//!
//! ```text
//! W(s, v, l) = min over edges (u, v) of  W(s, u, l-1) + w(u, v)
//! ```
//!
//! and is computed for `l = 2 … k` in `O(k (|V| + |E|))` time (Theorem 1).
//!
//! # Example (paper Figure 4)
//!
//! ```
//! use fp_cspp::{constrained_shortest_path, shortest_path, Dag};
//!
//! let mut g: Dag<u64> = Dag::new(6);
//! for (u, v, w) in [(0, 1, 1), (1, 2, 2), (2, 3, 2), (3, 4, 2), (4, 5, 1),
//!                   (0, 2, 6), (1, 3, 6), (3, 5, 4), (1, 4, 13)] {
//!     g.add_edge(u, v, w)?;
//! }
//! // Unconstrained: the 6-vertex chain, total weight 8.
//! assert_eq!(shortest_path(&g, 0, 5)?.weight, 8);
//! // Constrained to exactly 4 vertices: v1 → v2 → v4 → v6, weight 11.
//! let sol = constrained_shortest_path(&g, 0, 5, 4)?;
//! assert_eq!(sol.vertices, vec![0, 1, 3, 5]);
//! assert_eq!(sol.weight, 11);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dag;
mod flat;
mod solve;
mod weight;

pub use dag::{Dag, EdgeError};
pub use flat::{
    monge_certified, solve_selection, solve_selection_dense, CsppScratch, FlatKernel,
    SelectScratch, SelectionOutcome, SolveCounters,
};
pub use solve::{
    constrained_shortest_path, constrained_shortest_path_scratch, constrained_shortest_paths_all_k,
    shortest_path, CsppError, PathSolution,
};
pub use weight::{OrderedF64, Weight};
