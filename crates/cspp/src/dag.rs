//! Weighted directed graph storage with acyclicity checking.

use core::fmt;

use crate::Weight;

/// Error returned by [`Dag::add_edge`] for malformed edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeError {
    /// An endpoint is not a vertex of the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// The number of vertices in the graph.
        len: usize,
    },
    /// Self-loops are not allowed (they would make the graph cyclic).
    SelfLoop {
        /// The vertex with the attempted self-loop.
        vertex: usize,
    },
}

impl fmt::Display for EdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeError::VertexOutOfRange { vertex, len } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {len} vertices"
                )
            }
            EdgeError::SelfLoop { vertex } => write!(f, "self-loop on vertex {vertex}"),
        }
    }
}

impl std::error::Error for EdgeError {}

/// A weighted directed graph intended to be acyclic, stored as incoming
/// adjacency lists (the orientation the CSPP dynamic program consumes).
///
/// Acyclicity is not enforced edge-by-edge; the solvers verify it once per
/// call via [`Dag::is_acyclic`] (an `O(|V| + |E|)` check) and report cyclic
/// inputs as an error.
///
/// Parallel edges are permitted (only the lightest can ever matter).
///
/// # Example
///
/// ```
/// use fp_cspp::Dag;
///
/// let mut g: Dag<u64> = Dag::new(3);
/// g.add_edge(0, 1, 5)?;
/// g.add_edge(1, 2, 7)?;
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.is_acyclic());
/// # Ok::<(), fp_cspp::EdgeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag<W> {
    /// `in_edges[v]` lists `(u, w)` for every edge `u → v`.
    in_edges: Vec<Vec<(u32, W)>>,
    edge_count: usize,
}

impl<W: Weight> Dag<W> {
    /// Creates a graph with `n` vertices (ids `0 … n-1`) and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Dag {
            in_edges: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Adds the directed edge `u → v` of weight `w`.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError`] if either endpoint is out of range or if
    /// `u == v`.
    pub fn add_edge(&mut self, u: usize, v: usize, w: W) -> Result<(), EdgeError> {
        let len = self.in_edges.len();
        for x in [u, v] {
            if x >= len {
                return Err(EdgeError::VertexOutOfRange { vertex: x, len });
            }
        }
        if u == v {
            return Err(EdgeError::SelfLoop { vertex: u });
        }
        self.in_edges[v].push((u as u32, w));
        self.edge_count += 1;
        Ok(())
    }

    /// The complete DAG on `n` vertices with edges `i → j` for every
    /// `i < j`, weighted by `weight(i, j)` — the graph the floorplan
    /// selection algorithms reduce to.
    ///
    /// ```
    /// use fp_cspp::Dag;
    ///
    /// let g = Dag::complete(4, |i, j| (j - i) as u64);
    /// assert_eq!(g.edge_count(), 6);
    /// assert!(g.is_acyclic());
    /// ```
    #[must_use]
    pub fn complete(n: usize, weight: impl Fn(usize, usize) -> W) -> Self {
        let mut g = Dag::new(n);
        for j in 0..n {
            let edges = &mut g.in_edges[j];
            edges.reserve_exact(j);
            for i in 0..j {
                edges.push((i as u32, weight(i, j)));
            }
        }
        g.edge_count = n * n.saturating_sub(1) / 2;
        g
    }

    /// Number of vertices.
    #[inline]
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.in_edges.len()
    }

    /// Number of edges.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The incoming edges of `v` as `(source, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn in_edges(&self, v: usize) -> &[(u32, W)] {
        &self.in_edges[v]
    }

    /// `true` if the graph contains no directed cycle (Kahn's algorithm).
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        let n = self.vertex_count();
        let mut out_degree = vec![0usize; n];
        for edges in &self.in_edges {
            for &(u, _) in edges {
                out_degree[u as usize] += 1;
            }
        }
        // Peel vertices with zero out-degree repeatedly.
        let mut stack: Vec<usize> = (0..n).filter(|&v| out_degree[v] == 0).collect();
        let mut removed = 0usize;
        while let Some(v) = stack.pop() {
            removed += 1;
            for &(u, _) in &self.in_edges[v] {
                let u = u as usize;
                out_degree[u] -= 1;
                if out_degree[u] == 0 {
                    stack.push(u);
                }
            }
        }
        removed == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_validates() {
        let mut g: Dag<u64> = Dag::new(2);
        assert_eq!(
            g.add_edge(0, 2, 1),
            Err(EdgeError::VertexOutOfRange { vertex: 2, len: 2 })
        );
        assert_eq!(g.add_edge(1, 1, 1), Err(EdgeError::SelfLoop { vertex: 1 }));
        assert!(g.add_edge(0, 1, 1).is_ok());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.in_edges(1), &[(0, 1)]);
        assert!(g.in_edges(0).is_empty());
    }

    #[test]
    fn error_messages() {
        assert_eq!(
            EdgeError::VertexOutOfRange { vertex: 9, len: 3 }.to_string(),
            "vertex 9 out of range for graph with 3 vertices"
        );
        assert_eq!(
            EdgeError::SelfLoop { vertex: 2 }.to_string(),
            "self-loop on vertex 2"
        );
    }

    #[test]
    fn acyclicity_detection() {
        let mut g: Dag<u64> = Dag::new(3);
        g.add_edge(0, 1, 1).expect("edge");
        g.add_edge(1, 2, 1).expect("edge");
        assert!(g.is_acyclic());
        g.add_edge(2, 0, 1).expect("edge");
        assert!(!g.is_acyclic());
    }

    #[test]
    fn empty_and_edgeless_graphs_are_acyclic() {
        assert!(Dag::<u64>::new(0).is_acyclic());
        assert!(Dag::<u64>::new(5).is_acyclic());
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g: Dag<u64> = Dag::new(2);
        g.add_edge(0, 1, 3).expect("edge");
        g.add_edge(0, 1, 5).expect("edge");
        assert_eq!(g.edge_count(), 2);
        assert!(g.is_acyclic());
    }
}
