//! Flat layered DP specialized to the *selection DAG*: the complete DAG
//! on vertices `0 … n-1` whose edges all point from lower to higher
//! indices, weighted by an interval function `w(i, j)`.
//!
//! `R_Selection`/`L_Selection` (paper §4.2–§4.3) always solve the CSPP
//! on this graph, so the generic adjacency-list [`crate::Dag`] machinery
//! is pure overhead there: every vertex's in-neighbourhood is the
//! contiguous range `0 … v-1` and the weights come from an O(1) closure
//! over a precomputed table. This module exploits that shape:
//!
//! * **contiguous layer-major storage** — two rolling `dist` rows and a
//!   `(k-1) × n` predecessor matrix instead of per-vertex `Vec`s of
//!   `(u32, W)` pairs, with no `Option` sentinel: layer windows (below)
//!   guarantee every read slot was written;
//! * **layer windows** — on the best `l`-vertex path `0 → v`, the
//!   endpoint satisfies `l-1 <= v <= n-1-(k-l)`, so each layer touches
//!   only the states that can still reach `t` with the remaining budget;
//! * **scratch reuse** — all buffers live in a [`CsppScratch`] arena
//!   owned by the caller, so a warmed solve performs no allocation;
//! * **divide-and-conquer row minima** — when the weight matrix is
//!   certified Monge (quadrangle inequality), each layer's leftmost
//!   argmins are monotone and the layer solves in `O(n log n)` instead
//!   of `O(n²)`, giving `O(n² + k n log n)` total (the `n²` being the
//!   one-off certification sweep). A cheap sampled spot-check rejects
//!   non-Monge inputs early and falls back to the exhaustive dense
//!   layer, so results are *always* exactly optimal and byte-identical
//!   to the reference DP ([`crate::constrained_shortest_path`] on
//!   [`crate::Dag::complete`]).
//!
//! Both kernels scan candidate predecessors in ascending order keeping
//! the first strict improvement, which is exactly the reference DP's
//! tie-break (its in-edges are pushed in ascending source order), so the
//! *paths* agree too — not just the weights.

use crate::{CsppError, OrderedF64, Weight};

pub(crate) const NO_PRED: u32 = u32::MAX;

/// Dense layers beat D&C + certification below this vertex count.
const DC_MIN_N: usize = 48;
/// D&C needs enough layers to amortize the certification sweep.
const DC_MIN_K: usize = 4;
/// Sampled quadrangle-inequality probes before the full sweep.
const SPOT_SAMPLES: usize = 32;

/// Which layer kernel [`solve_selection`] actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatKernel {
    /// The exhaustive dense layer: every predecessor scanned.
    Dense,
    /// Divide-and-conquer row minima on a certified-Monge weight matrix.
    DivideConquer,
}

/// Cumulative solver-dispatch counters of one scratch arena: how many
/// solves each kernel ran, and how often a D&C-eligible instance failed
/// Monge certification and fell back to the dense layer.
///
/// Plain integers bumped at dispatch time — no allocation, so the
/// warmed-arena zero-allocation gate is unaffected. Callers that want
/// per-call attribution snapshot before a solve and subtract with
/// [`SolveCounters::since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveCounters {
    /// Solves through the legacy adjacency-list DAG DP
    /// ([`crate::constrained_shortest_path_scratch`]).
    pub legacy: u64,
    /// Flat-kernel solves that ran the exhaustive dense layer.
    pub dense: u64,
    /// Flat-kernel solves that ran divide-and-conquer row minima after
    /// full Monge certification.
    pub divide_conquer: u64,
    /// Dense solves that were D&C-eligible (`n`, `k` over the engage
    /// thresholds) but failed certification.
    pub monge_fallbacks: u64,
}

impl SolveCounters {
    /// The counter deltas accumulated since `earlier` (a snapshot of
    /// the same arena; saturates defensively on mismatched snapshots).
    #[must_use]
    pub fn since(&self, earlier: SolveCounters) -> SolveCounters {
        SolveCounters {
            legacy: self.legacy.saturating_sub(earlier.legacy),
            dense: self.dense.saturating_sub(earlier.dense),
            divide_conquer: self.divide_conquer.saturating_sub(earlier.divide_conquer),
            monge_fallbacks: self.monge_fallbacks.saturating_sub(earlier.monge_fallbacks),
        }
    }

    /// Adds `other`'s counters into `self` (merges the paired arenas of
    /// a [`SelectScratch`]).
    pub fn absorb(&mut self, other: SolveCounters) {
        self.legacy += other.legacy;
        self.dense += other.dense;
        self.divide_conquer += other.divide_conquer;
        self.monge_fallbacks += other.monge_fallbacks;
    }

    /// Total solves dispatched.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.legacy + self.dense + self.divide_conquer
    }
}

/// The result of a [`solve_selection`] call. The optimal path itself is
/// left in the scratch arena ([`CsppScratch::path`]) so the hot path
/// never allocates a fresh vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionOutcome<W> {
    /// The minimal total weight of a `k`-vertex path `0 → n-1`.
    pub weight: W,
    /// The kernel that produced it (fallback contract: `DivideConquer`
    /// only after the full Monge certification passed).
    pub kernel: FlatKernel,
}

/// Reusable per-caller buffer arena for the CSPP solvers.
///
/// One arena serves both the flat selection kernels in this module and
/// the legacy [`crate::Dag`] path
/// ([`crate::constrained_shortest_path_scratch`]); buffers grow to the
/// high-water mark of the workload and stay allocated, so a warmed
/// arena solves without touching the global allocator.
///
/// ```
/// use fp_cspp::{solve_selection, CsppScratch};
///
/// let mut scratch = CsppScratch::new();
/// // w(i, j) = j - i: every hop costs its span, all paths weigh n-1.
/// let out = solve_selection(5, 3, |i, j| (j - i) as u64, &mut scratch)?;
/// assert_eq!(out.weight, 4);
/// assert_eq!(scratch.path(), &[0, 1, 4]);
/// # Ok::<(), fp_cspp::CsppError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CsppScratch<W> {
    /// Rolling distance row for the previous layer (flat kernels).
    pub(crate) dist_prev: Vec<W>,
    /// Rolling distance row for the current layer (flat kernels).
    pub(crate) dist_cur: Vec<W>,
    /// Layer-major predecessors: `pred[(l-2)*n + v]`.
    pub(crate) pred: Vec<u32>,
    /// The vertex sequence of the most recent successful solve.
    pub(crate) path: Vec<usize>,
    /// Previous-layer distances for the legacy `Dag` DP (`None` = ∞).
    pub(crate) opt_prev: Vec<Option<W>>,
    /// Current-layer distances for the legacy `Dag` DP.
    pub(crate) opt_cur: Vec<Option<W>>,
    /// Out-degree counters for the topological peel.
    pub(crate) degree: Vec<u32>,
    /// Peel stack for the topological sort.
    pub(crate) stack: Vec<u32>,
    /// Topological order (forward), reused by the infeasibility pre-check.
    pub(crate) topo: Vec<u32>,
    /// Minimum edge count of any `s → v` path (`u32::MAX` = unreachable).
    pub(crate) min_len: Vec<u32>,
    /// Maximum edge count of any `s → v` path.
    pub(crate) max_len: Vec<u32>,
    /// Solver-dispatch telemetry (see [`SolveCounters`]).
    pub(crate) counters: SolveCounters,
}

impl<W> Default for CsppScratch<W> {
    fn default() -> Self {
        CsppScratch {
            dist_prev: Vec::new(),
            dist_cur: Vec::new(),
            pred: Vec::new(),
            path: Vec::new(),
            opt_prev: Vec::new(),
            opt_cur: Vec::new(),
            degree: Vec::new(),
            stack: Vec::new(),
            topo: Vec::new(),
            min_len: Vec::new(),
            max_len: Vec::new(),
            counters: SolveCounters::default(),
        }
    }
}

impl<W> CsppScratch<W> {
    /// An empty arena; buffers grow on first use and stay allocated.
    #[must_use]
    pub fn new() -> Self {
        CsppScratch::default()
    }

    /// An arena pre-sized for an `n`-vertex, `k`-layer selection solve
    /// ([`solve_selection`]): the rolling distance rows hold `n` entries
    /// and the layer-major predecessor table `(k - 2)·n`. Useful when
    /// the caller knows the largest solve it will route through the
    /// arena (e.g. staircase-list reduction over a fixed library) and
    /// wants the steady state from the first call.
    #[must_use]
    pub fn with_capacity(n: usize, k: usize) -> Self {
        CsppScratch {
            dist_prev: Vec::with_capacity(n),
            dist_cur: Vec::with_capacity(n),
            pred: Vec::with_capacity(k.saturating_sub(2) * n),
            path: Vec::with_capacity(k),
            ..CsppScratch::default()
        }
    }

    /// The vertex sequence found by the most recent successful solve
    /// through this arena (empty before the first solve).
    #[inline]
    #[must_use]
    pub fn path(&self) -> &[usize] {
        &self.path
    }

    /// Cumulative solver-dispatch counters of every solve routed
    /// through this arena.
    #[inline]
    #[must_use]
    pub fn counters(&self) -> SolveCounters {
        self.counters
    }
}

/// Paired integer/float arenas for callers that dispatch on the weight
/// type at runtime (the selection layer solves `u128` for areas and
/// exact `L₁` costs, [`OrderedF64`] for the other `L_p` metrics).
#[derive(Debug, Clone, Default)]
pub struct SelectScratch {
    /// Arena for integer-weighted solves (areas, exact `L₁`).
    pub int: CsppScratch<u128>,
    /// Arena for float-weighted solves (`L₂`/`L∞`/general `L_p`).
    pub float: CsppScratch<OrderedF64>,
}

impl SelectScratch {
    /// An empty pair of arenas.
    #[must_use]
    pub fn new() -> Self {
        SelectScratch::default()
    }

    /// The merged solver-dispatch counters of both arenas.
    #[must_use]
    pub fn counters(&self) -> SolveCounters {
        let mut merged = self.int.counters();
        merged.absorb(self.float.counters());
        merged
    }
}

/// Solves the CSPP on the complete forward DAG over `n` vertices with
/// interval weights `w(i, j)` (`i < j`): the minimum-weight path from
/// vertex `0` to vertex `n-1` with **exactly `k` vertices**.
///
/// This is the specialized hot path behind `R_Selection`/`L_Selection`.
/// The optimal weight and the kernel used are returned; the path is
/// written into `scratch` ([`CsppScratch::path`]). The weight closure
/// must be pure: it is re-evaluated freely (and, on the D&C path,
/// probed by the Monge certification).
///
/// Dispatch: when the instance is large enough to amortize it
/// (`n >= 48`, `k >= 4`) and the weight matrix passes a sampled
/// quadrangle-inequality spot-check followed by a full `O(n²)`
/// adjacent-pair certification, each layer runs divide-and-conquer row
/// minima in `O(n log n)`; otherwise the exhaustive dense layer runs.
/// Either way the result is exactly optimal and byte-identical (weight
/// *and* path) to [`crate::constrained_shortest_path`] on
/// [`crate::Dag::complete`] with the same weights.
///
/// # Errors
///
/// * [`CsppError::VertexOutOfRange`] — `n == 0` (there is no vertex 0).
/// * [`CsppError::InvalidK`] — `k == 0` or `k > n`.
/// * [`CsppError::NoSuchPath`] — `k == 1` while `n > 1`.
///
/// # Example
///
/// ```
/// use fp_cspp::{solve_selection, CsppScratch, FlatKernel};
///
/// // Skipping i..j costs the square of the span: convex, hence Monge —
/// // but n is small, so the dense kernel runs.
/// let w = |i: usize, j: usize| ((j - i) * (j - i)) as u64;
/// let mut scratch = CsppScratch::new();
/// let out = solve_selection(6, 3, w, &mut scratch)?;
/// assert_eq!(out.kernel, FlatKernel::Dense);
/// assert_eq!(out.weight, 13); // 0 → 2 → 5 or 0 → 3 → 5: 4 + 9
/// assert_eq!(scratch.path(), &[0, 2, 5]); // leftmost tie-break
/// # Ok::<(), fp_cspp::CsppError>(())
/// ```
pub fn solve_selection<W: Weight, F: Fn(usize, usize) -> W>(
    n: usize,
    k: usize,
    w: F,
    scratch: &mut CsppScratch<W>,
) -> Result<SelectionOutcome<W>, CsppError> {
    let eligible = n >= DC_MIN_N && k >= DC_MIN_K;
    let use_dc = eligible && monge_certified(n, &w);
    let kernel = if use_dc {
        scratch.counters.divide_conquer += 1;
        FlatKernel::DivideConquer
    } else {
        scratch.counters.dense += 1;
        if eligible {
            scratch.counters.monge_fallbacks += 1;
        }
        FlatKernel::Dense
    };
    solve_selection_with(n, k, w, scratch, kernel)
}

/// [`solve_selection`] pinned to the exhaustive dense kernel — no Monge
/// probing, no D&C. Exists for benchmarking the kernels against each
/// other; results are identical to the auto-dispatched solve.
///
/// # Errors
///
/// Same as [`solve_selection`].
pub fn solve_selection_dense<W: Weight, F: Fn(usize, usize) -> W>(
    n: usize,
    k: usize,
    w: F,
    scratch: &mut CsppScratch<W>,
) -> Result<SelectionOutcome<W>, CsppError> {
    scratch.counters.dense += 1;
    solve_selection_with(n, k, w, scratch, FlatKernel::Dense)
}

fn solve_selection_with<W: Weight, F: Fn(usize, usize) -> W>(
    n: usize,
    k: usize,
    w: F,
    scratch: &mut CsppScratch<W>,
    kernel: FlatKernel,
) -> Result<SelectionOutcome<W>, CsppError> {
    if n == 0 {
        return Err(CsppError::VertexOutOfRange { vertex: 0, len: 0 });
    }
    if k == 0 || k > n {
        return Err(CsppError::InvalidK { k, len: n });
    }
    let t = n - 1;
    if k == 1 {
        if t != 0 {
            return Err(CsppError::NoSuchPath);
        }
        scratch.path.clear();
        scratch.path.push(0);
        return Ok(SelectionOutcome {
            weight: W::ZERO,
            kernel,
        });
    }

    scratch.dist_prev.clear();
    scratch.dist_prev.resize(n, W::ZERO);
    scratch.dist_cur.clear();
    scratch.dist_cur.resize(n, W::ZERO);
    scratch.pred.clear();
    scratch.pred.resize((k - 1) * n, NO_PRED);

    let dist_prev = &mut scratch.dist_prev;
    let dist_cur = &mut scratch.dist_cur;
    let pred = &mut scratch.pred;

    // Layer 1 is the single-vertex path ending at the source.
    let (mut prev_lo, mut prev_hi) = (0usize, 0usize);
    for l in 2..=k {
        // States that can extend to t with the remaining k - l hops.
        let (lo, hi) = if l == k {
            (t, t)
        } else {
            (prev_lo + 1, n - 1 - (k - l))
        };
        let layer = &mut pred[(l - 2) * n..(l - 1) * n];
        match kernel {
            FlatKernel::Dense => {
                dense_layer(dist_prev, dist_cur, layer, &w, lo, hi, prev_lo, prev_hi);
            }
            FlatKernel::DivideConquer => {
                dc_layer(dist_prev, dist_cur, layer, &w, lo, hi, prev_lo, prev_hi);
            }
        }
        core::mem::swap(dist_prev, dist_cur);
        (prev_lo, prev_hi) = (lo, hi);
    }
    let weight = dist_prev[t];

    // Trace the predecessor layers back from (t, k).
    scratch.path.clear();
    scratch.path.resize(k, 0);
    scratch.path[k - 1] = t;
    let mut v = t;
    for l in (2..=k).rev() {
        let u = pred[(l - 2) * n + v];
        debug_assert_ne!(u, NO_PRED, "in-window states always record a predecessor");
        v = u as usize;
        scratch.path[l - 2] = v;
    }
    debug_assert_eq!(scratch.path[0], 0);
    Ok(SelectionOutcome { weight, kernel })
}

/// One exhaustive layer: for every state `v` in `[lo, hi]`, scan the
/// predecessor window `[prev_lo, min(v-1, prev_hi)]` in ascending order
/// keeping the first strict improvement (the reference tie-break).
#[allow(clippy::too_many_arguments)]
fn dense_layer<W: Weight>(
    dist_prev: &[W],
    dist_cur: &mut [W],
    pred: &mut [u32],
    w: &impl Fn(usize, usize) -> W,
    lo: usize,
    hi: usize,
    prev_lo: usize,
    prev_hi: usize,
) {
    for v in lo..=hi {
        let top = prev_hi.min(v - 1);
        let mut best = dist_prev[prev_lo] + w(prev_lo, v);
        let mut best_i = prev_lo as u32;
        for (i, &d) in dist_prev.iter().enumerate().take(top + 1).skip(prev_lo + 1) {
            let cand = d + w(i, v);
            if cand < best {
                best = cand;
                best_i = i as u32;
            }
        }
        dist_cur[v] = best;
        pred[v] = best_i;
    }
}

/// One divide-and-conquer layer over rows `[row_lo, row_hi]` whose
/// candidate columns are `[col_lo, min(row-1, col_hi)]`. Valid only when
/// the matrix `dist_prev[i] + w(i, v)` is Monge (adding a column-only
/// term preserves the quadrangle inequality), which makes the leftmost
/// argmin monotone in the row: solving the middle row splits the column
/// range for both halves, for `O((rows + cols) log rows)` per layer.
#[allow(clippy::too_many_arguments)]
fn dc_layer<W: Weight>(
    dist_prev: &[W],
    dist_cur: &mut [W],
    pred: &mut [u32],
    w: &impl Fn(usize, usize) -> W,
    row_lo: usize,
    row_hi: usize,
    col_lo: usize,
    col_hi: usize,
) {
    let mid = row_lo + (row_hi - row_lo) / 2;
    let top = col_hi.min(mid - 1);
    let mut best = dist_prev[col_lo] + w(col_lo, mid);
    let mut best_i = col_lo;
    for (i, &d) in dist_prev.iter().enumerate().take(top + 1).skip(col_lo + 1) {
        let cand = d + w(i, mid);
        if cand < best {
            best = cand;
            best_i = i;
        }
    }
    dist_cur[mid] = best;
    pred[mid] = best_i as u32;
    if mid > row_lo {
        dc_layer(
            dist_prev,
            dist_cur,
            pred,
            w,
            row_lo,
            mid - 1,
            col_lo,
            best_i,
        );
    }
    if mid < row_hi {
        dc_layer(
            dist_prev,
            dist_cur,
            pred,
            w,
            mid + 1,
            row_hi,
            best_i,
            col_hi,
        );
    }
}

/// `true` if the interval weights satisfy the quadrangle (Monge)
/// inequality `w(i, j) + w(i+1, j+1) <= w(i, j+1) + w(i+1, j)` for every
/// adjacent quadruple in the staircase domain (`i + 2 <= j <= n - 2`).
/// Summing adjacent inequalities extends this to all valid quadruples
/// `i < i' <= j - 1, j < j'`, which is exactly what the D&C argmin-
/// monotonicity argument needs, so a pass here is a *certification*,
/// not a heuristic: [`solve_selection`] only takes the D&C path when
/// this holds, keeping its output byte-identical to the dense kernel.
///
/// A deterministic sampled spot-check runs first so grossly non-Monge
/// inputs are rejected in O(1) probes instead of the full `O(n²)` sweep.
#[must_use]
pub fn monge_certified<W: Weight>(n: usize, w: &impl Fn(usize, usize) -> W) -> bool {
    if n < 4 {
        return true;
    }
    let violated = |i: usize, j: usize| w(i, j) + w(i + 1, j + 1) > w(i, j + 1) + w(i + 1, j);
    // Sampled spot-check: a fixed-seed LCG keeps runs deterministic.
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (n as u64);
    for _ in 0..SPOT_SAMPLES {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let i = (state >> 33) as usize % (n - 3);
        let j = i + 2 + (state as u32 as usize) % (n - 3 - i);
        if violated(i, j) {
            return false;
        }
    }
    // Full adjacent-pair sweep: the actual certification.
    for i in 0..=(n - 4) {
        for j in i + 2..=(n - 2) {
            if violated(i, j) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{constrained_shortest_path, Dag};

    /// Reference solve on the equivalent `Dag::complete` instance.
    fn reference(n: usize, k: usize, w: impl Fn(usize, usize) -> u64) -> (u64, Vec<usize>) {
        let g = Dag::complete(n, &w);
        let sol = constrained_shortest_path(&g, 0, n - 1, k).expect("complete DAG path");
        (sol.weight, sol.vertices)
    }

    #[test]
    fn matches_reference_on_span_weights() {
        let w = |i: usize, j: usize| ((j - i) * (j - i)) as u64;
        let mut scratch = CsppScratch::new();
        for n in 2..=12usize {
            for k in 2..=n {
                let out = solve_selection(n, k, w, &mut scratch).expect("solvable");
                let (rw, rp) = reference(n, k, w);
                assert_eq!(out.weight, rw, "n={n} k={k}");
                assert_eq!(scratch.path(), &rp[..], "n={n} k={k}");
            }
        }
    }

    #[test]
    fn degenerate_instances() {
        let w = |_: usize, _: usize| 1u64;
        let mut scratch = CsppScratch::new();
        // Single vertex, k = 1.
        let out = solve_selection(1, 1, w, &mut scratch).expect("trivial");
        assert_eq!(out.weight, 0);
        assert_eq!(scratch.path(), &[0]);
        // k = n: the full chain is forced.
        let out = solve_selection(5, 5, w, &mut scratch).expect("chain");
        assert_eq!(out.weight, 4);
        assert_eq!(scratch.path(), &[0, 1, 2, 3, 4]);
        // k = 2: the direct edge.
        let out = solve_selection(5, 2, |i, j| (10 * i + j) as u64, &mut scratch).expect("direct");
        assert_eq!(out.weight, 4);
        assert_eq!(scratch.path(), &[0, 4]);
    }

    #[test]
    fn input_validation() {
        let w = |_: usize, _: usize| 1u64;
        let mut scratch = CsppScratch::new();
        assert_eq!(
            solve_selection(0, 1, w, &mut scratch),
            Err(CsppError::VertexOutOfRange { vertex: 0, len: 0 })
        );
        assert_eq!(
            solve_selection(4, 0, w, &mut scratch),
            Err(CsppError::InvalidK { k: 0, len: 4 })
        );
        assert_eq!(
            solve_selection(4, 5, w, &mut scratch),
            Err(CsppError::InvalidK { k: 5, len: 4 })
        );
        assert_eq!(
            solve_selection(4, 1, w, &mut scratch),
            Err(CsppError::NoSuchPath)
        );
    }

    /// Staircase-gap weights (strictly decreasing widths, strictly
    /// increasing heights) are strictly Monge — the R_Selection shape.
    fn staircase_weight(n: usize) -> impl Fn(usize, usize) -> u64 + Copy {
        move |i: usize, j: usize| {
            let wd = |p: usize| (2 * (n - p)) as u64;
            let ht = |p: usize| (3 * (p + 1)) as u64;
            let mut acc = 0u64;
            for m in i + 2..=j {
                acc += (wd(i) - wd(m - 1)) * (ht(m) - ht(m - 1));
            }
            acc
        }
    }

    #[test]
    fn monge_certification_accepts_staircase_and_rejects_adversarial() {
        assert!(monge_certified(60, &staircase_weight(60)));
        // One planted violation: w(i, j) dips for a single far pair.
        let adversarial = |i: usize, j: usize| {
            if i == 10 && j == 40 {
                0
            } else {
                ((j - i) * (j - i)) as u64
            }
        };
        assert!(!monge_certified(60, &adversarial));
    }

    #[test]
    fn dc_dispatch_on_monge_instances_matches_dense() {
        let n = 64;
        let w = staircase_weight(n);
        let mut scratch = CsppScratch::new();
        for k in [4usize, 9, 16, 33, 63] {
            let auto = solve_selection(n, k, w, &mut scratch).expect("solvable");
            assert_eq!(auto.kernel, FlatKernel::DivideConquer, "k={k}");
            let auto_path = scratch.path().to_vec();
            let dense = solve_selection_dense(n, k, w, &mut scratch).expect("solvable");
            assert_eq!(auto.weight, dense.weight, "k={k}");
            assert_eq!(auto_path, scratch.path(), "k={k}");
            let (rw, rp) = reference(n, k, w);
            assert_eq!(auto.weight, rw, "k={k}");
            assert_eq!(auto_path, rp, "k={k}");
        }
    }

    #[test]
    fn non_monge_instances_fall_back_to_dense() {
        let n = 64;
        let adversarial = |i: usize, j: usize| {
            if i == 7 && j == 50 {
                0
            } else {
                ((j - i) * (j - i)) as u64
            }
        };
        let mut scratch = CsppScratch::new();
        let out = solve_selection(n, 6, adversarial, &mut scratch).expect("solvable");
        assert_eq!(out.kernel, FlatKernel::Dense);
        let (rw, rp) = reference(n, 6, adversarial);
        assert_eq!(out.weight, rw);
        assert_eq!(scratch.path(), &rp[..]);
    }

    #[test]
    fn float_weights_work() {
        let w = |i: usize, j: usize| OrderedF64::new(((j - i) as f64).sqrt()).expect("finite");
        let mut scratch = CsppScratch::new();
        let out = solve_selection(6, 3, w, &mut scratch).expect("solvable");
        let g = Dag::complete(6, w);
        let sol = constrained_shortest_path(&g, 0, 5, 3).expect("path");
        assert_eq!(out.weight, sol.weight);
        assert_eq!(scratch.path(), &sol.vertices[..]);
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let mut scratch = CsppScratch::new();
        let w = staircase_weight(50);
        let first = solve_selection(50, 8, w, &mut scratch).expect("solvable");
        let first_path = scratch.path().to_vec();
        // A differently-shaped solve in between must not perturb results.
        let _ = solve_selection(9, 3, |i, j| (i * j) as u64, &mut scratch).expect("solvable");
        let second = solve_selection(50, 8, w, &mut scratch).expect("solvable");
        assert_eq!(first, second);
        assert_eq!(first_path, scratch.path());
    }
}
