//! The `Constrained_Shortest_Path` dynamic program (paper §4.1, Theorem 1)
//! and the classical DAG shortest path for comparison.

use core::fmt;

use crate::{CsppScratch, Dag, Weight};

/// A shortest-path solution: the vertex sequence from `s` to `t` and its
/// total weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSolution<W> {
    /// The vertices on the path, starting with `s` and ending with `t`.
    pub vertices: Vec<usize>,
    /// The total weight of the path.
    pub weight: W,
}

/// Errors reported by the path solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsppError {
    /// `s` or `t` is not a vertex of the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// The number of vertices in the graph.
        len: usize,
    },
    /// `k` is zero or exceeds the number of vertices (the paper requires
    /// `1 <= k <= |V|`; a simple path cannot repeat vertices).
    InvalidK {
        /// The requested path length in vertices.
        k: usize,
        /// The number of vertices in the graph.
        len: usize,
    },
    /// The graph contains a directed cycle, so the dynamic program's
    /// walk/path equivalence does not hold.
    NotAcyclic,
    /// No `s → t` path with the requested number of vertices exists
    /// (the paper's "Can not find such a path." outcome).
    NoSuchPath,
}

impl fmt::Display for CsppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsppError::VertexOutOfRange { vertex, len } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {len} vertices"
                )
            }
            CsppError::InvalidK { k, len } => {
                write!(f, "k = {k} outside 1..={len}")
            }
            CsppError::NotAcyclic => write!(f, "graph contains a directed cycle"),
            CsppError::NoSuchPath => write!(f, "no path with the requested vertex count"),
        }
    }
}

impl std::error::Error for CsppError {}

const NO_PRED: u32 = u32::MAX;

/// Solves the constrained shortest path problem: the minimum-weight simple
/// path from `s` to `t` with **exactly `k` vertices**.
///
/// This is the paper's `Constrained_Shortest_Path` dynamic program, running
/// in `O(k (|V| + |E|))` time and `O(k |V|)` space (for predecessor
/// recovery).
///
/// # Errors
///
/// * [`CsppError::VertexOutOfRange`] — `s` or `t` is not a vertex.
/// * [`CsppError::InvalidK`] — `k == 0` or `k > |V|`.
/// * [`CsppError::NotAcyclic`] — the graph has a directed cycle.
/// * [`CsppError::NoSuchPath`] — `W(s, t, k)` is infinite, including the
///   `k == 1 && s != t` case.
///
/// # Example
///
/// ```
/// use fp_cspp::{constrained_shortest_path, Dag};
///
/// let mut g: Dag<u64> = Dag::new(3);
/// g.add_edge(0, 1, 1)?;
/// g.add_edge(1, 2, 1)?;
/// g.add_edge(0, 2, 10)?;
/// // With k = 2 the direct (expensive) edge is forced.
/// let sol = constrained_shortest_path(&g, 0, 2, 2)?;
/// assert_eq!((sol.vertices, sol.weight), (vec![0, 2], 10));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn constrained_shortest_path<W: Weight>(
    g: &Dag<W>,
    s: usize,
    t: usize,
    k: usize,
) -> Result<PathSolution<W>, CsppError> {
    let mut scratch = CsppScratch::new();
    let weight = constrained_shortest_path_scratch(g, s, t, k, &mut scratch)?;
    Ok(PathSolution {
        vertices: std::mem::take(&mut scratch.path),
        weight,
    })
}

/// [`constrained_shortest_path`] through a caller-owned [`CsppScratch`]
/// arena: once the arena is warmed to the workload's high-water mark,
/// repeated solves perform **no allocation**. The optimal weight is
/// returned; the path is left in the arena ([`CsppScratch::path`]).
///
/// Before running the full `O(k (|V| + |E|))` DP, a linear infeasibility
/// pre-check compares `k - 1` against the minimum and maximum *edge
/// counts* of any `s → t` path (one topological sweep): when `k - 1`
/// falls outside that range, no `k`-vertex path can exist and
/// [`CsppError::NoSuchPath`] returns without touching the DP layers.
/// (The range test is a necessary condition only — an in-range `k` that
/// no actual path achieves is still caught by the DP itself.)
///
/// # Errors
///
/// Same as [`constrained_shortest_path`].
///
/// # Example
///
/// ```
/// use fp_cspp::{constrained_shortest_path_scratch, CsppScratch, Dag};
///
/// let mut g: Dag<u64> = Dag::new(3);
/// g.add_edge(0, 1, 1)?;
/// g.add_edge(1, 2, 1)?;
/// g.add_edge(0, 2, 10)?;
/// let mut scratch = CsppScratch::new();
/// let weight = constrained_shortest_path_scratch(&g, 0, 2, 3, &mut scratch)?;
/// assert_eq!((scratch.path(), weight), (&[0, 1, 2][..], 2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn constrained_shortest_path_scratch<W: Weight>(
    g: &Dag<W>,
    s: usize,
    t: usize,
    k: usize,
    scratch: &mut CsppScratch<W>,
) -> Result<W, CsppError> {
    scratch.counters.legacy += 1;
    let n = g.vertex_count();
    for x in [s, t] {
        if x >= n {
            return Err(CsppError::VertexOutOfRange { vertex: x, len: n });
        }
    }
    if k == 0 || k > n {
        return Err(CsppError::InvalidK { k, len: n });
    }
    if !topo_into(g, scratch) {
        return Err(CsppError::NotAcyclic);
    }

    if k == 1 {
        return if s == t {
            scratch.path.clear();
            scratch.path.push(s);
            Ok(W::ZERO)
        } else {
            Err(CsppError::NoSuchPath)
        };
    }

    if !edge_count_feasible(g, s, t, k, scratch) {
        return Err(CsppError::NoSuchPath);
    }

    let CsppScratch {
        opt_prev,
        opt_cur,
        pred,
        path,
        ..
    } = scratch;

    // W(s, v, 1) = 0 for v == s, infinity otherwise (represented as None).
    opt_prev.clear();
    opt_prev.resize(n, None);
    opt_prev[s] = Some(W::ZERO);
    opt_cur.clear();
    opt_cur.resize(n, None);

    // pred[(l-2) * n + v] = predecessor of v on the best l-vertex path.
    pred.clear();
    pred.resize((k - 1) * n, NO_PRED);

    for l in 2..=k {
        let layer = (l - 2) * n;
        for v in 0..n {
            let mut best: Option<(W, u32)> = None;
            for &(u, w) in g.in_edges(v) {
                if let Some(base) = opt_prev[u as usize] {
                    let cand = base + w;
                    if best.is_none_or(|(b, _)| cand < b) {
                        best = Some((cand, u));
                    }
                }
            }
            match best {
                Some((w, u)) => {
                    opt_cur[v] = Some(w);
                    pred[layer + v] = u;
                }
                None => opt_cur[v] = None,
            }
        }
        std::mem::swap(opt_prev, opt_cur);
        opt_cur.fill(None);
    }

    let weight = opt_prev[t].ok_or(CsppError::NoSuchPath)?;

    // Walk the predecessor layers back from (t, k).
    path.clear();
    path.resize(k, 0);
    path[k - 1] = t;
    let mut v = t;
    for l in (2..=k).rev() {
        let u = pred[(l - 2) * n + v];
        debug_assert_ne!(u, NO_PRED, "finite weight implies a recorded predecessor");
        v = u as usize;
        path[l - 2] = v;
    }
    debug_assert_eq!(path[0], s);
    Ok(weight)
}

/// Fills `scratch.topo` with a forward topological order of `g` (by
/// peeling zero-out-degree vertices into reverse order). Returns `false`
/// when the graph has a directed cycle. Allocation-free once warmed.
fn topo_into<W: Weight>(g: &Dag<W>, scratch: &mut CsppScratch<W>) -> bool {
    let n = g.vertex_count();
    let CsppScratch {
        degree,
        stack,
        topo,
        ..
    } = scratch;
    degree.clear();
    degree.resize(n, 0);
    for v in 0..n {
        for &(u, _) in g.in_edges(v) {
            degree[u as usize] += 1;
        }
    }
    stack.clear();
    for (v, &d) in degree.iter().enumerate() {
        if d == 0 {
            stack.push(v as u32);
        }
    }
    topo.clear();
    while let Some(v) = stack.pop() {
        topo.push(v);
        for &(u, _) in g.in_edges(v as usize) {
            let u = u as usize;
            degree[u] -= 1;
            if degree[u] == 0 {
                stack.push(u as u32);
            }
        }
    }
    if topo.len() != n {
        return false;
    }
    topo.reverse();
    true
}

/// Vertices this value in `min_len` cannot be reached from `s` at all.
const UNREACH: u32 = u32::MAX;

/// One topological sweep computing the minimum and maximum edge counts
/// over all `s → v` paths; `k` vertices are achievable only if `k - 1`
/// lies within `[min_len[t], max_len[t]]`. Requires `scratch.topo` to be
/// freshly filled by [`topo_into`].
fn edge_count_feasible<W: Weight>(
    g: &Dag<W>,
    s: usize,
    t: usize,
    k: usize,
    scratch: &mut CsppScratch<W>,
) -> bool {
    let n = g.vertex_count();
    let CsppScratch {
        topo,
        min_len,
        max_len,
        ..
    } = scratch;
    min_len.clear();
    min_len.resize(n, UNREACH);
    max_len.clear();
    max_len.resize(n, 0);
    min_len[s] = 0;
    for &v in topo.iter() {
        let v = v as usize;
        if v == s {
            continue;
        }
        let (mut mn, mut mx) = (UNREACH, 0u32);
        for &(u, _) in g.in_edges(v) {
            let u = u as usize;
            if min_len[u] != UNREACH {
                mn = mn.min(min_len[u] + 1);
                mx = mx.max(max_len[u] + 1);
            }
        }
        min_len[v] = mn;
        max_len[v] = mx;
    }
    let need = (k - 1) as u32;
    min_len[t] != UNREACH && need >= min_len[t] && need <= max_len[t]
}

/// Solves the CSPP for **every** vertex count `1 ..= k_max` in a single
/// dynamic-programming sweep — the same `O(k_max (|V| + |E|))` work as one
/// [`constrained_shortest_path`] call at `k = k_max`.
///
/// Returns `solutions[l - 1]` for each `l in 1..=k_max`: `Some(solution)`
/// when an `s → t` path with exactly `l` vertices exists, else `None`.
/// This is the natural tool for *error-versus-k* curves: `R_Selection`'s
/// trade-off between subset size and staircase error falls out of one
/// sweep instead of `k` separate solves.
///
/// # Errors
///
/// Same as [`constrained_shortest_path`] minus `NoSuchPath` (absence is
/// expressed per entry).
///
/// # Example
///
/// ```
/// use fp_cspp::{constrained_shortest_paths_all_k, Dag};
///
/// let mut g: Dag<u64> = Dag::new(3);
/// g.add_edge(0, 1, 1)?;
/// g.add_edge(1, 2, 1)?;
/// g.add_edge(0, 2, 10)?;
/// let all = constrained_shortest_paths_all_k(&g, 0, 2, 3)?;
/// assert!(all[0].is_none());                       // k = 1: s != t
/// assert_eq!(all[1].as_ref().map(|s| s.weight), Some(10)); // direct edge
/// assert_eq!(all[2].as_ref().map(|s| s.weight), Some(2));  // the chain
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn constrained_shortest_paths_all_k<W: Weight>(
    g: &Dag<W>,
    s: usize,
    t: usize,
    k_max: usize,
) -> Result<Vec<Option<PathSolution<W>>>, CsppError> {
    let n = g.vertex_count();
    for x in [s, t] {
        if x >= n {
            return Err(CsppError::VertexOutOfRange { vertex: x, len: n });
        }
    }
    if k_max == 0 || k_max > n {
        return Err(CsppError::InvalidK { k: k_max, len: n });
    }
    if !g.is_acyclic() {
        return Err(CsppError::NotAcyclic);
    }

    let mut prev: Vec<Option<W>> = vec![None; n];
    prev[s] = Some(W::ZERO);
    let mut solutions: Vec<Option<PathSolution<W>>> = Vec::with_capacity(k_max);
    solutions.push((s == t).then(|| PathSolution {
        vertices: vec![s],
        weight: W::ZERO,
    }));

    let mut pred: Vec<u32> = vec![NO_PRED; k_max.saturating_sub(1) * n];
    let mut cur: Vec<Option<W>> = vec![None; n];
    for l in 2..=k_max {
        let layer = (l - 2) * n;
        for v in 0..n {
            let mut best: Option<(W, u32)> = None;
            for &(u, w) in g.in_edges(v) {
                if let Some(base) = prev[u as usize] {
                    let cand = base + w;
                    if best.is_none_or(|(b, _)| cand < b) {
                        best = Some((cand, u));
                    }
                }
            }
            match best {
                Some((w, u)) => {
                    cur[v] = Some(w);
                    pred[layer + v] = u;
                }
                None => cur[v] = None,
            }
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.fill(None);

        solutions.push(prev[t].map(|weight| {
            let mut vertices = vec![0usize; l];
            vertices[l - 1] = t;
            let mut v = t;
            for ll in (2..=l).rev() {
                v = pred[(ll - 2) * n + v] as usize;
                vertices[ll - 2] = v;
            }
            debug_assert_eq!(vertices[0], s);
            PathSolution { vertices, weight }
        }));
    }
    Ok(solutions)
}

/// The classical (unconstrained) shortest path from `s` to `t` on a DAG,
/// for comparison with the constrained variant (paper Figure 4 contrasts
/// the two).
///
/// Runs in `O(|V| + |E|)` after a topological ordering.
///
/// # Errors
///
/// Same as [`constrained_shortest_path`], minus the `k` validation.
pub fn shortest_path<W: Weight>(
    g: &Dag<W>,
    s: usize,
    t: usize,
) -> Result<PathSolution<W>, CsppError> {
    let n = g.vertex_count();
    for x in [s, t] {
        if x >= n {
            return Err(CsppError::VertexOutOfRange { vertex: x, len: n });
        }
    }
    if !g.is_acyclic() {
        return Err(CsppError::NotAcyclic);
    }

    // Topological order via repeated peeling of in-degree-zero vertices.
    let mut in_degree: Vec<usize> = (0..n).map(|v| g.in_edges(v).len()).collect();
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 0..n {
        for &(u, _) in g.in_edges(v) {
            out_edges[u as usize].push(v);
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&v| in_degree[v] == 0).collect();
    let mut topo = Vec::with_capacity(n);
    while let Some(v) = stack.pop() {
        topo.push(v);
        for &w in &out_edges[v] {
            in_degree[w] -= 1;
            if in_degree[w] == 0 {
                stack.push(w);
            }
        }
    }

    let mut dist: Vec<Option<W>> = vec![None; n];
    let mut pred: Vec<u32> = vec![NO_PRED; n];
    dist[s] = Some(W::ZERO);
    for &v in &topo {
        if v == s {
            continue;
        }
        let mut best: Option<(W, u32)> = None;
        for &(u, w) in g.in_edges(v) {
            if let Some(base) = dist[u as usize] {
                let cand = base + w;
                if best.is_none_or(|(b, _)| cand < b) {
                    best = Some((cand, u));
                }
            }
        }
        if let Some((w, u)) = best {
            dist[v] = Some(w);
            pred[v] = u;
        }
    }

    let weight = dist[t].ok_or(CsppError::NoSuchPath)?;
    let mut vertices = vec![t];
    let mut v = t;
    while v != s {
        v = pred[v] as usize;
        vertices.push(v);
    }
    vertices.reverse();
    Ok(PathSolution { vertices, weight })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The paper's Figure 4 graph (vertices renumbered from 0).
    fn figure4() -> Dag<u64> {
        let mut g = Dag::new(6);
        for (u, v, w) in [
            (0, 1, 1),
            (1, 2, 2),
            (2, 3, 2),
            (3, 4, 2),
            (4, 5, 1),
            (0, 2, 6),
            (1, 3, 6),
            (3, 5, 4),
            (1, 4, 13),
        ] {
            g.add_edge(u, v, w).expect("valid edge");
        }
        g
    }

    #[test]
    fn figure4_unconstrained_is_8() {
        let sol = shortest_path(&figure4(), 0, 5).expect("path exists");
        assert_eq!(sol.weight, 8);
        assert_eq!(sol.vertices, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn figure4_k4_is_11_via_v2_v4() {
        let sol = constrained_shortest_path(&figure4(), 0, 5, 4).expect("path exists");
        assert_eq!(sol.weight, 11);
        assert_eq!(sol.vertices, vec![0, 1, 3, 5]);
    }

    #[test]
    fn figure4_other_k_values() {
        let g = figure4();
        // The other two 4-vertex paths weigh 12 and 15 (asserted by the
        // paper's prose); k = 5 has a cheaper option at 9.
        assert_eq!(
            constrained_shortest_path(&g, 0, 5, 6)
                .expect("chain")
                .weight,
            8
        );
        assert_eq!(
            constrained_shortest_path(&g, 0, 5, 5).expect("path").weight,
            9
        );
        assert_eq!(
            constrained_shortest_path(&g, 0, 5, 3),
            Err(CsppError::NoSuchPath),
        );
        assert_eq!(
            constrained_shortest_path(&g, 0, 5, 2),
            Err(CsppError::NoSuchPath),
        );
    }

    #[test]
    fn k1_requires_s_equals_t() {
        let g = figure4();
        let sol = constrained_shortest_path(&g, 3, 3, 1).expect("trivial path");
        assert_eq!((sol.vertices, sol.weight), (vec![3], 0));
        assert_eq!(
            constrained_shortest_path(&g, 0, 5, 1),
            Err(CsppError::NoSuchPath)
        );
    }

    #[test]
    fn input_validation() {
        let g = figure4();
        assert_eq!(
            constrained_shortest_path(&g, 9, 5, 3),
            Err(CsppError::VertexOutOfRange { vertex: 9, len: 6 })
        );
        assert_eq!(
            constrained_shortest_path(&g, 0, 5, 0),
            Err(CsppError::InvalidK { k: 0, len: 6 })
        );
        assert_eq!(
            constrained_shortest_path(&g, 0, 5, 7),
            Err(CsppError::InvalidK { k: 7, len: 6 })
        );
    }

    #[test]
    fn cyclic_graph_rejected() {
        let mut g: Dag<u64> = Dag::new(3);
        g.add_edge(0, 1, 1).expect("edge");
        g.add_edge(1, 2, 1).expect("edge");
        g.add_edge(2, 0, 1).expect("edge");
        assert_eq!(
            constrained_shortest_path(&g, 0, 2, 3),
            Err(CsppError::NotAcyclic)
        );
        assert_eq!(shortest_path(&g, 0, 2), Err(CsppError::NotAcyclic));
    }

    #[test]
    fn parallel_edges_take_the_lighter() {
        let mut g: Dag<u64> = Dag::new(2);
        g.add_edge(0, 1, 9).expect("edge");
        g.add_edge(0, 1, 4).expect("edge");
        assert_eq!(
            constrained_shortest_path(&g, 0, 1, 2).expect("path").weight,
            4
        );
    }

    #[test]
    fn float_weights_work() {
        use crate::OrderedF64;
        let w = |x: f64| OrderedF64::new(x).expect("finite");
        let mut g: Dag<OrderedF64> = Dag::new(3);
        g.add_edge(0, 1, w(0.5)).expect("edge");
        g.add_edge(1, 2, w(0.25)).expect("edge");
        g.add_edge(0, 2, w(1.0)).expect("edge");
        let sol = constrained_shortest_path(&g, 0, 2, 3).expect("path");
        assert_eq!(sol.weight.into_inner(), 0.75);
    }

    /// Brute-force enumeration of all s→t paths with exactly k vertices.
    fn brute_force(g: &Dag<u64>, s: usize, t: usize, k: usize) -> Option<(u64, Vec<usize>)> {
        let n = g.vertex_count();
        let mut out: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        for v in 0..n {
            for &(u, w) in g.in_edges(v) {
                out[u as usize].push((v, w));
            }
        }
        let mut best: Option<(u64, Vec<usize>)> = None;
        let mut path = vec![s];
        fn dfs(
            out: &[Vec<(usize, u64)>],
            path: &mut Vec<usize>,
            weight: u64,
            t: usize,
            k: usize,
            best: &mut Option<(u64, Vec<usize>)>,
        ) {
            let v = *path.last().expect("non-empty");
            if path.len() == k {
                if v == t && best.as_ref().is_none_or(|(bw, _)| weight < *bw) {
                    *best = Some((weight, path.clone()));
                }
                return;
            }
            for &(nxt, w) in &out[v] {
                if !path.contains(&nxt) {
                    path.push(nxt);
                    dfs(out, path, weight + w, t, k, best);
                    path.pop();
                }
            }
        }
        dfs(&out, &mut path, 0, t, k, &mut best);
        best
    }

    #[test]
    fn scratch_variant_matches_plain_across_k_and_reuse() {
        let g = figure4();
        let mut scratch = CsppScratch::new();
        // Two sweeps through the same arena: reuse must not perturb results.
        for _ in 0..2 {
            for k in 1..=6usize {
                let plain = constrained_shortest_path(&g, 0, 5, k);
                let via = constrained_shortest_path_scratch(&g, 0, 5, k, &mut scratch);
                match (plain, via) {
                    (Ok(sol), Ok(w)) => {
                        assert_eq!(sol.weight, w, "k={k}");
                        assert_eq!(&sol.vertices[..], scratch.path(), "k={k}");
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "k={k}"),
                    (a, b) => panic!("k={k}: plain {a:?} vs scratch {b:?}"),
                }
            }
        }
    }

    #[test]
    fn infeasibility_precheck_rejects_out_of_range_k() {
        // A chain 0 → 1 → 2 → 3: only k = 4 (and trivially k = 1 at s = t)
        // is feasible; all other k must short-circuit to NoSuchPath.
        let mut g: Dag<u64> = Dag::new(4);
        for v in 0..3 {
            g.add_edge(v, v + 1, 1).expect("edge");
        }
        let mut scratch = CsppScratch::new();
        for k in [2usize, 3] {
            assert_eq!(
                constrained_shortest_path_scratch(&g, 0, 3, k, &mut scratch),
                Err(CsppError::NoSuchPath),
                "k={k}"
            );
        }
        assert_eq!(
            constrained_shortest_path_scratch(&g, 0, 3, 4, &mut scratch),
            Ok(3)
        );
        // Unreachable target: vertex 0 has no path to an isolated vertex.
        let lonely: Dag<u64> = Dag::new(2);
        assert_eq!(
            constrained_shortest_path_scratch(&lonely, 0, 1, 2, &mut scratch),
            Err(CsppError::NoSuchPath)
        );
    }

    #[test]
    fn all_k_matches_individual_solves_on_figure4() {
        let g = figure4();
        let all = constrained_shortest_paths_all_k(&g, 0, 5, 6).expect("valid");
        assert_eq!(all.len(), 6);
        for (i, entry) in all.iter().enumerate() {
            let k = i + 1;
            match constrained_shortest_path(&g, 0, 5, k) {
                Ok(sol) => {
                    let e = entry.as_ref().expect("both find a path");
                    assert_eq!(
                        (e.weight, &e.vertices),
                        (sol.weight, &sol.vertices),
                        "k={k}"
                    );
                }
                Err(CsppError::NoSuchPath) => assert!(entry.is_none(), "k={k}"),
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
    }

    #[test]
    fn all_k_validates_inputs() {
        let g = figure4();
        assert_eq!(
            constrained_shortest_paths_all_k(&g, 0, 5, 0),
            Err(CsppError::InvalidK { k: 0, len: 6 })
        );
        assert_eq!(
            constrained_shortest_paths_all_k(&g, 0, 9, 3),
            Err(CsppError::VertexOutOfRange { vertex: 9, len: 6 })
        );
    }

    proptest! {
        /// All-k sweep agrees with per-k solves on random DAGs.
        #[test]
        fn all_k_matches_per_k(
            n in 2usize..9,
            edges in proptest::collection::vec((0usize..8, 0usize..8, 1u64..20), 0..24),
        ) {
            let mut g: Dag<u64> = Dag::new(n);
            for (a, b, w) in edges {
                let (a, b) = (a % n, b % n);
                if a < b {
                    g.add_edge(a, b, w).expect("valid edge");
                }
            }
            let all = constrained_shortest_paths_all_k(&g, 0, n - 1, n).expect("valid");
            for k in 1..=n {
                match constrained_shortest_path(&g, 0, n - 1, k) {
                    Ok(sol) => {
                        let e = all[k - 1].as_ref().expect("present");
                        prop_assert_eq!(e.weight, sol.weight);
                        prop_assert_eq!(&e.vertices, &sol.vertices);
                    }
                    Err(CsppError::NoSuchPath) => prop_assert!(all[k - 1].is_none()),
                    Err(e) => prop_assert!(false, "unexpected {e:?}"),
                }
            }
        }

        /// DP weight matches exhaustive search on random small DAGs
        /// (edges only go from lower to higher ids, guaranteeing acyclicity).
        #[test]
        fn matches_brute_force(
            n in 2usize..9,
            edges in proptest::collection::vec((0usize..8, 0usize..8, 1u64..20), 0..24),
            k in 1usize..8,
        ) {
            let mut g: Dag<u64> = Dag::new(n);
            for (a, b, w) in edges {
                let (a, b) = (a % n, b % n);
                if a < b {
                    g.add_edge(a, b, w).expect("valid edge");
                }
            }
            let k = 1 + k % n;
            let expected = brute_force(&g, 0, n - 1, k);
            match constrained_shortest_path(&g, 0, n - 1, k) {
                Ok(sol) => {
                    let (bw, _) = expected.expect("solver found a path; brute force must too");
                    prop_assert_eq!(sol.weight, bw);
                    prop_assert_eq!(sol.vertices.len(), k);
                    prop_assert_eq!(sol.vertices[0], 0);
                    prop_assert_eq!(*sol.vertices.last().expect("non-empty"), n - 1);
                    // Verify the reported weight matches the edge weights.
                    let mut total = 0u64;
                    for win in sol.vertices.windows(2) {
                        let w = g.in_edges(win[1]).iter()
                            .filter(|&&(u, _)| u as usize == win[0])
                            .map(|&(_, w)| w).min();
                        total += w.expect("edge exists on reported path");
                    }
                    prop_assert_eq!(total, sol.weight);
                }
                Err(CsppError::NoSuchPath) => prop_assert!(expected.is_none()),
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }

        /// The unconstrained optimum equals the best constrained optimum
        /// over all k.
        #[test]
        fn unconstrained_is_min_over_k(
            n in 2usize..9,
            edges in proptest::collection::vec((0usize..8, 0usize..8, 1u64..20), 0..24),
        ) {
            let mut g: Dag<u64> = Dag::new(n);
            for (a, b, w) in edges {
                let (a, b) = (a % n, b % n);
                if a < b {
                    g.add_edge(a, b, w).expect("valid edge");
                }
            }
            let best_k = (1..=n)
                .filter_map(|k| constrained_shortest_path(&g, 0, n - 1, k).ok())
                .map(|s| s.weight)
                .min();
            match shortest_path(&g, 0, n - 1) {
                Ok(sol) => prop_assert_eq!(Some(sol.weight), best_k),
                Err(CsppError::NoSuchPath) => prop_assert_eq!(best_k, None),
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
    }
}
