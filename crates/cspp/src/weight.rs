//! Path-weight abstraction.

use core::fmt;
use core::ops::Add;

/// A totally ordered, additively accumulating path weight.
///
/// Implemented for the unsigned integer types (exact arithmetic — the
/// floorplan selection errors are integers) and for [`OrderedF64`] (for
/// `L_p` metrics with non-integral `p`).
///
/// The paper assumes strictly positive edge weights; the solver itself only
/// requires non-negative weights (zero-weight edges are handled correctly
/// because the path length, not the weight, drives the DP).
pub trait Weight: Copy + Ord + Add<Output = Self> + fmt::Debug {
    /// The additive identity (the weight of a single-vertex path).
    const ZERO: Self;
}

impl Weight for u32 {
    const ZERO: Self = 0;
}

impl Weight for u64 {
    const ZERO: Self = 0;
}

impl Weight for u128 {
    const ZERO: Self = 0;
}

/// A totally ordered `f64` for use as a path weight.
///
/// NaN is rejected at construction so that `Ord` is sound. Comparisons are
/// IEEE-754 ordering on the remaining values.
///
/// ```
/// use fp_cspp::OrderedF64;
///
/// let a = OrderedF64::new(1.5).expect("finite");
/// let b = OrderedF64::new(2.0).expect("finite");
/// assert!(a < b);
/// assert_eq!((a + b).into_inner(), 3.5);
/// assert!(OrderedF64::new(f64::NAN).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a non-NaN value; returns `None` for NaN.
    #[inline]
    #[must_use]
    pub fn new(value: f64) -> Option<Self> {
        if value.is_nan() {
            None
        } else {
            Some(OrderedF64(value))
        }
    }

    /// The wrapped value.
    #[inline]
    #[must_use]
    pub fn into_inner(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("OrderedF64 excludes NaN")
    }
}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for OrderedF64 {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        // Sum of non-NaN values is non-NaN (inf + -inf cannot occur with
        // the non-negative weights used here, and would panic in debug via
        // the constructor if it did not hold).
        OrderedF64(self.0 + rhs.0)
    }
}

impl fmt::Debug for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Weight for OrderedF64 {
    const ZERO: Self = OrderedF64(0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_weights_have_zero() {
        assert_eq!(<u64 as Weight>::ZERO + 5, 5);
        assert_eq!(<u128 as Weight>::ZERO, 0);
        assert_eq!(<u32 as Weight>::ZERO, 0);
    }

    #[test]
    fn ordered_f64_rejects_nan_and_orders() {
        assert!(OrderedF64::new(f64::NAN).is_none());
        let mut vals: Vec<OrderedF64> = [3.0, 1.0, 2.5]
            .into_iter()
            .filter_map(OrderedF64::new)
            .collect();
        vals.sort();
        let raw: Vec<f64> = vals.into_iter().map(OrderedF64::into_inner).collect();
        assert_eq!(raw, vec![1.0, 2.5, 3.0]);
    }

    #[test]
    fn ordered_f64_zero_and_add() {
        let z = <OrderedF64 as Weight>::ZERO;
        let x = OrderedF64::new(4.25).expect("finite");
        assert_eq!((z + x).into_inner(), 4.25);
        assert_eq!(format!("{x}"), "4.25");
    }
}
