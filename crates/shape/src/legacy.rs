//! Bench-only ablation switch for the pruning kernels.
//!
//! The mega-scale benchmark (`mega_bench`) quantifies the speedup of the
//! staircase-aware combine path and the flat-array L-shape dominance
//! sweep by re-running with the pre-SoA kernels. Production code never
//! flips this; it exists so the comparison can run inside one process on
//! the same instance data.

use core::sync::atomic::{AtomicBool, Ordering};

static LEGACY_KERNELS: AtomicBool = AtomicBool::new(false);

/// Selects the pre-SoA pruning kernels (sort-based combine prune, scalar
/// per-candidate L-shape dominance scan). Benchmarks only: results are
/// identical either way, only the speed differs.
#[doc(hidden)]
pub fn set_legacy_kernels(enabled: bool) {
    LEGACY_KERNELS.store(enabled, Ordering::Relaxed);
}

/// `true` while the pre-SoA kernels are selected.
#[doc(hidden)]
#[must_use]
pub fn legacy_kernels() -> bool {
    LEGACY_KERNELS.load(Ordering::Relaxed)
}
