//! Slicing combinations of R-lists: the classic Stockmeyer merge.
//!
//! When two rectangular blocks are composed by a slice cut, the combined
//! block's non-redundant implementations can be enumerated in linear time by
//! walking both staircases in lockstep (L. Stockmeyer, *Optimal orientations
//! of cells in slicing floorplan designs*, Information & Control 57, 1983).
//! This module implements that merge with provenance: each output records
//! which implementation of each child produced it, which the optimizer needs
//! to reconstruct a final floorplan.

use fp_geom::Rect;

use crate::prune::pareto_min_rects_in_place;
use crate::scratch::JoinScratch;
use crate::RList;

/// How two blocks are composed by a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Compose {
    /// Side by side (a vertical cut line): widths add, heights max.
    Beside,
    /// One on top of the other (a horizontal cut line): heights add,
    /// widths max.
    Stack,
}

impl Compose {
    /// Composes two child implementations into the parent implementation.
    #[inline]
    #[must_use]
    pub fn apply(self, a: Rect, b: Rect) -> Rect {
        match self {
            Compose::Beside => Rect::new(a.w + b.w, a.h.max(b.h)),
            Compose::Stack => Rect::new(a.w.max(b.w), a.h + b.h),
        }
    }
}

/// A combined implementation together with the indices of the child
/// implementations that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombinedRect {
    /// The parent implementation.
    pub rect: Rect,
    /// Index into the first child's R-list.
    pub left: usize,
    /// Index into the second child's R-list.
    pub right: usize,
}

/// Merges two irreducible R-lists under the given composition, returning
/// the irreducible result (width descending) with provenance.
///
/// Runs in `O(n + m)`: only the `n + m - 1` lockstep candidates can be
/// non-redundant, and a final staircase prune removes ties.
///
/// Returns an empty vector if either child has no implementation.
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::combine::{combine_with_provenance, Compose};
/// use fp_shape::RList;
///
/// let a = RList::from_candidates(vec![Rect::new(4, 2), Rect::new(2, 3)]);
/// let b = RList::from_candidates(vec![Rect::new(3, 3), Rect::new(1, 5)]);
/// let stacked = combine_with_provenance(&a, &b, Compose::Stack);
/// assert!(stacked.iter().all(|c| c.rect == Compose::Stack.apply(a[c.left], b[c.right])));
/// ```
#[must_use]
pub fn combine_with_provenance(a: &RList, b: &RList, how: Compose) -> Vec<CombinedRect> {
    let mut scratch = JoinScratch::new();
    let _ = combine_with_provenance_scratch(a, b, how, &mut scratch);
    scratch.combined
}

/// [`combine_with_provenance`] against a reusable [`JoinScratch`]: the
/// merge runs entirely inside the arena's buffers (rotated staircases,
/// candidate vector, in-place prune) and returns the irreducible result
/// as a borrow of the arena. On a warmed arena whose buffers have grown
/// to the working-set size, the call performs **zero** heap allocations
/// — the property the allocation-count test in `crates/shape/tests`
/// pins down.
pub fn combine_with_provenance_scratch<'s>(
    a: &RList,
    b: &RList,
    how: Compose,
    scratch: &'s mut JoinScratch,
) -> &'s [CombinedRect] {
    scratch.combined.clear();
    if a.is_empty() || b.is_empty() {
        return &scratch.combined;
    }
    match how {
        Compose::Stack => {
            stack_candidates_into(a.as_slice(), b.as_slice(), &mut scratch.combined);
        }
        Compose::Beside => {
            // Mirror of the stacked walk with the axes swapped: walk from the
            // tallest (narrowest) end pairing by height.
            scratch.rects_a.clear();
            scratch.rects_a.extend(a.iter().rev().map(|r| r.rotated()));
            scratch.rects_b.clear();
            scratch.rects_b.extend(b.iter().rev().map(|r| r.rotated()));
            stack_candidates_into(&scratch.rects_a, &scratch.rects_b, &mut scratch.combined);
            let n = scratch.rects_a.len();
            let m = scratch.rects_b.len();
            for c in &mut scratch.combined {
                c.rect = c.rect.rotated();
                c.left = n - 1 - c.left;
                c.right = m - 1 - c.right;
            }
        }
    }
    if crate::legacy::legacy_kernels() {
        // Pre-SoA path, kept for the mega_bench ablation: sort + sweep.
        pareto_min_rects_in_place(&mut scratch.combined, |c| c.rect);
        return &scratch.combined;
    }
    // The lockstep walk over two strict staircases emits strictly
    // decreasing max-width and strictly increasing summed height, so the
    // output is *already* an irreducible staircase — in stack order for
    // `Stack`, reversed for `Beside` (the rotation flips the axes). The
    // old sort-based prune here was a no-op transformation; a reverse is
    // all `Beside` needs to restore canonical width-descending order.
    if matches!(how, Compose::Beside) {
        scratch.combined.reverse();
    }
    debug_assert!(
        scratch
            .combined
            .windows(2)
            .all(|w| w[0].rect.w > w[1].rect.w && w[0].rect.h < w[1].rect.h),
        "lockstep merge output is not a strict staircase"
    );
    &scratch.combined
}

/// Lockstep walk for `Stack` over width-descending staircases: pair the two
/// widest implementations, then narrow whichever child currently determines
/// the maximum width. Appends into `out` (assumed cleared by the caller).
fn stack_candidates_into(a: &[Rect], b: &[Rect], out: &mut Vec<CombinedRect>) {
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        let (ra, rb) = (a[i], b[j]);
        out.push(CombinedRect {
            rect: Rect::new(ra.w.max(rb.w), ra.h + rb.h),
            left: i,
            right: j,
        });
        // Narrow the wider side; if tied, narrowing either alone cannot
        // reduce the max width, so advance both.
        match ra.w.cmp(&rb.w) {
            core::cmp::Ordering::Greater => i += 1,
            core::cmp::Ordering::Less => j += 1,
            core::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
        if i == a.len() || j == b.len() {
            break;
        }
    }
}

/// [`combine_with_provenance`] without the provenance: just the combined
/// irreducible R-list.
#[must_use]
pub fn combine(a: &RList, b: &RList, how: Compose) -> RList {
    let rects = combine_with_provenance(a, b, how)
        .into_iter()
        .map(|c| c.rect)
        .collect();
    RList::from_sorted(rects).unwrap_or_else(RList::from_candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::pareto_min_rects;
    use proptest::prelude::*;

    fn rl(pairs: &[(u64, u64)]) -> RList {
        RList::from_candidates(pairs.iter().map(|&(w, h)| Rect::new(w, h)).collect())
    }

    /// Brute-force reference: full cross product, then prune.
    fn reference(a: &RList, b: &RList, how: Compose) -> Vec<Rect> {
        let mut all = Vec::new();
        for &ra in a.iter() {
            for &rb in b.iter() {
                all.push(how.apply(ra, rb));
            }
        }
        pareto_min_rects(all)
    }

    #[test]
    fn compose_apply() {
        let a = Rect::new(4, 2);
        let b = Rect::new(3, 5);
        assert_eq!(Compose::Beside.apply(a, b), Rect::new(7, 5));
        assert_eq!(Compose::Stack.apply(a, b), Rect::new(4, 7));
    }

    #[test]
    fn stack_two_singletons() {
        let got = combine(&rl(&[(4, 2)]), &rl(&[(3, 5)]), Compose::Stack);
        assert_eq!(got.as_slice(), &[Rect::new(4, 7)]);
    }

    #[test]
    fn empty_child_yields_empty() {
        let a = rl(&[(4, 2)]);
        assert!(combine(&a, &RList::new(), Compose::Stack).is_empty());
        assert!(combine_with_provenance(&RList::new(), &a, Compose::Beside).is_empty());
    }

    #[test]
    fn classic_stockmeyer_example() {
        // Two free-orientation 2x4 modules stacked: candidates (4,2)/(2,4)
        // each; stacking yields (4,4), (4,6)->dominated, (2,8).
        let m = rl(&[(4, 2), (2, 4)]);
        let got = combine(&m, &m, Compose::Stack);
        assert_eq!(got.as_slice(), &[Rect::new(4, 4), Rect::new(2, 8)]);
    }

    #[test]
    fn provenance_indices_are_correct() {
        let a = rl(&[(6, 1), (4, 3), (1, 8)]);
        let b = rl(&[(5, 2), (3, 4)]);
        for how in [Compose::Stack, Compose::Beside] {
            for c in combine_with_provenance(&a, &b, how) {
                assert_eq!(c.rect, how.apply(a[c.left], b[c.right]));
            }
        }
    }

    #[test]
    fn scratch_variant_matches_owned_variant() {
        let a = rl(&[(9, 1), (7, 2), (4, 5), (2, 9)]);
        let b = rl(&[(8, 2), (5, 3), (3, 6)]);
        let mut scratch = JoinScratch::new();
        for how in [Compose::Stack, Compose::Beside] {
            let owned = combine_with_provenance(&a, &b, how);
            // Run twice: the second call exercises dirty, pre-grown buffers.
            let _ = combine_with_provenance_scratch(&a, &b, how, &mut scratch);
            let reused = combine_with_provenance_scratch(&a, &b, how, &mut scratch);
            assert_eq!(owned.as_slice(), reused, "{how:?}");
        }
        // Empty children clear stale contents.
        let _ = combine_with_provenance_scratch(&a, &b, Compose::Stack, &mut scratch);
        assert!(
            combine_with_provenance_scratch(&RList::new(), &b, Compose::Stack, &mut scratch)
                .is_empty()
        );
    }

    #[test]
    fn matches_reference_on_fixed_lists() {
        let a = rl(&[(9, 1), (7, 2), (4, 5), (2, 9)]);
        let b = rl(&[(8, 2), (5, 3), (3, 6)]);
        for how in [Compose::Stack, Compose::Beside] {
            let got: Vec<Rect> = combine(&a, &b, how).into_vec();
            assert_eq!(got, reference(&a, &b, how), "{how:?}");
        }
    }

    proptest! {
        #[test]
        fn merge_matches_brute_force(
            pa in proptest::collection::vec((1u64..30, 1u64..30), 1..15),
            pb in proptest::collection::vec((1u64..30, 1u64..30), 1..15),
        ) {
            let a = RList::from_candidates(pa.into_iter().map(|(w, h)| Rect::new(w, h)).collect());
            let b = RList::from_candidates(pb.into_iter().map(|(w, h)| Rect::new(w, h)).collect());
            for how in [Compose::Stack, Compose::Beside] {
                let got: Vec<Rect> = combine(&a, &b, how).into_vec();
                prop_assert_eq!(&got, &reference(&a, &b, how), "compose {:?}", how);
            }
        }

        #[test]
        fn output_size_is_linear(
            pa in proptest::collection::vec((1u64..100, 1u64..100), 1..25),
            pb in proptest::collection::vec((1u64..100, 1u64..100), 1..25),
        ) {
            let a = RList::from_candidates(pa.into_iter().map(|(w, h)| Rect::new(w, h)).collect());
            let b = RList::from_candidates(pb.into_iter().map(|(w, h)| Rect::new(w, h)).collect());
            for how in [Compose::Stack, Compose::Beside] {
                let got = combine_with_provenance(&a, &b, how);
                prop_assert!(got.len() <= a.len() + b.len());
                prop_assert!(!got.is_empty());
            }
        }
    }
}
