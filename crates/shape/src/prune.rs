//! Dominance-pruning kernels: extract the non-redundant (Pareto-minimal)
//! subset of a candidate set.
//!
//! An implementation is *redundant* when it dominates another one (paper
//! Definition 2): it is at least as large in every measurement, so it can
//! never appear in an optimal floorplan that the smaller one could not also
//! produce. All kernels here are payload-preserving: they operate on
//! arbitrary items via a shape-key accessor so callers can carry provenance
//! (which child implementations produced each candidate) through the prune.

use fp_geom::{LShape, Rect};

/// Keeps the Pareto-minimal rectangles of `items`, i.e. removes every item
/// whose rectangle dominates another item's rectangle; exact duplicates are
/// collapsed to one.
///
/// The survivors are returned sorted by width descending / height ascending
/// — exactly the irreducible R-list order of paper Definition 4/5.
///
/// Runs in `O(n log n)`.
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::prune::pareto_min_rects_by;
///
/// let pruned = pareto_min_rects_by(
///     vec![(Rect::new(3, 3), 'a'), (Rect::new(4, 4), 'b'), (Rect::new(5, 2), 'c')],
///     |&(r, _)| r,
/// );
/// let names: Vec<char> = pruned.iter().map(|&(_, n)| n).collect();
/// assert_eq!(names, vec!['c', 'a']); // 'b' dominated 'a'; width-descending order
/// ```
pub fn pareto_min_rects_by<T>(mut items: Vec<T>, key: impl Fn(&T) -> Rect) -> Vec<T> {
    pareto_min_rects_in_place(&mut items, key);
    items
}

/// [`pareto_min_rects_by`] operating in place: `items` is reduced to its
/// Pareto-minimal subset (canonical width-descending order) without any
/// intermediate allocation — the sweep compacts survivors with `retain`.
/// This is the allocation-free kernel the join hot path uses on buffers
/// it owns or borrows from a [`crate::JoinScratch`].
pub fn pareto_min_rects_in_place<T>(items: &mut Vec<T>, key: impl Fn(&T) -> Rect) {
    // Sort by (w asc, h asc); sweep keeping a strictly decreasing minimum h.
    items.sort_by_key(|t| {
        let r = key(t);
        (r.w, r.h)
    });
    // Branch-light min tracking: one comparison per item instead of an
    // `Option` unwrap (the `first` flag keeps an initial `h == u64::MAX`
    // item alive, where a bare sentinel would drop it).
    let mut min_h = u64::MAX;
    let mut first = true;
    items.retain(|item| {
        let h = key(item).h;
        let keep = first | (h < min_h);
        first = false;
        min_h = if keep { h } else { min_h };
        keep
    });
    // (w asc, h desc) reversed gives the canonical R-list order.
    items.reverse();
}

/// [`pareto_min_rects_by`] for plain rectangles.
pub fn pareto_min_rects(items: Vec<Rect>) -> Vec<Rect> {
    pareto_min_rects_by(items, |&r| r)
}

/// Keeps the Pareto-minimal L-shapes of `items` under 4-dimensional
/// dominance (paper Definition 1); exact duplicates collapse to one.
///
/// The survivors are returned sorted by `(w2, w1 desc, h1, h2)`, which is the
/// grouping order [`crate::LListSet`] uses to carve irreducible L-lists.
///
/// Complexity: `O(n log n)` for the sort plus `O(n·f)` dominance checks
/// where `f` is the Pareto-front size; candidate sets produced by block
/// joins have modest fronts in practice, and the sort order lets each item
/// be checked only against the kept front.
pub fn pareto_min_lshapes_by<T>(mut items: Vec<T>, key: impl Fn(&T) -> LShape) -> Vec<T> {
    // Sort by total size ascending so that any dominator of an item appears
    // after it; then each item only needs checking against already-kept
    // items (which can only dominate it if equal — handled by dedup) and
    // each kept item cannot be dominated by later ones except via >=.
    //
    // Concretely: sort by (w1+w2+h1+h2) ascending with a lexicographic
    // tiebreak; if a dominates b (componentwise >=) then sum(a) >= sum(b),
    // so dominators never precede their victims except as exact duplicates.
    items.sort_by_key(|t| {
        let l = key(t);
        (
            u128::from(l.w1) + u128::from(l.w2) + u128::from(l.h1) + u128::from(l.h2),
            l.as_tuple(),
        )
    });
    let mut kept: Vec<T> = Vec::new();
    if crate::legacy::legacy_kernels() {
        // Pre-SoA path, kept for the mega_bench ablation: scalar scan
        // re-deriving each kept item's key through the accessor.
        'outer: for item in items {
            let l = key(&item);
            for k in &kept {
                if l.dominates(key(k)) {
                    continue 'outer; // redundant (covers exact duplicates too)
                }
            }
            kept.push(item);
        }
    } else {
        // The kept front's four coordinates live in flat parallel arrays:
        // the dominance scan is then a tight branch-light sweep over
        // contiguous `u64`s (bitwise `&` instead of short-circuit `&&`,
        // chunked so the compiler can vectorize) instead of re-keying a
        // payload-carrying slice element per comparison.
        let mut front = LFront::default();
        for item in items {
            let l = key(&item);
            if front.dominates_any(l) {
                continue; // redundant (covers exact duplicates too)
            }
            front.push(l);
            kept.push(item);
        }
    }
    kept.sort_by_key(|t| {
        let l = key(t);
        (l.w2, core::cmp::Reverse(l.w1), l.h1, l.h2)
    });
    kept
}

/// The kept Pareto front as four parallel coordinate arrays — the
/// struct-of-arrays layout the 4-D dominance sweeps run over. Reusable
/// across prunes (a [`crate::JoinScratch`] carries one) so the sweep
/// allocates nothing once the arrays have grown to working-set size.
#[derive(Debug, Default)]
pub struct LFront {
    w1: Vec<u64>,
    w2: Vec<u64>,
    h1: Vec<u64>,
    h2: Vec<u64>,
}

impl LFront {
    /// An empty front.
    #[must_use]
    pub fn new() -> LFront {
        LFront::default()
    }

    /// Empties the front, keeping the arrays' capacity.
    pub fn clear(&mut self) {
        self.w1.clear();
        self.w2.clear();
        self.h1.clear();
        self.h2.clear();
    }

    fn push(&mut self, l: LShape) {
        self.w1.push(l.w1);
        self.w2.push(l.w2);
        self.h1.push(l.h1);
        self.h2.push(l.h2);
    }

    /// `true` if `l` dominates (componentwise ≥) any front member.
    fn dominates_any(&self, l: LShape) -> bool {
        const CHUNK: usize = 16;
        let n = self.w1.len();
        let mut i = 0;
        while i < n {
            let end = (i + CHUNK).min(n);
            let mut any = false;
            for j in i..end {
                any |= (l.w1 >= self.w1[j])
                    & (l.w2 >= self.w2[j])
                    & (l.h1 >= self.h1[j])
                    & (l.h2 >= self.h2[j]);
            }
            if any {
                return true;
            }
            i = end;
        }
        false
    }
}

/// Full 4-D prune of an L-list that is already grouped by `w2` ascending
/// and free of *same-w2* dominance (the exact state
/// [`pareto_min_lshapes_within_w2_scratch`] leaves its output in).
///
/// Dominance requires `w1 ≥` and `w2 ≥`, so a redundant item's victims
/// can only sit in **strictly smaller** `w2` groups (same-`w2` dominance
/// was already removed). Sweeping the groups in ascending order with the
/// kept front of completed groups therefore removes exactly the
/// cross-`w2` redundancies — the same survivor set, in the same order,
/// as [`pareto_min_lshapes_by`] on this input, with **zero** sorts and
/// zero allocations (the front lives in the caller's arena).
pub fn pareto_min_lshapes_grouped_scratch<T>(
    items: &mut Vec<T>,
    key: impl Fn(&T) -> LShape,
    front: &mut LFront,
) {
    front.clear();
    let mut write = 0usize;
    let mut group_start = 0usize; // first kept index of the open group
    let mut group_w2: Option<u64> = None;
    for read in 0..items.len() {
        let l = key(&items[read]);
        if group_w2 != Some(l.w2) {
            debug_assert!(group_w2.is_none_or(|w2| w2 < l.w2), "groups ascend");
            // The finished group's survivors become front members: they
            // were not eligible victims for their own group (no same-w2
            // dominance) but are for every later one.
            for kept in &items[group_start..write] {
                front.push(key(kept));
            }
            group_w2 = Some(l.w2);
            group_start = write;
        }
        if front.dominates_any(l) {
            continue; // redundant: it dominates a smaller-w2 survivor
        }
        items.swap(write, read);
        write += 1;
    }
    items.truncate(write);
}

/// [`pareto_min_lshapes_by`] for plain L-shapes.
pub fn pareto_min_lshapes(items: Vec<LShape>) -> Vec<LShape> {
    pareto_min_lshapes_by(items, |&l| l)
}

/// Removes every L-shape dominated by another **with the same `w2`**, in
/// `O(n log n)` — the cheap first pass of L-block pruning.
///
/// Within a fixed `w2`, dominance is 3-dimensional (`w1`, `h1`, `h2`); the
/// kernel sorts each group by `w1` and sweeps a 2-D staircase of minimal
/// `(h1, h2)` pairs. Cross-`w2` redundancy is *not* removed (use
/// [`pareto_min_lshapes_by`] for the full 4-D prune when affordable).
///
/// Survivors are returned in the canonical `(w2, w1 desc, h1, h2)` order
/// that [`crate::chain_indices`] expects.
pub fn pareto_min_lshapes_within_w2_by<T>(mut items: Vec<T>, key: impl Fn(&T) -> LShape) -> Vec<T> {
    let mut front: Vec<(u64, u64)> = Vec::new();
    pareto_min_lshapes_within_w2_scratch(&mut items, key, &mut front);
    items
}

/// [`pareto_min_lshapes_within_w2_by`] operating in place, with the
/// staircase front borrowed from the caller (typically the `front`
/// buffer of a [`crate::JoinScratch`]) so repeated prunes on the join
/// hot path allocate nothing. Survivors are compacted to the head of
/// `items` and left in canonical `(w2, w1 desc, h1, h2)` order.
pub fn pareto_min_lshapes_within_w2_scratch<T>(
    items: &mut Vec<T>,
    key: impl Fn(&T) -> LShape,
    front: &mut Vec<(u64, u64)>,
) {
    // Sort groups together; within a group ascending w1 so that potential
    // dominators (smaller or equal w1) precede their victims.
    items.sort_by_key(|t| {
        let l = key(t);
        (l.w2, l.w1, l.h1, l.h2)
    });
    // Staircase of minimal (h1, h2) pairs for the current w2 group, sorted
    // by h1 ascending (h2 then strictly descending).
    front.clear();
    let mut current_w2: Option<u64> = None;
    let mut write = 0usize;
    for read in 0..items.len() {
        let l = key(&items[read]);
        if current_w2 != Some(l.w2) {
            current_w2 = Some(l.w2);
            front.clear();
        }
        // Query: does the front contain (h1', h2') <= (h1, h2)?
        // The best candidate is the staircase point with the largest
        // h1' <= h1 (it has the smallest h2 among those).
        let idx = front.partition_point(|&(h1, _)| h1 <= l.h1);
        let dominated = idx > 0 && front[idx - 1].1 <= l.h2;
        if dominated {
            continue;
        }
        // Insert (h1, h2) into the staircase: drop the points it dominates
        // (h1' >= h1 and h2' >= h2), which form a contiguous run starting
        // at the first entry with h1' >= h1.
        let start = front.partition_point(|&(h1, _)| h1 < l.h1);
        let mut end = start;
        while end < front.len() && front[end].1 >= l.h2 {
            end += 1;
        }
        front.splice(start..end, [(l.h1, l.h2)]);
        items.swap(write, read);
        write += 1;
    }
    items.truncate(write);
    // Canonical output order.
    items.sort_by_key(|t| {
        let l = key(t);
        (l.w2, core::cmp::Reverse(l.w1), l.h1, l.h2)
    });
}

/// [`pareto_min_lshapes_within_w2_scratch`] with the final canonical
/// sort replaced by an `O(n)` reversal: the dominance sweep leaves each
/// `w2` group sorted by `w1` ascending with equal-`w1` runs `(h1, h2)`
/// ascending, so reversing each group and then re-reversing its
/// equal-`w1` runs is exactly the canonical `(w2, w1 desc, h1, h2)`
/// order — no second comparison sort. Output is identical to the plain
/// variant (which stays as the legacy-ablation baseline).
pub fn pareto_min_lshapes_within_w2_canonical_scratch<T>(
    items: &mut Vec<T>,
    key: impl Fn(&T) -> LShape,
    front: &mut Vec<(u64, u64)>,
) {
    // Unstable sort: deterministic, allocation-free, and faster at join
    // granularity. Items tying on the full 4-D key are interchangeable
    // for every later stage (the sweep keeps exactly one), so stability
    // buys nothing here.
    items.sort_unstable_by_key(|t| {
        let l = key(t);
        (l.w2, l.w1, l.h1, l.h2)
    });
    front.clear();
    let mut current_w2: Option<u64> = None;
    let mut write = 0usize;
    for read in 0..items.len() {
        let l = key(&items[read]);
        if current_w2 != Some(l.w2) {
            current_w2 = Some(l.w2);
            front.clear();
        }
        let idx = front.partition_point(|&(h1, _)| h1 <= l.h1);
        let dominated = idx > 0 && front[idx - 1].1 <= l.h2;
        if dominated {
            continue;
        }
        let start = front.partition_point(|&(h1, _)| h1 < l.h1);
        let mut end = start;
        while end < front.len() && front[end].1 >= l.h2 {
            end += 1;
        }
        front.splice(start..end, [(l.h1, l.h2)]);
        items.swap(write, read);
        write += 1;
    }
    items.truncate(write);
    // Canonicalize per w2 group: reverse the group (w1 asc → desc), then
    // restore ascending (h1, h2) inside each equal-w1 run. Runs are
    // almost always singletons — dominance-freedom forces h1 strictly
    // ascending / h2 strictly descending within one — so this is a
    // near-pure group reversal.
    let mut i = 0;
    while i < items.len() {
        let w2 = key(&items[i]).w2;
        let mut j = i + 1;
        while j < items.len() && key(&items[j]).w2 == w2 {
            j += 1;
        }
        items[i..j].reverse();
        let mut a = i;
        while a < j {
            let w1 = key(&items[a]).w1;
            let mut b = a + 1;
            while b < j && key(&items[b]).w1 == w1 {
                b += 1;
            }
            items[a..b].reverse();
            a = b;
        }
        i = j;
    }
}

/// Returns `true` if no element of `items` dominates another (Definition 2
/// holds vacuously), checked by brute force. Intended for tests/debugging.
pub fn is_nonredundant_rects(items: &[Rect]) -> bool {
    for (i, a) in items.iter().enumerate() {
        for (j, b) in items.iter().enumerate() {
            if i != j && a.dominates(*b) {
                return false;
            }
        }
    }
    true
}

/// Brute-force non-redundancy check for L-shapes. Intended for tests.
pub fn is_nonredundant_lshapes(items: &[LShape]) -> bool {
    for (i, a) in items.iter().enumerate() {
        for (j, b) in items.iter().enumerate() {
            if i != j && a.dominates(*b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rect_prune_removes_dominated_and_duplicates() {
        let pruned = pareto_min_rects(vec![
            Rect::new(4, 4),
            Rect::new(4, 4),
            Rect::new(5, 5),
            Rect::new(2, 8),
            Rect::new(8, 2),
            Rect::new(8, 3),
        ]);
        assert_eq!(
            pruned,
            vec![Rect::new(8, 2), Rect::new(4, 4), Rect::new(2, 8)]
        );
    }

    #[test]
    fn rect_prune_empty_and_singleton() {
        assert!(pareto_min_rects(vec![]).is_empty());
        assert_eq!(
            pareto_min_rects(vec![Rect::new(1, 1)]),
            vec![Rect::new(1, 1)]
        );
    }

    #[test]
    fn rect_prune_keeps_payload() {
        let pruned = pareto_min_rects_by(
            vec![
                (Rect::new(3, 3), 10),
                (Rect::new(3, 4), 20),
                (Rect::new(1, 9), 30),
            ],
            |&(r, _)| r,
        );
        assert_eq!(pruned, vec![(Rect::new(3, 3), 10), (Rect::new(1, 9), 30)]);
    }

    fn l(w1: u64, w2: u64, h1: u64, h2: u64) -> LShape {
        LShape::new_canonical(w1, w2, h1, h2)
    }

    #[test]
    fn lshape_prune_keeps_incomparable_front() {
        let pruned = pareto_min_lshapes(vec![
            l(5, 2, 3, 1),
            l(4, 2, 4, 2),
            l(6, 3, 4, 2), // dominates (4,2,4,2)
            l(5, 2, 3, 1), // duplicate
        ]);
        assert_eq!(pruned.len(), 2);
        assert!(is_nonredundant_lshapes(&pruned));
        assert!(pruned.contains(&l(5, 2, 3, 1)));
        assert!(pruned.contains(&l(4, 2, 4, 2)));
    }

    #[test]
    fn lshape_prune_output_order_groups_by_w2() {
        let pruned = pareto_min_lshapes(vec![
            l(9, 3, 2, 1),
            l(8, 2, 3, 2),
            l(7, 3, 3, 2),
            l(9, 2, 2, 1),
        ]);
        // Groups: w2 == 2 first (w1 desc), then w2 == 3.
        let w2s: Vec<u64> = pruned.iter().map(|x| x.w2).collect();
        let mut sorted_w2s = w2s.clone();
        sorted_w2s.sort_unstable();
        assert_eq!(w2s, sorted_w2s);
        for win in pruned.windows(2) {
            if win[0].w2 == win[1].w2 {
                assert!(win[0].w1 >= win[1].w1);
            }
        }
    }

    fn arb_rects() -> impl Strategy<Value = Vec<Rect>> {
        proptest::collection::vec(
            (1u64..50, 1u64..50).prop_map(|(w, h)| Rect::new(w, h)),
            0..60,
        )
    }

    fn arb_lshapes() -> impl Strategy<Value = Vec<LShape>> {
        proptest::collection::vec(
            (1u64..20, 1u64..20, 1u64..20, 1u64..20)
                .prop_map(|(a, b, c, d)| l(a.max(b), a.min(b), c.max(d), c.min(d))),
            0..40,
        )
    }

    proptest! {
        #[test]
        fn rect_prune_is_nonredundant_and_minimal(items in arb_rects()) {
            let pruned = pareto_min_rects(items.clone());
            prop_assert!(is_nonredundant_rects(&pruned));
            // Every input is dominated by (or equal to) something kept --
            // wait: minimal elements are *dominated by* inputs; every input
            // must dominate some kept element.
            for r in &items {
                prop_assert!(pruned.iter().any(|p| r.dominates(*p)), "{r:?} lost");
            }
            // Every kept element was an input.
            for p in &pruned {
                prop_assert!(items.contains(p));
            }
            // Canonical order.
            for w in pruned.windows(2) {
                prop_assert!(w[0].w > w[1].w && w[0].h < w[1].h);
            }
        }

        #[test]
        fn rect_prune_idempotent(items in arb_rects()) {
            let once = pareto_min_rects(items);
            let twice = pareto_min_rects(once.clone());
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn lshape_prune_is_nonredundant_and_minimal(items in arb_lshapes()) {
            let pruned = pareto_min_lshapes(items.clone());
            prop_assert!(is_nonredundant_lshapes(&pruned));
            for x in &items {
                prop_assert!(pruned.iter().any(|p| x.dominates(*p)), "{x:?} lost");
            }
            for p in &pruned {
                prop_assert!(items.contains(p));
            }
        }

        #[test]
        fn lshape_prune_idempotent(items in arb_lshapes()) {
            let once = pareto_min_lshapes(items);
            let twice = pareto_min_lshapes(once.clone());
            prop_assert_eq!(once, twice);
        }

        /// The within-w2 kernel removes exactly the same-w2 redundancies.
        #[test]
        fn within_w2_prune_matches_reference(items in arb_lshapes()) {
            let mut got = pareto_min_lshapes_within_w2_by(items.clone(), |&l| l);
            // Reference: an item survives iff no *same-w2* item dominates
            // it (first occurrence wins among duplicates).
            let mut reference: Vec<LShape> = Vec::new();
            for (i, a) in items.iter().enumerate() {
                let redundant = items.iter().enumerate().any(|(j, b)| {
                    j != i && a.w2 == b.w2 && a.dominates(*b) && (a != b || j < i)
                });
                if !redundant && !reference.contains(a) {
                    reference.push(*a);
                }
            }
            got.sort_by_key(|l| l.as_tuple());
            reference.sort_by_key(|l| l.as_tuple());
            prop_assert_eq!(got, reference);
        }

        /// The grouped prune output feeds chain_indices directly.
        #[test]
        fn within_w2_prune_output_is_chainable(items in arb_lshapes()) {
            let got = pareto_min_lshapes_within_w2_by(items, |&l| l);
            let chains = crate::chain_indices(&got);
            let total: usize = chains.iter().map(Vec::len).sum();
            prop_assert_eq!(total, got.len());
        }

        /// Cross-check against an O(n^2) reference implementation.
        #[test]
        fn lshape_prune_matches_reference(items in arb_lshapes()) {
            let mut reference: Vec<LShape> = Vec::new();
            for (i, a) in items.iter().enumerate() {
                let redundant = items.iter().enumerate().any(|(j, b)| {
                    j != i && a.dominates(*b) && (a != b || j < i)
                });
                if !redundant && !reference.contains(a) {
                    reference.push(*a);
                }
            }
            let mut pruned = pareto_min_lshapes(items);
            pruned.sort_by_key(|l| l.as_tuple());
            reference.sort_by_key(|l| l.as_tuple());
            prop_assert_eq!(pruned, reference);
        }
    }
}
