//! Irreducible L-lists and L-list sets (paper Definitions 3 and 5).

use core::fmt;
use core::ops::Index;

use fp_geom::{Area, LShape};

use crate::prune::pareto_min_lshapes;

/// An irreducible L-list: a chain of non-redundant L-shape implementations
/// sharing a common top-edge width `w2`, with `w1` strictly decreasing and
/// `h1`, `h2` non-decreasing (paper Definition 3), containing no redundant
/// implementation (Definition 5).
///
/// The monotone structure is what makes the DAC'92 `L_Selection` algorithm
/// work: Lemma 2 (distances grow with list separation) and Lemma 3 (the
/// nearest kept implementation is a list neighbour) both rely on it.
///
/// # Example
///
/// ```
/// use fp_geom::LShape;
/// use fp_shape::LList;
///
/// let list = LList::from_sorted(vec![
///     LShape::new(9, 3, 2, 1)?,
///     LShape::new(7, 3, 4, 2)?,
///     LShape::new(5, 3, 5, 4)?,
/// ]).expect("a valid chain");
/// assert_eq!(list.w2(), Some(3));
/// # Ok::<(), fp_geom::InvalidShapeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LList {
    items: Vec<LShape>,
}

impl LList {
    /// An empty L-list.
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        LList { items: Vec::new() }
    }

    /// Wraps a vector that is already an irreducible L-list.
    ///
    /// # Errors
    ///
    /// Returns the vector back unless all elements share one `w2`, `w1` is
    /// strictly decreasing, `h1` and `h2` are non-decreasing, and no element
    /// dominates another (equivalently: each step changes at least one of
    /// `h1`, `h2`).
    pub fn from_sorted(items: Vec<LShape>) -> Result<Self, Vec<LShape>> {
        let ok = items.windows(2).all(|w| {
            w[0].w2 == w[1].w2
                && w[0].w1 > w[1].w1
                && w[0].h1 <= w[1].h1
                && w[0].h2 <= w[1].h2
                && (w[0].h1 < w[1].h1 || w[0].h2 < w[1].h2)
        });
        if ok {
            Ok(LList { items })
        } else {
            Err(items)
        }
    }

    /// Number of implementations in the list.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the list is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The common top-edge width `w2`, if the list is non-empty.
    #[inline]
    #[must_use]
    pub fn w2(&self) -> Option<u64> {
        self.items.first().map(|l| l.w2)
    }

    /// The implementations in chain order (`w1` descending).
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[LShape] {
        &self.items
    }

    /// Borrowing iterator over the implementations in chain order.
    #[inline]
    pub fn iter(&self) -> core::slice::Iter<'_, LShape> {
        self.items.iter()
    }

    /// Consumes the list, returning the underlying vector.
    #[inline]
    #[must_use]
    pub fn into_vec(self) -> Vec<LShape> {
        self.items
    }

    /// The implementation at `index`, if in range.
    #[inline]
    #[must_use]
    pub fn get(&self, index: usize) -> Option<LShape> {
        self.items.get(index).copied()
    }

    /// The minimum-area implementation in this list.
    #[must_use]
    pub fn min_area(&self) -> Option<LShape> {
        self.items
            .iter()
            .copied()
            .min_by_key(|l| (l.area(), l.as_tuple()))
    }

    /// Keeps only the implementations at the given **sorted** positions;
    /// any subsequence of a chain is still an irreducible L-list.
    ///
    /// This is the primitive `L_Selection` uses to apply its optimal subset.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is not strictly increasing or contains an
    /// out-of-range index.
    #[must_use]
    pub fn subset(&self, positions: &[usize]) -> LList {
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be strictly increasing"
        );
        let items = positions.iter().map(|&i| self.items[i]).collect();
        LList { items }
    }
}

impl fmt::Debug for LList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(&self.items).finish()
    }
}

impl fmt::Display for LList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LList[")?;
        for (i, l) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for LList {
    type Output = LShape;

    fn index(&self, index: usize) -> &LShape {
        &self.items[index]
    }
}

impl<'a> IntoIterator for &'a LList {
    type Item = &'a LShape;
    type IntoIter = core::slice::Iter<'a, LShape>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl IntoIterator for LList {
    type Item = LShape;
    type IntoIter = std::vec::IntoIter<LShape>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// The complete non-redundant implementation set of an L-shaped block,
/// stored as a set of irreducible [`LList`] chains (paper §3).
///
/// The partition is canonical in its grouping (every chain has one `w2`)
/// but chains within a `w2` group come from a greedy best-fit chain
/// decomposition; the paper only requires *some* partition into irreducible
/// L-lists.
///
/// # Example
///
/// ```
/// use fp_geom::LShape;
/// use fp_shape::LListSet;
///
/// let set = LListSet::from_candidates(vec![
///     LShape::new(9, 3, 2, 1)?,
///     LShape::new(7, 3, 4, 2)?,
///     LShape::new(9, 2, 3, 1)?,
///     LShape::new(10, 3, 2, 1)?, // dominates (9, 3, 2, 1): pruned
/// ]);
/// assert_eq!(set.total_len(), 3);
/// assert_eq!(set.lists().len(), 2); // one chain for w2 == 2, one for w2 == 3
/// # Ok::<(), fp_geom::InvalidShapeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LListSet {
    lists: Vec<LList>,
}

impl LListSet {
    /// An empty set.
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        LListSet { lists: Vec::new() }
    }

    /// Builds the set from arbitrary candidates: prunes redundant
    /// implementations, groups by `w2`, and decomposes each group into
    /// irreducible chains.
    #[must_use]
    pub fn from_candidates(candidates: Vec<LShape>) -> Self {
        let pruned = pareto_min_lshapes(candidates);
        let lists = chain_indices(&pruned)
            .into_iter()
            .map(|idxs| LList {
                items: idxs.into_iter().map(|i| pruned[i]).collect(),
            })
            .collect();
        LListSet { lists }
    }

    /// Assembles a set from lists that are already irreducible L-lists
    /// (e.g. the outputs of per-list selection). Empty lists are dropped.
    ///
    /// The lists are taken as-is: no cross-list re-pruning happens, matching
    /// the paper's treatment where selection operates per list.
    #[must_use]
    pub fn from_lists(lists: Vec<LList>) -> Self {
        LListSet {
            lists: lists.into_iter().filter(|l| !l.is_empty()).collect(),
        }
    }

    /// The chains of the partition.
    #[inline]
    #[must_use]
    pub fn lists(&self) -> &[LList] {
        &self.lists
    }

    /// Total number of implementations across all chains.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.lists.iter().map(LList::len).sum()
    }

    /// `true` if the block has no implementation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Iterator over every implementation in the set.
    pub fn iter(&self) -> impl Iterator<Item = &LShape> {
        self.lists.iter().flat_map(LList::iter)
    }

    /// The minimum-area implementation across all chains.
    #[must_use]
    pub fn min_area(&self) -> Option<LShape> {
        self.iter()
            .copied()
            .min_by_key(|l| (l.area(), l.as_tuple()))
    }

    /// The minimum area value across all chains.
    #[must_use]
    pub fn min_area_value(&self) -> Option<Area> {
        self.min_area().map(|l| l.area())
    }
}

/// Decomposes a non-redundant L-shape slice into irreducible L-list chains,
/// returning the *indices* of each chain's members so callers can carry
/// per-implementation payloads (e.g. provenance) alongside.
///
/// `pruned` must be sorted the way [`crate::prune::pareto_min_lshapes`]
/// returns it — grouped by `w2`, then `w1` descending, then `h1`, `h2`
/// ascending — and must contain no redundant implementation. The greedy
/// best-fit decomposition (open-chain tails kept as a staircase, giving
/// `O(m log m)` per group plus tail updates) yields *some* valid partition
/// into chains — not necessarily the minimum number; the paper only
/// requires a partition.
///
/// # Panics
///
/// Panics (in debug builds) if `pruned` is not in the expected order.
#[must_use]
pub fn chain_indices(pruned: &[LShape]) -> Vec<Vec<usize>> {
    debug_assert!(
        pruned
            .windows(2)
            .all(|w| (w[0].w2, core::cmp::Reverse(w[0].w1), w[0].h1, w[0].h2)
                <= (w[1].w2, core::cmp::Reverse(w[1].w1), w[1].h1, w[1].h2)),
        "chain_indices requires prune output order"
    );
    let mut chains: Vec<Vec<usize>> = Vec::new();
    let mut group_start = 0;
    // Per group, open-chain tails are kept as a staircase over (h1, h2):
    // h1 strictly ascending, h2 strictly descending, so the acceptance
    // query "is there a tail with h1 <= x.h1 and h2 <= x.h2?" is a binary
    // search (the best candidate is the largest h1 <= x.h1 — it has the
    // smallest h2 among those). Appending replaces the tail in place.
    //
    // Ties in w1 need no special handling: within a non-redundant group,
    // equal-w1 elements have anti-sorted (h1 asc, h2 desc) heights, so an
    // earlier same-w1 element's tail never accepts a later one.
    let mut tails: Vec<(u64, u64, usize)> = Vec::new(); // (h1, h2, chain index)
    while group_start < pruned.len() {
        let w2 = pruned[group_start].w2;
        let group_end = group_start
            + pruned[group_start..]
                .iter()
                .take_while(|l| l.w2 == w2)
                .count();
        tails.clear();
        for (i, l) in pruned.iter().enumerate().take(group_end).skip(group_start) {
            let idx = tails.partition_point(|&(h1, _, _)| h1 <= l.h1);
            let accepted = idx > 0 && tails[idx - 1].1 <= l.h2 && {
                // A tail equal to (h1, h2) could come from an equal-w1
                // element; dominance-freedom guarantees w1 differs when
                // heights are comparable, so the strict-w1 condition of
                // Definition 3 holds automatically except for exact height
                // ties with equal w1 — impossible among non-redundant
                // same-w2 elements.
                let chain = tails[idx - 1].2;
                let last = pruned[*chains[chain].last().expect("non-empty chain")];
                last.w1 > l.w1
            };
            if accepted {
                let (_, _, chain) = tails.remove(idx - 1);
                chains[chain].push(i);
                // Reinsert the updated tail, dropping tails it dominates.
                insert_tail(&mut tails, (l.h1, l.h2, chain));
            } else {
                chains.push(vec![i]);
                insert_tail(&mut tails, (l.h1, l.h2, chains.len() - 1));
            }
        }
        group_start = group_end;
    }
    chains
}

/// Reusable arena for the allocation-free flavour of [`chain_indices`].
///
/// [`chain_indices`] allocates one `Vec` per chain, which dominates its
/// cost when it runs once per wheel join on lists of a few dozen
/// elements. `ChainScratch::partition` computes the *same* chains in the
/// same order, but threads members through a flat `next`-link array and
/// emits them as one concatenated index permutation plus per-chain
/// spans; with a reused scratch the whole decomposition allocates
/// nothing in steady state.
#[derive(Debug, Default)]
pub struct ChainScratch {
    /// Open-chain tails, `(h1, h2, chain)` staircase (see [`chain_indices`]).
    tails: Vec<(u64, u64, usize)>,
    /// First member index of each chain, in chain-creation order.
    head: Vec<u32>,
    /// Last member index of each chain (the append target).
    last: Vec<u32>,
    /// Successor links: `next[i]` is the next member of `i`'s chain.
    next: Vec<u32>,
    /// Output: member indices concatenated chain by chain.
    pub perm: Vec<u32>,
    /// Output: half-open `perm` spans, one per chain in creation order.
    pub spans: Vec<(u32, u32)>,
}

/// `next`-link sentinel: no successor.
const NO_NEXT: u32 = u32::MAX;

impl ChainScratch {
    /// An empty arena; buffers grow to the working-set high-water mark.
    #[must_use]
    pub fn new() -> ChainScratch {
        ChainScratch::default()
    }

    /// Decomposes `items` (whose keys must be in [`crate::prune`] output
    /// order, non-redundant — the same precondition as
    /// [`chain_indices`]) into irreducible chains, leaving the member
    /// permutation in `self.perm` and the chain spans in `self.spans`.
    /// Chains and member order are identical to [`chain_indices`].
    pub fn partition<T>(&mut self, items: &[T], key: impl Fn(&T) -> LShape) {
        debug_assert!(
            items
                .windows(2)
                .map(|w| (key(&w[0]), key(&w[1])))
                .all(|(a, b)| (a.w2, core::cmp::Reverse(a.w1), a.h1, a.h2)
                    <= (b.w2, core::cmp::Reverse(b.w1), b.h1, b.h2)),
            "chain partition requires prune output order"
        );
        self.head.clear();
        self.last.clear();
        self.next.clear();
        self.next.resize(items.len(), NO_NEXT);
        let mut group_start = 0;
        while group_start < items.len() {
            let w2 = key(&items[group_start]).w2;
            let group_end = group_start
                + items[group_start..]
                    .iter()
                    .take_while(|t| key(t).w2 == w2)
                    .count();
            self.tails.clear();
            for (i, t) in items.iter().enumerate().take(group_end).skip(group_start) {
                let l = key(t);
                let idx = self.tails.partition_point(|&(h1, _, _)| h1 <= l.h1);
                let accepted = idx > 0 && self.tails[idx - 1].1 <= l.h2 && {
                    // Strict-w1 acceptance, exactly as in chain_indices.
                    let chain = self.tails[idx - 1].2;
                    key(&items[self.last[chain] as usize]).w1 > l.w1
                };
                if accepted {
                    let (_, _, chain) = self.tails.remove(idx - 1);
                    self.next[self.last[chain] as usize] = i as u32;
                    self.last[chain] = i as u32;
                    insert_tail(&mut self.tails, (l.h1, l.h2, chain));
                } else {
                    self.head.push(i as u32);
                    self.last.push(i as u32);
                    insert_tail(&mut self.tails, (l.h1, l.h2, self.head.len() - 1));
                }
            }
            group_start = group_end;
        }
        self.perm.clear();
        self.spans.clear();
        for &first in &self.head {
            let start = self.perm.len() as u32;
            let mut j = first;
            while j != NO_NEXT {
                self.perm.push(j);
                j = self.next[j as usize];
            }
            self.spans.push((start, self.perm.len() as u32));
        }
    }
}

/// Inserts a tail into the (h1 asc, h2 desc) staircase, removing tails the
/// newcomer dominates (those chains simply stop accepting appends, which
/// is sound — any partition into valid chains is acceptable).
fn insert_tail(tails: &mut Vec<(u64, u64, usize)>, tail: (u64, u64, usize)) {
    let (h1, h2, _) = tail;
    // Is the newcomer itself dominated? Then it is never preferable as an
    // append target; keep it out of the staircase (its chain just closes).
    let idx = tails.partition_point(|&(t1, _, _)| t1 <= h1);
    if idx > 0 && tails[idx - 1].1 <= h2 && (tails[idx - 1].0, tails[idx - 1].1) != (h1, h2) {
        return;
    }
    // Remove tails dominated by the newcomer (h1' >= h1 && h2' >= h2):
    // they form a contiguous run starting at the first h1' >= h1.
    let start = tails.partition_point(|&(t1, _, _)| t1 < h1);
    let mut end = start;
    while end < tails.len() && tails[end].1 >= h2 {
        end += 1;
    }
    tails.splice(start..end, [tail]);
}

impl fmt::Debug for LListSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LListSet")
            .field("lists", &self.lists)
            .field("total", &self.total_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::is_nonredundant_lshapes;
    use proptest::prelude::*;

    fn l(w1: u64, w2: u64, h1: u64, h2: u64) -> LShape {
        LShape::new_canonical(w1, w2, h1, h2)
    }

    #[test]
    fn from_sorted_validates_chain_invariants() {
        assert!(LList::from_sorted(vec![l(9, 3, 2, 1), l(7, 3, 4, 2)]).is_ok());
        // mixed w2
        assert!(LList::from_sorted(vec![l(9, 3, 2, 1), l(7, 2, 4, 2)]).is_err());
        // w1 not strictly decreasing
        assert!(LList::from_sorted(vec![l(9, 3, 2, 1), l(9, 3, 4, 2)]).is_err());
        // h decreasing
        assert!(LList::from_sorted(vec![l(9, 3, 4, 2), l(7, 3, 2, 1)]).is_err());
        // dominated pair (identical h's)
        assert!(LList::from_sorted(vec![l(9, 3, 4, 2), l(7, 3, 4, 2)]).is_err());
        assert!(LList::from_sorted(vec![]).is_ok());
        assert!(LList::from_sorted(vec![l(5, 2, 3, 1)]).is_ok());
    }

    #[test]
    fn subset_preserves_chain() {
        let list = LList::from_sorted(vec![
            l(9, 3, 2, 1),
            l(8, 3, 3, 1),
            l(7, 3, 4, 2),
            l(5, 3, 5, 4),
        ])
        .unwrap();
        let sub = list.subset(&[0, 2, 3]);
        assert!(LList::from_sorted(sub.clone().into_vec()).is_ok());
        assert_eq!(sub.len(), 3);
        assert_eq!(sub[1], l(7, 3, 4, 2));
    }

    #[test]
    fn set_groups_by_w2() {
        let set = LListSet::from_candidates(vec![
            l(9, 3, 2, 1),
            l(7, 3, 4, 2),
            l(9, 2, 3, 1),
            l(6, 2, 5, 3),
        ]);
        assert_eq!(set.lists().len(), 2);
        assert_eq!(set.total_len(), 4);
        for chain in set.lists() {
            assert!(LList::from_sorted(chain.as_slice().to_vec()).is_ok());
        }
    }

    #[test]
    fn set_splits_incomparable_heights_into_chains() {
        // Same w2 and w1 strictly decreasing, but h-pairs zig-zag: cannot be
        // a single chain.
        let set = LListSet::from_candidates(vec![l(9, 2, 5, 1), l(8, 2, 4, 2), l(7, 2, 3, 3)]);
        assert_eq!(set.total_len(), 3);
        assert!(set.lists().len() >= 2);
        for chain in set.lists() {
            assert!(LList::from_sorted(chain.as_slice().to_vec()).is_ok());
        }
    }

    #[test]
    fn set_min_area() {
        let set = LListSet::from_candidates(vec![l(9, 3, 2, 1), l(4, 2, 5, 3)]);
        // areas: 9*1 + 3*1 = 12 vs 4*3 + 2*2 = 16
        assert_eq!(set.min_area_value(), Some(12));
        assert_eq!(LListSet::new().min_area(), None);
    }

    #[test]
    fn from_lists_drops_empties() {
        let set = LListSet::from_lists(vec![
            LList::new(),
            LList::from_sorted(vec![l(5, 2, 3, 1)]).unwrap(),
        ]);
        assert_eq!(set.lists().len(), 1);
    }

    fn arb_lshapes() -> impl Strategy<Value = Vec<LShape>> {
        proptest::collection::vec(
            (1u64..15, 1u64..15, 1u64..15, 1u64..15)
                .prop_map(|(a, b, c, d)| l(a.max(b), a.min(b), c.max(d), c.min(d))),
            0..50,
        )
    }

    proptest! {
        /// The set partitions exactly the non-redundant candidates into
        /// valid irreducible chains.
        #[test]
        fn set_partition_is_valid_and_complete(items in arb_lshapes()) {
            let set = LListSet::from_candidates(items.clone());
            let mut collected: Vec<LShape> = set.iter().copied().collect();
            prop_assert!(is_nonredundant_lshapes(&collected));
            for chain in set.lists() {
                prop_assert!(LList::from_sorted(chain.as_slice().to_vec()).is_ok());
            }
            // Same content as the raw prune.
            let mut reference = crate::prune::pareto_min_lshapes(items);
            collected.sort_by_key(|x| x.as_tuple());
            reference.sort_by_key(|x| x.as_tuple());
            prop_assert_eq!(collected, reference);
        }
    }
}
