//! Shape functions: the functional view of an irreducible R-list.
//!
//! Otten and Zimmerman (the paper's refs [4] and [10]) describe a block's
//! realizable geometries by its *shape function* `h(w)` — the minimal
//! height achievable at width at most `w`. An irreducible R-list is
//! exactly the set of breakpoints of that piecewise-constant,
//! non-increasing function, so the two views convert freely:
//!
//! * stacking two blocks adds their shape functions pointwise;
//! * placing them beside each other splits the width optimally.
//!
//! [`ShapeFunction`] implements both views. The pointwise laws double as
//! an independent validation of the corner-merging Stockmeyer kernel in
//! [`crate::combine`] (see the property tests).

use core::fmt;

use fp_geom::Coord;

use crate::combine::{combine, Compose};
use crate::RList;

/// A block's shape function: minimal height as a non-increasing,
/// piecewise-constant function of the available width.
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::{RList, ShapeFunction};
///
/// let f = ShapeFunction::from_corners(RList::from_candidates(vec![
///     Rect::new(6, 1), Rect::new(3, 4),
/// ]));
/// assert_eq!(f.height_at(10), Some(1));
/// assert_eq!(f.height_at(5), Some(4));
/// assert_eq!(f.height_at(2), None); // narrower than any implementation
/// assert_eq!(f.min_width(), Some(3));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShapeFunction {
    corners: RList,
}

impl ShapeFunction {
    /// The shape function whose breakpoints are the given corners.
    #[must_use]
    pub fn from_corners(corners: RList) -> Self {
        ShapeFunction { corners }
    }

    /// The breakpoints as an irreducible R-list.
    #[must_use]
    pub fn corners(&self) -> &RList {
        &self.corners
    }

    /// Consumes the function, returning the corner list.
    #[must_use]
    pub fn into_corners(self) -> RList {
        self.corners
    }

    /// `h(w)`: the minimal height achievable within width `w`; `None`
    /// when `w` is below the narrowest implementation.
    #[must_use]
    pub fn height_at(&self, w: Coord) -> Option<Coord> {
        self.corners.min_height_fitting_width(w).map(|r| r.h)
    }

    /// The narrowest realizable width (the function's domain boundary).
    #[must_use]
    pub fn min_width(&self) -> Option<Coord> {
        self.corners.tallest().map(|r| r.w)
    }

    /// The widest breakpoint (beyond it the function is constant).
    #[must_use]
    pub fn max_corner_width(&self) -> Option<Coord> {
        self.corners.widest().map(|r| r.w)
    }

    /// `true` if the block has no realization.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.corners.is_empty()
    }

    /// The shape function of the two blocks stacked (heights add):
    /// `(f + g)(w) = f(w) + g(w)`.
    #[must_use]
    pub fn stack(&self, other: &ShapeFunction) -> ShapeFunction {
        ShapeFunction {
            corners: combine(&self.corners, &other.corners, Compose::Stack),
        }
    }

    /// The shape function of the two blocks placed beside each other:
    /// `(f | g)(w) = min over w1 + w2 <= w of max(f(w1), g(w2))`.
    #[must_use]
    pub fn beside(&self, other: &ShapeFunction) -> ShapeFunction {
        ShapeFunction {
            corners: combine(&self.corners, &other.corners, Compose::Beside),
        }
    }

    /// The transposed function (the block rotated 90°): width and height
    /// swap roles.
    #[must_use]
    pub fn transposed(&self) -> ShapeFunction {
        ShapeFunction {
            corners: self.corners.transposed(),
        }
    }

    /// The pointwise minimum of two shape functions (a block realizable
    /// as either of two alternatives).
    #[must_use]
    pub fn union_min(&self, other: &ShapeFunction) -> ShapeFunction {
        ShapeFunction {
            corners: self.corners.union(&other.corners),
        }
    }
}

impl fmt::Debug for ShapeFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShapeFunction({:?})", self.corners)
    }
}

impl fmt::Display for ShapeFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h: ")?;
        for (i, r) in self.corners.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "w>={} -> {}", r.w, r.h)?;
        }
        Ok(())
    }
}

impl From<RList> for ShapeFunction {
    fn from(corners: RList) -> Self {
        ShapeFunction::from_corners(corners)
    }
}

impl From<ShapeFunction> for RList {
    fn from(f: ShapeFunction) -> Self {
        f.into_corners()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::Rect;
    use proptest::prelude::*;

    fn sf(pairs: &[(u64, u64)]) -> ShapeFunction {
        ShapeFunction::from_corners(RList::from_candidates(
            pairs.iter().map(|&(w, h)| Rect::new(w, h)).collect(),
        ))
    }

    #[test]
    fn evaluation_is_stepwise() {
        let f = sf(&[(10, 1), (7, 2), (4, 5)]);
        assert_eq!(f.height_at(11), Some(1));
        assert_eq!(f.height_at(10), Some(1));
        assert_eq!(f.height_at(9), Some(2));
        assert_eq!(f.height_at(4), Some(5));
        assert_eq!(f.height_at(3), None);
        assert_eq!(f.min_width(), Some(4));
        assert_eq!(f.max_corner_width(), Some(10));
    }

    #[test]
    fn stack_is_pointwise_addition() {
        let f = sf(&[(10, 1), (4, 5)]);
        let g = sf(&[(8, 2), (3, 6)]);
        let s = f.stack(&g);
        for w in 1..=14 {
            let expected = match (f.height_at(w), g.height_at(w)) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
            assert_eq!(s.height_at(w), expected, "w = {w}");
        }
    }

    #[test]
    fn beside_optimizes_the_split() {
        let f = sf(&[(4, 2)]);
        let g = sf(&[(3, 3), (1, 8)]);
        let b = f.beside(&g);
        // Width 7 fits 4+3: max(2, 3) = 3.
        assert_eq!(b.height_at(7), Some(3));
        // Width 5 fits only 4+1: max(2, 8) = 8.
        assert_eq!(b.height_at(5), Some(8));
        assert_eq!(b.height_at(4), None);
    }

    #[test]
    fn display_and_conversions() {
        let f = sf(&[(5, 1), (2, 4)]);
        assert_eq!(f.to_string(), "h: w>=5 -> 1, w>=2 -> 4");
        let list: RList = f.clone().into();
        assert_eq!(ShapeFunction::from(list), f);
        assert!(ShapeFunction::default().is_empty());
    }

    fn arb_sf() -> impl Strategy<Value = ShapeFunction> {
        proptest::collection::vec((1u64..25, 1u64..25), 1..10).prop_map(|pairs| {
            ShapeFunction::from_corners(RList::from_candidates(
                pairs.into_iter().map(|(w, h)| Rect::new(w, h)).collect(),
            ))
        })
    }

    proptest! {
        /// The functional law of stacking, checked pointwise against the
        /// Stockmeyer corner merge.
        #[test]
        fn stack_law(f in arb_sf(), g in arb_sf()) {
            let s = f.stack(&g);
            for w in 0..=55u64 {
                let expected = match (f.height_at(w), g.height_at(w)) {
                    (Some(a), Some(b)) => Some(a + b),
                    _ => None,
                };
                prop_assert_eq!(s.height_at(w), expected, "w = {}", w);
            }
        }

        /// The functional law of beside-placement: the optimal width split.
        #[test]
        fn beside_law(f in arb_sf(), g in arb_sf()) {
            let b = f.beside(&g);
            for w in 0..=55u64 {
                let mut expected: Option<u64> = None;
                for w1 in 1..w {
                    if let (Some(a), Some(c)) = (f.height_at(w1), g.height_at(w - w1)) {
                        let m = a.max(c);
                        expected = Some(expected.map_or(m, |e| e.min(m)));
                    }
                }
                prop_assert_eq!(b.height_at(w), expected, "w = {}", w);
            }
        }

        /// Transposition swaps the axes: beside = transpose of stacked
        /// transposes.
        #[test]
        fn beside_stack_duality(f in arb_sf(), g in arb_sf()) {
            let lhs = f.beside(&g);
            let rhs = f.transposed().stack(&g.transposed()).transposed();
            prop_assert_eq!(lhs.corners().as_slice(), rhs.corners().as_slice());
        }

        /// union_min is the pointwise minimum.
        #[test]
        fn union_law(f in arb_sf(), g in arb_sf()) {
            let u = f.union_min(&g);
            for w in 0..=55u64 {
                let expected = match (f.height_at(w), g.height_at(w)) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (Some(a), None) | (None, Some(a)) => Some(a),
                    (None, None) => None,
                };
                prop_assert_eq!(u.height_at(w), expected, "w = {}", w);
            }
        }

        /// Stacking is associative and commutative (as functions).
        #[test]
        fn stack_algebra(f in arb_sf(), g in arb_sf(), h in arb_sf()) {
            let ab = f.stack(&g);
            let ba = g.stack(&f);
            prop_assert_eq!(ab.corners().as_slice(), ba.corners().as_slice());
            let left = f.stack(&g).stack(&h);
            let right = f.stack(&g.stack(&h));
            prop_assert_eq!(left.corners().as_slice(), right.corners().as_slice());
        }
    }
}
