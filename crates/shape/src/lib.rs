//! Irreducible shape lists for floorplan area optimization.
//!
//! Bottom-up floorplan area optimizers characterize every sub-floorplan by
//! its set of *non-redundant* implementations (paper Definitions 1–5):
//!
//! * rectangular blocks → an irreducible [`RList`] (a Pareto staircase of
//!   `(w, h)` pairs, width decreasing / height increasing);
//! * L-shaped blocks → an [`LListSet`], a partition of the non-redundant
//!   `(w1, w2, h1, h2)` 4-tuples into irreducible [`LList`] chains sharing a
//!   common `w2` with `w1` decreasing and `h1`, `h2` increasing;
//! * bounded-staircase blocks → an [`SListSet`], stratified by tooth count
//!   so rectangles and L-shapes keep their specialized kernels while deeper
//!   staircases form irreducible [`SList`] chains with the same monotone
//!   structure.
//!
//! The crate also provides the dominance-pruning kernels ([`prune`]) used to
//! build these lists from raw candidate sets, the classic Stockmeyer merge
//! for slicing combinations ([`combine`]), and staircase-area utilities
//! ([`staircase`]) used to validate selection errors geometrically.
//!
//! # Example
//!
//! ```
//! use fp_geom::Rect;
//! use fp_shape::RList;
//!
//! let list = RList::from_candidates(vec![
//!     Rect::new(8, 2),
//!     Rect::new(4, 4),
//!     Rect::new(2, 8),
//!     Rect::new(9, 9), // dominated: redundant
//! ]);
//! assert_eq!(list.len(), 3);
//! assert_eq!(list.min_area().map(|r| r.area()), Some(16));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combine;
pub mod legacy;
mod llist;
pub mod prune;
mod rlist;
pub mod scratch;
mod shapefn;
mod slist;
pub mod staircase;

pub use llist::{chain_indices, ChainScratch, LList, LListSet};
pub use rlist::RList;
pub use scratch::JoinScratch;
pub use shapefn::ShapeFunction;
pub use slist::{SList, SListSet};
