//! Reusable scratch buffers for the join hot path.
//!
//! Every slice/wheel join allocates the same handful of temporaries:
//! rotated staircases for `Beside` merges, the lockstep candidate
//! vector, and the within-`w2` dominance front. A [`JoinScratch`] owns
//! one of each and is reused across joins, so a long bottom-up run
//! allocates these buffers once per worker instead of once per join.
//! The tree-level scheduler in `fp-optimizer` hands one arena to each
//! worker thread; the serial path owns a single one.
//!
//! Reuse never changes results — the buffers are cleared (not read) at
//! the start of every operation that uses them.

use fp_geom::{LShape, Rect};

use crate::combine::CombinedRect;

/// Per-worker scratch arena for join kernels.
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::combine::{combine_with_provenance_scratch, Compose};
/// use fp_shape::{JoinScratch, RList};
///
/// let a = RList::from_candidates(vec![Rect::new(4, 2), Rect::new(2, 3)]);
/// let b = RList::from_candidates(vec![Rect::new(3, 3), Rect::new(1, 5)]);
/// let mut scratch = JoinScratch::new();
/// let first = combine_with_provenance_scratch(&a, &b, Compose::Beside, &mut scratch).len();
/// // The second call reuses the buffers the first one grew.
/// let second = combine_with_provenance_scratch(&a, &b, Compose::Beside, &mut scratch).len();
/// assert_eq!(first, second);
/// ```
#[derive(Default)]
pub struct JoinScratch {
    /// Rotated/reversed copy of the left child (Beside merges).
    pub(crate) rects_a: Vec<Rect>,
    /// Rotated/reversed copy of the right child (Beside merges).
    pub(crate) rects_b: Vec<Rect>,
    /// Lockstep candidates, pruned in place to the irreducible result.
    pub(crate) combined: Vec<CombinedRect>,
    /// Staircase front for the within-`w2` L-shape prune
    /// ([`crate::prune::pareto_min_lshapes_within_w2_scratch`]).
    pub front: Vec<(u64, u64)>,
    /// Zipped `(shape, provenance)` pairs for the cross-chain L-block
    /// prune in `fp-optimizer`, reused so wheel joins stop paying a
    /// fresh `collect` allocation per block.
    pub lprune: Vec<(LShape, (u32, u32))>,
    /// Struct-of-arrays dominance front for the fused cross-`w2` prune
    /// ([`crate::prune::pareto_min_lshapes_grouped_scratch`]).
    pub lfront: crate::prune::LFront,
    /// Flat chain-decomposition arena for re-chaining prune survivors
    /// ([`crate::ChainScratch`]).
    pub chain: crate::ChainScratch,
    /// CSPP arenas for the R/L selection kernels (`fp-select` threads
    /// these through `RReductionPolicy::apply_scratch` and
    /// `LReductionPolicy::apply_scratch`), so a warmed join worker runs
    /// selections allocation-free too.
    pub cspp: fp_cspp::SelectScratch,
}

impl JoinScratch {
    /// An empty arena; buffers grow to the working-set high-water mark
    /// on first use and stay allocated.
    #[must_use]
    pub fn new() -> Self {
        JoinScratch::default()
    }
}
