//! Irreducible staircase lists: the bounded-staircase generalization of
//! [`LList`]/[`LListSet`] (ROADMAP item 5).
//!
//! A [`Staircase`] with `t` teeth has a `2t`-coordinate profile
//! `(w_1..w_t, h_1..h_t)`; along an irreducible staircase list every
//! width coordinate is non-increasing and every height coordinate
//! non-decreasing, with no two items equal and neither dominating the
//! other. That is exactly the monotone structure the DAC'92 selection
//! machinery needs: along such a chain the `L₁` profile distance is
//! *additive* (`dist(s_i, s_k) = dist(s_i, s_j) + dist(s_j, s_k)` for
//! `i <= j <= k`), so Lemma 2 (distances grow with separation) and
//! Lemma 3 (nearest kept implementation is a selection neighbour) hold
//! verbatim and the flat CSPP kernel applies unchanged.
//!
//! [`SListSet`] routes candidates by tooth count so the existing kernels
//! do the pruning: one-tooth staircases are rectangles (the [`RList`]
//! staircase-front kernel), two-tooth staircases are L-shapes (the SoA
//! [`crate::prune`] kernel + chain decomposition), and only genuinely
//! deeper staircases take the generic chain path. A pure-rect/L library
//! therefore produces byte-identical fronts whether it enters as shapes
//! or as staircases — pinned by the equivalence tests.

use core::fmt;
use core::ops::Index;

use fp_geom::{Area, Rect, Staircase};

use crate::{LListSet, RList};

/// An irreducible staircase list: a chain of equal-arity non-redundant
/// staircase implementations, widths componentwise non-increasing and
/// heights componentwise non-decreasing along the chain, each step
/// strictly changing at least one width *and* one height (which is what
/// rules out dominance inside the chain).
///
/// # Example
///
/// ```
/// use fp_geom::Staircase;
/// use fp_shape::SList;
///
/// let list = SList::from_sorted(vec![
///     Staircase::new_canonical(vec![(12, 2), (9, 4), (5, 6)]),
///     Staircase::new_canonical(vec![(11, 3), (8, 5), (4, 8)]),
///     Staircase::new_canonical(vec![(10, 4), (7, 6), (3, 9)]),
/// ]).expect("a valid chain");
/// assert_eq!(list.arity(), Some(3));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SList {
    items: Vec<Staircase>,
}

/// `true` if `a` may immediately precede `b` in an irreducible staircase
/// list: same arity, widths non-increasing, heights non-decreasing, at
/// least one width strictly falling and one height strictly rising.
fn chain_step_ok(a: &Staircase, b: &Staircase) -> bool {
    if a.teeth() != b.teeth() {
        return false;
    }
    let mut w_strict = false;
    let mut h_strict = false;
    for (&(aw, ah), &(bw, bh)) in a.corners().iter().zip(b.corners()) {
        if aw < bw || ah > bh {
            return false;
        }
        w_strict |= aw > bw;
        h_strict |= ah < bh;
    }
    w_strict && h_strict
}

impl SList {
    /// An empty staircase list.
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        SList { items: Vec::new() }
    }

    /// Wraps a vector that is already an irreducible staircase list.
    ///
    /// # Errors
    ///
    /// Returns the vector back unless every consecutive pair satisfies
    /// the chain step (equal arity, widths componentwise non-increasing,
    /// heights componentwise non-decreasing, at least one strict change
    /// on each side).
    pub fn from_sorted(items: Vec<Staircase>) -> Result<Self, Vec<Staircase>> {
        if items.windows(2).all(|w| chain_step_ok(&w[0], &w[1])) {
            Ok(SList { items })
        } else {
            Err(items)
        }
    }

    /// Number of implementations in the list.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the list is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The common tooth count, if the list is non-empty.
    #[inline]
    #[must_use]
    pub fn arity(&self) -> Option<usize> {
        self.items.first().map(Staircase::teeth)
    }

    /// The implementations in chain order (widths descending).
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[Staircase] {
        &self.items
    }

    /// Borrowing iterator over the implementations in chain order.
    #[inline]
    pub fn iter(&self) -> core::slice::Iter<'_, Staircase> {
        self.items.iter()
    }

    /// Consumes the list, returning the underlying vector.
    #[inline]
    #[must_use]
    pub fn into_vec(self) -> Vec<Staircase> {
        self.items
    }

    /// The implementation at `index`, if in range.
    #[inline]
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&Staircase> {
        self.items.get(index)
    }

    /// The minimum-area implementation in this list.
    #[must_use]
    pub fn min_area(&self) -> Option<&Staircase> {
        self.items.iter().min_by(|a, b| {
            a.area()
                .cmp(&b.area())
                .then_with(|| a.corners().cmp(b.corners()))
        })
    }

    /// Keeps only the implementations at the given **sorted** positions;
    /// any subsequence of a chain is still an irreducible staircase list.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is not strictly increasing or contains an
    /// out-of-range index.
    #[must_use]
    pub fn subset(&self, positions: &[usize]) -> SList {
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be strictly increasing"
        );
        let items = positions.iter().map(|&i| self.items[i].clone()).collect();
        SList { items }
    }
}

impl fmt::Debug for SList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(&self.items).finish()
    }
}

impl Index<usize> for SList {
    type Output = Staircase;

    fn index(&self, index: usize) -> &Staircase {
        &self.items[index]
    }
}

impl<'a> IntoIterator for &'a SList {
    type Item = &'a Staircase;
    type IntoIter = core::slice::Iter<'a, Staircase>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl IntoIterator for SList {
    type Item = Staircase;
    type IntoIter = std::vec::IntoIter<Staircase>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// The complete non-redundant implementation set of a bounded-staircase
/// block, stratified by tooth count so each stratum is pruned by the
/// kernel specialized for it:
///
/// * one tooth → rectangles, pruned into an irreducible [`RList`];
/// * two teeth → L-shapes, pruned by the SoA kernel into an [`LListSet`];
/// * three or more teeth → per-arity generic dominance prune plus greedy
///   chain decomposition into irreducible [`SList`]s.
///
/// Strata are irreducible independently (the paper's machinery never
/// cross-prunes representation kinds either), which is exactly what
/// keeps pure-rect/L content byte-identical to the legacy path.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SListSet {
    rects: RList,
    lshapes: LListSet,
    stairs: Vec<SList>,
}

impl SListSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        SListSet::default()
    }

    /// Builds the set from arbitrary staircase candidates: routes by
    /// tooth count, prunes each stratum with its specialized kernel, and
    /// decomposes deep staircases into irreducible chains.
    #[must_use]
    pub fn from_candidates(candidates: Vec<Staircase>) -> Self {
        let mut rects: Vec<Rect> = Vec::new();
        let mut lshapes = Vec::new();
        let mut deep: Vec<Staircase> = Vec::new();
        for s in candidates {
            match s.teeth() {
                1 => rects.push(s.as_rect().expect("one tooth")),
                2 => lshapes.push(s.as_lshape().expect("two teeth")),
                _ => deep.push(s),
            }
        }
        SListSet {
            rects: RList::from_candidates(rects),
            lshapes: LListSet::from_candidates(lshapes),
            stairs: decompose_deep(deep),
        }
    }

    /// The rectangle stratum (one-tooth staircases).
    #[inline]
    #[must_use]
    pub fn rects(&self) -> &RList {
        &self.rects
    }

    /// The L-shape stratum (two-tooth staircases).
    #[inline]
    #[must_use]
    pub fn lshapes(&self) -> &LListSet {
        &self.lshapes
    }

    /// The deep-staircase stratum (three or more teeth), as irreducible
    /// chains.
    #[inline]
    #[must_use]
    pub fn stairs(&self) -> &[SList] {
        &self.stairs
    }

    /// Total number of implementations across all strata.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.rects.len()
            + self.lshapes.total_len()
            + self.stairs.iter().map(SList::len).sum::<usize>()
    }

    /// `true` if the block has no implementation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty() && self.lshapes.is_empty() && self.stairs.is_empty()
    }

    /// Iterator over every implementation, as canonical staircases.
    pub fn iter(&self) -> impl Iterator<Item = Staircase> + '_ {
        self.rects
            .iter()
            .map(|r| Staircase::from_rect(*r))
            .chain(self.lshapes.iter().map(|l| Staircase::from_lshape(*l)))
            .chain(self.stairs.iter().flat_map(|c| c.iter().cloned()))
    }

    /// The minimum area value across all strata.
    #[must_use]
    pub fn min_area_value(&self) -> Option<Area> {
        self.iter().map(|s| s.area()).min()
    }
}

/// Per-arity dominance prune + greedy first-fit chain decomposition for
/// deep (three-plus-tooth) staircases. Any partition into irreducible
/// chains is acceptable, mirroring [`crate::chain_indices`].
fn decompose_deep(mut deep: Vec<Staircase>) -> Vec<SList> {
    // Canonical processing order: arity, then widths descending, then
    // heights ascending — the staircase analogue of prune output order.
    deep.sort_by(|a, b| {
        a.teeth()
            .cmp(&b.teeth())
            .then_with(|| {
                let aw = a.corners().iter().map(|c| core::cmp::Reverse(c.0));
                let bw = b.corners().iter().map(|c| core::cmp::Reverse(c.0));
                aw.cmp(bw)
            })
            .then_with(|| a.corners().cmp(b.corners()))
    });
    deep.dedup();
    // Dominance prune within each arity group: an implementation that
    // geometrically contains another is redundant (anything realizable
    // with it is realizable with the smaller one), matching the
    // minimal-keeping convention of the rect and L kernels.
    let mut kept: Vec<Staircase> = Vec::with_capacity(deep.len());
    for s in deep {
        if kept
            .iter()
            .any(|k| k.teeth() == s.teeth() && s.dominates(k))
        {
            continue;
        }
        kept.retain(|k| !(k.teeth() == s.teeth() && k.dominates(&s)));
        kept.push(s);
    }
    // Greedy first-fit: append to the first chain whose tail precedes it.
    let mut chains: Vec<SList> = Vec::new();
    for s in kept {
        match chains
            .iter_mut()
            .find(|c| c.items.last().is_some_and(|tail| chain_step_ok(tail, &s)))
        {
            Some(chain) => chain.items.push(s),
            None => chains.push(SList { items: vec![s] }),
        }
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::LShape;
    use proptest::prelude::*;

    fn stair(corners: &[(u64, u64)]) -> Staircase {
        Staircase::new_canonical(corners.to_vec())
    }

    #[test]
    fn from_sorted_validates_chain_invariants() {
        let a = stair(&[(12, 2), (9, 4), (5, 6)]);
        let b = stair(&[(11, 3), (8, 5), (4, 8)]);
        assert!(SList::from_sorted(vec![a.clone(), b.clone()]).is_ok());
        // Reversed order: widths grow.
        assert!(SList::from_sorted(vec![b.clone(), a.clone()]).is_err());
        // Mixed arity.
        assert!(SList::from_sorted(vec![a.clone(), stair(&[(8, 5)])]).is_err());
        // Dominated pair: widths fall but no height rises.
        assert!(SList::from_sorted(vec![a.clone(), stair(&[(11, 2), (8, 4), (4, 6)])]).is_err());
        assert!(SList::from_sorted(vec![]).is_ok());
        assert!(SList::from_sorted(vec![a]).is_ok());
    }

    #[test]
    fn subset_preserves_chain() {
        let list = SList::from_sorted(vec![
            stair(&[(12, 2), (9, 4), (5, 6)]),
            stair(&[(11, 3), (8, 5), (4, 8)]),
            stair(&[(10, 4), (7, 6), (3, 9)]),
        ])
        .unwrap();
        let sub = list.subset(&[0, 2]);
        assert!(SList::from_sorted(sub.clone().into_vec()).is_ok());
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[1], stair(&[(10, 4), (7, 6), (3, 9)]));
    }

    #[test]
    fn set_routes_by_arity() {
        let set = SListSet::from_candidates(vec![
            stair(&[(8, 2)]),                  // rect
            stair(&[(2, 8)]),                  // rect
            stair(&[(9, 3), (3, 9)]),          // L
            stair(&[(12, 2), (9, 4), (5, 6)]), // deep
            stair(&[(20, 20)]),                // rect, dominates 8x2: pruned
        ]);
        assert_eq!(set.rects().len(), 2);
        assert_eq!(set.lshapes().total_len(), 1);
        assert_eq!(set.stairs().len(), 1);
        assert_eq!(set.total_len(), 4);
        assert!(!set.is_empty());
        // min area: 8x2 rect = 16 vs others larger.
        assert_eq!(set.min_area_value(), Some(16));
    }

    #[test]
    fn pure_rect_candidates_match_rlist_kernel() {
        // Byte-identity routing: staircases of one tooth produce exactly
        // the RList the rect kernel produces.
        let rects = vec![
            Rect::new(8, 2),
            Rect::new(4, 4),
            Rect::new(2, 8),
            Rect::new(9, 9),
        ];
        let set =
            SListSet::from_candidates(rects.iter().map(|&r| Staircase::from_rect(r)).collect());
        assert_eq!(set.rects(), &RList::from_candidates(rects));
        assert!(set.lshapes().is_empty());
        assert!(set.stairs().is_empty());
    }

    #[test]
    fn pure_l_candidates_match_llist_kernel() {
        let ls = vec![
            LShape::new_canonical(9, 3, 2, 1),
            LShape::new_canonical(7, 3, 4, 2),
            LShape::new_canonical(9, 2, 3, 1),
            LShape::new_canonical(10, 3, 2, 1),
        ];
        let set =
            SListSet::from_candidates(ls.iter().map(|&l| Staircase::from_lshape(l)).collect());
        assert_eq!(set.lshapes(), &LListSet::from_candidates(ls));
        assert!(set.rects().is_empty());
        assert!(set.stairs().is_empty());
    }

    #[test]
    fn deep_prune_drops_dominated() {
        let big = stair(&[(12, 2), (9, 4), (5, 6)]);
        let small = stair(&[(11, 2), (8, 4), (4, 6)]); // contained in big
        let set = SListSet::from_candidates(vec![small.clone(), big]);
        let all: Vec<Staircase> = set.iter().collect();
        // The containing (bigger) implementation is the redundant one.
        assert_eq!(all, vec![small]);
    }

    fn arb_deep() -> impl Strategy<Value = Vec<Staircase>> {
        proptest::collection::vec(proptest::collection::vec((1u64..20, 1u64..20), 3..6), 0..20)
            .prop_map(|raw| {
                raw.into_iter()
                    .map(|corners| Staircase::from_corners(corners).expect("within cap"))
                    .collect()
            })
    }

    proptest! {
        /// Every chain the decomposition emits is a valid irreducible
        /// staircase list, and no kept item dominates another of its arity.
        #[test]
        fn decomposition_is_valid(items in arb_deep()) {
            let set = SListSet::from_candidates(items);
            for chain in set.stairs() {
                prop_assert!(SList::from_sorted(chain.as_slice().to_vec()).is_ok());
            }
            // Geometric-containment freedom holds within the deep stratum
            // (the rect/L strata keep the paper's componentwise dominance,
            // which is deliberately weaker than containment).
            let deep: Vec<&Staircase> =
                set.stairs().iter().flat_map(SList::iter).collect();
            for (i, a) in deep.iter().enumerate() {
                for (j, b) in deep.iter().enumerate() {
                    if i != j && a.teeth() == b.teeth() {
                        prop_assert!(!a.dominates(b) || a == b,
                            "{a} dominates {b}");
                    }
                }
            }
        }
    }
}
