//! Staircase-curve geometry (paper §4.2, Figures 5 and 6).
//!
//! An irreducible R-list `R = {r_1, …, r_n}` corresponds to a staircase
//! curve `C_R` whose corners are exactly the implementations: any point on
//! or above the curve is a feasible implementation of the block, and only
//! the corners are non-redundant. Selecting a subset `R' ⊆ R` discards the
//! feasible region between `C_R` and `C_R'`; the bounded area between the
//! curves is the selection error `ERROR(R, R')`.
//!
//! This module computes curve heights and the bounded area *geometrically*
//! (by direct integration over the step intervals). The `fp-select` crate
//! computes the same quantity via the paper's `Compute_R_Error` recurrence;
//! the two serve as independent cross-checks.

use fp_geom::{area, Area, Coord};

use crate::RList;

/// The height of the staircase curve of `list` at abscissa `x`: the minimum
/// height of any implementation with width at most `x`; `None` left of the
/// narrowest implementation (the curve is vertical there).
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::{staircase, RList};
///
/// let r = RList::from_candidates(vec![Rect::new(6, 1), Rect::new(3, 4)]);
/// assert_eq!(staircase::height_at(&r, 7), Some(1));
/// assert_eq!(staircase::height_at(&r, 5), Some(4));
/// assert_eq!(staircase::height_at(&r, 2), None);
/// ```
#[must_use]
pub fn height_at(list: &RList, x: Coord) -> Option<Coord> {
    list.min_height_fitting_width(x).map(|r| r.h)
}

/// The bounded area between the staircase of `full` and the staircase of
/// the subset of `full` at the given **strictly increasing** positions
/// (paper Figure 6): the feasible region discarded by the selection.
///
/// The subset must retain the first and the last implementation (as
/// `R_Selection` always does) so that the curves coincide outside the
/// bounded region.
///
/// # Panics
///
/// Panics if `positions` is empty, not strictly increasing, out of range,
/// or does not include both endpoints `0` and `full.len() - 1`.
#[must_use]
pub fn area_between(full: &RList, positions: &[usize]) -> Area {
    assert!(!positions.is_empty(), "subset must be non-empty");
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "positions must be strictly increasing"
    );
    assert_eq!(
        *positions.first().expect("non-empty"),
        0,
        "subset must keep the first corner"
    );
    assert_eq!(
        *positions.last().expect("non-empty"),
        full.len() - 1,
        "subset must keep the last corner"
    );

    // Integrate (subset height - full height) over x between consecutive
    // kept corners. Within [w_{d_{q+1}}, w_{d_q}] the subset curve is flat at
    // h_{d_{q+1}} … wait: for x in that interval the narrowest kept
    // implementation with width <= x is r_{d_q} only when x >= w_{d_q}; for
    // x just below w_{d_q} the best kept is r_{d_{q+1}} (narrower, taller).
    // So on [w_{d_{q+1}}, w_{d_q}) the subset curve is flat at h_{d_{q+1}},
    // while the full curve steps at every discarded corner.
    let mut total: Area = 0;
    for win in positions.windows(2) {
        let (dq, dq1) = (win[0], win[1]);
        let kept_h = full[dq1].h;
        // Full curve steps: on [w_{i+1}, w_i) the full curve is at h_{i+1}.
        for i in dq..dq1 {
            let x_hi = full[i].w;
            let x_lo = full[i + 1].w;
            let full_h = full[i + 1].h;
            debug_assert!(kept_h >= full_h);
            total += area(x_hi - x_lo, kept_h - full_h);
        }
    }
    total
}

/// The area under the staircase of `list` between its narrowest and widest
/// corners, measured down to `y = 0`. Mostly useful as a test oracle:
/// `area_between(full, sel) == area_under(subset) - area_under(full)` for
/// any endpoint-preserving selection.
#[must_use]
pub fn area_under(list: &RList) -> Area {
    let mut total: Area = 0;
    let items = list.as_slice();
    for win in items.windows(2) {
        // On [w_{i+1}, w_i) the curve height is h_{i+1}.
        total += area(win[0].w - win[1].w, win[1].h);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::Rect;
    use proptest::prelude::*;

    fn rl(pairs: &[(u64, u64)]) -> RList {
        RList::from_candidates(pairs.iter().map(|&(w, h)| Rect::new(w, h)).collect())
    }

    #[test]
    fn height_at_steps() {
        let r = rl(&[(10, 1), (7, 2), (5, 4), (2, 9)]);
        assert_eq!(height_at(&r, 12), Some(1));
        assert_eq!(height_at(&r, 10), Some(1));
        assert_eq!(height_at(&r, 9), Some(2));
        assert_eq!(height_at(&r, 7), Some(2));
        assert_eq!(height_at(&r, 6), Some(4));
        assert_eq!(height_at(&r, 2), Some(9));
        assert_eq!(height_at(&r, 1), None);
    }

    #[test]
    fn keeping_everything_has_zero_error() {
        let r = rl(&[(10, 1), (7, 2), (5, 4), (2, 9)]);
        assert_eq!(area_between(&r, &[0, 1, 2, 3]), 0);
    }

    #[test]
    fn figure6_style_single_gap() {
        // Drop the middle corner of three: the error rectangle spans from
        // the dropped corner's width step.
        let r = rl(&[(10, 1), (6, 3), (2, 9)]);
        // Keep {0, 2}: on [2,10) subset height is 9... wait subset curve on
        // [2, 10): narrowest kept with w <= x is (2,9) until x >= 10.
        // Full curve: [2,6) -> 9, [6,10) -> 3.
        // Difference on [6,10): 9 - 3 = 6 over width 4 => 24.
        assert_eq!(area_between(&r, &[0, 2]), 24);
    }

    #[test]
    fn two_gaps_sum() {
        let r = rl(&[(10, 1), (8, 2), (6, 3), (4, 5), (2, 9)]);
        let full = area_between(&r, &[0, 1, 2, 3, 4]);
        assert_eq!(full, 0);
        let e1 = area_between(&r, &[0, 2, 3, 4]); // drop r_1
        let e2 = area_between(&r, &[0, 1, 2, 4]); // drop r_3
        let both = area_between(&r, &[0, 2, 4]);
        assert_eq!(both, e1 + e2); // independent gaps are additive
    }

    #[test]
    #[should_panic(expected = "first corner")]
    fn must_keep_first() {
        let r = rl(&[(10, 1), (6, 3), (2, 9)]);
        let _ = area_between(&r, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "last corner")]
    fn must_keep_last() {
        let r = rl(&[(10, 1), (6, 3), (2, 9)]);
        let _ = area_between(&r, &[0, 1]);
    }

    fn arb_list_and_subset() -> impl Strategy<Value = (RList, Vec<usize>)> {
        proptest::collection::vec((1u64..60, 1u64..60), 2..25)
            .prop_map(|pairs| rl(&pairs.iter().map(|&(w, h)| (w, h)).collect::<Vec<_>>()))
            .prop_filter("need >= 2 corners", |r| r.len() >= 2)
            .prop_flat_map(|r| {
                let n = r.len();
                (Just(r), proptest::collection::vec(proptest::bool::ANY, n))
            })
            .prop_map(|(r, mask)| {
                let n = r.len();
                let mut pos: Vec<usize> = (0..n)
                    .filter(|&i| i == 0 || i == n - 1 || mask[i])
                    .collect();
                pos.dedup();
                (r, pos)
            })
    }

    proptest! {
        /// The bounded area equals the difference of the areas under the
        /// two curves (independent integration oracle).
        #[test]
        fn area_between_matches_area_under_difference((r, pos) in arb_list_and_subset()) {
            let subset = r.subset(&pos);
            let expected = area_under(&subset) - area_under(&r);
            prop_assert_eq!(area_between(&r, &pos), expected);
        }

        /// Dropping more corners can only increase the error.
        #[test]
        fn error_is_monotone_in_dropping((r, pos) in arb_list_and_subset()) {
            if pos.len() > 2 {
                let mut fewer = pos.clone();
                fewer.remove(1 + (r.len() % (pos.len() - 2)));
                prop_assert!(area_between(&r, &fewer) >= area_between(&r, &pos));
            }
        }
    }
}
