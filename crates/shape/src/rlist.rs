//! Irreducible R-lists (paper Definitions 4 and 5).

use core::fmt;
use core::ops::Index;

use fp_geom::{Area, Coord, Rect};

use crate::prune::pareto_min_rects;

/// An irreducible R-list: the non-redundant implementations of a
/// rectangular block, stored as a staircase with widths strictly decreasing
/// and heights strictly increasing (paper Definitions 4–5).
///
/// `RList` is the central currency of bottom-up floorplan area optimization:
/// leaves start with the module's implementations, slicing combinations
/// merge two R-lists into one, and the DAC'92 `R_Selection` algorithm
/// reduces an R-list to its best `k`-element approximation.
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::RList;
///
/// let list = RList::from_candidates(vec![
///     Rect::new(2, 8), Rect::new(8, 2), Rect::new(4, 4), Rect::new(5, 5),
/// ]);
/// assert_eq!(list.as_slice(), &[Rect::new(8, 2), Rect::new(4, 4), Rect::new(2, 8)]);
/// assert_eq!(list.min_area_value(), Some(16));
/// assert_eq!(list.min_height_fitting_width(5), Some(Rect::new(4, 4)));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RList {
    items: Vec<Rect>,
}

impl RList {
    /// An empty R-list (a block with no feasible implementation).
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        RList { items: Vec::new() }
    }

    /// Builds an irreducible R-list from arbitrary candidates: redundant
    /// implementations and duplicates are pruned, the rest sorted into
    /// staircase order.
    #[must_use]
    pub fn from_candidates(candidates: Vec<Rect>) -> Self {
        RList {
            items: pareto_min_rects(candidates),
        }
    }

    /// Wraps a vector that is already an irreducible R-list.
    ///
    /// # Errors
    ///
    /// Returns the vector back if it is not sorted with strictly decreasing
    /// widths and strictly increasing heights.
    pub fn from_sorted(items: Vec<Rect>) -> Result<Self, Vec<Rect>> {
        let ok = items.windows(2).all(|w| w[0].w > w[1].w && w[0].h < w[1].h);
        if ok {
            Ok(RList { items })
        } else {
            Err(items)
        }
    }

    /// Number of implementations.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the block has no implementation.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The implementations in staircase order (width descending).
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[Rect] {
        &self.items
    }

    /// Borrowing iterator over the implementations in staircase order.
    #[inline]
    pub fn iter(&self) -> core::slice::Iter<'_, Rect> {
        self.items.iter()
    }

    /// Consumes the list, returning the underlying vector.
    #[inline]
    #[must_use]
    pub fn into_vec(self) -> Vec<Rect> {
        self.items
    }

    /// The implementation at `index`, if in range.
    #[inline]
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Rect> {
        self.items.get(index).copied()
    }

    /// The widest (first) implementation.
    #[inline]
    #[must_use]
    pub fn widest(&self) -> Option<Rect> {
        self.items.first().copied()
    }

    /// The tallest (last) implementation.
    #[inline]
    #[must_use]
    pub fn tallest(&self) -> Option<Rect> {
        self.items.last().copied()
    }

    /// The minimum-area implementation (ties broken towards smaller width).
    #[must_use]
    pub fn min_area(&self) -> Option<Rect> {
        self.items.iter().copied().min_by_key(|r| (r.area(), r.w))
    }

    /// The minimum-area implementation's area, if any.
    #[must_use]
    pub fn min_area_value(&self) -> Option<Area> {
        self.min_area().map(|r| r.area())
    }

    /// The lowest implementation whose width is at most `w`, i.e. the best
    /// height achievable under a width constraint. `None` when even the
    /// narrowest implementation is wider than `w`.
    ///
    /// Because the list is a staircase this is a binary search.
    #[must_use]
    pub fn min_height_fitting_width(&self, w: Coord) -> Option<Rect> {
        // items sorted by w desc: find first index with items[i].w <= w.
        let idx = self.items.partition_point(|r| r.w > w);
        self.items.get(idx).copied()
    }

    /// The narrowest implementation whose height is at most `h`. `None`
    /// when even the flattest implementation is taller than `h`.
    #[must_use]
    pub fn min_width_fitting_height(&self, h: Coord) -> Option<Rect> {
        // items sorted by h asc: find last index with items[i].h <= h.
        let idx = self.items.partition_point(|r| r.h <= h);
        idx.checked_sub(1).and_then(|i| self.items.get(i).copied())
    }

    /// The list with width/height roles swapped (the block rotated 90°),
    /// still an irreducible R-list.
    #[must_use]
    pub fn transposed(&self) -> RList {
        let mut items: Vec<Rect> = self.items.iter().map(|r| r.rotated()).collect();
        items.reverse();
        RList { items }
    }

    /// Merges another irreducible R-list into this block's implementation
    /// set (e.g. free-orientation modules merge a list with its transpose),
    /// re-pruning redundant entries.
    #[must_use]
    pub fn union(&self, other: &RList) -> RList {
        let mut all = self.items.clone();
        all.extend_from_slice(&other.items);
        RList::from_candidates(all)
    }

    /// Keeps only the implementations at the given **sorted** positions.
    ///
    /// This is the primitive `R_Selection` uses to apply its optimal subset.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is not strictly increasing or contains an
    /// out-of-range index.
    #[must_use]
    pub fn subset(&self, positions: &[usize]) -> RList {
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be strictly increasing"
        );
        let items = positions.iter().map(|&i| self.items[i]).collect();
        RList { items }
    }
}

impl fmt::Debug for RList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(&self.items).finish()
    }
}

impl fmt::Display for RList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RList[")?;
        for (i, r) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for RList {
    type Output = Rect;

    fn index(&self, index: usize) -> &Rect {
        &self.items[index]
    }
}

impl<'a> IntoIterator for &'a RList {
    type Item = &'a Rect;
    type IntoIter = core::slice::Iter<'a, Rect>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl IntoIterator for RList {
    type Item = Rect;
    type IntoIter = std::vec::IntoIter<Rect>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl FromIterator<Rect> for RList {
    fn from_iter<T: IntoIterator<Item = Rect>>(iter: T) -> Self {
        RList::from_candidates(iter.into_iter().collect())
    }
}

impl Extend<Rect> for RList {
    fn extend<T: IntoIterator<Item = Rect>>(&mut self, iter: T) {
        let mut all = std::mem::take(&mut self.items);
        all.extend(iter);
        self.items = pareto_min_rects(all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> RList {
        RList::from_candidates(vec![
            Rect::new(10, 1),
            Rect::new(7, 2),
            Rect::new(5, 4),
            Rect::new(3, 7),
            Rect::new(2, 11),
        ])
    }

    #[test]
    fn from_sorted_validates() {
        assert!(RList::from_sorted(vec![Rect::new(5, 1), Rect::new(3, 2)]).is_ok());
        assert!(RList::from_sorted(vec![Rect::new(3, 2), Rect::new(5, 1)]).is_err());
        assert!(RList::from_sorted(vec![Rect::new(5, 1), Rect::new(5, 2)]).is_err());
        assert!(RList::from_sorted(vec![]).is_ok());
    }

    #[test]
    fn endpoints_and_min_area() {
        let list = sample();
        assert_eq!(list.widest(), Some(Rect::new(10, 1)));
        assert_eq!(list.tallest(), Some(Rect::new(2, 11)));
        assert_eq!(list.min_area(), Some(Rect::new(10, 1)));
        assert_eq!(list.min_area_value(), Some(10));
        assert_eq!(RList::new().min_area(), None);
    }

    #[test]
    fn width_constrained_lookup() {
        let list = sample();
        assert_eq!(list.min_height_fitting_width(10), Some(Rect::new(10, 1)));
        assert_eq!(list.min_height_fitting_width(9), Some(Rect::new(7, 2)));
        assert_eq!(list.min_height_fitting_width(5), Some(Rect::new(5, 4)));
        assert_eq!(list.min_height_fitting_width(4), Some(Rect::new(3, 7)));
        assert_eq!(list.min_height_fitting_width(1), None);
    }

    #[test]
    fn height_constrained_lookup() {
        let list = sample();
        assert_eq!(list.min_width_fitting_height(1), Some(Rect::new(10, 1)));
        assert_eq!(list.min_width_fitting_height(4), Some(Rect::new(5, 4)));
        assert_eq!(list.min_width_fitting_height(6), Some(Rect::new(5, 4)));
        assert_eq!(list.min_width_fitting_height(11), Some(Rect::new(2, 11)));
        assert_eq!(list.min_width_fitting_height(0), None);
    }

    #[test]
    fn transpose_is_involutive() {
        let list = sample();
        assert_eq!(list.transposed().transposed(), list);
        assert!(RList::from_sorted(list.transposed().into_vec()).is_ok());
    }

    #[test]
    fn union_merges_and_prunes() {
        let a = RList::from_candidates(vec![Rect::new(4, 4)]);
        let b = RList::from_candidates(vec![Rect::new(5, 5), Rect::new(2, 6)]);
        let u = a.union(&b);
        assert_eq!(u.as_slice(), &[Rect::new(4, 4), Rect::new(2, 6)]);
    }

    #[test]
    fn subset_selects_positions() {
        let list = sample();
        let sub = list.subset(&[0, 2, 4]);
        assert_eq!(
            sub.as_slice(),
            &[Rect::new(10, 1), Rect::new(5, 4), Rect::new(2, 11)]
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn subset_rejects_unsorted_positions() {
        let _ = sample().subset(&[2, 0]);
    }

    #[test]
    fn collection_traits() {
        let list: RList = vec![Rect::new(3, 3), Rect::new(4, 4)].into_iter().collect();
        assert_eq!(list.len(), 1);
        let mut list = list;
        list.extend([Rect::new(1, 5), Rect::new(6, 1)]);
        assert_eq!(
            list.as_slice(),
            &[Rect::new(6, 1), Rect::new(3, 3), Rect::new(1, 5)]
        );
        let total: u128 = (&list).into_iter().map(|r| r.area()).sum();
        assert_eq!(total, 6 + 9 + 5);
        assert_eq!(list[0], Rect::new(6, 1));
        assert_eq!(list.to_string(), "RList[6x1, 3x3, 1x5]");
    }

    proptest! {
        #[test]
        fn constrained_lookups_match_linear_scan(
            raw in proptest::collection::vec((1u64..40, 1u64..40), 1..30),
            w_cap in 1u64..40,
            h_cap in 1u64..40,
        ) {
            let list = RList::from_candidates(raw.into_iter()
                .map(|(w, h)| Rect::new(w, h)).collect());
            let by_scan_w = list.iter().copied().filter(|r| r.w <= w_cap)
                .min_by_key(|r| r.h);
            prop_assert_eq!(list.min_height_fitting_width(w_cap), by_scan_w);
            let by_scan_h = list.iter().copied().filter(|r| r.h <= h_cap)
                .min_by_key(|r| r.w);
            prop_assert_eq!(list.min_width_fitting_height(h_cap), by_scan_h);
        }
    }
}
