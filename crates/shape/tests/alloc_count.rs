//! Allocation accounting for the scratch-arena combine path: once a
//! [`JoinScratch`] is warmed (its vectors have grown to the working-set
//! size), repeated combines must not touch the global allocator at all.
//! A counting `#[global_allocator]` makes that a hard assertion — but
//! only in debug builds and off the test harness's own threads' noise:
//! the counter is scoped to the measured section on one thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use fp_geom::Rect;
use fp_shape::combine::{combine_with_provenance, combine_with_provenance_scratch, Compose};
use fp_shape::{JoinScratch, RList};

/// Counts allocations while `ARMED` is set. Frees are always forwarded.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn rlist(seed: u64, n: u64) -> RList {
    let rects = (0..n)
        .map(|i| {
            let w = 2 + (seed.wrapping_mul(31).wrapping_add(i * 7)) % 40 + i * 3;
            let h = 2 + (seed.wrapping_mul(17).wrapping_add(i * 13)) % 40 + (n - i) * 3;
            Rect::new(w, h)
        })
        .collect();
    RList::from_candidates(rects)
}

/// Measures allocations during `f` on this thread's critical section.
/// Other test threads could inflate the count, so the harness must run
/// this binary single-threaded per test (Rust's default is one thread
/// per `#[test]`, and this file keeps the armed windows disjoint by
/// taking a lock).
fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    static WINDOW: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let guard = match WINDOW.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    let count = ALLOCATIONS.load(Ordering::SeqCst);
    drop(guard);
    (count, out)
}

/// A warmed scratch arena combines without allocating. Debug-only as an
/// assertion (release builds may inline differently), but the count is
/// printed either way so regressions show up in logs.
#[test]
fn warmed_scratch_combine_does_not_allocate() {
    let a = rlist(3, 24);
    let b = rlist(11, 20);
    let mut scratch = JoinScratch::new();

    // Warm-up: grow every scratch vector to the working-set size.
    for how in [Compose::Beside, Compose::Stack] {
        let _ = combine_with_provenance_scratch(&a, &b, how, &mut scratch);
    }

    let (count, total) = count_allocations(|| {
        let mut total = 0usize;
        for _ in 0..8 {
            for how in [Compose::Beside, Compose::Stack] {
                total += combine_with_provenance_scratch(&a, &b, how, &mut scratch).len();
            }
        }
        total
    });
    assert!(total > 0, "combines produced output");
    println!("warmed-scratch allocations over 16 combines: {count}");
    if cfg!(debug_assertions) {
        assert_eq!(count, 0, "warmed scratch arena must not allocate");
    }
}

/// A warmed CSPP arena solves selections — flat kernel, D&C kernel, and
/// the legacy `Dag` DP — without touching the allocator. This is the
/// gate for the selection hot path: `JoinScratch` now carries these
/// arenas (`JoinScratch::cspp`), so every warmed join worker inherits
/// the same guarantee.
#[test]
fn warmed_cspp_solvers_do_not_allocate() {
    use fp_cspp::{
        constrained_shortest_path_scratch, solve_selection, solve_selection_dense, CsppScratch, Dag,
    };

    let n = 48usize;
    // Convex span cost: certified Monge, so the auto path exercises the
    // divide-and-conquer kernel; the dense call pins the exhaustive one.
    let w = |i: usize, j: usize| ((j - i) * (j - i) + i) as u64;
    let g: Dag<u64> = Dag::complete(n, w);
    let mut scratch = CsppScratch::new();

    // Warm-up at the largest k each path will see.
    let _ = solve_selection(n, 8, w, &mut scratch).expect("solvable");
    let _ = solve_selection_dense(n, 8, w, &mut scratch).expect("solvable");
    let _ = constrained_shortest_path_scratch(&g, 0, n - 1, 8, &mut scratch).expect("solvable");

    let (count, total) = count_allocations(|| {
        let mut total = 0u64;
        for k in [4usize, 6, 8] {
            total += solve_selection(n, k, w, &mut scratch)
                .expect("solvable")
                .weight;
            total += solve_selection_dense(n, k, w, &mut scratch)
                .expect("solvable")
                .weight;
            total +=
                constrained_shortest_path_scratch(&g, 0, n - 1, k, &mut scratch).expect("solvable");
        }
        total
    });
    assert!(total > 0, "solves produced weights");
    println!("warmed-scratch allocations over 9 CSPP solves: {count}");
    if cfg!(debug_assertions) {
        assert_eq!(count, 0, "warmed CSPP arena must not allocate");
    }
}

/// The allocating path and the scratch path agree bit for bit, and the
/// scratch path allocates strictly less once warmed.
#[test]
fn scratch_combine_matches_allocating_combine() {
    let a = rlist(5, 16);
    let b = rlist(9, 18);
    let mut scratch = JoinScratch::new();
    for how in [Compose::Beside, Compose::Stack] {
        let plain = combine_with_provenance(&a, &b, how);
        let via_scratch = combine_with_provenance_scratch(&a, &b, how, &mut scratch).to_vec();
        assert_eq!(plain, via_scratch, "{how:?}: scratch path diverges");
    }

    let (plain_allocs, _) = count_allocations(|| combine_with_provenance(&a, &b, Compose::Beside));
    let (scratch_allocs, _) = count_allocations(|| {
        combine_with_provenance_scratch(&a, &b, Compose::Beside, &mut scratch).len()
    });
    println!("allocating path: {plain_allocs}, scratch path: {scratch_allocs}");
    if cfg!(debug_assertions) {
        assert!(
            scratch_allocs < plain_allocs.max(1),
            "scratch path must allocate less than the allocating path"
        );
    }
}
