//! `fpcompress` — compress the module shape lists of a floorplan instance
//! with `R_Selection`.
//!
//! ```sh
//! fpcompress design.fpt --k 8 -o compact.fpt
//! fpcompress design.fpt --max-error 50 -o compact.fpt
//! ```
//!
//! This is the paper's §6 "continuous shape curve" application in tool
//! form: module generators often emit densely sampled shape curves;
//! compressing each module's list to `k` points (or to an error budget)
//! before floorplanning bounds the optimizer's input size with an
//! *optimal* per-module approximation.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use fp_cspp::CsppScratch;
use fp_geom::Area;
use fp_memo::{Codec, Fingerprinter, PersistOptions, PersistentCache, Weigh, DEFAULT_SHARDS};
use fp_optimizer::{PhaseName, SolverKind, TraceEvent, Tracer};
use fp_select::curve::r_selection_within;
use fp_select::r_selection_scratch;
use fp_tree::fingerprint::module_fingerprint;
use fp_tree::format::{parse_instance, write_instance, FloorplanInstance};
use fp_tree::{Module, ModuleLibrary};

const USAGE: &str = "\
usage: fpcompress <design.fpt> (--k <count> | --max-error <area>) [options]

  --k <count>        keep at most <count> implementations per module
                     (optimal R_Selection; endpoints always survive)
  --max-error <a>    keep the smallest subset per module whose staircase
                     error is at most <a>
  --max-impls <n>    cap the *total* output implementation count; without
                     --auto-rescue, exceeding it is an error
  --auto-rescue      when --max-impls is exceeded, halve k (floor 2) until
                     the output fits
  --deadline <secs>  wall-clock deadline for the compression
  --threads <n>      run per-module selections on <n> worker threads
                     (0 = all cores; default $FP_THREADS or 1; output
                     is identical at any thread count)
  --cache-bytes <n>  memoize per-module selections (content-addressed);
                     libraries with repeated shape lists — and rescue
                     retries — compress each distinct list once
  --cache-file <dir> persist the selection cache to an append-only
                     segment store in <dir>: replayed on startup,
                     flushed on exit, so re-compressing overlapping
                     libraries skips already-solved modules. Implies
                     a cache (default --cache-bytes 16777216)
  --trace <path>     write the structured event stream (per-module
                     selections, cache traffic, phase spans) as JSON
                     lines to <path>
  -o <out.fpt>       output path (default: stdout)

exit codes:
  0 success   2 usage   3 bad input   4 over --max-impls   5 deadline
";

#[derive(Clone, Copy)]
enum Mode {
    FixedK(usize),
    MaxError(u128),
}

struct Compressed {
    library: ModuleLibrary,
    before: usize,
    after: usize,
    total_error: u128,
    cache_reused: usize,
}

/// A memoized per-module selection: the surviving positions and the
/// staircase error they incur. `None` positions means "selection
/// declined, keep the module unchanged".
#[derive(Clone)]
struct CachedSelection {
    positions: Option<Vec<usize>>,
    error: u128,
}

impl Weigh for CachedSelection {
    fn weight_bytes(&self) -> usize {
        self.positions.as_ref().map_or(0, |p| p.len()) * core::mem::size_of::<usize>()
            + core::mem::size_of::<u128>()
    }
}

type SelectionCache = PersistentCache<CachedSelection>;

/// Fixed salt for `--cache-file` stores. Selection keys already mix the
/// mode parameters and a format version tag, so the salt only isolates
/// fpcompress stores from other tools'.
const STORE_SALT: u128 = 0x6670_636f_6d70_7265_7373_2f73_746f_7265; // "fpcompress/store"

impl Codec for CachedSelection {
    fn encode(&self, out: &mut Vec<u8>) {
        match &self.positions {
            None => out.push(0),
            Some(positions) => {
                out.push(1);
                out.extend_from_slice(&(positions.len() as u32).to_le_bytes());
                for &p in positions {
                    out.extend_from_slice(&(p as u64).to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&self.error.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let (&tag, rest) = bytes.split_first()?;
        let (positions, rest) = match tag {
            0 => (None, rest),
            1 => {
                let len_bytes: [u8; 4] = rest.get(..4)?.try_into().ok()?;
                let len = u32::from_le_bytes(len_bytes) as usize;
                let rest = &rest[4..];
                // Exact-length check doubles as the allocation guard.
                if rest.len() != len.checked_mul(8)?.checked_add(16)? {
                    return None;
                }
                let mut positions = Vec::with_capacity(len);
                for chunk in rest[..len * 8].chunks_exact(8) {
                    let raw = u64::from_le_bytes(chunk.try_into().ok()?);
                    positions.push(usize::try_from(raw).ok()?);
                }
                (Some(positions), &rest[len * 8..])
            }
            _ => return None,
        };
        let error_bytes: [u8; 16] = rest.try_into().ok()?;
        Some(CachedSelection {
            positions,
            error: u128::from_le_bytes(error_bytes),
        })
    }
}

/// The content address of one module's selection problem: the module's
/// implementation list (name-independent) plus the mode's parameters.
fn selection_key(module: &Module, mode: Mode) -> u128 {
    let mut h = Fingerprinter::new();
    h.write_str("fpcompress/selection/v1");
    h.write_u128(module_fingerprint(module));
    match mode {
        Mode::FixedK(k) => {
            h.write_u64(1);
            h.write_usize(k);
        }
        Mode::MaxError(e) => {
            h.write_u64(2);
            h.write_u128(e);
        }
    }
    h.finish()
}

/// One module's selection, computed fresh. Parsed modules always have
/// non-empty lists; keep the module unchanged if selection ever
/// declines anyway. The fixed-k path routes through a caller-owned
/// arena so repeated selections reuse buffers (and so the arena's
/// solver-dispatch counters attribute each selection to a kernel).
fn compute_selection(
    module: &Module,
    mode: Mode,
    scratch: &mut CsppScratch<Area>,
) -> CachedSelection {
    let list = module.implementations();
    let fresh = match mode {
        Mode::FixedK(k) => r_selection_scratch(list, k, scratch),
        Mode::MaxError(e) => r_selection_within(list, e),
    };
    match fresh {
        Ok(s) => CachedSelection {
            positions: Some(s.positions),
            error: s.error,
        },
        Err(_) => CachedSelection {
            positions: None,
            error: 0,
        },
    }
}

/// [`compute_selection`] with a [`TraceEvent::Selection`] span emitted
/// per module. `--max-error` selections run outside the CSPP arena
/// (the error-budget sweep never builds the DAG) and are reported as a
/// single legacy solve.
fn compute_selection_traced(
    module: &Module,
    mode: Mode,
    scratch: &mut CsppScratch<Area>,
    node: u32,
    worker: u32,
    tracer: &Tracer,
) -> CachedSelection {
    if !tracer.is_subscribed() {
        return compute_selection(module, mode, scratch);
    }
    let n = module.implementations().len();
    let before = scratch.counters();
    let started = Instant::now();
    let selection = compute_selection(module, mode, scratch);
    let dur_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let delta = scratch.counters().since(before);
    let k = match mode {
        Mode::FixedK(k) => k,
        Mode::MaxError(_) => selection.positions.as_ref().map_or(n, Vec::len),
    };
    let solver = if delta.divide_conquer > 0 {
        SolverKind::Monge
    } else if delta.dense > 0 {
        SolverKind::Dense
    } else {
        SolverKind::Legacy
    };
    let legacy = if delta.total() == 0 {
        1
    } else {
        delta.legacy as u32
    };
    tracer.emit(
        worker,
        TraceEvent::Selection {
            node,
            solver,
            legacy,
            dense: delta.dense as u32,
            monge: delta.divide_conquer as u32,
            k: k as u32,
            n: n as u32,
            dur_ns,
        },
    );
    if delta.monge_fallbacks > 0 {
        tracer.emit(
            worker,
            TraceEvent::MongeFallback {
                node,
                count: delta.monge_fallbacks as u32,
            },
        );
    }
    selection
}

/// Compresses the library in three deterministic phases: serial cache
/// lookups, per-module selection of the misses (fanned across `threads`
/// workers — selections are independent, so the output is identical at
/// any thread count), and serial in-order cache insertion and assembly.
fn compress(
    instance: &FloorplanInstance,
    mode: Mode,
    cache: &mut Option<SelectionCache>,
    threads: usize,
    tracer: &Tracer,
) -> Compressed {
    let run_started = Instant::now();
    let modules: Vec<&Module> = instance.library.iter().collect();
    let n = modules.len();
    let keys: Vec<Option<u128>> = modules
        .iter()
        .map(|m| cache.as_ref().map(|_| selection_key(m, mode)))
        .collect();

    // Phase 1: serial lookups (hit accounting stays order-stable).
    let mut selections: Vec<Option<CachedSelection>> = vec![None; n];
    let mut cache_reused = 0usize;
    if let Some(cache) = cache.as_mut() {
        for (i, (selection, key)) in selections.iter_mut().zip(&keys).enumerate() {
            if let Some(key) = key {
                if let Some(hit) = cache.get(key) {
                    tracer.emit(
                        0,
                        TraceEvent::CacheHit {
                            node: i as u32,
                            len: hit.positions.as_ref().map_or(0, Vec::len) as u32,
                        },
                    );
                    *selection = Some(hit);
                    cache_reused += 1;
                } else {
                    tracer.emit(0, TraceEvent::CacheMiss { node: i as u32 });
                }
            }
        }
    }

    // Phase 2: compute the misses, on worker threads when asked.
    let selection_started = Instant::now();
    let misses: Vec<usize> = (0..n).filter(|&i| selections[i].is_none()).collect();
    let workers = threads.clamp(1, misses.len().max(1));
    if workers > 1 {
        let chunk_len = misses.len().div_ceil(workers);
        let computed: Vec<(usize, CachedSelection)> = std::thread::scope(|scope| {
            let handles: Vec<_> = misses
                .chunks(chunk_len)
                .enumerate()
                .map(|(w, chunk)| {
                    let modules = &modules;
                    scope.spawn(move || {
                        let mut scratch = CsppScratch::new();
                        chunk
                            .iter()
                            .map(|&i| {
                                let selection = compute_selection_traced(
                                    modules[i],
                                    mode,
                                    &mut scratch,
                                    i as u32,
                                    w as u32 + 1,
                                    tracer,
                                );
                                (i, selection)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_default())
                .collect()
        });
        for (i, selection) in computed {
            selections[i] = Some(selection);
        }
    }
    // Serial path, and the backstop for anything a worker failed to
    // deliver: compute in place.
    let mut scratch = CsppScratch::new();
    for (i, selection) in selections.iter_mut().enumerate() {
        if selection.is_none() {
            *selection = Some(compute_selection_traced(
                modules[i],
                mode,
                &mut scratch,
                i as u32,
                0,
                tracer,
            ));
        }
    }
    tracer.emit(
        0,
        TraceEvent::Phase {
            name: PhaseName::Selection,
            dur_ns: u64::try_from(selection_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        },
    );

    // Phase 3: in-order cache insertion and library assembly.
    let mut before = 0usize;
    let mut after = 0usize;
    let mut total_error: u128 = 0;
    let mut miss_cursor = misses.iter().copied().peekable();
    let library: ModuleLibrary = modules
        .iter()
        .enumerate()
        .map(|(i, module)| {
            let list = module.implementations();
            before += list.len();
            let selection = selections[i].take().unwrap_or(CachedSelection {
                positions: None,
                error: 0,
            });
            if miss_cursor.peek() == Some(&i) {
                miss_cursor.next();
                if let (Some(cache), Some(key)) = (cache.as_mut(), keys[i]) {
                    cache.insert(key, selection.clone());
                }
            }
            total_error += selection.error;
            match &selection.positions {
                Some(positions) => {
                    after += positions.len();
                    Module::new(module.name(), list.subset(positions).into_vec())
                }
                None => {
                    after += list.len();
                    Module::new(module.name(), list.clone().into_vec())
                }
            }
        })
        .collect();
    tracer.emit(
        0,
        TraceEvent::Phase {
            name: PhaseName::Run,
            dur_ns: u64::try_from(run_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        },
    );
    Compressed {
        library,
        before,
        after,
        total_error,
        cache_reused,
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut mode: Option<Mode> = None;
    let mut max_impls: Option<usize> = None;
    let mut cache_bytes: Option<usize> = None;
    let mut cache_file: Option<String> = None;
    let mut auto_rescue = false;
    let mut deadline: Option<Duration> = None;
    let mut threads: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-impls" => {
                let Some(v) = it.next() else {
                    eprintln!("fpcompress: --max-impls needs a value");
                    return ExitCode::from(2);
                };
                match v.parse() {
                    Ok(n) => max_impls = Some(n),
                    Err(err) => {
                        eprintln!("fpcompress: --max-impls: {err}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--cache-bytes" => {
                let Some(v) = it.next() else {
                    eprintln!("fpcompress: --cache-bytes needs a value");
                    return ExitCode::from(2);
                };
                match v.parse() {
                    Ok(n) => cache_bytes = Some(n),
                    Err(err) => {
                        eprintln!("fpcompress: --cache-bytes: {err}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--cache-file" => {
                let Some(v) = it.next() else {
                    eprintln!("fpcompress: --cache-file needs a value");
                    return ExitCode::from(2);
                };
                cache_file = Some(v.clone());
            }
            "--auto-rescue" => auto_rescue = true,
            "--trace" => {
                let Some(v) = it.next() else {
                    eprintln!("fpcompress: --trace needs a value");
                    return ExitCode::from(2);
                };
                trace_path = Some(v.clone());
            }
            "--threads" => {
                let Some(v) = it.next() else {
                    eprintln!("fpcompress: --threads expects a value\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                };
                match v.parse::<usize>() {
                    Ok(n) => threads = Some(n),
                    Err(e) => {
                        eprintln!("fpcompress: --threads: {e}\n");
                        eprint!("{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--deadline" => {
                let Some(v) = it.next() else {
                    eprintln!("fpcompress: --deadline needs a value");
                    return ExitCode::from(2);
                };
                match v.parse::<f64>() {
                    Ok(secs) if secs.is_finite() && secs >= 0.0 => {
                        deadline = Some(Duration::from_secs_f64(secs));
                    }
                    _ => {
                        eprintln!(
                            "fpcompress: --deadline expects a non-negative number of seconds"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--k" => {
                let Some(v) = it.next() else {
                    eprintln!("fpcompress: --k needs a value");
                    return ExitCode::from(2);
                };
                match v.parse() {
                    Ok(k) if k >= 2 => mode = Some(Mode::FixedK(k)),
                    _ => {
                        eprintln!("fpcompress: --k must be an integer >= 2");
                        return ExitCode::from(2);
                    }
                }
            }
            "--max-error" => {
                let Some(v) = it.next() else {
                    eprintln!("fpcompress: --max-error needs a value");
                    return ExitCode::from(2);
                };
                match v.parse() {
                    Ok(e) => mode = Some(Mode::MaxError(e)),
                    Err(err) => {
                        eprintln!("fpcompress: --max-error: {err}");
                        return ExitCode::from(2);
                    }
                }
            }
            "-o" => output = it.next().cloned(),
            "--help" | "-h" => {
                eprint!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("fpcompress: unknown option {other}\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            other => input = Some(other.to_owned()),
        }
    }
    let (Some(input), Some(mode)) = (input, mode) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };

    let start = Instant::now();
    let text = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fpcompress: cannot read {input}: {e}");
            return ExitCode::from(3);
        }
    };
    let instance = match parse_instance(&text) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("fpcompress: {input}: {e}");
            return ExitCode::from(3);
        }
    };

    let mut cache = match &cache_file {
        None => cache_bytes.map(|bytes| PersistentCache::in_memory(bytes, DEFAULT_SHARDS)),
        Some(dir) => {
            match PersistentCache::open(
                std::path::Path::new(dir),
                cache_bytes.unwrap_or(16 << 20),
                STORE_SALT,
                PersistOptions::default(),
            ) {
                Ok(cache) => {
                    eprintln!(
                        "fpcompress: cache store {dir} replayed {} selections",
                        cache.recovery().recovered_entries
                    );
                    Some(cache)
                }
                Err(e) => {
                    eprintln!("fpcompress: cannot open cache store: {e}");
                    return ExitCode::from(3);
                }
            }
        }
    };
    let mut mode = mode;
    // `--threads 0` and the FP_THREADS default resolve the same way the
    // optimizer's own scheduler does.
    let threads = {
        let mut config = fp_optimizer::OptimizeConfig::default();
        if let Some(n) = threads {
            config = config.with_threads(n);
        }
        config.resolved_threads()
    };
    let tracer = if trace_path.is_some() {
        Tracer::new()
    } else {
        Tracer::unsubscribed()
    };
    let mut result = compress(&instance, mode, &mut cache, threads, &tracer);
    // Degrade-and-retry: halve k until the output fits the cap.
    while let Some(cap) = max_impls {
        if result.after <= cap {
            break;
        }
        if !auto_rescue {
            eprintln!(
                "fpcompress: output has {} implementations, over the --max-impls cap {cap}",
                result.after
            );
            eprintln!("            pass --auto-rescue to degrade k until it fits");
            return ExitCode::from(4);
        }
        if let Some(d) = deadline {
            if start.elapsed() > d {
                eprintln!("fpcompress: deadline exceeded while rescuing");
                return ExitCode::from(5);
            }
        }
        // MaxError mode rescues by switching to the largest per-module k
        // that could still fit; FixedK halves (floor 2).
        let next_k = match mode {
            Mode::FixedK(k) if k > 2 => (k / 2).max(2),
            Mode::FixedK(_) => {
                eprintln!(
                    "fpcompress: cannot fit {} implementations under {cap} even at k=2",
                    result.after
                );
                return ExitCode::from(4);
            }
            Mode::MaxError(_) => (cap / instance.library.len().max(1)).max(2),
        };
        eprintln!(
            "fpcompress: rescue: {} implementations over cap {cap}; retrying with k={next_k}",
            result.after
        );
        mode = Mode::FixedK(next_k);
        result = compress(&instance, mode, &mut cache, threads, &tracer);
    }
    if let Some(d) = deadline {
        if start.elapsed() > d {
            eprintln!("fpcompress: deadline exceeded");
            return ExitCode::from(5);
        }
    }

    let compressed = FloorplanInstance {
        name: instance.name.clone(),
        tree: instance.tree.clone(),
        library: result.library,
    };
    let out_text = match write_instance(&compressed) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fpcompress: cannot serialize instance: {e}");
            return ExitCode::FAILURE;
        }
    };
    match &output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, out_text) {
                eprintln!("fpcompress: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{out_text}"),
    }
    if let Some(path) = &trace_path {
        let trace = tracer.drain();
        let mut buf: Vec<u8> = Vec::new();
        if let Err(e) = trace.write_jsonl(&mut buf) {
            eprintln!("fpcompress: cannot serialize trace: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(path, buf) {
            eprintln!("fpcompress: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "fpcompress: trace: wrote {} events to {path}{}",
            trace.events.len(),
            if trace.dropped > 0 {
                format!(" ({} dropped at capacity)", trace.dropped)
            } else {
                String::new()
            }
        );
    }
    eprintln!(
        "fpcompress: {} -> {} implementations across {} modules (total staircase error {})",
        result.before,
        result.after,
        compressed.library.len(),
        result.total_error
    );
    if let Some(cache) = &cache {
        let stats = cache.stats();
        eprintln!(
            "fpcompress: cache: {} of {} selections reused this pass ({} hits, {} misses lifetime)",
            result.cache_reused,
            compressed.library.len(),
            stats.hits,
            stats.misses
        );
        if cache.is_persistent() {
            if let Err(e) = cache.flush() {
                eprintln!("fpcompress: cache flush failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
