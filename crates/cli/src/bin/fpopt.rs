//! `fpopt` — command-line floorplan area optimizer.
//!
//! ```sh
//! fpopt design.fpt --k1 40 --k2 1000 --svg out.svg
//! fpopt @fp1 --n 16 --seed 3 --ascii
//! ```
//!
//! Inputs are `.fpt` instance files (see `fp_tree::format`) or built-in
//! benchmarks (`@fig1`, `@fp1` … `@fp4`). Options mirror the paper's
//! knobs: `--k1` enables `R_Selection`, `--k2` (with `--theta`,
//! `--prefilter`) enables `L_Selection`, and `--memory` bounds the
//! implementation count the way the paper's machine did.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use fp_anneal::{anneal_multi, AnnealConfig, MultiAnnealConfig};
use fp_optimizer::{
    netlist_fingerprint, parse_netlist, random_netlist, BlockCache, CompositeObjective, Executor,
    FaultPlan, JobClass, Netlist, OptError, OptimizeConfig, Optimizer, RunOutcome, Trace, Tracer,
};
use fp_select::LReductionPolicy;
use fp_tree::format::{parse_instance, FloorplanInstance};
use fp_tree::layout::realize;
use fp_tree::{export, generators, mega};

/// Fixed salt for `--session` replay stores (replay requests carry
/// their own policies; block keys already mix the policy fingerprint).
const REPLAY_STORE_SALT: u128 = 0x6670_6f70_742f_7265_706c_6179_2f31_3131; // "fpopt/replay/111"

const USAGE: &str = "\
usage: fpopt <design.fpt | @fig1 | @fp1..@fp8> [options]

input options (built-in benchmarks only):
  --n <count>        implementations per module (default 8)
  --seed <u64>       module-set seed (default 1)

generator options:
  --gen <spec>       synthesize a deterministic mega-scale instance
                     instead of reading one:
                       mega:<modules>[,profile=balanced|deep|wide]
                            [,wheels=<0..1>][,impls=<n>][,seed=<u64>]
                     e.g. --gen mega:10000,profile=deep,seed=7
                     (@fp5..@fp8 are the canned 10k/50k/150k/500k
                     members of this family; combine with --fpt <path>
                     to export the instance)

selection options (paper knobs):
  --k1 <limit>       enable R_Selection with limit K1
  --k2 <limit>       enable L_Selection with limit K2
  --theta <0..1]     L_Selection trigger (default 1.0)
  --prefilter <S>    heuristic prefilter threshold (default off)
  --parallel         reduce L-lists on worker threads (same results)
  --threads <n>      evaluate independent subtrees on <n> worker
                     threads (0 = all cores; default $FP_THREADS or 1;
                     results are identical at any thread count)
  --memory <count>   implementation budget (default 10000000)
  --max-impls <n>    alias for --memory
  --outline <WxH>    require the floorplan to fit a fixed outline
  --objective <obj>  area (default) or hp (half-perimeter)

wirelength options (multi-objective):
  --netlist <file>   score layouts against a .fpn netlist (HPWL)
  --nets <count>     generate a seeded random netlist with <count> nets
                     instead of reading one (mutually exclusive)
  --net-seed <u64>   seed for --nets (default 1)
  --alpha <0..1>     weighted objective alpha*area + (1-alpha)*HPWL,
                     both normalized (default 1.0 = pure area, identical
                     to running without a netlist)
  --max-hpwl <n>     epsilon-constraint: minimize area subject to
                     HPWL <= n (overrides --alpha)
  --pareto           print the (area, HPWL, outline-fit) non-dominated
                     frontier and its hypervolume instead of one layout

annealing options (topology search):
  --anneal-chains <n>
                     search slicing topologies by multi-start simulated
                     annealing: <n> independent chains (1..=64) run as
                     jobs on a shared executor with a best-of-N merge;
                     results are identical at any thread count. The
                     paper's area optimizer (with the selection knobs
                     above) is the inner cost loop; the <design>'s own
                     tree is ignored — the topology is the variable
  --anneal-moves <n> proposed moves per chain (default 2000)
  --anneal-seed <u64>
                     base seed; chain i > 0 derives its own independent
                     stream from it (default 1)
  --init <topology>  starting topology for every chain: row (default,
                     all modules in one horizontal strip), ost (the
                     orderly-spanning-tree grid seed -- deterministic,
                     near-square), or random (seeded)

robustness options:
  --deadline <secs>  wall-clock deadline for the optimization
  --auto-rescue      on budget trips, retry under stricter selection
                     (degradations are reported on stderr)
  --inject-fault <n[,n...]>
                     fail the n-th candidate allocation(s) (testing aid)

session options:
  --cache-bytes <n>  optimize through a content-addressed block cache
                     with an <n>-byte budget (reports hit/miss counters)
  --cache-file <dir> persist the block cache to an append-only segment
                     store in <dir>: replayed on startup for warm
                     restarts, flushed on exit. The store is salted
                     with the policy fingerprint, so changing --k1/--k2/
                     --theta/--prefilter cold-starts it instead of
                     serving stale entries. Implies a cache (default
                     --cache-bytes 67108864)
  --session <file>   replay a JSON-lines request file through the
                     fpserved protocol, one response per line on stdout;
                     no <design> argument is needed in this mode

observability options:
  --trace <path>     write the run's structured event stream as JSON
                     lines (join/selection/cache/steal/rescue events)
  --profile          print a per-phase wall-time tree with % shares
                     (restructure / enumerate / selection / trace-back)

output options:
  --whitespace       polygonize the final layout and print the dead-space
                     distribution (region count, total, largest) and the
                     number of merged block outline rings
  --ascii            print the layout as ASCII art
  --svg <path>       write the layout as SVG
  --dot <path>       write the floorplan tree as Graphviz DOT
  --fpt <path>       write the instance back as .fpt (round-trip)

exit codes:
  0  success             4  budget exhausted / injected fault
  1  internal error      5  deadline exceeded or cancelled
  2  usage error         6  no implementation fits the outline
  3  bad input (unreadable or malformed instance)
";

struct Args {
    input: String,
    gen: Option<String>,
    n: usize,
    seed: u64,
    k1: Option<usize>,
    k2: Option<usize>,
    theta: f64,
    prefilter: Option<usize>,
    parallel: bool,
    threads: Option<usize>,
    memory: Option<usize>,
    deadline: Option<Duration>,
    auto_rescue: bool,
    inject_fault: Option<Vec<u64>>,
    outline: Option<fp_geom::Rect>,
    objective: fp_optimizer::Objective,
    netlist: Option<String>,
    nets: Option<usize>,
    net_seed: u64,
    alpha: Option<f64>,
    max_hpwl: Option<u64>,
    pareto: bool,
    anneal_chains: Option<usize>,
    anneal_moves: usize,
    anneal_seed: u64,
    init: fp_anneal::InitTopology,
    whitespace: bool,
    cache_bytes: Option<usize>,
    cache_file: Option<String>,
    session: Option<String>,
    trace: Option<String>,
    profile: bool,
    ascii: bool,
    svg: Option<String>,
    dot: Option<String>,
    fpt: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        gen: None,
        n: 8,
        seed: 1,
        k1: None,
        k2: None,
        theta: 1.0,
        prefilter: None,
        parallel: false,
        threads: None,
        memory: None,
        deadline: None,
        auto_rescue: false,
        inject_fault: None,
        outline: None,
        objective: fp_optimizer::Objective::MinArea,
        netlist: None,
        nets: None,
        net_seed: 1,
        alpha: None,
        max_hpwl: None,
        pareto: false,
        anneal_chains: None,
        anneal_moves: 2000,
        anneal_seed: 1,
        init: fp_anneal::InitTopology::default(),
        whitespace: false,
        cache_bytes: None,
        cache_file: None,
        session: None,
        trace: None,
        profile: false,
        ascii: false,
        svg: None,
        dot: None,
        fpt: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--k1" => args.k1 = Some(value("--k1")?.parse().map_err(|e| format!("--k1: {e}"))?),
            "--k2" => args.k2 = Some(value("--k2")?.parse().map_err(|e| format!("--k2: {e}"))?),
            "--theta" => {
                args.theta = value("--theta")?
                    .parse()
                    .map_err(|e| format!("--theta: {e}"))?;
            }
            "--prefilter" => {
                args.prefilter = Some(
                    value("--prefilter")?
                        .parse()
                        .map_err(|e| format!("--prefilter: {e}"))?,
                );
            }
            "--memory" | "--max-impls" => {
                args.memory = Some(value(arg)?.parse().map_err(|e| format!("{arg}: {e}"))?);
            }
            "--deadline" => {
                let secs: f64 = value("--deadline")?
                    .parse()
                    .map_err(|e| format!("--deadline: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!(
                        "--deadline expects a non-negative number of seconds, found {secs}"
                    ));
                }
                args.deadline = Some(Duration::from_secs_f64(secs));
            }
            "--auto-rescue" => args.auto_rescue = true,
            "--inject-fault" => {
                let v = value("--inject-fault")?;
                let points: Result<Vec<u64>, _> =
                    v.split(',').map(|p| p.trim().parse::<u64>()).collect();
                args.inject_fault = Some(points.map_err(|e| format!("--inject-fault: {e}"))?);
            }
            "--outline" => {
                let v = value("--outline")?;
                let (w, h) = v
                    .split_once(['x', 'X'])
                    .ok_or_else(|| format!("--outline expects WxH, found {v}"))?;
                let w = w.parse().map_err(|e| format!("--outline width: {e}"))?;
                let h = h.parse().map_err(|e| format!("--outline height: {e}"))?;
                args.outline = Some(fp_geom::Rect::new(w, h));
            }
            "--objective" => {
                args.objective = match value("--objective")?.as_str() {
                    "area" => fp_optimizer::Objective::MinArea,
                    "hp" => fp_optimizer::Objective::MinHalfPerimeter,
                    other => return Err(format!("unknown objective `{other}` (area, hp)")),
                };
            }
            "--netlist" => args.netlist = Some(value("--netlist")?),
            "--nets" => {
                args.nets = Some(
                    value("--nets")?
                        .parse()
                        .map_err(|e| format!("--nets: {e}"))?,
                );
            }
            "--net-seed" => {
                args.net_seed = value("--net-seed")?
                    .parse()
                    .map_err(|e| format!("--net-seed: {e}"))?;
            }
            "--alpha" => {
                let a: f64 = value("--alpha")?
                    .parse()
                    .map_err(|e| format!("--alpha: {e}"))?;
                if !(0.0..=1.0).contains(&a) {
                    return Err(format!("--alpha expects a value in [0, 1], found {a}"));
                }
                args.alpha = Some(a);
            }
            "--max-hpwl" => {
                args.max_hpwl = Some(
                    value("--max-hpwl")?
                        .parse()
                        .map_err(|e| format!("--max-hpwl: {e}"))?,
                );
            }
            "--pareto" => args.pareto = true,
            "--anneal-chains" => {
                let chains: usize = value("--anneal-chains")?
                    .parse()
                    .map_err(|e| format!("--anneal-chains: {e}"))?;
                if !(1..=64).contains(&chains) {
                    return Err(format!(
                        "--anneal-chains expects a value in 1..=64, found {chains}"
                    ));
                }
                args.anneal_chains = Some(chains);
            }
            "--anneal-moves" => {
                args.anneal_moves = value("--anneal-moves")?
                    .parse()
                    .map_err(|e| format!("--anneal-moves: {e}"))?;
                if args.anneal_moves == 0 {
                    return Err("--anneal-moves expects at least one move".to_owned());
                }
            }
            "--anneal-seed" => {
                args.anneal_seed = value("--anneal-seed")?
                    .parse()
                    .map_err(|e| format!("--anneal-seed: {e}"))?;
            }
            "--init" => {
                args.init = fp_anneal::InitTopology::parse(&value("--init")?)
                    .map_err(|e| format!("--init: {e}"))?;
            }
            "--cache-bytes" => {
                args.cache_bytes = Some(
                    value("--cache-bytes")?
                        .parse()
                        .map_err(|e| format!("--cache-bytes: {e}"))?,
                );
            }
            "--cache-file" => args.cache_file = Some(value("--cache-file")?),
            "--session" => args.session = Some(value("--session")?),
            "--gen" => args.gen = Some(value("--gen")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--profile" => args.profile = true,
            "--parallel" => args.parallel = true,
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--whitespace" => args.whitespace = true,
            "--ascii" => args.ascii = true,
            "--svg" => args.svg = Some(value("--svg")?),
            "--dot" => args.dot = Some(value("--dot")?),
            "--fpt" => args.fpt = Some(value("--fpt")?),
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            other => {
                if !args.input.is_empty() {
                    return Err(format!("multiple inputs: {} and {other}", args.input));
                }
                args.input = other.to_owned();
            }
        }
    }
    if args.input.is_empty() && args.session.is_none() && args.gen.is_none() {
        return Err("missing input".to_owned());
    }
    if !args.input.is_empty() && args.gen.is_some() {
        return Err("--gen and a <design> input are mutually exclusive".to_owned());
    }
    if args.netlist.is_some() && args.nets.is_some() {
        return Err("--netlist and --nets are mutually exclusive".to_owned());
    }
    if args.nets == Some(0) {
        return Err("--nets expects at least one net".to_owned());
    }
    let wants_netlist = args.alpha.is_some() || args.max_hpwl.is_some() || args.pareto;
    if wants_netlist && args.netlist.is_none() && args.nets.is_none() {
        return Err("--alpha/--max-hpwl/--pareto need --netlist or --nets".to_owned());
    }
    if args.init != fp_anneal::InitTopology::default() && args.anneal_chains.is_none() {
        return Err(
            "--init selects the annealer's starting topology; it needs --anneal-chains".to_owned(),
        );
    }
    if args.anneal_chains.is_some() && (args.pareto || args.max_hpwl.is_some()) {
        return Err("--anneal-chains searches topologies for one objective; it does not combine with --pareto or --max-hpwl".to_owned());
    }
    Ok(args)
}

/// Parses a `--gen` spec (`mega:<modules>[,key=value...]`) into a
/// [`mega::MegaConfig`].
fn parse_mega_spec(spec: &str) -> Result<mega::MegaConfig, String> {
    let rest = spec
        .strip_prefix("mega:")
        .ok_or_else(|| format!("--gen expects mega:<modules>[,key=value...], found `{spec}`"))?;
    let mut parts = rest.split(',');
    let modules: usize = parts
        .next()
        .unwrap_or("")
        .trim()
        .parse()
        .map_err(|e| format!("--gen modules: {e}"))?;
    if modules == 0 {
        return Err("--gen expects at least one module".to_owned());
    }
    let mut cfg = mega::MegaConfig::new(modules);
    for part in parts {
        let (key, val) = part
            .split_once('=')
            .ok_or_else(|| format!("--gen expects key=value, found `{part}`"))?;
        let val = val.trim();
        match key.trim() {
            "profile" => cfg = cfg.with_profile(mega::DepthProfile::parse(val)?),
            "wheels" => {
                let d: f64 = val.parse().map_err(|e| format!("--gen wheels: {e}"))?;
                if !(0.0..=1.0).contains(&d) {
                    return Err(format!("--gen wheels expects a value in [0, 1], found {d}"));
                }
                cfg = cfg.with_wheel_density(d);
            }
            "impls" => {
                cfg = cfg.with_impls(val.parse().map_err(|e| format!("--gen impls: {e}"))?);
            }
            "seed" => cfg = cfg.with_seed(val.parse().map_err(|e| format!("--gen seed: {e}"))?),
            other => {
                return Err(format!(
                    "--gen: unknown key `{other}` (profile, wheels, impls, seed)"
                ))
            }
        }
    }
    Ok(cfg)
}

/// Materializes a mega-family instance (tree + matched library).
fn mega_instance(cfg: &mega::MegaConfig) -> FloorplanInstance {
    let bench = mega::mega_floorplan(cfg);
    let library = mega::mega_library(&bench.tree, cfg);
    FloorplanInstance {
        name: bench.name,
        tree: bench.tree,
        library,
    }
}

fn load_instance(args: &Args) -> Result<FloorplanInstance, String> {
    if let Some(spec) = &args.gen {
        return parse_mega_spec(spec).map(|cfg| mega_instance(&cfg));
    }
    if let Some(name) = args.input.strip_prefix('@') {
        let bench = match name {
            "fig1" => generators::fig1(),
            "fp1" => generators::fp1(),
            "fp2" => generators::fp2(),
            "fp3" => generators::fp3(),
            "fp4" => generators::fp4(),
            "fp5" => return Ok(mega_instance(&mega::fp5_config())),
            "fp6" => return Ok(mega_instance(&mega::fp6_config())),
            "fp7" => return Ok(mega_instance(&mega::fp7_config())),
            "fp8" => return Ok(mega_instance(&mega::fp8_config())),
            "ami33" => {
                let (bench, library) = generators::ami33_like();
                return Ok(FloorplanInstance {
                    name: bench.name,
                    tree: bench.tree,
                    library,
                });
            }
            "ami49" => {
                let (bench, library) = generators::ami49_like();
                return Ok(FloorplanInstance {
                    name: bench.name,
                    tree: bench.tree,
                    library,
                });
            }
            other => {
                return Err(format!(
                    "unknown built-in @{other} (fig1, fp1..fp8, ami33, ami49)"
                ))
            }
        };
        let library = generators::module_library(&bench.tree, args.n, args.seed);
        Ok(FloorplanInstance {
            name: bench.name,
            tree: bench.tree,
            library,
        })
    } else {
        let text = std::fs::read_to_string(&args.input)
            .map_err(|e| format!("cannot read {}: {e}", args.input))?;
        parse_instance(&text).map_err(|e| format!("{}: {e}", args.input))
    }
}

/// The documented exit code for each optimizer error (see `USAGE`);
/// shared with `fpserved`'s per-request statuses.
fn exit_code_for(e: &OptError) -> u8 {
    fp_optimizer::serve::status_for(e)
}

/// Reads `--netlist <file>` or generates a `--nets` random netlist.
fn load_netlist(args: &Args, instance: &FloorplanInstance) -> Result<Option<Netlist>, String> {
    if let Some(path) = &args.netlist {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_netlist(&text)
            .map(Some)
            .map_err(|e| format!("{path}: {e}"))
    } else if let Some(nets) = args.nets {
        Ok(Some(random_netlist(&instance.library, nets, args.net_seed)))
    } else {
        Ok(None)
    }
}

/// Honours `--trace` / `--profile` for a drained event stream.
fn emit_observability(trace: &Trace, args: &Args) -> Result<(), ExitCode> {
    if let Some(path) = &args.trace {
        let mut buf: Vec<u8> = Vec::new();
        if let Err(e) = trace.write_jsonl(&mut buf) {
            eprintln!("fpopt: cannot render trace: {e}");
            return Err(ExitCode::FAILURE);
        }
        if let Err(e) = std::fs::write(path, buf) {
            eprintln!("fpopt: cannot write {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
        eprintln!(
            "trace: wrote {} events to {path}{}",
            trace.events.len(),
            if trace.dropped > 0 {
                format!(" ({} dropped at capacity)", trace.dropped)
            } else {
                String::new()
            }
        );
    }
    if args.profile {
        eprint!("{}", trace.profile());
    }
    Ok(())
}

/// Replays a JSON-lines request file through the `fpserved` protocol
/// against a fresh session cache: one response per line on stdout. Later
/// requests reuse blocks committed by earlier ones. The exit code is the
/// highest per-request status seen, so scripted replays fail loudly.
fn replay_session(path: &str, cache_bytes: Option<usize>, cache_file: Option<&str>) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fpopt: cannot read {path}: {e}");
            return ExitCode::from(3);
        }
    };
    let budget = cache_bytes.unwrap_or(64 << 20);
    let state = match cache_file {
        None => fp_optimizer::serve::ServeState::new(budget),
        // Replay-mode requests carry their own policies and block keys
        // already mix the policy fingerprint in, so a fixed salt is
        // correct here (same reasoning as fpserved's store).
        Some(dir) => {
            match fp_optimizer::cache::SharedBlockCache::open_persistent(
                std::path::Path::new(dir),
                budget,
                REPLAY_STORE_SALT,
            ) {
                Ok(cache) => {
                    eprintln!(
                        "fpopt: cache store {dir} replayed {} entries",
                        cache.recovery().recovered_entries
                    );
                    fp_optimizer::serve::ServeState::with_cache(cache)
                }
                Err(e) => {
                    eprintln!("fpopt: cannot open cache store: {e}");
                    return ExitCode::from(3);
                }
            }
        }
    };
    // Session re-optimizations run as `JobClass::Session` work on the
    // same executor abstraction the server uses: requests lease spare
    // pool capacity for their tree splits, anneal lines fan their
    // chains out, and the replies are byte-identical to a serial run.
    let exec = Executor::new(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let state = state
        .with_executor(Arc::clone(&exec))
        .with_anneal_backend(fp_anneal::serve_backend());
    let mut worst = 0u8;
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let reply = exec.run_scoped(JobClass::Session, || {
            fp_optimizer::serve::handle_line(line, index as u64 + 1, &state, None)
        });
        println!("{}", reply.json);
        worst = worst.max(reply.status);
        if reply.shutdown {
            break;
        }
    }
    exec.shutdown();
    if state.cache().is_persistent() {
        if let Err(e) = state.cache().flush() {
            eprintln!("fpopt: cache flush failed: {e}");
        }
    }
    ExitCode::from(worst)
}

/// `--whitespace`: one-line dead-space distribution of the verified
/// layout, from the scanline polygonizer.
fn print_whitespace(layout: &fp_tree::layout::Layout) {
    let poly = layout.polygonize();
    let ws = &poly.whitespace;
    println!(
        "whitespace: {} region(s), total {} ({:.1}% of envelope), largest {}; {} outline ring(s)",
        ws.count(),
        ws.total,
        100.0 * ws.total as f64 / layout.area().max(1) as f64,
        ws.largest(),
        poly.outlines.len()
    );
}

/// `--anneal-chains`: multi-start Wong–Liu topology search with the
/// configured area optimizer as the inner cost loop. Chains run as
/// [`JobClass::Anneal`] jobs on a dedicated executor and share the
/// session cache; the merge is deterministic at any thread count.
fn run_anneal(
    args: &Args,
    instance: &FloorplanInstance,
    config: OptimizeConfig,
    netlist: Option<Netlist>,
    cache: Option<&fp_optimizer::cache::SharedBlockCache>,
    chains: usize,
) -> ExitCode {
    let alpha = args.alpha.unwrap_or(1.0);
    let multi_config = MultiAnnealConfig {
        chains,
        base: AnnealConfig {
            moves: args.anneal_moves,
            seed: args.anneal_seed,
            init: args.init,
            optimizer: config,
            netlist,
            alpha,
            ..AnnealConfig::default()
        },
    };
    let exec = Executor::new(chains);
    println!(
        "anneal: {chains} chain(s) x {} moves, seed {}, {:?} start, {} executor thread(s)",
        args.anneal_moves,
        args.anneal_seed,
        args.init,
        exec.threads()
    );
    let result = anneal_multi(
        &instance.library,
        &multi_config,
        cache.map(|c| c as &(dyn BlockCache + Sync)),
        Some(&exec),
    );
    exec.shutdown();
    for (chain, area) in result.chain_areas.iter().enumerate() {
        println!(
            "  chain {chain}: area {area}{}",
            if chain == result.best_chain {
                "  <- best"
            } else {
                ""
            }
        );
    }
    let best = &result.best;
    let saved = best.initial_area.saturating_sub(best.best_area);
    println!(
        "initial area {} -> best area {} ({:.1}% saved), {}/{} moves accepted across chains",
        best.initial_area,
        best.best_area,
        100.0 * saved as f64 / best.initial_area.max(1) as f64,
        result.total_accepted,
        result.total_proposed
    );
    if let Some(hpwl) = best.best_hpwl {
        println!("wirelength: HPWL {hpwl} (alpha {alpha})");
    }
    println!("best topology: {}", best.expression);
    let layout = match realize(&best.tree, &instance.library, &best.assignment) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fpopt: internal error: annealed assignment does not realize: {e}");
            return ExitCode::FAILURE;
        }
    };
    debug_assert_eq!(layout.area(), best.best_area);
    println!(
        "verified layout: {} modules placed, dead space {} of {} ({:.1}%)",
        layout.placed.len(),
        layout.dead_space(),
        layout.area(),
        100.0 * layout.dead_space() as f64 / layout.area().max(1) as f64
    );
    if args.whitespace {
        print_whitespace(&layout);
    }
    if args.ascii {
        println!("\n{}", layout.to_ascii(72));
    }
    if let Some(path) = &args.svg {
        let svg = export::layout_to_svg(&layout, &best.tree, &instance.library, 800);
        if let Err(e) = std::fs::write(path, svg) {
            eprintln!("fpopt: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = &args.dot {
        let dot = export::tree_to_dot(&best.tree, &instance.library);
        if let Err(e) = std::fs::write(path, dot) {
            eprintln!("fpopt: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(cache) = cache {
        if cache.is_persistent() {
            if let Err(e) = cache.flush() {
                eprintln!("fpopt: cache flush failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("fpopt: {msg}\n");
            }
            eprint!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    if let Some(path) = &args.session {
        return replay_session(path, args.cache_bytes, args.cache_file.as_deref());
    }

    let instance = match load_instance(&args) {
        Ok(i) => i,
        Err(msg) => {
            eprintln!("fpopt: {msg}");
            return ExitCode::from(3);
        }
    };
    println!(
        "instance {}: {} modules, {} tree nodes",
        instance.name,
        instance.tree.module_count(),
        instance.tree.len()
    );

    let netlist = match load_netlist(&args, &instance) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("fpopt: {msg}");
            return ExitCode::from(3);
        }
    };
    let bound = match &netlist {
        Some(netlist) => match netlist.bind(&instance.library) {
            Ok(bound) => Some(bound),
            Err(e) => {
                eprintln!("fpopt: netlist does not bind the instance: {e}");
                return ExitCode::from(3);
            }
        },
        None => None,
    };

    let mut config = OptimizeConfig::default()
        .with_objective(args.objective)
        .with_auto_rescue(args.auto_rescue)
        .with_deadline(args.deadline);
    if let Some(netlist) = &netlist {
        // Wirelength-aware runs get their own cache addresses: the salt
        // folds into the policy fingerprint, so a persistent store also
        // cold-starts when the netlist changes.
        config = config.with_extra_salt(netlist_fingerprint(netlist));
    }
    if let Some(threads) = args.threads {
        config = config.with_threads(threads);
    }
    if let Some(points) = &args.inject_fault {
        config = config.with_fault_plan(Some(FaultPlan::at_allocations(points)));
    }
    if let Some(outline) = args.outline {
        config = config.with_outline(outline);
    }
    if let Some(limit) = args.memory {
        config = config.with_memory_limit(Some(limit));
    }
    if let Some(k1) = args.k1 {
        config = config.with_r_selection(k1);
    }
    if let Some(k2) = args.k2 {
        let mut policy = LReductionPolicy::new(k2)
            .with_theta(args.theta)
            .with_parallel(args.parallel);
        if let Some(s) = args.prefilter {
            policy = policy.with_prefilter(s);
        }
        config = config.with_l_selection(policy);
    }

    if args.profile {
        // Echo the tree-aware scheduling resolution so "why didn't it
        // parallelize?" is visible next to the phase tree.
        let auto = config.auto_serial_for(instance.tree.module_count());
        let eff = config.resolve_for(&instance.tree);
        eprintln!(
            "scheduling: {} thread(s){}",
            eff.threads,
            if auto {
                " — auto-serial (tree below the split threshold)"
            } else {
                ""
            }
        );
    }

    let cache = match &args.cache_file {
        None => args.cache_bytes.map(fp_optimizer::shared_cache),
        Some(dir) => {
            // Salted with the policy fingerprint: a warm store is only
            // replayed for the exact selection policies that wrote it.
            let salt = fp_optimizer::policy_fingerprint(&config);
            match fp_optimizer::cache::SharedBlockCache::open_persistent(
                std::path::Path::new(dir),
                args.cache_bytes.unwrap_or(64 << 20),
                salt,
            ) {
                Ok(cache) => {
                    let recovery = cache.recovery();
                    eprintln!(
                        "fpopt: cache store {dir} replayed {} entries ({} bytes)",
                        recovery.recovered_entries, recovery.recovered_bytes
                    );
                    Some(cache)
                }
                Err(e) => {
                    eprintln!("fpopt: cannot open cache store: {e}");
                    return ExitCode::from(3);
                }
            }
        }
    };
    if let Some(chains) = args.anneal_chains {
        return run_anneal(
            &args,
            &instance,
            config,
            netlist.clone(),
            cache.as_ref(),
            chains,
        );
    }
    // The tracer is only subscribed (and only costs anything) when an
    // observability flag asks for the event stream.
    let tracer = if args.trace.is_some() || args.profile {
        Tracer::new()
    } else {
        Tracer::unsubscribed()
    };
    let mut optimizer = Optimizer::new(&instance.tree, &instance.library)
        .config(&config)
        .tracer(&tracer);
    if let Some(cache) = &cache {
        optimizer = optimizer.cache(cache);
    }
    // Pareto mode prints the whole non-dominated frontier and stops —
    // there is no single layout to verify or export.
    if args.pareto {
        let bound = bound.as_ref().expect("--pareto requires a netlist source");
        let result = optimizer.run_pareto(bound);
        let trace = tracer.drain();
        if let Err(code) = emit_observability(&trace, &args) {
            return code;
        }
        let pareto = match result {
            Ok(p) => p,
            Err(e) => {
                eprintln!("fpopt: {e}");
                return ExitCode::from(exit_code_for(&e));
            }
        };
        println!(
            "pareto front: {} non-dominated of {} evaluated implementations",
            pareto.front.len(),
            pareto.evaluated
        );
        for p in &pareto.front {
            println!(
                "  [{:>3}] {:>6} x {:<6} area {:<12} hpwl {:<12}{}",
                p.index,
                p.width,
                p.height,
                p.area,
                p.hpwl,
                if p.fits { " fits-outline" } else { "" }
            );
        }
        let ref_area = pareto.front.iter().map(|p| p.area).max().unwrap_or(0) * 11 / 10 + 1;
        let ref_hpwl = pareto.front.iter().map(|p| p.hpwl).max().unwrap_or(0) * 11 / 10 + 1;
        println!(
            "hypervolume {:.6} (reference area {ref_area}, hpwl {ref_hpwl})",
            fp_optimizer::hypervolume(&pareto.front, ref_area, ref_hpwl)
        );
        if let Some(cache) = &cache {
            if cache.is_persistent() {
                if let Err(e) = cache.flush() {
                    eprintln!("fpopt: cache flush failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let (result, hpwl) = match &bound {
        Some(bound) => {
            let objective = match args.max_hpwl {
                Some(h) => CompositeObjective::epsilon(u128::from(h)),
                None => CompositeObjective::weighted(args.alpha.unwrap_or(1.0)),
            };
            match optimizer.run_composite(bound, objective) {
                Ok(multi) => {
                    let rescued = !multi.outcome.stats.degradations.is_empty();
                    (
                        Ok(RunOutcome {
                            outcome: multi.outcome,
                            rescued,
                        }),
                        Some(multi.hpwl),
                    )
                }
                Err(e) => (Err(e), None),
            }
        }
        None => (optimizer.run(), None),
    };
    let trace = tracer.drain();
    if let Err(code) = emit_observability(&trace, &args) {
        return code;
    }
    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fpopt: {e}");
            if matches!(e, OptError::OutOfMemory { .. }) {
                eprintln!(
                    "       try --k1/--k2 to enable the selection algorithms, or --auto-rescue"
                );
            }
            return ExitCode::from(exit_code_for(&e));
        }
    };
    if report.rescued {
        for event in report.degradations() {
            eprintln!("fpopt: rescue: {event}");
        }
        eprintln!(
            "fpopt: rescued after {} degradation(s); result is near-optimal under the final policies",
            report.degradations().len()
        );
    }
    let outcome = report.outcome;

    println!("optimal area {} as {}", outcome.area, outcome.root_impl);
    if let Some(hpwl) = hpwl {
        match args.max_hpwl {
            Some(limit) => println!("wirelength: HPWL {hpwl} (constraint <= {limit})"),
            None => println!(
                "wirelength: HPWL {hpwl} (alpha {})",
                args.alpha.unwrap_or(1.0)
            ),
        }
    }
    let layout = match realize(&instance.tree, &instance.library, &outcome.assignment) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fpopt: internal error: assignment does not realize: {e}");
            return ExitCode::FAILURE;
        }
    };
    debug_assert_eq!(layout.area(), outcome.area);
    println!(
        "verified layout: {} modules placed, dead space {} of {} ({:.1}%)",
        layout.placed.len(),
        layout.dead_space(),
        layout.area(),
        100.0 * layout.dead_space() as f64 / layout.area().max(1) as f64
    );
    if args.whitespace {
        print_whitespace(&layout);
    }
    println!(
        "stats: peak {} implementations (generated {}), {} R-reductions, {} L-reductions, {:?}",
        outcome.stats.peak_impls,
        outcome.stats.generated,
        outcome.stats.r_reductions,
        outcome.stats.l_reductions,
        outcome.stats.elapsed
    );
    if let Some(cache) = &cache {
        let cs = fp_optimizer::shared_cache_stats(cache);
        println!(
            "cache: {} hits, {} misses this run; {} insertions, {} evictions lifetime",
            outcome.stats.cache_hits, outcome.stats.cache_misses, cs.insertions, cs.evictions
        );
        if cache.is_persistent() {
            if let Err(e) = cache.flush() {
                eprintln!("fpopt: cache flush failed: {e}");
                return ExitCode::FAILURE;
            }
            if let Some(ps) = cache.persist_stats() {
                println!(
                    "cache store: {} records appended, {} rotations, {} compactions",
                    ps.appended_records, ps.rotations, ps.compactions
                );
            }
        }
    }

    if args.ascii {
        println!("\n{}", layout.to_ascii(72));
    }
    if let Some(path) = &args.svg {
        let svg = export::layout_to_svg(&layout, &instance.tree, &instance.library, 800);
        if let Err(e) = std::fs::write(path, svg) {
            eprintln!("fpopt: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = &args.dot {
        let dot = export::tree_to_dot(&instance.tree, &instance.library);
        if let Err(e) = std::fs::write(path, dot) {
            eprintln!("fpopt: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = &args.fpt {
        let text = match fp_tree::format::write_instance(&instance) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("fpopt: cannot serialize instance: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("fpopt: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
