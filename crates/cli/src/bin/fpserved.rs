//! `fpserved` — JSON-lines batch server for floorplan optimization,
//! built as a nonblocking event loop in front of the shared job
//! executor.
//!
//! ```sh
//! fpserved --workers 4 < requests.jsonl > responses.jsonl
//! fpserved --tcp 127.0.0.1:7878 --cache-bytes 134217728
//! ```
//!
//! One request per line, one response per line (see
//! `fp_optimizer::serve` for the protocol). All requests — across
//! stdin and every TCP connection — share one content-addressed block
//! cache, so repeated or incrementally edited instances are optimized
//! from warm subtrees. Responses may arrive out of request order; they
//! carry the echoed `id` and the request's `line` for correlation.
//!
//! ## Architecture
//!
//! A single event-loop thread multiplexes the listener and every
//! connection through `poll(2)` — no thread per connection. Complete
//! request lines are parsed on the loop, admission-checked, and
//! submitted as jobs to one work-stealing executor shared by server
//! requests, anneal chains, and intra-request tree splits. Workers
//! hand finished replies back over a channel and wake the loop through
//! a socketpair; the loop owns all socket writes, buffering partial
//! writes until the peer drains them.
//!
//! Per-request `deadline_ms` is enforced twice: the optimizer's
//! governor checks the wall clock itself, and the executor's watchdog
//! additionally fires the request's `CancelToken` so even a stage that
//! misses a poll window is interrupted. Either way the response status
//! is 5 and the server keeps running.
//!
//! A `{"method": "shutdown"}` request (or stdin EOF) drains: no new
//! work is accepted, in-flight requests finish and their responses are
//! written, then the process exits 0.
//!
//! The TCP port doubles as a Prometheus scrape target: a connection
//! whose first line is `GET /metrics ...` receives a one-shot HTTP
//! response with the text exposition of the server's counters (the
//! same numbers as the JSON `{"method": "metrics"}` request) and is
//! then closed.

use std::collections::HashMap;
use std::io::{BufRead, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::raw::c_ulong;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use fp_optimizer::serve::{
    error_reply, execute, idle_timeout_reply, parse_request, shed_reply, Method, Reply, Request,
    ServeState,
};
use fp_optimizer::{cache::SharedBlockCache, CancelToken, Executor, JobClass};

const USAGE: &str = "\
usage: fpserved [options]

  --tcp <addr>           serve JSON-lines over TCP (e.g. 127.0.0.1:7878);
                         without it, requests are read from stdin and
                         responses written to stdout
  --workers <n>          executor worker threads (default 4): concurrent
                         jobs across requests and anneal chains
  --threads <n>          per-request tree-parallelism default (0 = all
                         cores; default $FP_THREADS or 1); a request's own
                         `threads` field overrides it. Spare executor
                         capacity is leased per run, so the pool never
                         oversubscribes past --workers by much
  --cache-bytes <n>      block-cache byte budget (default 67108864)
  --cache-file <dir>     persist the block cache to an append-only
                         segment store in <dir>; replayed on startup
                         (warm restarts), flushed on drain
  --max-inflight <n>     admission limit: optimize requests beyond <n>
                         queued + executing are shed with status 7
                         (default 0 = unlimited)
  --queue-deadline-ms <n>  shed queued optimize requests older than this
                         at dequeue instead of running them late
                         (default 0 = off)
  --idle-timeout-ms <n>  close TCP connections idle past this, after a
                         clean `timeout` status line (default 60000;
                         0 = off)
  --max-conns <n>        bound concurrent TCP connections; excess
                         connections get one status-7 line and are
                         closed (default 0 = unlimited)

protocol: one JSON request per line; see the README's fpserved section.
observability: `{\"method\": \"metrics\"}` returns the server counters;
with --tcp, an HTTP `GET /metrics` on the same port returns the
Prometheus text exposition (cache, persistence, executor, and overload
gauges included).
statuses reuse the fpopt exit-code contract:
  0 success             4  budget exhausted / injected fault
  1 internal error      5  deadline exceeded or cancelled
  2 malformed request   6  no implementation fits the outline
  3 bad instance        7  overloaded: shed before execution, retry ok
";

const DEFAULT_CACHE_BYTES: usize = 64 << 20;
const DEFAULT_IDLE_TIMEOUT_MS: u64 = 60_000;
/// Event-loop poll window: long enough to idle cheaply, short enough
/// that idle-timeout and drain checks stay responsive.
const POLL_TIMEOUT_MS: i32 = 50;

/// Fixed salt for the server's persistent store. Block fingerprints
/// already mix in the per-request [`fp_optimizer::policy_fingerprint`],
/// so one store safely serves requests with different policies; the
/// salt only isolates fpserved stores from other tools' stores.
const STORE_SALT: u128 = 0x6670_7365_7276_6564_2f73_746f_7265_2f31; // "fpserved/store/1"

// ---------------------------------------------------------------------------
// poll(2)
// ---------------------------------------------------------------------------

/// `struct pollfd` (POSIX layout; the kernel writes `revents` only).
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: i32) -> i32;
}

/// Blocks until any fd is ready or the timeout passes. An interrupted
/// or failed wait is reported as "nothing ready"; the caller's loop
/// re-derives interest from its own state every pass, so that is safe.
fn poll_wait(fds: &mut [PollFd], timeout_ms: i32) -> usize {
    // SAFETY: `fds` is an exclusive slice of `pollfd`-layout structs,
    // valid for the duration of the call; poll(2) writes only the
    // `revents` fields within the passed length.
    let ready = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    usize::try_from(ready).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Arguments
// ---------------------------------------------------------------------------

struct Args {
    tcp: Option<String>,
    workers: usize,
    threads: Option<usize>,
    cache_bytes: usize,
    cache_file: Option<PathBuf>,
    max_inflight: u64,
    queue_deadline: Option<Duration>,
    idle_timeout_ms: u64,
    max_conns: usize,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        workers: 4,
        threads: None,
        cache_bytes: DEFAULT_CACHE_BYTES,
        cache_file: None,
        max_inflight: 0,
        queue_deadline: None,
        idle_timeout_ms: DEFAULT_IDLE_TIMEOUT_MS,
        max_conns: 0,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if args.workers == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--cache-bytes" => {
                args.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|e| format!("--cache-bytes: {e}"))?;
            }
            "--cache-file" => {
                args.cache_file = Some(PathBuf::from(value("--cache-file")?));
            }
            "--max-inflight" => {
                args.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("--max-inflight: {e}"))?;
            }
            "--queue-deadline-ms" => {
                let ms: u64 = value("--queue-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--queue-deadline-ms: {e}"))?;
                args.queue_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--idle-timeout-ms" => {
                args.idle_timeout_ms = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?;
            }
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(args)
}

// ---------------------------------------------------------------------------
// Request execution on the executor
// ---------------------------------------------------------------------------

fn heavy(request: &Request) -> bool {
    matches!(
        request.method,
        Method::Optimize(_) | Method::Pareto(_) | Method::Anneal(_)
    )
}

/// The request's own `deadline_ms`, when its method carries one.
fn request_deadline(request: &Request) -> Option<Duration> {
    match &request.method {
        Method::Optimize(req) | Method::Pareto(req) => req.deadline_ms.map(Duration::from_millis),
        _ => None,
    }
}

/// A heavy job's admission slot: when it entered the queue and how
/// stale it may get before being shed at dequeue. `None` for control
/// methods, which bypass admission entirely.
struct QueueSlot {
    enqueued: Instant,
    deadline: Option<Duration>,
}

/// Runs one request on an executor worker and returns the rendered
/// reply. A `Some` slot is the job's in-flight admission, released
/// here exactly once — shed or executed.
fn service_request(
    request: &Request,
    line: &str,
    line_no: u64,
    state: &ServeState,
    cancel: CancelToken,
    slot: Option<QueueSlot>,
) -> Reply {
    // Queue-deadline shedding: a job that waited longer than the client
    // plausibly still cares about is answered with status 7 at dequeue
    // instead of burning a worker on a stale request.
    if let Some(slot) = &slot {
        if slot.deadline.is_some_and(|d| slot.enqueued.elapsed() > d) {
            state.note_shed();
            state.finish_job();
            return shed_reply(line, line_no, "queue_deadline");
        }
    }
    let reply = execute(request, line_no, state, Some(cancel));
    if slot.is_some() {
        state.finish_job();
    }
    reply
}

/// One parsed line's disposition at the event loop / reader.
enum Disposition {
    /// Reply rendered inline (parse error or admission shed).
    Inline(Reply),
    /// Job submitted to the executor; the reply arrives via the
    /// submitting mode's delivery channel.
    Submitted,
}

/// Parses, admission-checks, and (when admitted) submits one request
/// line. `deliver` is invoked exactly once from an executor worker
/// with the finished reply for submitted lines.
fn dispatch_line(
    line: String,
    line_no: u64,
    state: &Arc<ServeState>,
    exec: &Arc<Executor>,
    queue_deadline: Option<Duration>,
    deliver: impl FnOnce(Reply) + Send + 'static,
) -> Disposition {
    let request = match parse_request(&line) {
        Err(e) => return Disposition::Inline(error_reply(line_no, &e)),
        Ok(request) => request,
    };
    // Control methods (ping/stats/metrics/shutdown) always pass — they
    // are cheap, and a drain request must get through even under flood;
    // only optimize/pareto/anneal lines consume admission slots.
    let admitted = heavy(&request);
    if admitted && !state.try_admit() {
        state.note_shed();
        exec.note_shed("queue_full");
        return Disposition::Inline(shed_reply(&line, line_no, "queue_full"));
    }
    let cancel = CancelToken::new();
    let deadline = request_deadline(&request).map(|d| Instant::now() + d);
    let slot = admitted.then(|| QueueSlot {
        enqueued: Instant::now(),
        deadline: queue_deadline,
    });
    let state = Arc::clone(state);
    let _handle = exec.submit_with(JobClass::Serve, deadline, Some(cancel.clone()), move || {
        let reply = service_request(&request, &line, line_no, &state, cancel, slot);
        deliver(reply);
    });
    Disposition::Submitted
}

// ---------------------------------------------------------------------------
// stdin/stdout mode
// ---------------------------------------------------------------------------

fn serve_stdin(
    state: Arc<ServeState>,
    exec: Arc<Executor>,
    shutdown: Arc<AtomicBool>,
    queue_deadline: Option<Duration>,
) {
    let out = Arc::new(Mutex::new(std::io::stdout()));
    let outstanding = Arc::new(AtomicU64::new(0));
    // stdin is read on its own thread: the blocking `lines()` iterator
    // cannot observe the shutdown flag, so a `shutdown` request would
    // otherwise only take effect at the next input line (or EOF). The
    // main thread multiplexes incoming lines and the flag via a channel
    // timeout. The reader thread is left blocked on stdin at exit;
    // process teardown reaps it.
    let (line_tx, line_rx) = mpsc::channel::<(u64, String)>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for (index, line) in stdin.lock().lines().enumerate() {
            let Ok(line) = line else { break };
            if line_tx.send((index as u64 + 1, line)).is_err() {
                break;
            }
        }
    });
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match line_rx.recv_timeout(Duration::from_millis(50)) {
            Ok((line_no, line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let job_out = Arc::clone(&out);
                let outstanding_done = Arc::clone(&outstanding);
                let shutdown_flag = Arc::clone(&shutdown);
                outstanding.fetch_add(1, Ordering::AcqRel);
                let disposition =
                    dispatch_line(line, line_no, &state, &exec, queue_deadline, move |reply| {
                        if let Ok(mut out) = job_out.lock() {
                            let _ = out.write_all(reply.json.as_bytes());
                            let _ = out.write_all(b"\n");
                            let _ = out.flush();
                        }
                        if reply.shutdown {
                            shutdown_flag.store(true, Ordering::SeqCst);
                        }
                        outstanding_done.fetch_sub(1, Ordering::AcqRel);
                    });
                if let Disposition::Inline(reply) = disposition {
                    outstanding.fetch_sub(1, Ordering::AcqRel);
                    if let Ok(mut out) = out.lock() {
                        let _ = out.write_all(reply.json.as_bytes());
                        let _ = out.write_all(b"\n");
                        let _ = out.flush();
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        }
    }
    // Graceful drain: every submitted job finishes and flushes its
    // response before the caller tears the executor down.
    while outstanding.load(Ordering::Acquire) > 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    shutdown.store(true, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// TCP event loop
// ---------------------------------------------------------------------------

/// The overload knobs the TCP event loop enforces.
#[derive(Clone, Copy)]
struct TcpPolicy {
    queue_deadline: Option<Duration>,
    idle_timeout_ms: u64,
    max_conns: usize,
}

/// One client connection's loop-owned state.
struct Conn {
    stream: TcpStream,
    /// Bytes of a partial input line (completed lines are consumed).
    rbuf: Vec<u8>,
    /// Rendered output not yet accepted by the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    /// 1-based request line within THIS connection's stream, as the
    /// protocol docs define it.
    line_no: u64,
    /// Jobs submitted for this connection whose replies are pending.
    inflight: usize,
    /// Peer closed its write half (EOF seen); drain and close.
    read_closed: bool,
    /// Close once `wbuf` flushes and `inflight` drains (HTTP one-shot,
    /// idle timeout, server drain).
    close_after_flush: bool,
    /// Advanced on every byte of read progress — partial lines count,
    /// so slow-but-live peers sending fragmented requests are never
    /// cut off.
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            line_no: 0,
            inflight: 0,
            read_closed: false,
            close_after_flush: false,
            last_activity: Instant::now(),
        }
    }

    fn queue_line(&mut self, json: &str) {
        self.wbuf.extend_from_slice(json.as_bytes());
        self.wbuf.push(b'\n');
    }

    fn queue_raw(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }

    fn flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }

    /// Writes as much buffered output as the socket accepts. `false`
    /// means the peer is gone and the connection should be dropped.
    fn pump_write(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.flushed() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        true
    }
}

/// The HTTP one-shot for `GET` probes on the JSON-lines port: the
/// `/metrics` target gets the Prometheus text exposition, anything
/// else a 404. One response, then close.
fn http_response(state: &ServeState, request_line: &str) -> Vec<u8> {
    let target = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if target == "/metrics" {
        ("200 OK", state.render_prometheus())
    } else {
        ("404 Not Found", "only /metrics is served here\n".to_owned())
    };
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// What a poll slot points at.
enum Target {
    Waker,
    Listener,
    Conn(u64),
}

fn serve_tcp(
    addr: &str,
    state: Arc<ServeState>,
    exec: Arc<Executor>,
    policy: TcpPolicy,
) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set nonblocking: {e}"))?;
    if let Ok(local) = listener.local_addr() {
        // Announced on stderr so test harnesses with `--tcp addr:0` can
        // discover the bound port.
        eprintln!("fpserved: listening on {local}");
    }

    // Workers wake the loop by writing a byte into this socketpair
    // after handing a reply to the channel.
    let (wake_rx, wake_tx) = UnixStream::pair().map_err(|e| format!("socketpair: {e}"))?;
    wake_rx
        .set_nonblocking(true)
        .map_err(|e| format!("socketpair: {e}"))?;
    wake_tx
        .set_nonblocking(true)
        .map_err(|e| format!("socketpair: {e}"))?;
    let wake_tx = Arc::new(wake_tx);
    let (reply_tx, reply_rx) = mpsc::channel::<(u64, Reply)>();

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut draining = false;
    let idle_timeout =
        (policy.idle_timeout_ms > 0).then(|| Duration::from_millis(policy.idle_timeout_ms));

    let mut fds: Vec<PollFd> = Vec::new();
    let mut targets: Vec<Target> = Vec::new();
    loop {
        // (Re)build the interest set; connection counts are small
        // enough that rebuilding beats bookkeeping.
        fds.clear();
        targets.clear();
        fds.push(PollFd {
            fd: wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        targets.push(Target::Waker);
        if !draining {
            fds.push(PollFd {
                fd: listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            targets.push(Target::Listener);
        }
        for (&token, conn) in &conns {
            let mut events = 0;
            if !conn.read_closed && !conn.close_after_flush && !draining {
                events |= POLLIN;
            }
            if !conn.flushed() {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            targets.push(Target::Conn(token));
        }
        let _ready = poll_wait(&mut fds, POLL_TIMEOUT_MS);

        // Reply delivery: queue rendered responses onto their
        // connections' write buffers. A reply for a connection that
        // died in the meantime is dropped; its shutdown bit still
        // counts (the drain must proceed even if the requester left).
        if fds[0].revents & POLLIN != 0 {
            let mut sink = [0u8; 64];
            while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        for (token, reply) in reply_rx.try_iter() {
            if reply.shutdown {
                draining = true;
            }
            if let Some(conn) = conns.get_mut(&token) {
                conn.queue_line(&reply.json);
                conn.inflight -= 1;
            }
        }

        // Accept, read, and write according to readiness.
        let mut dead: Vec<u64> = Vec::new();
        for (slot, target) in targets.iter().enumerate() {
            let revents = fds[slot].revents;
            match target {
                Target::Waker => {}
                Target::Listener => {
                    if revents & POLLIN == 0 {
                        continue;
                    }
                    loop {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if policy.max_conns > 0 && conns.len() >= policy.max_conns {
                                    // Bounded backlog: one structured
                                    // status-7 line (blocking write is
                                    // fine for a one-shot), then close.
                                    state.note_shed();
                                    exec.note_shed("too_many_connections");
                                    let mut stream = stream;
                                    let reply = shed_reply("", 0, "too_many_connections");
                                    let _ = stream.write_all(reply.json.as_bytes());
                                    let _ = stream.write_all(b"\n");
                                    continue;
                                }
                                if stream.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                next_token += 1;
                                conns.insert(next_token, Conn::new(stream));
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                            Err(_) => break,
                        }
                    }
                }
                Target::Conn(token) => {
                    let Some(conn) = conns.get_mut(token) else {
                        continue;
                    };
                    if revents & POLLNVAL != 0 {
                        dead.push(*token);
                        continue;
                    }
                    if revents & (POLLIN | POLLERR | POLLHUP) != 0
                        && !read_conn(conn, *token, &state, &exec, policy, &reply_tx, &wake_tx)
                    {
                        dead.push(*token);
                        continue;
                    }
                    if !conn.flushed() && revents & POLLOUT != 0 && !conn.pump_write() {
                        dead.push(*token);
                    }
                }
            }
        }
        for token in dead {
            conns.remove(&token);
        }

        // Fresh output queued by replies: push it out eagerly rather
        // than waiting one poll cycle for POLLOUT.
        let mut dead: Vec<u64> = Vec::new();
        for (&token, conn) in &mut conns {
            if !conn.flushed() && !conn.pump_write() {
                dead.push(token);
            }
        }
        for token in dead {
            conns.remove(&token);
        }

        // Idle-timeout sweep, and closing of finished connections.
        let now = Instant::now();
        conns.retain(|_, conn| {
            if let Some(limit) = idle_timeout {
                if !conn.read_closed
                    && !conn.close_after_flush
                    && conn.inflight == 0
                    && now.duration_since(conn.last_activity) >= limit
                {
                    // Truly idle: say why, then close.
                    conn.queue_line(&idle_timeout_reply(policy.idle_timeout_ms).json);
                    conn.close_after_flush = true;
                    let _ = conn.pump_write();
                }
            }
            let finished = conn.inflight == 0
                && conn.flushed()
                && (conn.close_after_flush || conn.read_closed || draining);
            !finished
        });

        if draining && conns.values().all(|c| c.inflight == 0 && c.flushed()) {
            // Everything accepted has been answered and delivered (or
            // its connection is gone); stop.
            break;
        }
    }
    Ok(())
}

/// Drains readable bytes from one connection, submitting every
/// completed line. `false` drops the connection immediately (I/O
/// error); EOF is handled gracefully via `read_closed`.
fn read_conn(
    conn: &mut Conn,
    token: u64,
    state: &Arc<ServeState>,
    exec: &Arc<Executor>,
    policy: TcpPolicy,
    reply_tx: &mpsc::Sender<(u64, Reply)>,
    wake_tx: &Arc<UnixStream>,
) -> bool {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    // Consume complete lines; a trailing unterminated line at EOF
    // still counts as a request.
    loop {
        let line_end = conn.rbuf.iter().position(|&b| b == b'\n');
        let raw = match line_end {
            Some(end) => {
                let mut raw: Vec<u8> = conn.rbuf.drain(..=end).collect();
                raw.pop(); // the newline
                raw
            }
            None if conn.read_closed && !conn.rbuf.is_empty() => std::mem::take(&mut conn.rbuf),
            None => break,
        };
        let line = String::from_utf8_lossy(&raw)
            .trim_end_matches('\r')
            .to_owned();
        // A first line spelling an HTTP request marks a scrape probe,
        // not a JSON peer: one response, then close.
        if conn.line_no == 0 && line.trim_start().starts_with("GET ") {
            let response = http_response(state, &line);
            conn.queue_raw(&response);
            conn.close_after_flush = true;
            conn.read_closed = true;
            return true;
        }
        conn.line_no += 1;
        if line.trim().is_empty() {
            continue;
        }
        let line_no = conn.line_no;
        let reply_tx = reply_tx.clone();
        let wake_tx = Arc::clone(wake_tx);
        let disposition = dispatch_line(
            line,
            line_no,
            state,
            exec,
            policy.queue_deadline,
            move |reply| {
                let _ = reply_tx.send((token, reply));
                // A full wake pipe already guarantees a pending wake.
                let _ = (&*wake_tx).write(&[1]);
            },
        );
        match disposition {
            Disposition::Inline(reply) => conn.queue_line(&reply.json),
            Disposition::Submitted => conn.inflight += 1,
        }
    }
    true
}

// ---------------------------------------------------------------------------
// main
// ---------------------------------------------------------------------------

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("fpserved: {msg}\n");
            }
            eprint!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let cache = match &args.cache_file {
        None => SharedBlockCache::new(args.cache_bytes),
        Some(dir) => match SharedBlockCache::open_persistent(dir, args.cache_bytes, STORE_SALT) {
            Ok(cache) => {
                let recovery = cache.recovery();
                eprintln!(
                    "fpserved: cache store {} replayed {} entries ({} bytes){}",
                    dir.display(),
                    recovery.recovered_entries,
                    recovery.recovered_bytes,
                    if recovery.truncated_segments > 0 {
                        " after truncating a torn tail"
                    } else {
                        ""
                    }
                );
                cache
            }
            Err(e) => {
                eprintln!("fpserved: cannot open cache store: {e}");
                return ExitCode::from(1);
            }
        },
    };
    let exec = Executor::new(args.workers);
    let mut state = ServeState::with_cache(cache)
        .with_max_inflight(args.max_inflight)
        .with_executor(Arc::clone(&exec))
        .with_anneal_backend(fp_anneal::serve_backend());
    if let Some(threads) = args.threads {
        state = state.with_threads(threads);
    }
    let state = Arc::new(state);
    let shutdown = Arc::new(AtomicBool::new(false));

    let served = match &args.tcp {
        Some(addr) => {
            let policy = TcpPolicy {
                queue_deadline: args.queue_deadline,
                idle_timeout_ms: args.idle_timeout_ms,
                max_conns: args.max_conns,
            };
            serve_tcp(addr, Arc::clone(&state), Arc::clone(&exec), policy)
        }
        None => {
            serve_stdin(
                Arc::clone(&state),
                Arc::clone(&exec),
                shutdown,
                args.queue_deadline,
            );
            Ok(())
        }
    };
    if let Err(msg) = served {
        eprintln!("fpserved: {msg}");
        return ExitCode::from(1);
    }
    // Graceful drain: every queued job has run and flushed its
    // response; now stop the workers and make the persistent store
    // durable before exit. Stderr may already be gone (the supervisor
    // stopped listening), so report via a non-panicking write.
    exec.shutdown();
    if state.cache().is_persistent() {
        let mut stderr = std::io::stderr();
        match state.cache().flush() {
            Ok(()) => {
                let _ = writeln!(stderr, "fpserved: cache store flushed clean");
            }
            Err(e) => {
                let _ = writeln!(stderr, "fpserved: cache flush failed: {e}");
            }
        }
    }
    ExitCode::SUCCESS
}
