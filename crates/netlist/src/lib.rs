//! Netlist modeling for wirelength-aware floorplan optimization.
//!
//! The area engine enumerates *shapes*; making the result a floorplan
//! people could route needs *connectivity*. This crate supplies it:
//!
//! * a netlist model ([`Netlist`]): module pins with per-implementation
//!   relative offsets, multi-terminal nets, and I/O pads fixed on the
//!   die boundary;
//! * the `.fpn` text format ([`parse_netlist`] / [`write_netlist`])
//!   with line+column parse errors, mirroring the `.fpt` instance
//!   format;
//! * an incremental HPWL evaluator ([`HpwlEvaluator`]): per-net
//!   bounding boxes cached so an annealer move re-evaluates only the
//!   nets it touched;
//! * soft modules ([`SoftSpec`]): continuous aspect-ratio ranges
//!   discretized into ordinary implementation lists, so the paper's
//!   CSPP selection machinery applies unchanged;
//! * Pareto utilities ([`pareto_front`], [`hypervolume`]) over (area,
//!   HPWL, outline fit) objective vectors;
//! * deterministic netlist generation ([`random_netlist`]) for the
//!   paper benchmarks, which ship without connectivity.
//!
//! ```
//! use fp_netlist::{parse_netlist, HpwlEvaluator};
//! use fp_tree::{generators, layout};
//!
//! let bench = generators::fp1();
//! let library = generators::module_library(&bench.tree, 3, 1);
//! let netlist = fp_netlist::random_netlist(&library, 20, 1);
//! let bound = netlist.bind(&library)?;
//! let assignment = layout::Assignment::first_fit(bench.tree.leaves_in_order().len());
//! let placed = layout::realize(&bench.tree, &library, &assignment).expect("realizes");
//! let mut eval = HpwlEvaluator::new(&bound);
//! let hpwl = eval.evaluate_full(&bench.tree, &placed, &assignment).expect("evaluates");
//! assert!(hpwl > 0);
//! # Ok::<(), fp_netlist::BindError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod format;
mod generate;
mod hpwl;
mod model;
mod pareto;
mod soft;

pub use format::{parse_netlist, write_netlist, ParseNetlistError};
pub use generate::random_netlist;
pub use hpwl::{EvalError, HpwlEvaluator};
pub use model::{
    netlist_fingerprint, BindError, BoundEndpoint, BoundNet, BoundNetlist, Endpoint, Net, Netlist,
    Pad, Pin, PinOffset,
};
pub use pareto::{hypervolume, pareto_front, pareto_insert, ParetoPoint};
pub use soft::SoftSpec;

#[cfg(test)]
mod proptests {
    use super::*;
    use fp_tree::{generators, layout};
    use proptest::prelude::*;

    proptest! {
        /// Incremental HPWL agrees exactly with a fresh full evaluation
        /// after arbitrary move sequences (implementation-choice flips
        /// across random leaves).
        #[test]
        fn incremental_matches_full(seed in 0u64..1_000, moves in proptest::collection::vec((0usize..18, 0usize..3), 1..12)) {
            let bench = generators::fp2();
            let library = generators::module_library(&bench.tree, 3, seed);
            let netlist = random_netlist(&library, 25, seed.wrapping_add(1));
            let bound = netlist.bind(&library).expect("binds");
            let leaves = bench.tree.leaves_in_order().len();

            let mut assignment = layout::Assignment::first_fit(leaves);
            let placed = layout::realize(&bench.tree, &library, &assignment).expect("realizes");
            let mut incremental = HpwlEvaluator::new(&bound);
            incremental.update(&bench.tree, &placed, &assignment).expect("first eval");

            for (slot, choice) in moves {
                let slot = slot % leaves;
                let module_impls = {
                    use fp_tree::NodeKind;
                    let leaf = bench.tree.leaves_in_order()[slot];
                    match bench.tree.node(leaf).map(|n| &n.kind) {
                        Some(&NodeKind::Leaf(m)) => library[m].implementations().len(),
                        _ => 1,
                    }
                };
                assignment.choices[slot] = choice % module_impls;
                let placed = layout::realize(&bench.tree, &library, &assignment).expect("realizes");
                let fast = incremental.update(&bench.tree, &placed, &assignment).expect("incremental");
                let mut fresh = HpwlEvaluator::new(&bound);
                let full = fresh.evaluate_full(&bench.tree, &placed, &assignment).expect("full");
                prop_assert_eq!(fast, full);
            }
        }

        /// The `.fpn` writer round-trips every generated netlist.
        #[test]
        fn fpn_round_trip(nets in 1usize..40, seed in 0u64..1_000) {
            let bench = generators::fp1();
            let library = generators::module_library(&bench.tree, 4, seed);
            let netlist = random_netlist(&library, nets, seed);
            let reparsed = parse_netlist(&write_netlist(&netlist)).expect("round-trips");
            prop_assert_eq!(netlist, reparsed);
        }

        /// The parser is total: arbitrary input never panics.
        #[test]
        fn parser_total_on_random_input(text in ".{0,200}") {
            let _ = parse_netlist(&text);
        }
    }
}
