//! A human-writable text format for netlists (`.fpn`).
//!
//! ```text
//! # comment
//! netlist demo
//! die 40x30
//! pad clk 0 15
//! pad rst 40 0
//! pin cpu d0 0.5 1
//! pin ram a0 offsets 1,2 3,1
//! net bus cpu.d0 ram.a0 clk
//! ```
//!
//! * `netlist <name>` — optional header naming the netlist.
//! * `die <w>x<h>` — the die rectangle pad positions refer to; required
//!   before the first `pad`. Pad positions are scaled proportionally
//!   onto the realized envelope at evaluation time.
//! * `pad <name> <x> <y>` — an I/O pad; `(x, y)` must lie **on the die
//!   boundary** (x ∈ {0, w} or y ∈ {0, h}).
//! * `pin <module> <name> <fx> <fy>` — a pin at fractional offsets
//!   `fx, fy ∈ [0, 1]` of whichever implementation the optimizer picks.
//! * `pin <module> <name> offsets <dx>,<dy> …` — absolute offsets, one
//!   per implementation in the module's list order (validated at bind
//!   time).
//! * `net <name> <endpoint> …` — at least two endpoints; an endpoint is
//!   `<module>.<pin>` (a declared pin) or a bare `<pad-name>`.
//!
//! `#` starts a comment anywhere; each directive occupies one line. The
//! format round-trips through [`write_netlist`] / [`parse_netlist`].

use core::fmt;
use std::collections::HashSet;

use fp_geom::{Coord, Point, Rect};

use crate::model::{Endpoint, Net, Netlist, Pad, Pin, PinOffset};

/// A parse error with 1-based line and column information, mirroring
/// `fp_tree::format::ParseInstanceError` for the `.fpt` format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// 1-based line number of the offending token (0 for end-of-input).
    pub line: usize,
    /// 1-based column of the offending token's first character (0 when
    /// no single token is at fault).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "netlist parse error at end of input: {}", self.message)
        } else {
            write!(
                f,
                "netlist parse error at line {}, column {}: {}",
                self.line, self.col, self.message
            )
        }
    }
}

impl std::error::Error for ParseNetlistError {}

/// `(line, column)` of a token's first character, both 1-based.
type Pos = (usize, usize);

fn err_at(pos: Pos, message: String) -> ParseNetlistError {
    ParseNetlistError {
        line: pos.0,
        col: pos.1,
        message,
    }
}

/// Splits one comment-stripped line into `(word, position)` tokens.
fn words(line_no: usize, line: &str) -> Vec<(String, Pos)> {
    let mut out = Vec::new();
    let mut word = String::new();
    let mut word_col = 0usize;
    for (col0, ch) in line.chars().enumerate() {
        if ch.is_whitespace() {
            if !word.is_empty() {
                out.push((std::mem::take(&mut word), (line_no, word_col)));
            }
        } else {
            if word.is_empty() {
                word_col = col0 + 1;
            }
            word.push(ch);
        }
    }
    if !word.is_empty() {
        out.push((word, (line_no, word_col)));
    }
    out
}

fn parse_size(word: &str, pos: Pos) -> Result<Rect, ParseNetlistError> {
    let bad = || err_at(pos, format!("expected <width>x<height>, found `{word}`"));
    let (w, h) = word.split_once(['x', 'X']).ok_or_else(bad)?;
    let w: Coord = w.parse().map_err(|_| bad())?;
    let h: Coord = h.parse().map_err(|_| bad())?;
    if w == 0 || h == 0 {
        return Err(err_at(pos, format!("zero dimension in `{word}`")));
    }
    if w > fp_geom::MAX_COORD || h > fp_geom::MAX_COORD {
        return Err(err_at(
            pos,
            format!(
                "dimension in `{word}` exceeds the supported maximum {}",
                fp_geom::MAX_COORD
            ),
        ));
    }
    Ok(Rect::new(w, h))
}

fn parse_coord(word: &str, pos: Pos, what: &str) -> Result<Coord, ParseNetlistError> {
    word.parse()
        .map_err(|_| err_at(pos, format!("expected {what}, found `{word}`")))
}

fn parse_fraction(word: &str, pos: Pos) -> Result<f64, ParseNetlistError> {
    let f: f64 = word.parse().map_err(|_| {
        err_at(
            pos,
            format!("expected a fraction in [0, 1], found `{word}`"),
        )
    })?;
    if !(0.0..=1.0).contains(&f) {
        return Err(err_at(pos, format!("fraction `{word}` is outside [0, 1]")));
    }
    Ok(f)
}

/// Parses a netlist from its `.fpn` text form.
///
/// Reference resolution happens here: every net endpoint must name a
/// previously declared pin (`module.pin`) or pad, every pad needs a
/// prior `die`, pad positions must sit on the die boundary, net names
/// must be unique, and every net needs at least two distinct endpoints —
/// each violation is reported with the offending token's line and
/// column.
///
/// # Errors
///
/// See [`ParseNetlistError`].
pub fn parse_netlist(input: &str) -> Result<Netlist, ParseNetlistError> {
    let mut netlist = Netlist::new("netlist");
    let mut pad_names: HashSet<String> = HashSet::new();
    let mut pin_keys: HashSet<(String, String)> = HashSet::new();
    let mut net_names: HashSet<String> = HashSet::new();

    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("");
        let tokens = words(line_no, line);
        let Some((keyword, key_pos)) = tokens.first() else {
            continue;
        };
        let rest = &tokens[1..];
        let missing = |what: &str| err_at(*key_pos, format!("`{keyword}` needs {what}"));
        match keyword.as_str() {
            "netlist" => {
                let (name, _) = rest.first().ok_or_else(|| missing("a name"))?;
                netlist.name = name.clone();
            }
            "die" => {
                if netlist.die.is_some() {
                    return Err(err_at(*key_pos, "duplicate `die` directive".to_owned()));
                }
                let (size, pos) = rest.first().ok_or_else(|| missing("a <width>x<height>"))?;
                netlist.die = Some(parse_size(size, *pos)?);
            }
            "pad" => {
                let [(name, name_pos), (x, x_pos), (y, y_pos)] = rest else {
                    return Err(missing("`<name> <x> <y>`"));
                };
                let Some(die) = netlist.die else {
                    return Err(err_at(
                        *key_pos,
                        "`pad` requires a prior `die` directive".to_owned(),
                    ));
                };
                if !pad_names.insert(name.clone()) {
                    return Err(err_at(*name_pos, format!("duplicate pad `{name}`")));
                }
                let x = parse_coord(x, *x_pos, "a pad x coordinate")?;
                let y = parse_coord(y, *y_pos, "a pad y coordinate")?;
                let on_boundary =
                    x <= die.w && y <= die.h && (x == 0 || x == die.w || y == 0 || y == die.h);
                if !on_boundary {
                    return Err(err_at(
                        *x_pos,
                        format!("pad `{name}` at ({x}, {y}) is not on the {die} die boundary"),
                    ));
                }
                netlist.pads.push(Pad {
                    name: name.clone(),
                    position: Point::new(x, y),
                });
            }
            "pin" => {
                let ((module, _), (name, name_pos), offset_tokens) = match rest {
                    [m, n, o @ ..] if !o.is_empty() => (m, n, o),
                    _ => return Err(missing("`<module> <name> <fx> <fy>` or `offsets …`")),
                };
                if !pin_keys.insert((module.clone(), name.clone())) {
                    return Err(err_at(
                        *name_pos,
                        format!("duplicate pin `{module}.{name}`"),
                    ));
                }
                let offset = if offset_tokens[0].0 == "offsets" {
                    let mut offsets = Vec::new();
                    for (word, pos) in &offset_tokens[1..] {
                        let bad = || err_at(*pos, format!("expected `<dx>,<dy>`, found `{word}`"));
                        let (dx, dy) = word.split_once(',').ok_or_else(bad)?;
                        let dx: Coord = dx.parse().map_err(|_| bad())?;
                        let dy: Coord = dy.parse().map_err(|_| bad())?;
                        offsets.push((dx, dy));
                    }
                    if offsets.is_empty() {
                        return Err(err_at(
                            offset_tokens[0].1,
                            format!("pin `{module}.{name}` declares no offsets"),
                        ));
                    }
                    PinOffset::PerImpl(offsets)
                } else {
                    let [(fx, fx_pos), (fy, fy_pos)] = offset_tokens else {
                        return Err(missing("two fractional offsets `<fx> <fy>`"));
                    };
                    PinOffset::Fraction {
                        fx: parse_fraction(fx, *fx_pos)?,
                        fy: parse_fraction(fy, *fy_pos)?,
                    }
                };
                netlist.pins.push(Pin {
                    module: module.clone(),
                    name: name.clone(),
                    offset,
                });
            }
            "net" => {
                let ((name, name_pos), endpoint_tokens) = match rest {
                    [n, e @ ..] => (n, e),
                    [] => return Err(missing("a net name and endpoints")),
                };
                if !net_names.insert(name.clone()) {
                    return Err(err_at(*name_pos, format!("duplicate net `{name}`")));
                }
                let mut endpoints = Vec::new();
                for (word, pos) in endpoint_tokens {
                    let ep = if let Some((module, pin)) = word.split_once('.') {
                        let Some(index) = netlist.pin_index(module, pin) else {
                            return Err(err_at(
                                *pos,
                                format!("net `{name}` references undeclared pin `{word}`"),
                            ));
                        };
                        Endpoint::Pin(index)
                    } else {
                        let Some(index) = netlist.pad_index(word) else {
                            return Err(err_at(
                                *pos,
                                format!("net `{name}` references undeclared pad `{word}`"),
                            ));
                        };
                        Endpoint::Pad(index)
                    };
                    if endpoints.contains(&ep) {
                        return Err(err_at(
                            *pos,
                            format!("net `{name}` lists endpoint `{word}` twice"),
                        ));
                    }
                    endpoints.push(ep);
                }
                if endpoints.len() < 2 {
                    return Err(err_at(
                        *name_pos,
                        format!(
                            "net `{name}` has {} endpoint(s); a net needs at least two",
                            endpoints.len()
                        ),
                    ));
                }
                netlist.nets.push(Net {
                    name: name.clone(),
                    endpoints,
                });
            }
            other => {
                return Err(err_at(
                    *key_pos,
                    format!("unknown directive `{other}` (expected netlist/die/pad/pin/net)"),
                ));
            }
        }
    }
    Ok(netlist)
}

/// Renders a netlist in its `.fpn` text form; the output parses back to
/// an equal netlist ([`parse_netlist`] ∘ [`write_netlist`] is the
/// identity on valid netlists).
#[must_use]
pub fn write_netlist(netlist: &Netlist) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "netlist {}", netlist.name);
    if let Some(die) = netlist.die {
        let _ = writeln!(out, "die {}x{}", die.w, die.h);
    }
    for pad in &netlist.pads {
        let _ = writeln!(
            out,
            "pad {} {} {}",
            pad.name, pad.position.x, pad.position.y
        );
    }
    for pin in &netlist.pins {
        match &pin.offset {
            PinOffset::Fraction { fx, fy } => {
                let _ = writeln!(out, "pin {} {} {fx} {fy}", pin.module, pin.name);
            }
            PinOffset::PerImpl(offsets) => {
                let _ = write!(out, "pin {} {} offsets", pin.module, pin.name);
                for (dx, dy) in offsets {
                    let _ = write!(out, " {dx},{dy}");
                }
                out.push('\n');
            }
        }
    }
    for net in &netlist.nets {
        let _ = write!(out, "net {}", net.name);
        for &ep in &net.endpoints {
            match ep {
                Endpoint::Pin(i) => {
                    let pin = &netlist.pins[i];
                    let _ = write!(out, " {}.{}", pin.module, pin.name);
                }
                Endpoint::Pad(i) => {
                    let _ = write!(out, " {}", netlist.pads[i].name);
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "\
# a demo netlist
netlist demo
die 40x30
pad clk 0 15
pad rst 40 0
pin cpu d0 0.5 1
pin ram a0 offsets 1,2 3,1
net bus cpu.d0 ram.a0 clk
net reset cpu.d0 rst
";

    #[test]
    fn parses_the_demo() {
        let n = parse_netlist(DEMO).expect("parses");
        assert_eq!(n.name, "demo");
        assert_eq!(n.die, Some(Rect::new(40, 30)));
        assert_eq!(n.pads.len(), 2);
        assert_eq!(n.pins.len(), 2);
        assert_eq!(n.nets.len(), 2);
        assert_eq!(n.nets[0].endpoints.len(), 3);
    }

    #[test]
    fn round_trips() {
        let n = parse_netlist(DEMO).expect("parses");
        let text = write_netlist(&n);
        let again = parse_netlist(&text).expect("reparses");
        assert_eq!(n, again);
        // Writing is a fixpoint.
        assert_eq!(text, write_netlist(&again));
    }

    #[test]
    fn error_corpus_reports_positions() {
        // (input, expected line, expected col, message fragment)
        let cases: &[(&str, usize, usize, &str)] = &[
            (
                "die 40x30\npad a 3 7",
                2,
                7,
                "not on the 40x30 die boundary",
            ),
            ("pad a 0 0", 1, 1, "requires a prior `die`"),
            ("die 4x4\npad a 0 0\npad a 4 4", 3, 5, "duplicate pad `a`"),
            ("die 0x5", 1, 5, "zero dimension"),
            ("die 4x4\ndie 5x5", 2, 1, "duplicate `die`"),
            ("pin m p 0.5 1.5", 1, 13, "outside [0, 1]"),
            ("pin m p 0.5 0.5\npin m p 0 0", 2, 7, "duplicate pin `m.p`"),
            ("pin m p offsets", 1, 9, "declares no offsets"),
            ("pin m p offsets 1;2", 1, 17, "expected `<dx>,<dy>`"),
            ("net n m.p x", 1, 7, "undeclared pin `m.p`"),
            ("net n padx", 1, 7, "undeclared pad `padx`"),
            ("pin m p 0 0\nnet n m.p", 2, 5, "at least two"),
            ("pin m p 0 0\nnet n m.p m.p", 2, 11, "twice"),
            (
                "pin m p 0 0\npin q r 0 0\nnet n m.p q.r\nnet n q.r m.p",
                4,
                5,
                "duplicate net `n`",
            ),
            ("frobnicate x", 1, 1, "unknown directive `frobnicate`"),
            ("pin m", 1, 1, "`pin` needs"),
        ];
        for (input, line, col, needle) in cases {
            let err = parse_netlist(input).expect_err(input);
            assert_eq!((err.line, err.col), (*line, *col), "{input}: {err}");
            assert!(
                err.message.contains(needle),
                "{input}: `{}` lacks `{needle}`",
                err.message
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let n = parse_netlist("\n# hi\n  # indented\nnetlist x # trailing\n").expect("parses");
        assert_eq!(n.name, "x");
        assert!(n.nets.is_empty());
    }
}
