//! Soft modules: continuous aspect-ratio ranges discretized into finite
//! implementation lists, so the paper's CSPP implementation-selection
//! machinery applies to them unchanged.

use fp_geom::{Coord, Rect};
use fp_tree::Module;

/// A soft module specification: a target area and a continuous
/// aspect-ratio range `[ar_min, ar_max]` (aspect ratio = width/height).
#[derive(Debug, Clone, PartialEq)]
pub struct SoftSpec {
    /// The module's name.
    pub name: String,
    /// Target area in grid units.
    pub area: u64,
    /// Minimum width/height ratio (≤ `ar_max`).
    pub ar_min: f64,
    /// Maximum width/height ratio.
    pub ar_max: f64,
}

impl SoftSpec {
    /// A soft module of `area` with aspect ratios in `[ar_min, ar_max]`.
    ///
    /// # Panics
    ///
    /// Panics when `area == 0`, a bound is non-positive, or
    /// `ar_min > ar_max`.
    #[must_use]
    pub fn new(name: impl Into<String>, area: u64, ar_min: f64, ar_max: f64) -> Self {
        assert!(area > 0, "a soft module needs positive area");
        assert!(
            ar_min > 0.0 && ar_max > 0.0 && ar_min <= ar_max,
            "aspect-ratio range must be positive and ordered"
        );
        SoftSpec {
            name: name.into(),
            area,
            ar_min,
            ar_max,
        }
    }

    /// Discretizes the continuous range into at most `steps` candidate
    /// implementations (geometric steps across `[ar_min, ar_max]`, each
    /// the smallest integer rectangle of at least the target area with
    /// that approximate ratio) and prunes redundant ones through
    /// [`Module::new`]. The result is an ordinary hard module: the
    /// enumeration, pruning, and CSPP selection treat it like any other.
    ///
    /// # Panics
    ///
    /// Panics when `steps == 0`.
    #[must_use]
    pub fn discretize(&self, steps: usize) -> Module {
        assert!(steps > 0, "discretization needs at least one step");
        let mut candidates = Vec::with_capacity(steps);
        for i in 0..steps {
            let t = if steps == 1 {
                0.5
            } else {
                i as f64 / (steps - 1) as f64
            };
            // Geometric interpolation keeps the ratio steps perceptually
            // even across wide ranges (1/4 .. 4 steps through 1).
            let ar = self.ar_min * (self.ar_max / self.ar_min).powf(t);
            let w = ((self.area as f64 * ar).sqrt().round()).max(1.0) as Coord;
            let h = ((self.area as f64) / w as f64).ceil().max(1.0) as Coord;
            candidates.push(Rect::new(
                w.min(fp_geom::MAX_COORD),
                h.min(fp_geom::MAX_COORD),
            ));
        }
        Module::new(self.name.clone(), candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discretization_covers_the_range_and_area() {
        let spec = SoftSpec::new("soft", 120, 0.25, 4.0);
        let module = spec.discretize(9);
        let impls = module.implementations();
        assert!(!impls.is_empty() && impls.len() <= 9);
        for r in impls.iter() {
            // Every implementation holds at least the target area and is
            // within (rounded) range.
            assert!(r.area() >= 120);
            let ar = r.w as f64 / r.h as f64;
            assert!((0.15..=5.0).contains(&ar), "aspect {ar} out of range");
        }
        // The list is a staircase: widths strictly decrease.
        let widths: Vec<_> = impls.iter().map(|r| r.w).collect();
        assert!(widths.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn single_step_is_the_square() {
        let m = SoftSpec::new("sq", 100, 1.0, 1.0).discretize(1);
        assert_eq!(m.implementations().len(), 1);
        assert_eq!(m.implementations()[0], Rect::new(10, 10));
    }

    #[test]
    fn discretized_soft_modules_feed_selection_unchanged() {
        // A library of discretized soft modules goes through the full
        // optimizer machinery like any hard library.
        use fp_tree::generators;
        let bench = generators::fig1();
        let lib: fp_tree::ModuleLibrary = (0..5)
            .map(|i| SoftSpec::new(format!("s{i}"), 60 + 13 * i, 0.5, 2.0).discretize(6))
            .collect();
        let layout = fp_tree::layout::realize(
            &bench.tree,
            &lib,
            &fp_tree::layout::Assignment::first_fit(5),
        )
        .expect("realizes");
        assert_eq!(layout.validate(), None);
    }

    #[test]
    fn widths_increase_with_ratio() {
        let wide = SoftSpec::new("w", 200, 4.0, 4.0).discretize(1);
        let tall = SoftSpec::new("t", 200, 0.25, 0.25).discretize(1);
        assert!(wide.implementations()[0].w > tall.implementations()[0].w);
    }
}
