//! Deterministic netlist generation for benchmarks and tests: the paper
//! benchmarks (FP1–FP4, AMI-like) ship without connectivity, so the
//! wirelength experiments synthesize it reproducibly from a seed.

use fp_geom::{Coord, Point, Rect};
use fp_prng::StdRng;
use fp_tree::ModuleLibrary;

use crate::model::{Endpoint, Net, Netlist, Pad, Pin, PinOffset};

/// Pin-offset fractions drawn by the generator (edge midpoints, corners,
/// and center — typical pin sites).
const FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Generates a random netlist over `library` with `nets` nets,
/// deterministically from `seed`.
///
/// Every module gets 2–4 pins at random fractional offsets; a square
/// die of roughly twice the summed module area carries
/// `max(4, modules/2)` boundary pads; each net connects 2–4 distinct
/// module pins and, with probability ~1/4, one pad. Module references
/// use the library's module *names*, so the netlist binds against the
/// same library regardless of floorplan topology.
///
/// # Panics
///
/// Panics when the library is empty or `nets == 0`.
#[must_use]
pub fn random_netlist(library: &ModuleLibrary, nets: usize, seed: u64) -> Netlist {
    assert!(!library.is_empty(), "netlist generation needs modules");
    assert!(nets > 0, "netlist generation needs at least one net");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut netlist = Netlist::new(format!("gen{seed}"));

    // Die: a square holding about twice the module area.
    let total_area: u128 = library
        .iter()
        .map(|m| {
            m.implementations()
                .iter()
                .map(|r| r.area())
                .min()
                .unwrap_or(1)
        })
        .sum();
    let side = ((2 * total_area) as f64).sqrt().ceil().max(4.0) as Coord;
    let die = Rect::new(side, side);
    netlist.die = Some(die);

    // Pads, spread around the boundary perimeter.
    let pad_count = (library.len() / 2).max(4);
    let perimeter = 2 * (die.w + die.h);
    for i in 0..pad_count {
        let at = (i as u128 * u128::from(perimeter) / pad_count as u128) as Coord;
        let position = if at < die.w {
            Point::new(at, 0) // bottom edge, left to right
        } else if at < die.w + die.h {
            Point::new(die.w, at - die.w) // right edge, bottom to top
        } else if at < 2 * die.w + die.h {
            Point::new(die.w - (at - die.w - die.h), die.h) // top, right to left
        } else {
            Point::new(0, die.h - (at - 2 * die.w - die.h)) // left, top to bottom
        };
        netlist.pads.push(Pad {
            name: format!("io{i}"),
            position,
        });
    }

    // Pins: 2–4 per module at grid fractions.
    let mut pins_of: Vec<Vec<usize>> = Vec::with_capacity(library.len());
    for module in library.iter() {
        let count = rng.gen_range(2..=4usize);
        let mut ids = Vec::with_capacity(count);
        for p in 0..count {
            ids.push(netlist.pins.len());
            netlist.pins.push(Pin {
                module: module.name().to_owned(),
                name: format!("p{p}"),
                offset: PinOffset::Fraction {
                    fx: FRACTIONS[rng.gen_range(0..FRACTIONS.len())],
                    fy: FRACTIONS[rng.gen_range(0..FRACTIONS.len())],
                },
            });
        }
        pins_of.push(ids);
    }

    // Nets: 2–4 distinct module pins, sometimes plus a pad.
    for n in 0..nets {
        let arity = rng.gen_range(2..=4usize).min(library.len());
        let mut modules: Vec<usize> = Vec::with_capacity(arity);
        while modules.len() < arity {
            let m = rng.gen_range(0..library.len());
            if !modules.contains(&m) {
                modules.push(m);
            }
        }
        let mut endpoints: Vec<Endpoint> = modules
            .iter()
            .map(|&m| Endpoint::Pin(pins_of[m][rng.gen_range(0..pins_of[m].len())]))
            .collect();
        if rng.gen_range(0..4usize) == 0 || endpoints.len() < 2 {
            endpoints.push(Endpoint::Pad(rng.gen_range(0..netlist.pads.len())));
        }
        netlist.nets.push(Net {
            name: format!("n{n}"),
            endpoints,
        });
    }
    netlist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{parse_netlist, write_netlist};
    use fp_tree::generators;

    #[test]
    fn generation_is_deterministic_and_binds() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 4, 1);
        let a = random_netlist(&lib, 30, 7);
        let b = random_netlist(&lib, 30, 7);
        assert_eq!(a, b);
        assert_ne!(a, random_netlist(&lib, 30, 8));
        assert_eq!(a.nets.len(), 30);
        let bound = a.bind(&lib).expect("binds against its own library");
        assert_eq!(bound.net_count(), 30);
        // Every net has at least two endpoints.
        assert!(a.nets.iter().all(|n| n.endpoints.len() >= 2));
    }

    #[test]
    fn generated_netlists_round_trip_through_fpn() {
        let bench = generators::fp2();
        let lib = generators::module_library(&bench.tree, 3, 2);
        let netlist = random_netlist(&lib, 20, 3);
        let text = write_netlist(&netlist);
        let parsed = parse_netlist(&text).expect("generated netlists are valid .fpn");
        assert_eq!(netlist, parsed);
    }

    #[test]
    fn pads_sit_on_the_boundary() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 4, 5);
        let netlist = random_netlist(&lib, 10, 11);
        let die = netlist.die.expect("generator declares a die");
        for pad in &netlist.pads {
            let p = pad.position;
            assert!(
                p.x <= die.w
                    && p.y <= die.h
                    && (p.x == 0 || p.x == die.w || p.y == 0 || p.y == die.h),
                "{} at {p} is off the {die} boundary",
                pad.name
            );
        }
    }
}
