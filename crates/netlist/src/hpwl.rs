//! Half-perimeter wirelength (HPWL) evaluation over realized layouts,
//! with incremental per-net bounding boxes.
//!
//! The evaluator keeps one bounding box (really: one HPWL value) per
//! net, plus the placement and implementation choice of every module it
//! has seen. A *full* evaluation recomputes every net; an *incremental*
//! [`HpwlEvaluator::update`] diffs the new layout against the stored
//! placements and recomputes only the nets incident to modules that
//! actually moved or changed shape (plus every pad-connected net when
//! the envelope changed, since pad positions scale with the envelope).
//! Both paths run the identical per-net arithmetic, so incremental and
//! full evaluation agree exactly — a property the proptest suite pins.

use core::fmt;

use fp_geom::{Coord, PlacedRect, Rect};
use fp_tree::layout::{Assignment, Layout};
use fp_tree::{FloorplanTree, ModuleId, NodeKind};

use crate::model::{BoundEndpoint, BoundNetlist, PinOffset};

/// Errors evaluating a layout against a bound netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// A net references a module the layout does not place.
    Unplaced {
        /// The missing module's id.
        module: ModuleId,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unplaced { module } => {
                write!(f, "layout does not place module {module}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Callback receiving each changed module's incident-net list while a
/// layout is stored.
type TouchedSink<'a> = &'a mut dyn FnMut(&[u32]);

/// The incremental HPWL evaluator. Create one per bound netlist and
/// feed it layouts; it is deliberately independent of any particular
/// floorplan *topology* (modules are tracked by id), so one evaluator
/// serves an entire annealing run across changing trees.
#[derive(Debug, Clone)]
pub struct HpwlEvaluator<'a> {
    bound: &'a BoundNetlist,
    /// Per module id: last seen `(placement, implementation choice)`.
    placements: Vec<Option<(PlacedRect, usize)>>,
    envelope: Rect,
    net_hpwl: Vec<u64>,
    total: u128,
    evals: u64,
    nets_touched: u64,
    last_touched: u64,
    dirty: Vec<bool>,
    /// Scratch buffers reused by [`HpwlEvaluator::store_layout`] — it
    /// runs on every incremental probe, where per-call allocations
    /// would dominate small-net updates.
    choice_scratch: Vec<usize>,
    stack_scratch: Vec<usize>,
}

impl<'a> HpwlEvaluator<'a> {
    /// A fresh evaluator over `bound` with no placements yet.
    #[must_use]
    pub fn new(bound: &'a BoundNetlist) -> Self {
        HpwlEvaluator {
            bound,
            placements: vec![None; bound.module_count()],
            envelope: Rect::new(1, 1),
            net_hpwl: vec![0; bound.net_count()],
            total: 0,
            evals: 0,
            nets_touched: 0,
            last_touched: 0,
            dirty: vec![false; bound.net_count()],
            choice_scratch: Vec::new(),
            stack_scratch: Vec::new(),
        }
    }

    /// The current total HPWL (sum of per-net half-perimeters).
    #[must_use]
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Evaluations performed (full + incremental).
    #[must_use]
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Net bounding boxes recomputed over the evaluator's lifetime.
    #[must_use]
    pub fn nets_touched(&self) -> u64 {
        self.nets_touched
    }

    /// Nets recomputed by the most recent evaluation.
    #[must_use]
    pub fn last_touched(&self) -> u64 {
        self.last_touched
    }

    /// Nets in the bound netlist this evaluator scores.
    #[must_use]
    pub fn nets(&self) -> usize {
        self.bound.net_count()
    }

    /// Full evaluation: stores the layout and recomputes every net.
    ///
    /// # Errors
    ///
    /// [`EvalError::Unplaced`] when a net references a module absent
    /// from the layout.
    pub fn evaluate_full(
        &mut self,
        tree: &FloorplanTree,
        layout: &Layout,
        assignment: &Assignment,
    ) -> Result<u128, EvalError> {
        self.store_layout(tree, layout, assignment, None);
        let mut total: u128 = 0;
        for net in 0..self.bound.net_count() {
            let h = self.net_hpwl_of(net)?;
            self.net_hpwl[net] = h;
            total += u128::from(h);
        }
        self.total = total;
        self.evals += 1;
        self.last_touched = self.bound.net_count() as u64;
        self.nets_touched += self.last_touched;
        Ok(total)
    }

    /// Incremental evaluation: diffs `layout` against the stored
    /// placements and recomputes only the touched nets. The first call
    /// (or a call after module count changes) degenerates to a full
    /// evaluation.
    ///
    /// # Errors
    ///
    /// Same as [`HpwlEvaluator::evaluate_full`].
    pub fn update(
        &mut self,
        tree: &FloorplanTree,
        layout: &Layout,
        assignment: &Assignment,
    ) -> Result<u128, EvalError> {
        if self.evals == 0 {
            return self.evaluate_full(tree, layout, assignment);
        }
        let mut dirty_nets: Vec<u32> = Vec::new();
        let mark = |nets: &[u32], dirty: &mut Vec<bool>, dirty_nets: &mut Vec<u32>| {
            for &n in nets {
                if !dirty[n as usize] {
                    dirty[n as usize] = true;
                    dirty_nets.push(n);
                }
            }
        };
        let envelope_before = self.envelope;
        // Borrow `dirty` locally so `store_layout` can mark nets while
        // placements are rewritten in place.
        let mut dirty = std::mem::take(&mut self.dirty);
        self.store_layout(
            tree,
            layout,
            assignment,
            Some(&mut |nets| {
                mark(nets, &mut dirty, &mut dirty_nets);
            }),
        );
        if self.envelope != envelope_before {
            mark(&self.bound.pad_nets, &mut dirty, &mut dirty_nets);
        }
        for &n in &dirty_nets {
            dirty[n as usize] = false;
        }
        self.dirty = dirty;

        for &n in &dirty_nets {
            let n = n as usize;
            let h = self.net_hpwl_of(n)?;
            self.total -= u128::from(self.net_hpwl[n]);
            self.net_hpwl[n] = h;
            self.total += u128::from(h);
        }
        self.evals += 1;
        self.last_touched = dirty_nets.len() as u64;
        self.nets_touched += self.last_touched;
        Ok(self.total)
    }

    /// Writes the layout's placements into the evaluator, invoking
    /// `touched` with each changed module's incident-net list.
    fn store_layout(
        &mut self,
        tree: &FloorplanTree,
        layout: &Layout,
        assignment: &Assignment,
        mut touched: Option<TouchedSink<'_>>,
    ) {
        self.envelope = layout.envelope;
        // `layout.placed` is in placement traversal order; choices are in
        // `leaves_in_order` (depth-first, left-to-right) order — key both
        // by leaf node id. The DFS runs inline over scratch buffers
        // instead of allocating `tree.leaves_in_order()` per call.
        let mut choice_of = std::mem::take(&mut self.choice_scratch);
        choice_of.clear();
        choice_of.resize(tree.len(), 0);
        let mut stack = std::mem::take(&mut self.stack_scratch);
        stack.clear();
        if !tree.is_empty() {
            stack.push(tree.root());
        }
        let mut next_choice = assignment.choices.iter();
        while let Some(id) = stack.pop() {
            let Some(node) = tree.node(id) else { continue };
            if matches!(node.kind, NodeKind::Leaf(_)) {
                choice_of[id] = next_choice.next().copied().unwrap_or(0);
            } else {
                stack.extend(node.children.iter().rev());
            }
        }
        self.stack_scratch = stack;
        for (leaf, rect) in &layout.placed {
            let module = match tree.node(*leaf).map(|n| &n.kind) {
                Some(&NodeKind::Leaf(m)) => m,
                _ => continue,
            };
            if module >= self.placements.len() {
                continue;
            }
            let choice = choice_of.get(*leaf).copied().unwrap_or(0);
            let next = Some((*rect, choice));
            if self.placements[module] != next {
                self.placements[module] = next;
                if let Some(touched) = touched.as_deref_mut() {
                    touched(self.bound.incident(module));
                }
            }
        }
        self.choice_scratch = choice_of;
    }

    /// The pad's position scaled from the declared die onto the current
    /// envelope (round-to-nearest; exact at the boundary corners).
    fn pad_point(&self, pad: usize) -> (Coord, Coord) {
        let p = self.bound.pads[pad].position;
        match self.bound.die {
            Some(die) if die.w > 0 && die.h > 0 => {
                let scale = |v: Coord, from: Coord, to: Coord| -> Coord {
                    ((u128::from(v) * u128::from(to) + u128::from(from) / 2) / u128::from(from))
                        as Coord
                };
                (
                    scale(p.x, die.w, self.envelope.w),
                    scale(p.y, die.h, self.envelope.h),
                )
            }
            _ => (p.x, p.y),
        }
    }

    /// The pin's absolute position on its module's current placement.
    fn pin_point(&self, pin: u32, place: PlacedRect, choice: usize) -> (Coord, Coord) {
        let decl = &self.bound.pins[pin as usize];
        let (dx, dy) = match &decl.offset {
            PinOffset::Fraction { fx, fy } => {
                // w, h ≤ MAX_COORD = 2^40 < 2^53: the f64 products are
                // exact enough that rounding is deterministic.
                let dx = (fx * place.size.w as f64).round() as Coord;
                let dy = (fy * place.size.h as f64).round() as Coord;
                (dx.min(place.size.w), dy.min(place.size.h))
            }
            PinOffset::PerImpl(offsets) => {
                let k = choice.min(offsets.len().saturating_sub(1));
                offsets.get(k).copied().unwrap_or((0, 0))
            }
        };
        (place.origin.x + dx, place.origin.y + dy)
    }

    /// Recomputes one net's half-perimeter from current placements.
    fn net_hpwl_of(&self, net: usize) -> Result<u64, EvalError> {
        let mut min_x = Coord::MAX;
        let mut max_x = 0;
        let mut min_y = Coord::MAX;
        let mut max_y = 0;
        for &ep in &self.bound.nets[net].endpoints {
            let (x, y) = match ep {
                BoundEndpoint::Module { module, pin } => {
                    let Some((place, choice)) = self.placements[module] else {
                        return Err(EvalError::Unplaced { module });
                    };
                    self.pin_point(pin, place, choice)
                }
                BoundEndpoint::Pad(pad) => self.pad_point(pad as usize),
            };
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        if min_x == Coord::MAX {
            return Ok(0); // unreachable: nets have ≥ 2 endpoints
        }
        Ok((max_x - min_x) + (max_y - min_y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_netlist;
    use crate::model::{Endpoint, Net, Netlist, Pad, Pin};
    use fp_geom::Point;
    use fp_tree::{generators, layout, Module, ModuleLibrary};

    fn two_module_setup() -> (FloorplanTree, ModuleLibrary, Netlist) {
        let mut lib = ModuleLibrary::new();
        let a = lib.add(Module::new("a", vec![Rect::new(4, 2), Rect::new(2, 4)]));
        let b = lib.add(Module::new("b", vec![Rect::new(3, 3)]));
        let mut tree = FloorplanTree::new();
        let la = tree.leaf(a);
        let lb = tree.leaf(b);
        let root = tree.slice(fp_tree::CutDir::Vertical, vec![la, lb]);
        tree.set_root(root);

        let mut netlist = Netlist::new("t");
        netlist.die = Some(Rect::new(10, 10));
        netlist.pads.push(Pad {
            name: "io".into(),
            position: Point::new(0, 0),
        });
        netlist.pins.push(Pin {
            module: "a".into(),
            name: "p".into(),
            offset: PinOffset::Fraction { fx: 1.0, fy: 0.0 },
        });
        netlist.pins.push(Pin {
            module: "b".into(),
            name: "q".into(),
            offset: PinOffset::PerImpl(vec![(0, 3)]),
        });
        netlist.nets.push(Net {
            name: "n0".into(),
            endpoints: vec![Endpoint::Pin(0), Endpoint::Pin(1)],
        });
        netlist.nets.push(Net {
            name: "n1".into(),
            endpoints: vec![Endpoint::Pin(1), Endpoint::Pad(0)],
        });
        (tree, lib, netlist)
    }

    #[test]
    fn hand_checked_hpwl() {
        let (tree, lib, netlist) = two_module_setup();
        let bound = netlist.bind(&lib).expect("binds");
        let mut eval = HpwlEvaluator::new(&bound);
        // Choice 0 for both: a = 4x2 at (0,0), b = 3x3 at (4,0); envelope 7x3.
        let assignment = layout::Assignment::first_fit(2);
        let l = layout::realize(&tree, &lib, &assignment).expect("realizes");
        let total = eval.evaluate_full(&tree, &l, &assignment).expect("evals");
        // n0: a.p at (4, 0), b.q at (4, 3) -> 0 + 3 = 3.
        // n1: b.q at (4, 3), pad at scaled (0, 0) -> 4 + 3 = 7.
        assert_eq!(total, 10);
        assert_eq!(eval.last_touched(), 2);
    }

    #[test]
    fn incremental_matches_full_on_choice_change() {
        let (tree, lib, netlist) = two_module_setup();
        let bound = netlist.bind(&lib).expect("binds");
        let mut eval = HpwlEvaluator::new(&bound);
        let a0 = layout::Assignment::first_fit(2);
        let l0 = layout::realize(&tree, &lib, &a0).expect("realizes");
        eval.update(&tree, &l0, &a0).expect("full");
        // Flip module a to its 2x4 implementation.
        let a1 = layout::Assignment::new(vec![1, 0]);
        let l1 = layout::realize(&tree, &lib, &a1).expect("realizes");
        let incremental = eval.update(&tree, &l1, &a1).expect("incremental");
        let mut fresh = HpwlEvaluator::new(&bound);
        let full = fresh.evaluate_full(&tree, &l1, &a1).expect("full");
        assert_eq!(incremental, full);
    }

    #[test]
    fn incremental_touches_fewer_nets_than_full() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 3, 7);
        let netlist = random_netlist(&lib, 40, 5);
        let bound = netlist.bind(&lib).expect("binds");
        let leaves = bench.tree.leaves_in_order().len();
        let mut eval = HpwlEvaluator::new(&bound);
        let a0 = layout::Assignment::first_fit(leaves);
        let l0 = layout::realize(&bench.tree, &lib, &a0).expect("realizes");
        eval.update(&bench.tree, &l0, &a0).expect("full");
        assert_eq!(eval.last_touched(), 40);
        // An identical layout touches nothing.
        let same = eval.update(&bench.tree, &l0, &a0).expect("noop");
        assert_eq!(eval.last_touched(), 0);
        assert_eq!(same, eval.total());
    }

    #[test]
    fn unplaced_module_is_reported() {
        let (_, lib, netlist) = two_module_setup();
        let bound = netlist.bind(&lib).expect("binds");
        let mut eval = HpwlEvaluator::new(&bound);
        // A tree that instantiates only module 1 leaves module 0 unplaced.
        let mut tree = FloorplanTree::new();
        let la = tree.leaf(1);
        let lb = tree.leaf(1);
        let root = tree.slice(fp_tree::CutDir::Vertical, vec![la, lb]);
        tree.set_root(root);
        let assignment = layout::Assignment::first_fit(2);
        let l = layout::realize(&tree, &lib, &assignment).expect("realizes");
        assert_eq!(
            eval.evaluate_full(&tree, &l, &assignment),
            Err(EvalError::Unplaced { module: 0 })
        );
    }
}
