//! The netlist model: pins, nets, I/O pads, and name resolution against a
//! module library.

use core::fmt;

use fp_geom::{Coord, Point, Rect};
use fp_memo::{Fingerprint, Fingerprinter};
use fp_tree::{ModuleId, ModuleLibrary};

/// Where a pin sits on its module, relative to the module's lower-left
/// corner.
#[derive(Debug, Clone, PartialEq)]
pub enum PinOffset {
    /// Fractions of the *chosen implementation's* width and height, both
    /// in `[0, 1]` — the pin tracks the module's shape as the optimizer
    /// picks different implementations.
    Fraction {
        /// Horizontal fraction of the implementation width.
        fx: f64,
        /// Vertical fraction of the implementation height.
        fy: f64,
    },
    /// One absolute `(dx, dy)` offset per implementation, in
    /// implementation-list order. Validated against the library at bind
    /// time: the list length must equal the implementation count and
    /// every offset must lie inside its implementation.
    PerImpl(Vec<(Coord, Coord)>),
}

/// A pin declaration: a named connection point on a named module.
#[derive(Debug, Clone, PartialEq)]
pub struct Pin {
    /// The module the pin belongs to (resolved by name at bind time).
    pub module: String,
    /// The pin's name (unique per module).
    pub name: String,
    /// Where the pin sits on the module.
    pub offset: PinOffset,
}

/// An I/O pad: a named connection point fixed on the die boundary. Pad
/// coordinates are declared against the netlist's `die` rectangle and
/// scaled proportionally onto the realized envelope at evaluation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pad {
    /// The pad's name (unique within the netlist).
    pub name: String,
    /// Position on the declared die's boundary.
    pub position: Point,
}

/// One endpoint of a net, as resolved indices into the netlist's own
/// declaration lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Index into [`Netlist::pins`].
    Pin(usize),
    /// Index into [`Netlist::pads`].
    Pad(usize),
}

/// A net: a named set of at least two endpoints whose half-perimeter
/// bounding box contributes to the HPWL objective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// The net's name (unique within the netlist).
    pub name: String,
    /// The connected endpoints (≥ 2, no duplicates).
    pub endpoints: Vec<Endpoint>,
}

/// A parsed netlist: module pins, nets, and boundary I/O pads, still
/// referencing modules by *name*. Bind it against a [`ModuleLibrary`]
/// ([`Netlist::bind`]) before evaluating wirelength.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    /// The netlist's name (informational; excluded from the fingerprint).
    pub name: String,
    /// The die rectangle pad positions are declared against (required as
    /// soon as any pad is declared).
    pub die: Option<Rect>,
    /// Declared pads.
    pub pads: Vec<Pad>,
    /// Declared pins.
    pub pins: Vec<Pin>,
    /// Declared nets.
    pub nets: Vec<Net>,
}

impl Netlist {
    /// An empty netlist with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The index of the pin `module.pin`, if declared.
    #[must_use]
    pub fn pin_index(&self, module: &str, pin: &str) -> Option<usize> {
        self.pins
            .iter()
            .position(|p| p.module == module && p.name == pin)
    }

    /// The index of the pad `name`, if declared.
    #[must_use]
    pub fn pad_index(&self, name: &str) -> Option<usize> {
        self.pads.iter().position(|p| p.name == name)
    }

    /// Resolves every module-name reference against `library` and
    /// validates per-implementation pin offsets, producing an evaluable
    /// [`BoundNetlist`].
    ///
    /// # Errors
    ///
    /// See [`BindError`].
    pub fn bind(&self, library: &ModuleLibrary) -> Result<BoundNetlist, BindError> {
        // Module name -> id; names must be unambiguous for the ones the
        // netlist actually references.
        let mut pin_targets = Vec::with_capacity(self.pins.len());
        for (pi, pin) in self.pins.iter().enumerate() {
            let mut found: Option<ModuleId> = None;
            for (id, module) in library.iter().enumerate() {
                if module.name() == pin.module {
                    if found.is_some() {
                        return Err(BindError::AmbiguousModule {
                            module: pin.module.clone(),
                        });
                    }
                    found = Some(id);
                }
            }
            let Some(id) = found else {
                return Err(BindError::UnknownModule {
                    pin: pi,
                    module: pin.module.clone(),
                });
            };
            let impls = library[id].implementations();
            if let PinOffset::PerImpl(offsets) = &pin.offset {
                if offsets.len() != impls.len() {
                    return Err(BindError::OffsetCount {
                        module: pin.module.clone(),
                        pin: pin.name.clone(),
                        got: offsets.len(),
                        expected: impls.len(),
                    });
                }
                for (k, &(dx, dy)) in offsets.iter().enumerate() {
                    let r = impls[k];
                    if dx > r.w || dy > r.h {
                        return Err(BindError::OffsetOutOfRange {
                            module: pin.module.clone(),
                            pin: pin.name.clone(),
                            implementation: k,
                        });
                    }
                }
            }
            pin_targets.push(id);
        }

        let mut nets = Vec::with_capacity(self.nets.len());
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); library.len()];
        let mut pad_nets = Vec::new();
        for (ni, net) in self.nets.iter().enumerate() {
            let net_id = ni as u32;
            let mut endpoints = Vec::with_capacity(net.endpoints.len());
            let mut has_pad = false;
            for &ep in &net.endpoints {
                match ep {
                    Endpoint::Pin(p) => {
                        let module = pin_targets[p];
                        if !incident[module].contains(&net_id) {
                            incident[module].push(net_id);
                        }
                        endpoints.push(BoundEndpoint::Module {
                            module,
                            pin: p as u32,
                        });
                    }
                    Endpoint::Pad(p) => {
                        has_pad = true;
                        endpoints.push(BoundEndpoint::Pad(p as u32));
                    }
                }
            }
            if has_pad {
                pad_nets.push(net_id);
            }
            nets.push(BoundNet { endpoints });
        }

        Ok(BoundNetlist {
            nets,
            incident,
            pad_nets,
            die: self.die,
            pads: self.pads.clone(),
            pins: self.pins.clone(),
            modules: library.len(),
        })
    }
}

/// Errors resolving a [`Netlist`] against a [`ModuleLibrary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// A pin references a module name absent from the library.
    UnknownModule {
        /// Index into [`Netlist::pins`].
        pin: usize,
        /// The unresolved module name.
        module: String,
    },
    /// Two library modules share a referenced name.
    AmbiguousModule {
        /// The ambiguous module name.
        module: String,
    },
    /// A per-implementation offset list does not match the module's
    /// implementation count.
    OffsetCount {
        /// The module name.
        module: String,
        /// The pin name.
        pin: String,
        /// Offsets declared.
        got: usize,
        /// Implementations in the library.
        expected: usize,
    },
    /// A per-implementation offset falls outside its implementation.
    OffsetOutOfRange {
        /// The module name.
        module: String,
        /// The pin name.
        pin: String,
        /// The offending implementation index.
        implementation: usize,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::UnknownModule { pin, module } => {
                write!(f, "pin #{pin} references unknown module `{module}`")
            }
            BindError::AmbiguousModule { module } => {
                write!(f, "module name `{module}` is ambiguous in the library")
            }
            BindError::OffsetCount {
                module,
                pin,
                got,
                expected,
            } => write!(
                f,
                "pin `{module}.{pin}` declares {got} offsets for {expected} implementations"
            ),
            BindError::OffsetOutOfRange {
                module,
                pin,
                implementation,
            } => write!(
                f,
                "pin `{module}.{pin}` offset #{implementation} lies outside its implementation"
            ),
        }
    }
}

impl std::error::Error for BindError {}

/// One endpoint of a bound net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundEndpoint {
    /// A pin on a library module.
    Module {
        /// The resolved module id.
        module: ModuleId,
        /// Index into the netlist's pin list (for the offset).
        pin: u32,
    },
    /// An I/O pad (index into the netlist's pad list).
    Pad(u32),
}

/// A bound net: endpoints fully resolved to module ids and pad indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundNet {
    /// The resolved endpoints.
    pub endpoints: Vec<BoundEndpoint>,
}

/// A netlist resolved against a concrete [`ModuleLibrary`]: every module
/// reference is an id, per-module net incidence lists are precomputed
/// (the incremental evaluator's dirty sets), and pad-connected nets are
/// indexed separately (they also go dirty when the envelope changes).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundNetlist {
    pub(crate) nets: Vec<BoundNet>,
    /// `incident[module_id]` = ids of nets with a pin on that module.
    pub(crate) incident: Vec<Vec<u32>>,
    /// Nets with at least one pad endpoint.
    pub(crate) pad_nets: Vec<u32>,
    pub(crate) die: Option<Rect>,
    pub(crate) pads: Vec<Pad>,
    pub(crate) pins: Vec<Pin>,
    pub(crate) modules: usize,
}

impl BoundNetlist {
    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of library modules this netlist was bound against.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.modules
    }

    /// The bound nets.
    #[must_use]
    pub fn nets(&self) -> &[BoundNet] {
        &self.nets
    }

    /// Ids of the nets incident to `module`.
    #[must_use]
    pub fn incident(&self, module: ModuleId) -> &[u32] {
        self.incident.get(module).map_or(&[], Vec::as_slice)
    }
}

/// Content fingerprint of a netlist: everything that influences HPWL
/// values — die, pads, pins (offsets included), and net connectivity —
/// except the netlist's display name. Folded into the optimizer's cache
/// salt so memo entries computed under one netlist are never served to a
/// run evaluating another.
#[must_use]
pub fn netlist_fingerprint(netlist: &Netlist) -> Fingerprint {
    let mut h = Fingerprinter::new();
    h.write_str("fp-netlist/v1");
    match netlist.die {
        None => h.write_u64(0),
        Some(d) => {
            h.write_u64(1);
            h.write_u64(d.w);
            h.write_u64(d.h);
        }
    }
    h.write_usize(netlist.pads.len());
    for pad in &netlist.pads {
        h.write_str(&pad.name);
        h.write_u64(pad.position.x);
        h.write_u64(pad.position.y);
    }
    h.write_usize(netlist.pins.len());
    for pin in &netlist.pins {
        h.write_str(&pin.module);
        h.write_str(&pin.name);
        match &pin.offset {
            PinOffset::Fraction { fx, fy } => {
                h.write_u64(1);
                h.write_u64(fx.to_bits());
                h.write_u64(fy.to_bits());
            }
            PinOffset::PerImpl(offsets) => {
                h.write_u64(2);
                h.write_usize(offsets.len());
                for &(dx, dy) in offsets {
                    h.write_u64(dx);
                    h.write_u64(dy);
                }
            }
        }
    }
    h.write_usize(netlist.nets.len());
    for net in &netlist.nets {
        h.write_str(&net.name);
        h.write_usize(net.endpoints.len());
        for &ep in &net.endpoints {
            match ep {
                Endpoint::Pin(i) => {
                    h.write_u64(1);
                    h.write_usize(i);
                }
                Endpoint::Pad(i) => {
                    h.write_u64(2);
                    h.write_usize(i);
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_tree::Module;

    fn library() -> ModuleLibrary {
        let mut lib = ModuleLibrary::new();
        lib.add(Module::new("a", vec![Rect::new(4, 2), Rect::new(2, 4)]));
        lib.add(Module::new("b", vec![Rect::new(3, 3)]));
        lib
    }

    fn simple_netlist() -> Netlist {
        let mut n = Netlist::new("t");
        n.die = Some(Rect::new(10, 10));
        n.pads.push(Pad {
            name: "io0".into(),
            position: Point::new(0, 5),
        });
        n.pins.push(Pin {
            module: "a".into(),
            name: "p".into(),
            offset: PinOffset::Fraction { fx: 0.5, fy: 0.5 },
        });
        n.pins.push(Pin {
            module: "b".into(),
            name: "q".into(),
            offset: PinOffset::PerImpl(vec![(1, 1)]),
        });
        n.nets.push(Net {
            name: "n0".into(),
            endpoints: vec![Endpoint::Pin(0), Endpoint::Pin(1), Endpoint::Pad(0)],
        });
        n
    }

    #[test]
    fn bind_resolves_names_and_incidence() {
        let bound = simple_netlist().bind(&library()).expect("binds");
        assert_eq!(bound.net_count(), 1);
        assert_eq!(bound.incident(0), &[0]);
        assert_eq!(bound.incident(1), &[0]);
        assert_eq!(bound.pad_nets, vec![0]);
    }

    #[test]
    fn bind_rejects_unknown_module() {
        let mut n = simple_netlist();
        n.pins[0].module = "zzz".into();
        assert!(matches!(
            n.bind(&library()),
            Err(BindError::UnknownModule { .. })
        ));
    }

    #[test]
    fn bind_rejects_wrong_offset_count() {
        let mut n = simple_netlist();
        // Module `a` has two implementations; one offset is not enough.
        n.pins[0].offset = PinOffset::PerImpl(vec![(0, 0)]);
        assert!(matches!(
            n.bind(&library()),
            Err(BindError::OffsetCount { .. })
        ));
    }

    #[test]
    fn bind_rejects_out_of_range_offset() {
        let mut n = simple_netlist();
        n.pins[1].offset = PinOffset::PerImpl(vec![(9, 0)]);
        assert!(matches!(
            n.bind(&library()),
            Err(BindError::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn fingerprint_ignores_name_and_covers_content() {
        let a = simple_netlist();
        let mut renamed = a.clone();
        renamed.name = "other".into();
        assert_eq!(netlist_fingerprint(&a), netlist_fingerprint(&renamed));

        let mut moved = a.clone();
        moved.pads[0].position = Point::new(0, 6);
        assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&moved));

        let mut rewired = a.clone();
        rewired.nets[0].endpoints.pop();
        assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&rewired));
    }
}
