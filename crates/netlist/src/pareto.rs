//! Non-dominated filtering and hypervolume over (area, wirelength,
//! outline-fit) objective vectors.

use fp_geom::{Area, Coord};

/// One candidate solution's objective vector, tagged with the frontier
/// envelope index it was evaluated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParetoPoint {
    /// Index into the solution frontier's envelope list.
    pub index: usize,
    /// Envelope width.
    pub width: Coord,
    /// Envelope height.
    pub height: Coord,
    /// Envelope area (minimized).
    pub area: Area,
    /// Total HPWL (minimized).
    pub hpwl: u128,
    /// Whether the envelope fits the requested fixed outline (`true`
    /// when no outline was requested); fitting dominates not fitting.
    pub fits: bool,
}

impl ParetoPoint {
    /// `true` when `self` dominates `other`: no worse on every
    /// objective (area, HPWL, outline fit) and strictly better on at
    /// least one.
    #[must_use]
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse =
            self.area <= other.area && self.hpwl <= other.hpwl && self.fits >= other.fits;
        let better = self.area < other.area || self.hpwl < other.hpwl || (self.fits && !other.fits);
        no_worse && better
    }
}

/// Inserts `p` into a non-dominated front. Returns `true` (and removes
/// every point `p` dominates) when `p` survives, `false` when an
/// existing point dominates it. Exact duplicates of a surviving vector
/// are kept out.
pub fn pareto_insert(front: &mut Vec<ParetoPoint>, p: ParetoPoint) -> bool {
    for q in front.iter() {
        if q.dominates(&p) || (q.area, q.hpwl, q.fits) == (p.area, p.hpwl, p.fits) {
            return false;
        }
    }
    front.retain(|q| !p.dominates(q));
    front.push(p);
    true
}

/// Filters `points` down to the non-dominated front, sorted by area
/// ascending (ties by HPWL ascending, then frontier index).
#[must_use]
pub fn pareto_front(points: impl IntoIterator<Item = ParetoPoint>) -> Vec<ParetoPoint> {
    let mut front = Vec::new();
    for p in points {
        let _ = pareto_insert(&mut front, p);
    }
    front.sort_by_key(|p| (p.area, p.hpwl, p.index));
    front
}

/// The 2-D hypervolume of the front in normalized (area, HPWL) space:
/// the fraction of the `[0, ref_area] × [0, ref_hpwl]` rectangle
/// dominated by the front. Points beyond the reference contribute
/// nothing; an empty front scores 0. The usual scalar "is this whole
/// trade-off curve better?" quality indicator.
#[must_use]
pub fn hypervolume(front: &[ParetoPoint], ref_area: Area, ref_hpwl: u128) -> f64 {
    if ref_area == 0 || ref_hpwl == 0 {
        return 0.0;
    }
    let mut pts: Vec<(Area, u128)> = front
        .iter()
        .filter(|p| p.area <= ref_area && p.hpwl <= ref_hpwl)
        .map(|p| (p.area, p.hpwl))
        .collect();
    pts.sort_unstable();
    let (ra, rh) = (ref_area as f64, ref_hpwl as f64);
    let mut volume = 0.0;
    let mut prev_hpwl = ref_hpwl;
    for (area, hpwl) in pts {
        if hpwl >= prev_hpwl {
            continue; // dominated in this 2-D projection
        }
        volume += ((ref_area - area) as f64 / ra) * ((prev_hpwl - hpwl) as f64 / rh);
        prev_hpwl = hpwl;
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(index: usize, area: Area, hpwl: u128, fits: bool) -> ParetoPoint {
        ParetoPoint {
            index,
            width: 1,
            height: 1,
            area,
            hpwl,
            fits,
        }
    }

    #[test]
    fn dominance_is_strict_and_fit_aware() {
        assert!(p(0, 10, 10, true).dominates(&p(1, 10, 11, true)));
        assert!(p(0, 10, 10, true).dominates(&p(1, 10, 10, false)));
        assert!(!p(0, 10, 10, true).dominates(&p(1, 10, 10, true)));
        assert!(!p(0, 9, 12, true).dominates(&p(1, 10, 11, true)));
        assert!(!p(0, 10, 10, false).dominates(&p(1, 11, 11, true)));
    }

    #[test]
    fn front_keeps_only_non_dominated() {
        let front = pareto_front([
            p(0, 100, 10, true),
            p(1, 50, 20, true),
            p(2, 120, 10, true), // dominated by index 0
            p(3, 50, 20, true),  // duplicate vector of index 1
            p(4, 30, 40, true),
        ]);
        let indices: Vec<_> = front.iter().map(|q| q.index).collect();
        assert_eq!(indices, vec![4, 1, 0]);
    }

    #[test]
    fn insertion_evicts_newly_dominated_points() {
        let mut front = vec![p(0, 100, 10, true), p(1, 50, 20, true)];
        assert!(pareto_insert(&mut front, p(2, 40, 5, true)));
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].index, 2);
        assert!(!pareto_insert(&mut front, p(3, 41, 6, true)));
    }

    #[test]
    fn hypervolume_grows_with_better_fronts() {
        let weak = [p(0, 90, 90, true)];
        let strong = [p(0, 50, 90, true), p(1, 90, 50, true)];
        let hv_weak = hypervolume(&weak, 100, 100);
        let hv_strong = hypervolume(&strong, 100, 100);
        assert!(hv_weak > 0.0);
        assert!(hv_strong > hv_weak);
        assert!(hv_strong <= 1.0);
        assert_eq!(hypervolume(&[], 100, 100), 0.0);
        // A point at the ideal corner dominates the whole rectangle.
        assert!((hypervolume(&[p(0, 0, 0, true)], 100, 100) - 1.0).abs() < 1e-12);
    }
}
