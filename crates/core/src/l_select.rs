//! `L_Selection` (paper §4.3, Theorem 3): optimal subset selection for
//! irreducible L-lists via constrained shortest paths.

use fp_cspp::{solve_selection, CsppScratch, OrderedF64, Weight};
use fp_shape::LList;

use crate::{LErrorTable, Metric, SelectError};

/// The result of `L_Selection`: the positions (indices into the original
/// L-list) of the kept implementations and the optimal `ERROR(L, L')`.
#[derive(Debug, Clone, PartialEq)]
pub struct LSelection<W> {
    /// Strictly increasing indices of the kept implementations; always
    /// includes `0` and `n - 1`.
    pub positions: Vec<usize>,
    /// The minimized total discarded-shape cost `ERROR(L, L')`.
    pub error: W,
}

/// Optimally selects `k` implementations from an irreducible L-list under
/// the exact integer Manhattan metric (the paper's default).
///
/// This is the paper's `L_Selection`: build the `error(l_i, l_j)` table
/// with `Compute_L_Error` (`O(n³)`, the dominant cost), form the complete
/// DAG with those weights, and solve the constrained shortest path from
/// `l_1` to `l_n` with exactly `k` vertices (Theorem 3).
///
/// If `k >= n` the list already fits: the identity selection is returned.
///
/// # Errors
///
/// * [`SelectError::EmptyList`] — the list is empty.
/// * [`SelectError::KTooSmall`] — `k < 2` while the list has two or more
///   implementations.
///
/// # Example
///
/// ```
/// use fp_geom::LShape;
/// use fp_shape::LList;
/// use fp_select::l_selection;
///
/// let list = LList::from_sorted(vec![
///     LShape::new(9, 3, 2, 1)?,
///     LShape::new(8, 3, 3, 2)?,  // close to its neighbours: cheap to drop
///     LShape::new(5, 3, 6, 4)?,
///     LShape::new(4, 3, 9, 8)?,
/// ]).expect("valid chain");
/// let sel = l_selection(&list, 3)?;
/// assert_eq!(sel.positions, vec![0, 2, 3]);
/// assert_eq!(sel.error, 3); // dist(l_1, l_2) = 1 + 1 + 1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn l_selection(list: &LList, k: usize) -> Result<LSelection<u128>, SelectError> {
    l_selection_scratch(list, k, &mut CsppScratch::new())
}

/// [`l_selection`] through a caller-owned [`CsppScratch`] arena: a
/// warmed arena solves the selection DP without per-call allocation
/// beyond the error table and the returned positions.
///
/// # Errors
///
/// Same as [`l_selection`].
pub fn l_selection_scratch(
    list: &LList,
    k: usize,
    scratch: &mut CsppScratch<u128>,
) -> Result<LSelection<u128>, SelectError> {
    validate(list, k)?;
    if k >= list.len() {
        return Ok(identity(list.len()));
    }
    let table = LErrorTable::new_l1(list);
    Ok(solve_on_table(&table, k, scratch))
}

/// [`l_selection`] under an arbitrary [`Metric`], accumulating float
/// weights. Use this for `L₂`/`L∞`/general `L_p`; for `L₁` prefer
/// [`l_selection`], which is exact.
///
/// # Errors
///
/// Same as [`l_selection`].
pub fn l_selection_float(
    list: &LList,
    k: usize,
    metric: Metric,
) -> Result<LSelection<OrderedF64>, SelectError> {
    l_selection_float_scratch(list, k, metric, &mut CsppScratch::new())
}

/// [`l_selection_float`] through a caller-owned [`CsppScratch`] arena.
///
/// # Errors
///
/// Same as [`l_selection`].
pub fn l_selection_float_scratch(
    list: &LList,
    k: usize,
    metric: Metric,
    scratch: &mut CsppScratch<OrderedF64>,
) -> Result<LSelection<OrderedF64>, SelectError> {
    validate(list, k)?;
    if k >= list.len() {
        return Ok(identity(list.len()));
    }
    let table = LErrorTable::new_metric(list, metric);
    Ok(solve_on_table(&table, k, scratch))
}

fn validate(list: &LList, k: usize) -> Result<(), SelectError> {
    let n = list.len();
    if n == 0 {
        return Err(SelectError::EmptyList);
    }
    if k < 2 && k < n {
        return Err(SelectError::KTooSmall { k, n });
    }
    Ok(())
}

fn identity<W: Weight>(n: usize) -> LSelection<W> {
    LSelection {
        positions: (0..n).collect(),
        error: W::ZERO,
    }
}

/// Solves the selection CSPP over the table's list in the flat layered
/// kernel — the DAG is never materialized; the table is the O(1) weight
/// oracle. When the table happens to be Monge the D&C row-minima path
/// engages automatically.
pub(crate) fn solve_on_table<W: Weight>(
    table: &LErrorTable<W>,
    k: usize,
    scratch: &mut CsppScratch<W>,
) -> LSelection<W> {
    let n = table.len();
    match solve_selection(n, k, |i, j| table.error(i, j), scratch) {
        Ok(out) => LSelection {
            positions: scratch.path().to_vec(),
            error: out.weight,
        },
        Err(e) => unreachable!("complete DAG always has a k-vertex path: {e:?}"),
    }
}

/// Convenience: run [`l_selection`] and apply it, returning the reduced
/// list together with the incurred error.
///
/// # Errors
///
/// Same as [`l_selection`].
pub fn l_selection_apply(list: &LList, k: usize) -> Result<(LList, u128), SelectError> {
    let sel = l_selection(list, k)?;
    Ok((list.subset(&sel.positions), sel.error))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::LShape;
    use proptest::prelude::*;

    fn l(w1: u64, w2: u64, h1: u64, h2: u64) -> LShape {
        LShape::new_canonical(w1, w2, h1, h2)
    }

    fn chain(n: u64) -> LList {
        LList::from_sorted(
            (0..n)
                .map(|i| l(100 - 3 * i, 7, 10 + 2 * i, 5 + i))
                .collect(),
        )
        .expect("valid chain")
    }

    #[test]
    fn identity_when_k_large_enough() {
        let list = chain(4);
        let sel = l_selection(&list, 9).expect("identity");
        assert_eq!(sel.positions, vec![0, 1, 2, 3]);
        assert_eq!(sel.error, 0);
    }

    #[test]
    fn endpoints_always_kept_and_error_matches_table() {
        let list = chain(8);
        let table = LErrorTable::new_l1(&list);
        for k in 2..8 {
            let sel = l_selection(&list, k).expect("selection");
            assert_eq!(sel.positions.len(), k);
            assert_eq!(sel.positions[0], 0);
            assert_eq!(*sel.positions.last().expect("non-empty"), 7);
            assert_eq!(sel.error, table.selection_error(&sel.positions));
        }
    }

    #[test]
    fn errors_on_bad_input() {
        assert_eq!(l_selection(&LList::new(), 2), Err(SelectError::EmptyList));
        assert_eq!(
            l_selection(&chain(4), 1),
            Err(SelectError::KTooSmall { k: 1, n: 4 })
        );
        let single = LList::from_sorted(vec![l(5, 2, 3, 1)]).expect("chain");
        assert_eq!(
            l_selection(&single, 1).expect("identity").positions,
            vec![0]
        );
    }

    #[test]
    fn float_l1_matches_integer() {
        let list = chain(7);
        for k in 2..7 {
            let exact = l_selection(&list, k).expect("selection");
            let float = l_selection_float(&list, k, Metric::L1).expect("selection");
            assert_eq!(exact.positions, float.positions, "k = {k}");
            assert_eq!(exact.error as f64, float.error.into_inner(), "k = {k}");
        }
    }

    #[test]
    fn apply_returns_valid_chain() {
        let list = chain(9);
        let (reduced, _err) = l_selection_apply(&list, 4).expect("selection");
        assert_eq!(reduced.len(), 4);
        assert!(LList::from_sorted(reduced.as_slice().to_vec()).is_ok());
    }

    /// Exhaustive optimum over all endpoint-keeping subsets.
    fn brute_force(list: &LList, k: usize) -> u128 {
        let n = list.len();
        let table = LErrorTable::new_l1(list);
        let mid: Vec<usize> = (1..n - 1).collect();
        let mut best = u128::MAX;
        for mask in 0u32..(1 << mid.len()) {
            if mask.count_ones() as usize != k - 2 {
                continue;
            }
            let mut pos = vec![0];
            pos.extend(
                mid.iter()
                    .enumerate()
                    .filter(|&(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &p)| p),
            );
            pos.push(n - 1);
            best = best.min(table.selection_error(&pos));
        }
        best
    }

    fn arb_chain() -> impl Strategy<Value = LList> {
        proptest::collection::vec((1u64..6, 0u64..4, 0u64..4), 1..10).prop_map(|steps| {
            let mut items = vec![l(150, 3, 4, 2)];
            let (mut w1, mut h1, mut h2) = (150u64, 4u64, 2u64);
            for (dw, dh1, dh2) in steps {
                w1 -= dw;
                h1 += dh1.max(1); // strictly taller each step keeps the chain valid
                h2 = (h2 + dh2).min(h1);
                items.push(l(w1, 3, h1, h2));
            }
            LList::from_sorted(items).expect("constructed chain is valid")
        })
    }

    proptest! {
        /// The CSPP reduction is optimal: it matches exhaustive search.
        #[test]
        fn optimal_vs_brute_force(list in arb_chain(), k_seed in 0usize..10) {
            prop_assume!(list.len() >= 2);
            let k = 2 + k_seed % (list.len() - 1);
            let sel = l_selection(&list, k).expect("selection");
            if k < list.len() {
                prop_assert_eq!(sel.positions.len(), k);
                prop_assert_eq!(sel.error, brute_force(&list, k));
            }
        }

        /// Error is non-increasing in k: keeping more can never hurt.
        #[test]
        fn error_monotone_in_k(list in arb_chain()) {
            prop_assume!(list.len() >= 3);
            let mut prev = u128::MAX;
            for k in 2..=list.len() {
                let e = l_selection(&list, k).expect("selection").error;
                prop_assert!(e <= prev);
                prev = e;
            }
        }
    }
}
