//! Optimal implementation selection for floorplan area optimization.
//!
//! This crate is the primary contribution of Wang–Wong, *A Graph Theoretic
//! Technique to Speed up Floorplan Area Optimization* (DAC'92): when a
//! bottom-up floorplan area optimizer accumulates more non-redundant
//! implementations for a sub-floorplan than memory allows, optimally select
//! the subset of a given size `k` that best approximates the full set.
//!
//! * [`r_selection`] — for rectangular blocks (irreducible R-lists). The
//!   cost of a subset is the area bounded between the full and the reduced
//!   staircase curves (Figures 5–6); the optimal subset is found in
//!   `O(k n²)` by reduction to a constrained shortest path (Theorem 2).
//! * [`l_selection`] — for L-shaped blocks (irreducible L-lists). The cost
//!   is the summed distance from each discarded implementation to its
//!   nearest kept neighbour under any `L_p` [`Metric`] (Lemmas 2–3); the
//!   optimal subset is found in `O(n³)` (Theorem 3).
//! * [`s_selection`] — for bounded-staircase blocks (irreducible
//!   [`fp_shape::SList`] chains). The staircase generalization: the same
//!   crossover table build and flat CSPP kernel with the exact `L₁`
//!   profile distance as the oracle; a two-tooth list reproduces
//!   [`l_selection`] byte for byte.
//! * [`reduce_llist_set`] — applies `L_Selection` across a whole
//!   [`fp_shape::LListSet`] with the paper's per-list budget
//!   `⌊K·|L|/N⌋` and §5 engineering policies (θ trigger, heuristic
//!   prefilter to `S`).
//! * [`greedy`] — greedy baselines used by the ablation benchmarks.
//!
//! # Example
//!
//! ```
//! use fp_geom::Rect;
//! use fp_shape::RList;
//! use fp_select::r_selection;
//!
//! let list = RList::from_candidates(
//!     (1..=10).map(|i| Rect::new(2 * (11 - i), 3 * i)).collect());
//! let sel = r_selection(&list, 4)?;
//! assert_eq!(sel.positions.len(), 4);
//! assert_eq!(sel.positions.first(), Some(&0));      // endpoints always kept
//! assert_eq!(sel.positions.last(), Some(&9));
//! let reduced = list.subset(&sel.positions);
//! assert_eq!(reduced.len(), 4);
//! # Ok::<(), fp_select::SelectError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
pub mod greedy;
mod heuristic;
mod l_error;
mod l_select;
mod metric;
mod policy;
mod r_error;
mod r_select;
mod s_select;

pub use heuristic::heuristic_l_reduction;
pub use l_error::l_selection_error;
pub use l_error::LErrorTable;
pub use l_select::{
    l_selection, l_selection_apply, l_selection_float, l_selection_float_scratch,
    l_selection_scratch, LSelection,
};
pub use metric::Metric;
pub use policy::{
    reduce_llist_set, reduce_llist_set_scratch, reduce_rlist, reduce_rlist_scratch,
    LReductionPolicy, RReductionPolicy,
};
pub use r_error::{RErrorPrefix, RErrorTable};
pub use r_select::{r_selection, r_selection_apply, r_selection_scratch, RSelection};
pub use s_select::{
    reduce_slists, s_selection, s_selection_apply, s_selection_error, s_selection_scratch,
    SSelection,
};

use core::fmt;

/// Errors reported by the selection algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectError {
    /// `k` must satisfy `2 <= k` when the list has two or more entries
    /// (both staircase endpoints must be kept), and `1 <= k` otherwise.
    KTooSmall {
        /// The requested subset size.
        k: usize,
        /// The list length.
        n: usize,
    },
    /// The list is empty; there is nothing to select.
    EmptyList,
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::KTooSmall { k, n } => {
                write!(
                    f,
                    "cannot keep k = {k} of {n} implementations: endpoints must be kept"
                )
            }
            SelectError::EmptyList => write!(f, "cannot select from an empty list"),
        }
    }
}

impl std::error::Error for SelectError {}
