//! The heuristic L-list reducer of paper §5: a fast greedy pass used to
//! shrink a very large list to `S` implementations before the `O(n³)`
//! optimal `L_Selection` takes over.

use std::collections::BinaryHeap;

use fp_shape::LList;

use crate::Metric;

/// Greedily reduces an irreducible L-list to at most `target` elements,
/// returning the kept positions (strictly increasing, endpoints included).
///
/// The heuristic repeatedly discards the interior implementation whose
/// Lemma-3 cost — the distance to the nearer of its two *current*
/// neighbours — is smallest, updating neighbours as it goes. This is the
/// `O((n − target) log n)` "heuristic version of `L_Selection`" the paper
/// applies when a list exceeds the user threshold `S`; it is fast but not
/// optimal (greedy removals are locally, not globally, cheapest).
///
/// If `target >= list.len()` everything is kept. `target` is clamped up to
/// `2` (endpoints are always kept) for lists of two or more elements.
///
/// # Example
///
/// ```
/// use fp_geom::LShape;
/// use fp_shape::LList;
/// use fp_select::{heuristic_l_reduction, Metric};
///
/// let list = LList::from_sorted((0..20).map(|i| {
///     LShape::new(100 - 4 * i, 6, 10 + 3 * i, 2 + i).expect("canonical")
/// }).collect()).expect("valid chain");
/// let kept = heuristic_l_reduction(&list, 5, Metric::L1);
/// assert_eq!(kept.len(), 5);
/// assert_eq!(kept[0], 0);
/// assert_eq!(kept[4], 19);
/// ```
#[must_use]
pub fn heuristic_l_reduction(list: &LList, target: usize, metric: Metric) -> Vec<usize> {
    let n = list.len();
    if n <= target || n <= 2 {
        return (0..n).collect();
    }
    let target = target.max(2);

    // Doubly linked list over positions plus a lazy-deletion min-heap of
    // (cost, position, version).
    let mut left: Vec<usize> = (0..n).map(|i| i.wrapping_sub(1)).collect();
    let mut right: Vec<usize> = (1..=n).collect();
    let mut alive = vec![true; n];
    let mut version = vec![0u32; n];

    let cost = |p: usize, q: usize, r: usize| -> f64 {
        metric
            .dist(list[p], list[q])
            .min(metric.dist(list[q], list[r]))
    };

    // BinaryHeap is a max-heap; store negated cost via Reverse on an
    // ordered pair (cost bits are safe: metric distances are finite, >= 0).
    #[derive(PartialEq)]
    struct Entry {
        cost: f64,
        pos: usize,
        ver: u32,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> core::cmp::Ordering {
            // Min-heap by cost (reverse), tie-break deterministically.
            other
                .cost
                .partial_cmp(&self.cost)
                .expect("finite costs")
                .then_with(|| other.pos.cmp(&self.pos))
        }
    }

    let mut heap: BinaryHeap<Entry> = (1..n - 1)
        .map(|q| Entry {
            cost: cost(q - 1, q, q + 1),
            pos: q,
            ver: 0,
        })
        .collect();

    let mut remaining = n;
    while remaining > target {
        let Entry { pos: q, ver, .. } = heap.pop().expect("interior elements remain");
        if !alive[q] || ver != version[q] {
            continue; // stale entry
        }
        // Remove q; relink and refresh neighbours.
        alive[q] = false;
        remaining -= 1;
        let (p, r) = (left[q], right[q]);
        right[p] = r;
        left[r] = p;
        for x in [p, r] {
            if x > 0 && x < n - 1 && alive[x] {
                version[x] += 1;
                heap.push(Entry {
                    cost: cost(left[x], x, right[x]),
                    pos: x,
                    ver: version[x],
                });
            }
        }
    }

    (0..n).filter(|&i| alive[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{l_selection, l_selection_error};
    use fp_geom::LShape;

    fn l(w1: u64, w2: u64, h1: u64, h2: u64) -> LShape {
        LShape::new_canonical(w1, w2, h1, h2)
    }

    fn chain(n: u64) -> LList {
        LList::from_sorted(
            (0..n)
                .map(|i| {
                    l(
                        300 - 2 * i - (i * i) % 3,
                        9,
                        10 + 3 * i + (7 * i) % 5,
                        5 + i,
                    )
                })
                .collect(),
        )
        .expect("valid chain")
    }

    #[test]
    fn keeps_everything_when_target_large() {
        let list = chain(6);
        assert_eq!(
            heuristic_l_reduction(&list, 6, Metric::L1),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert_eq!(
            heuristic_l_reduction(&list, 99, Metric::L1),
            vec![0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn reduces_to_target_with_endpoints() {
        let list = chain(40);
        for target in [2usize, 3, 10, 25] {
            let kept = heuristic_l_reduction(&list, target, Metric::L1);
            assert_eq!(kept.len(), target, "target {target}");
            assert_eq!(kept[0], 0);
            assert_eq!(*kept.last().expect("non-empty"), 39);
            assert!(kept.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn target_below_two_clamps() {
        let list = chain(10);
        assert_eq!(heuristic_l_reduction(&list, 0, Metric::L1).len(), 2);
        assert_eq!(heuristic_l_reduction(&list, 1, Metric::L1).len(), 2);
    }

    #[test]
    fn removes_the_obviously_redundant_middle() {
        // l_1 sits a hair from l_0; the heuristic must drop it first.
        let list = LList::from_sorted(vec![
            l(100, 5, 10, 10),
            l(99, 5, 11, 10),
            l(50, 5, 60, 40),
            l(10, 5, 100, 90),
        ])
        .expect("valid chain");
        let kept = heuristic_l_reduction(&list, 3, Metric::L1);
        assert_eq!(kept, vec![0, 2, 3]);
    }

    #[test]
    fn heuristic_is_never_better_than_optimal() {
        let list = chain(30);
        for k in [3usize, 5, 10, 20] {
            let greedy = heuristic_l_reduction(&list, k, Metric::L1);
            let greedy_err = l_selection_error(&list, &greedy);
            let optimal = l_selection(&list, k).expect("selection");
            assert!(greedy_err >= optimal.error, "k = {k}");
        }
    }
}
