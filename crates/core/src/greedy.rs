//! Greedy selection baselines.
//!
//! These are *not* part of the paper's contribution — they are the obvious
//! cheap alternatives to the CSPP-based optimal selection, implemented so
//! the ablation benchmarks can quantify what optimality buys
//! (`DESIGN.md` §6, ablation 1).

use fp_geom::{Area, Rect};
use fp_shape::{staircase, LList, RList};

use crate::{heuristic_l_reduction, l_selection_error, Metric, RSelection};

/// Greedy counterpart of [`crate::r_selection`]: repeatedly drops the
/// interior staircase corner whose removal adds the least discarded area
/// given its *current* neighbours, until `k` remain.
///
/// Runs in `O(n log n)`; generally suboptimal because early removals change
/// the cost landscape of later ones.
///
/// The returned [`RSelection::error`] is the true `ERROR(R, R')` of the
/// final subset (evaluated geometrically), not the sum of greedy
/// increments.
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::RList;
/// use fp_select::greedy::greedy_r_selection;
///
/// let list = RList::from_candidates((1..=8).map(|i| Rect::new(20 - 2 * i, 3 * i)).collect());
/// let sel = greedy_r_selection(&list, 4);
/// assert_eq!(sel.positions.len(), 4);
/// ```
#[must_use]
pub fn greedy_r_selection(list: &RList, k: usize) -> RSelection {
    let n = list.len();
    if n <= k || n <= 2 {
        return RSelection {
            positions: (0..n).collect(),
            error: 0,
        };
    }
    let k = k.max(2);

    // Linked list + lazy-deletion min-heap of removal increments:
    // dropping corner q between kept p, r adds (w_p - w_q) * (h_r - h_q).
    let items = list.as_slice();
    let increment =
        |p: Rect, q: Rect, r: Rect| -> Area { Area::from(p.w - q.w) * Area::from(r.h - q.h) };

    let mut left: Vec<usize> = (0..n).map(|i| i.wrapping_sub(1)).collect();
    let mut right: Vec<usize> = (1..=n).collect();
    let mut alive = vec![true; n];
    let mut version = vec![0u32; n];
    let mut heap: std::collections::BinaryHeap<core::cmp::Reverse<(Area, usize, u32)>> = (1..n - 1)
        .map(|q| core::cmp::Reverse((increment(items[q - 1], items[q], items[q + 1]), q, 0)))
        .collect();

    let mut remaining = n;
    while remaining > k {
        let core::cmp::Reverse((_, q, ver)) = heap.pop().expect("interior elements remain");
        if !alive[q] || ver != version[q] {
            continue;
        }
        alive[q] = false;
        remaining -= 1;
        let (p, r) = (left[q], right[q]);
        right[p] = r;
        left[r] = p;
        for x in [p, r] {
            if x > 0 && x < n - 1 && alive[x] {
                version[x] += 1;
                heap.push(core::cmp::Reverse((
                    increment(items[left[x]], items[x], items[right[x]]),
                    x,
                    version[x],
                )));
            }
        }
    }

    let positions: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
    let error = staircase::area_between(list, &positions);
    RSelection { positions, error }
}

/// Greedy counterpart of [`crate::l_selection`]: the §5 heuristic reducer
/// run all the way down to `k`, with the true `ERROR(L, L')` of the result.
#[must_use]
pub fn greedy_l_selection(list: &LList, k: usize, metric: Metric) -> (Vec<usize>, u128) {
    let positions = heuristic_l_reduction(list, k, metric);
    let error = l_selection_error(list, &positions);
    (positions, error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{l_selection, r_selection};
    use fp_geom::LShape;
    use proptest::prelude::*;

    #[test]
    fn greedy_r_keeps_endpoints() {
        let list =
            RList::from_candidates((1..=12u64).map(|i| Rect::new(30 - 2 * i, 4 * i)).collect());
        for k in 2..12 {
            let sel = greedy_r_selection(&list, k);
            assert_eq!(sel.positions.len(), k);
            assert_eq!(sel.positions[0], 0);
            assert_eq!(*sel.positions.last().expect("non-empty"), list.len() - 1);
        }
    }

    #[test]
    fn greedy_r_identity_cases() {
        let list = RList::from_candidates(vec![Rect::new(5, 1), Rect::new(1, 5)]);
        assert_eq!(greedy_r_selection(&list, 2).positions, vec![0, 1]);
        assert_eq!(greedy_r_selection(&list, 10).positions, vec![0, 1]);
        assert_eq!(
            greedy_r_selection(&RList::new(), 3).positions,
            Vec::<usize>::new()
        );
    }

    proptest! {
        /// Greedy never beats optimal (sanity for the ablation).
        #[test]
        fn greedy_r_never_beats_optimal(
            pairs in proptest::collection::vec((1u64..60, 1u64..60), 3..16),
            k_seed in 0usize..16,
        ) {
            let list = RList::from_candidates(
                pairs.into_iter().map(|(w, h)| Rect::new(w, h)).collect());
            prop_assume!(list.len() >= 3);
            let k = 2 + k_seed % (list.len() - 2);
            let greedy = greedy_r_selection(&list, k);
            let optimal = r_selection(&list, k).expect("selection");
            prop_assert!(greedy.error >= optimal.error);
            prop_assert_eq!(greedy.positions.len(), optimal.positions.len());
        }

        #[test]
        fn greedy_l_never_beats_optimal(
            steps in proptest::collection::vec((1u64..5, 0u64..4, 0u64..4), 2..12),
            k_seed in 0usize..12,
        ) {
            let mut items = vec![LShape::new_canonical(200, 4, 5, 2)];
            let (mut w1, mut h1, mut h2) = (200u64, 5u64, 2u64);
            for (dw, dh1, dh2) in steps {
                w1 -= dw;
                h1 += dh1.max(1);
                h2 = (h2 + dh2).min(h1);
                items.push(LShape::new_canonical(w1, 4, h1, h2));
            }
            let list = LList::from_sorted(items).expect("valid chain");
            let k = 2 + k_seed % (list.len() - 1);
            let (_, greedy_err) = greedy_l_selection(&list, k, Metric::L1);
            let optimal = l_selection(&list, k).expect("selection");
            prop_assert!(greedy_err >= optimal.error);
        }
    }
}
