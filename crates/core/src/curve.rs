//! Error-versus-`k` trade-off curves and error-budgeted selection.
//!
//! The paper treats `k` (the retained-subset size) as a user parameter.
//! In practice one often wants the dual: *given an error budget, keep as
//! few implementations as possible*. Because the CSPP dynamic program
//! computes `W(s, t, l)` for every `l ≤ k` in one sweep
//! ([`fp_cspp::constrained_shortest_paths_all_k`]), the whole trade-off
//! curve costs the same as a single selection — and the smallest feasible
//! `k` falls out by scanning it.

use fp_cspp::{constrained_shortest_paths_all_k, Dag};
use fp_geom::Area;
use fp_shape::{LList, RList};

use crate::{LErrorTable, LSelection, RErrorTable, RSelection, SelectError};

/// One point of a selection trade-off curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CurvePoint<W> {
    /// The subset size.
    pub k: usize,
    /// The optimal `ERROR` at that size.
    pub error: W,
    /// The kept positions realizing it.
    pub positions: Vec<usize>,
}

/// The full `R_Selection` trade-off curve: for every `k in 2..=n`, the
/// optimal staircase error and the subset realizing it. One point per
/// `k`, strictly non-increasing in error, ending at zero.
///
/// Costs the same `O(n³)`-ish work as a single `r_selection` at `k = n`
/// (the table build dominates for small `n`; the DP sweep for large).
///
/// Returns an empty vector for lists with fewer than two implementations
/// (nothing to trade off).
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::RList;
/// use fp_select::curve::r_selection_curve;
///
/// let list = RList::from_candidates(
///     (1..=6u64).map(|i| Rect::new(14 - 2 * i, 3 * i)).collect());
/// let curve = r_selection_curve(&list);
/// assert_eq!(curve.len(), 5); // k = 2 ..= 6
/// assert_eq!(curve.last().map(|p| p.error), Some(0)); // keep everything
/// ```
#[must_use]
pub fn r_selection_curve(list: &RList) -> Vec<CurvePoint<Area>> {
    let n = list.len();
    if n < 2 {
        return Vec::new();
    }
    let table = RErrorTable::new(list);
    let g: Dag<Area> = Dag::complete(n, |i, j| table.error(i, j));
    let all = constrained_shortest_paths_all_k(&g, 0, n - 1, n).expect("complete DAG is valid");
    all.into_iter()
        .enumerate()
        .skip(1) // k = 1 has no endpoint-keeping selection for n >= 2
        .map(|(i, sol)| {
            let sol = sol.expect("the chain 0..n-1 exists for every k >= 2");
            CurvePoint {
                k: i + 1,
                error: sol.weight,
                positions: sol.vertices,
            }
        })
        .collect()
}

/// The `L_Selection` trade-off curve under the Manhattan metric.
#[must_use]
pub fn l_selection_curve(list: &LList) -> Vec<CurvePoint<u128>> {
    let n = list.len();
    if n < 2 {
        return Vec::new();
    }
    let table = LErrorTable::new_l1(list);
    let g: Dag<u128> = Dag::complete(n, |i, j| table.error(i, j));
    let all = constrained_shortest_paths_all_k(&g, 0, n - 1, n).expect("complete DAG is valid");
    all.into_iter()
        .enumerate()
        .skip(1)
        .map(|(i, sol)| {
            let sol = sol.expect("the chain 0..n-1 exists for every k >= 2");
            CurvePoint {
                k: i + 1,
                error: sol.weight,
                positions: sol.vertices,
            }
        })
        .collect()
}

/// Error-budgeted `R_Selection`: the **smallest** subset whose optimal
/// staircase error does not exceed `max_error`.
///
/// # Errors
///
/// [`SelectError::EmptyList`] on an empty list.
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::RList;
/// use fp_select::curve::r_selection_within;
///
/// let list = RList::from_candidates(
///     (1..=8u64).map(|i| Rect::new(18 - 2 * i, 3 * i)).collect());
/// let generous = r_selection_within(&list, u128::MAX)?;
/// assert_eq!(generous.positions.len(), 2); // endpoints suffice
/// let exact = r_selection_within(&list, 0)?;
/// assert_eq!(exact.positions.len(), 8);    // zero budget keeps all
/// # Ok::<(), fp_select::SelectError>(())
/// ```
pub fn r_selection_within(list: &RList, max_error: Area) -> Result<RSelection, SelectError> {
    let n = list.len();
    if n == 0 {
        return Err(SelectError::EmptyList);
    }
    if n == 1 {
        return Ok(RSelection {
            positions: vec![0],
            error: 0,
        });
    }
    let point = r_selection_curve(list)
        .into_iter()
        .find(|p| p.error <= max_error)
        .expect("k = n has zero error");
    Ok(RSelection {
        positions: point.positions,
        error: point.error,
    })
}

/// Error-budgeted `L_Selection` (Manhattan metric): the smallest subset
/// whose optimal `ERROR(L, L')` does not exceed `max_error`.
///
/// # Errors
///
/// [`SelectError::EmptyList`] on an empty list.
pub fn l_selection_within(list: &LList, max_error: u128) -> Result<LSelection<u128>, SelectError> {
    let n = list.len();
    if n == 0 {
        return Err(SelectError::EmptyList);
    }
    if n == 1 {
        return Ok(LSelection {
            positions: vec![0],
            error: 0,
        });
    }
    let point = l_selection_curve(list)
        .into_iter()
        .find(|p| p.error <= max_error)
        .expect("k = n has zero error");
    Ok(LSelection {
        positions: point.positions,
        error: point.error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{l_selection, r_selection};
    use fp_geom::{LShape, Rect};
    use proptest::prelude::*;

    fn rl(n: u64) -> RList {
        RList::from_candidates((1..=n).map(|i| Rect::new(3 * (n + 1 - i), 2 * i)).collect())
    }

    fn ll(n: u64) -> LList {
        LList::from_sorted(
            (0..n)
                .map(|i| LShape::new_canonical(90 - 2 * i, 6, 10 + 3 * i, 4 + i))
                .collect(),
        )
        .expect("valid chain")
    }

    #[test]
    fn curve_matches_pointwise_selection() {
        let list = rl(9);
        for point in r_selection_curve(&list) {
            let direct = r_selection(&list, point.k).expect("selection");
            assert_eq!(point.error, direct.error, "k = {}", point.k);
        }
        let llist = ll(9);
        for point in l_selection_curve(&llist) {
            let direct = l_selection(&llist, point.k).expect("selection");
            assert_eq!(point.error, direct.error, "k = {}", point.k);
        }
    }

    #[test]
    fn curve_is_monotone_and_ends_at_zero() {
        let curve = r_selection_curve(&rl(12));
        assert!(curve.windows(2).all(|w| w[0].error >= w[1].error));
        assert_eq!(curve.last().expect("non-empty").error, 0);
        assert_eq!(curve[0].k, 2);
        assert!(r_selection_curve(&rl(1)).is_empty());
        assert!(r_selection_curve(&RList::new()).is_empty());
    }

    #[test]
    fn within_finds_minimal_k() {
        let list = rl(10);
        let curve = r_selection_curve(&list);
        // Pick a budget strictly between two curve points.
        let mid = curve[curve.len() / 2].error;
        let sel = r_selection_within(&list, mid).expect("selection");
        // Minimality: every smaller k exceeds the budget.
        for p in &curve {
            if p.k < sel.positions.len() {
                assert!(p.error > mid);
            }
        }
        assert!(sel.error <= mid);
    }

    #[test]
    fn within_edge_cases() {
        assert_eq!(
            r_selection_within(&RList::new(), 0),
            Err(SelectError::EmptyList)
        );
        let single = RList::from_candidates(vec![Rect::new(2, 2)]);
        assert_eq!(
            r_selection_within(&single, 0).expect("singleton").positions,
            vec![0]
        );
        let lsingle = LList::from_sorted(vec![LShape::new_canonical(5, 2, 3, 1)]).expect("chain");
        assert_eq!(
            l_selection_within(&lsingle, 0)
                .expect("singleton")
                .positions,
            vec![0]
        );
        assert_eq!(
            l_selection_within(&LList::new(), 0),
            Err(SelectError::EmptyList)
        );
    }

    proptest! {
        /// The budgeted selection is minimal and within budget.
        #[test]
        fn within_is_minimal_and_feasible(
            pairs in proptest::collection::vec((1u64..40, 1u64..40), 2..14),
            budget in 0u128..2000,
        ) {
            let list = RList::from_candidates(
                pairs.into_iter().map(|(w, h)| Rect::new(w, h)).collect());
            prop_assume!(list.len() >= 2);
            let sel = r_selection_within(&list, budget).expect("selection");
            prop_assert!(sel.error <= budget);
            let k = sel.positions.len();
            if k > 2 {
                let smaller = r_selection(&list, k - 1).expect("selection");
                prop_assert!(smaller.error > budget);
            }
        }
    }
}
