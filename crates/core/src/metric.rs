//! `L_p` distance metrics between L-shape implementations.

use core::fmt;

use fp_geom::LShape;

/// The distance metric used by `L_Selection` to measure shape difference
/// between two implementations of the same irreducible L-list.
///
/// The paper uses the Manhattan (`L₁`) distance but notes (footnote 2) that
/// every lemma holds for any `L_p` metric; this enum exposes the common
/// choices. Because both implementations share the same `w2`, the distance
/// is taken over the `(w1, h1, h2)` coordinates only.
///
/// ```
/// use fp_geom::LShape;
/// use fp_select::Metric;
///
/// let a = LShape::new(9, 3, 2, 1)?;
/// let b = LShape::new(7, 3, 4, 2)?;
/// assert_eq!(Metric::L1.dist_l1(a, b), 2 + 2 + 1);
/// assert_eq!(Metric::Linf.dist(a, b), 2.0);
/// # Ok::<(), fp_geom::InvalidShapeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Metric {
    /// Manhattan distance (the paper's default).
    #[default]
    L1,
    /// Euclidean distance.
    L2,
    /// Chebyshev distance.
    Linf,
    /// General `L_p` for `p >= 1`.
    Lp(f64),
}

impl Metric {
    /// The exact integer Manhattan distance
    /// `|w1−w1'| + |h1−h1'| + |h2−h2'|`.
    ///
    /// Defined for any pair of L-shapes; when the two implementations come
    /// from one irreducible L-list their `w2` components are equal, so this
    /// is the full 4-coordinate Manhattan distance as well.
    #[must_use]
    pub fn dist_l1(self, a: LShape, b: LShape) -> u64 {
        let _ = self;
        a.w1.abs_diff(b.w1) + a.h1.abs_diff(b.h1) + a.h2.abs_diff(b.h2)
    }

    /// The distance under this metric as a float.
    #[must_use]
    pub fn dist(self, a: LShape, b: LShape) -> f64 {
        let dw = a.w1.abs_diff(b.w1) as f64;
        let dh1 = a.h1.abs_diff(b.h1) as f64;
        let dh2 = a.h2.abs_diff(b.h2) as f64;
        match self {
            Metric::L1 => dw + dh1 + dh2,
            Metric::L2 => (dw * dw + dh1 * dh1 + dh2 * dh2).sqrt(),
            Metric::Linf => dw.max(dh1).max(dh2),
            Metric::Lp(p) => {
                assert!(p >= 1.0, "L_p metrics require p >= 1, got {p}");
                (dw.powf(p) + dh1.powf(p) + dh2.powf(p)).powf(1.0 / p)
            }
        }
    }

    /// `true` for the exact-integer Manhattan metric.
    #[must_use]
    pub fn is_l1(self) -> bool {
        matches!(self, Metric::L1) || matches!(self, Metric::Lp(p) if p == 1.0)
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::L1 => write!(f, "L1"),
            Metric::L2 => write!(f, "L2"),
            Metric::Linf => write!(f, "Linf"),
            Metric::Lp(p) => write!(f, "L{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn l(w1: u64, w2: u64, h1: u64, h2: u64) -> LShape {
        LShape::new_canonical(w1, w2, h1, h2)
    }

    #[test]
    fn l1_matches_manual() {
        let a = l(9, 3, 2, 1);
        let b = l(7, 3, 4, 2);
        assert_eq!(Metric::L1.dist_l1(a, b), 5);
        assert_eq!(Metric::L1.dist(a, b), 5.0);
        assert_eq!(Metric::Lp(1.0).dist(a, b), 5.0);
    }

    #[test]
    fn l2_and_linf() {
        let a = l(10, 3, 5, 1);
        let b = l(7, 3, 1, 1);
        assert_eq!(Metric::L2.dist(a, b), 5.0); // 3-4-5 triangle
        assert_eq!(Metric::Linf.dist(a, b), 4.0);
        assert!((Metric::Lp(2.0).dist(a, b) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "require p >= 1")]
    fn lp_rejects_p_below_one() {
        let _ = Metric::Lp(0.5).dist(l(2, 1, 2, 1), l(1, 1, 1, 1));
    }

    #[test]
    fn is_l1_detection() {
        assert!(Metric::L1.is_l1());
        assert!(Metric::Lp(1.0).is_l1());
        assert!(!Metric::L2.is_l1());
    }

    #[test]
    fn display() {
        assert_eq!(Metric::L1.to_string(), "L1");
        assert_eq!(Metric::Lp(3.0).to_string(), "L3");
    }

    fn arb_l() -> impl Strategy<Value = LShape> {
        (1u64..50, 1u64..50, 1u64..50, 1u64..50)
            .prop_map(|(a, b, c, d)| l(a.max(b), a.min(b), c.max(d), c.min(d)))
    }

    proptest! {
        #[test]
        fn metric_axioms(a in arb_l(), b in arb_l(), c in arb_l(),
                         m in prop_oneof![Just(Metric::L1), Just(Metric::L2),
                                          Just(Metric::Linf), Just(Metric::Lp(3.0))]) {
            // Symmetry and identity.
            prop_assert_eq!(m.dist(a, b), m.dist(b, a));
            prop_assert_eq!(m.dist(a, a), 0.0);
            // Triangle inequality (within float tolerance).
            prop_assert!(m.dist(a, c) <= m.dist(a, b) + m.dist(b, c) + 1e-9);
        }

        #[test]
        fn l1_float_matches_integer(a in arb_l(), b in arb_l()) {
            prop_assert_eq!(Metric::L1.dist(a, b), Metric::L1.dist_l1(a, b) as f64);
        }
    }
}
