//! `Compute_R_Error` (paper §4.2): the pairwise staircase-gap error table.

use fp_geom::Area;
use fp_shape::RList;

/// The table of `error(r_i, r_j)` values for an irreducible R-list: the
/// staircase area discarded when `r_i` and `r_j` are kept as consecutive
/// selections and everything strictly between them is dropped.
///
/// Built by the paper's `Compute_R_Error` recurrence in `O(n²)` time and
/// stored triangularly (`i < j`) in `O(n²)` space:
///
/// ```text
/// error(r_i, r_{i+1}) = 0
/// error(r_i, r_{i+l}) = error(r_i, r_{i+l-1})
///                       + (w_i − w_{i+l-1}) · (h_{i+l} − h_{i+l-1})
/// ```
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::RList;
/// use fp_select::RErrorTable;
///
/// let list = RList::from_candidates(vec![
///     Rect::new(10, 1), Rect::new(6, 3), Rect::new(2, 9),
/// ]);
/// let table = RErrorTable::new(&list);
/// assert_eq!(table.error(0, 1), 0);
/// assert_eq!(table.error(0, 2), (10 - 6) * (9 - 3)); // the dropped middle corner
/// ```
#[derive(Debug, Clone)]
pub struct RErrorTable {
    n: usize,
    /// Row-major upper triangle: entry for `(i, j)` with `i < j` lives at
    /// `offset(i) + (j - i - 1)`.
    values: Vec<Area>,
}

impl RErrorTable {
    /// Runs `Compute_R_Error` on the list.
    #[must_use]
    pub fn new(list: &RList) -> Self {
        let n = list.len();
        let items = list.as_slice();
        let mut values = vec![0; n.saturating_sub(1) * n / 2];
        // The recurrence fills each row i left to right: j = i+1 is zero,
        // then each extension adds one rectangle of discarded area.
        for i in 0..n.saturating_sub(1) {
            let row = Self::offset_for(n, i);
            let mut acc: Area = 0;
            values[row] = 0;
            for j in i + 2..n {
                acc += Area::from(items[i].w - items[j - 1].w)
                    * Area::from(items[j].h - items[j - 1].h);
                values[row + (j - i - 1)] = acc;
            }
        }
        RErrorTable { n, values }
    }

    fn offset_for(n: usize, i: usize) -> usize {
        // Row i holds n-1-i entries; rows 0..i hold (n-1) + (n-2) + ...
        i * (2 * n - i - 1) / 2
    }

    /// The list length this table was built for.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the table is for an empty list.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `error(r_i, r_j)`: the area discarded between consecutive kept
    /// corners `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics unless `i < j < n`.
    #[inline]
    #[must_use]
    pub fn error(&self, i: usize, j: usize) -> Area {
        assert!(
            i < j && j < self.n,
            "error({i}, {j}) out of range for n = {}",
            self.n
        );
        self.values[Self::offset_for(self.n, i) + (j - i - 1)]
    }

    /// The total `ERROR(R, R')` of the selection keeping exactly the given
    /// strictly increasing positions (Equation 2): the sum of the
    /// consecutive-gap errors.
    ///
    /// # Panics
    ///
    /// Panics if positions are not strictly increasing or out of range.
    #[must_use]
    pub fn selection_error(&self, positions: &[usize]) -> Area {
        positions.windows(2).map(|w| self.error(w[0], w[1])).sum()
    }
}

/// Prefix-sum form of the staircase-gap error: `O(n)` to build, `O(1)`
/// per `error(i, j)` query — the table-free weight oracle for the flat
/// selection kernel.
///
/// Expanding the `Compute_R_Error` recurrence telescopes into
///
/// ```text
/// error(i, j) = w_i · (h_j − h_{i+1}) − (T_j − T_{i+1})
/// T_m         = Σ_{p=1..m} w_{p-1} · (h_p − h_{p-1})
/// ```
///
/// Both subtractions stay in range for an irreducible R-list (widths
/// non-increasing), so the arithmetic is exact in [`Area`] and every
/// query returns *exactly* the [`RErrorTable`] value.
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::RList;
/// use fp_select::{RErrorPrefix, RErrorTable};
///
/// let list = RList::from_candidates(vec![
///     Rect::new(10, 1), Rect::new(6, 3), Rect::new(2, 9),
/// ]);
/// let table = RErrorTable::new(&list);
/// let prefix = RErrorPrefix::new(&list);
/// assert_eq!(prefix.error(0, 2), table.error(0, 2));
/// ```
#[derive(Debug, Clone)]
pub struct RErrorPrefix {
    n: usize,
    widths: Vec<Area>,
    heights: Vec<Area>,
    /// `prefix[m] = T_m` above; `prefix[0] = 0`.
    prefix: Vec<Area>,
}

impl RErrorPrefix {
    /// Builds the prefix sums in one `O(n)` pass over the list.
    #[must_use]
    pub fn new(list: &RList) -> Self {
        let items = list.as_slice();
        let n = items.len();
        let mut widths = Vec::with_capacity(n);
        let mut heights = Vec::with_capacity(n);
        let mut prefix = Vec::with_capacity(n);
        let mut acc: Area = 0;
        for (m, r) in items.iter().enumerate() {
            widths.push(Area::from(r.w));
            heights.push(Area::from(r.h));
            if m > 0 {
                acc += Area::from(items[m - 1].w) * Area::from(items[m].h - items[m - 1].h);
            }
            prefix.push(acc);
        }
        RErrorPrefix {
            n,
            widths,
            heights,
            prefix,
        }
    }

    /// The list length this oracle was built for.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the oracle is for an empty list.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `error(r_i, r_j)` in O(1); identical to [`RErrorTable::error`].
    ///
    /// # Panics
    ///
    /// Panics unless `i < j < n`.
    #[inline]
    #[must_use]
    pub fn error(&self, i: usize, j: usize) -> Area {
        assert!(
            i < j && j < self.n,
            "error({i}, {j}) out of range for n = {}",
            self.n
        );
        self.widths[i] * (self.heights[j] - self.heights[i + 1])
            - (self.prefix[j] - self.prefix[i + 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::Rect;
    use fp_shape::staircase;
    use proptest::prelude::*;

    fn rl(pairs: &[(u64, u64)]) -> RList {
        RList::from_candidates(pairs.iter().map(|&(w, h)| Rect::new(w, h)).collect())
    }

    #[test]
    fn adjacent_pairs_cost_nothing() {
        let list = rl(&[(10, 1), (7, 2), (5, 4), (2, 9)]);
        let t = RErrorTable::new(&list);
        for i in 0..3 {
            assert_eq!(t.error(i, i + 1), 0);
        }
    }

    #[test]
    fn figure6_decomposition() {
        // R = {r1..r6}; R' = {r1, r3, r4, r6}: ERROR = error(r1,r3) +
        // error(r4,r6) (the A1 + A2 areas of Figure 6), and error(r3,r4) = 0.
        let list = rl(&[(12, 1), (10, 2), (8, 4), (6, 5), (3, 7), (1, 10)]);
        let t = RErrorTable::new(&list);
        let total = t.selection_error(&[0, 2, 3, 5]);
        assert_eq!(total, t.error(0, 2) + t.error(3, 5));
        // Geometric cross-check.
        assert_eq!(total, staircase::area_between(&list, &[0, 2, 3, 5]));
    }

    #[test]
    fn empty_and_singleton_tables() {
        assert!(RErrorTable::new(&RList::new()).is_empty());
        let t = RErrorTable::new(&rl(&[(3, 3)]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn error_bounds_checked() {
        let t = RErrorTable::new(&rl(&[(5, 1), (2, 4)]));
        let _ = t.error(1, 1);
    }

    proptest! {
        /// The O(1) prefix-sum oracle agrees with the O(n²) table on
        /// every pair of every random irreducible list.
        #[test]
        fn prefix_oracle_matches_table(
            pairs in proptest::collection::vec((1u64..60, 1u64..60), 1..24)
        ) {
            let list = rl(&pairs);
            let table = RErrorTable::new(&list);
            let prefix = RErrorPrefix::new(&list);
            prop_assert_eq!(prefix.len(), table.len());
            let n = list.len();
            for i in 0..n {
                for j in i + 1..n {
                    prop_assert_eq!(
                        prefix.error(i, j), table.error(i, j),
                        "pair ({}, {})", i, j
                    );
                }
            }
        }

        /// Every pair error equals the geometric staircase area of the
        /// selection that keeps only the endpoints of that gap (plus all
        /// corners outside it).
        #[test]
        fn table_matches_geometry(
            pairs in proptest::collection::vec((1u64..60, 1u64..60), 2..20)
        ) {
            let list = rl(&pairs);
            prop_assume!(list.len() >= 2);
            let t = RErrorTable::new(&list);
            let n = list.len();
            for i in 0..n - 1 {
                for j in i + 1..n {
                    // Keep everything except the open interval (i, j).
                    let mut pos: Vec<usize> =
                        (0..=i).chain(j..n).collect();
                    pos.dedup();
                    let geo = staircase::area_between(&list, &pos);
                    prop_assert_eq!(t.error(i, j), geo, "gap ({}, {})", i, j);
                }
            }
        }
    }
}
