//! `S_Selection`: optimal subset selection for irreducible staircase
//! lists — the bounded-staircase generalization of `L_Selection`.
//!
//! Along an irreducible [`SList`] every profile coordinate is monotone,
//! so the exact `L₁` profile distance is additive with list separation:
//! Lemma 2 and Lemma 3 of the paper hold verbatim, the crossover
//! error-table build ([`LErrorTable::from_items`]) stays `O(n²)`, and
//! the flat CSPP kernel solves the same constrained-shortest-path DP —
//! nothing in the selection machinery changes but the distance oracle.
//! A two-tooth staircase list reproduces the L-shape path byte for byte
//! (pinned by the equivalence tests).

use fp_cspp::CsppScratch;
use fp_shape::SList;

use crate::l_select::solve_on_table;
use crate::{LErrorTable, LSelection, SelectError};

/// The result of `S_Selection`; same layout as `L_Selection`'s.
pub type SSelection = LSelection<u128>;

/// Optimally selects `k` implementations from an irreducible staircase
/// list under the exact integer `L₁` profile metric.
///
/// If `k >= n` the list already fits: the identity selection is returned.
///
/// # Errors
///
/// * [`SelectError::EmptyList`] — the list is empty.
/// * [`SelectError::KTooSmall`] — `k < 2` while the list has two or more
///   implementations.
///
/// # Example
///
/// ```
/// use fp_geom::Staircase;
/// use fp_shape::SList;
/// use fp_select::s_selection;
///
/// let list = SList::from_sorted(vec![
///     Staircase::new_canonical(vec![(12, 2), (9, 4), (5, 6)]),
///     Staircase::new_canonical(vec![(11, 3), (8, 5), (5, 7)]),  // near its neighbours
///     Staircase::new_canonical(vec![(8, 6), (6, 8), (4, 10)]),
/// ]).expect("valid chain");
/// let sel = s_selection(&list, 2)?;
/// assert_eq!(sel.positions, vec![0, 2]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn s_selection(list: &SList, k: usize) -> Result<SSelection, SelectError> {
    s_selection_scratch(list, k, &mut CsppScratch::new())
}

/// [`s_selection`] through a caller-owned [`CsppScratch`] arena.
///
/// # Errors
///
/// Same as [`s_selection`].
pub fn s_selection_scratch(
    list: &SList,
    k: usize,
    scratch: &mut CsppScratch<u128>,
) -> Result<SSelection, SelectError> {
    let n = list.len();
    if n == 0 {
        return Err(SelectError::EmptyList);
    }
    if k < 2 && k < n {
        return Err(SelectError::KTooSmall { k, n });
    }
    if k >= n {
        return Ok(SSelection {
            positions: (0..n).collect(),
            error: 0,
        });
    }
    let table = LErrorTable::from_items(list.as_slice(), |a, b| a.profile_dist_l1(b));
    Ok(solve_on_table(&table, k, scratch))
}

/// Convenience: run [`s_selection`] and apply it, returning the reduced
/// list together with the incurred error.
///
/// # Errors
///
/// Same as [`s_selection`].
pub fn s_selection_apply(list: &SList, k: usize) -> Result<(SList, u128), SelectError> {
    let sel = s_selection(list, k)?;
    Ok((list.subset(&sel.positions), sel.error))
}

/// Evaluates `ERROR(S, S')` directly for a given endpoint-keeping
/// selection, in `O(n)` per gap — each discarded implementation costs its
/// `L₁` profile distance to the nearer kept neighbour (Lemma 3).
///
/// # Panics
///
/// Panics if `positions` is empty for a non-empty list, not strictly
/// increasing, out of range, or missing either endpoint.
#[must_use]
pub fn s_selection_error(list: &SList, positions: &[usize]) -> u128 {
    if list.is_empty() {
        assert!(positions.is_empty(), "positions for an empty list");
        return 0;
    }
    assert!(!positions.is_empty(), "selection must be non-empty");
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "positions must be strictly increasing"
    );
    assert_eq!(
        positions[0], 0,
        "selection must keep the first implementation"
    );
    assert_eq!(
        *positions.last().expect("non-empty"),
        list.len() - 1,
        "selection must keep the last implementation"
    );
    let mut total = 0u128;
    for win in positions.windows(2) {
        let (i, j) = (win[0], win[1]);
        for q in i + 1..j {
            total += list[i]
                .profile_dist_l1(&list[q])
                .min(list[q].profile_dist_l1(&list[j]));
        }
    }
    total
}

/// Reduces a slice of irreducible staircase lists to a total budget of
/// `k2` implementations, apportioning the budget across lists by largest
/// remainder (exactly the scheme [`crate::reduce_llist_set`] uses): a
/// list with budget 0 is dropped, budget 1 keeps its endpoint-free
/// 1-median, larger budgets run the optimal [`s_selection`]. Returns the
/// kept positions per list, or `None` when the set already fits.
#[must_use]
pub fn reduce_slists(lists: &[SList], k2: usize) -> Option<Vec<Vec<usize>>> {
    let total: usize = lists.iter().map(SList::len).sum();
    if total <= k2 {
        return None;
    }
    let mut budgets: Vec<usize> = lists.iter().map(|l| k2 * l.len() / total).collect();
    let assigned: usize = budgets.iter().sum();
    let mut order: Vec<usize> = (0..lists.len()).collect();
    order.sort_by_key(|&i| core::cmp::Reverse(k2 * lists[i].len() % total));
    for &i in order.iter().take(k2.saturating_sub(assigned)) {
        budgets[i] += 1;
    }
    let mut scratch = CsppScratch::new();
    Some(
        lists
            .iter()
            .zip(&budgets)
            .map(|(list, &budget)| {
                let n = list.len();
                match budget.min(n) {
                    0 => Vec::new(),
                    1 => vec![s_medoid(list)],
                    b if b >= n => (0..n).collect(),
                    b => {
                        s_selection_scratch(list, b, &mut scratch)
                            .expect("k >= 2 and list non-empty")
                            .positions
                    }
                }
            })
            .collect(),
    )
}

/// The 1-median of a staircase list under the `L₁` profile metric.
fn s_medoid(list: &SList) -> usize {
    let n = list.len();
    let cost = |j: usize| -> u128 { (0..n).map(|i| list[i].profile_dist_l1(&list[j])).sum() };
    (0..n)
        .min_by_key(|&j| cost(j))
        .expect("medoid of a non-empty list")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{l_selection, Metric};
    use fp_geom::{LShape, Staircase};
    use fp_shape::LList;
    use proptest::prelude::*;

    fn chain(n: u64) -> SList {
        SList::from_sorted(
            (0..n)
                .map(|i| {
                    Staircase::new_canonical(vec![
                        (100 - 3 * i, 10 + 2 * i),
                        (60 - 2 * i, 30 + 2 * i),
                        (30 - i, 50 + 3 * i),
                    ])
                })
                .collect(),
        )
        .expect("valid chain")
    }

    #[test]
    fn identity_when_k_large_enough() {
        let list = chain(4);
        let sel = s_selection(&list, 9).expect("identity");
        assert_eq!(sel.positions, vec![0, 1, 2, 3]);
        assert_eq!(sel.error, 0);
    }

    #[test]
    fn endpoints_always_kept_and_error_matches_direct_eval() {
        let list = chain(8);
        for k in 2..8 {
            let sel = s_selection(&list, k).expect("selection");
            assert_eq!(sel.positions.len(), k);
            assert_eq!(sel.positions[0], 0);
            assert_eq!(*sel.positions.last().expect("non-empty"), 7);
            assert_eq!(sel.error, s_selection_error(&list, &sel.positions));
        }
    }

    #[test]
    fn errors_on_bad_input() {
        assert_eq!(s_selection(&SList::new(), 2), Err(SelectError::EmptyList));
        assert_eq!(
            s_selection(&chain(4), 1),
            Err(SelectError::KTooSmall { k: 1, n: 4 })
        );
    }

    /// The tentpole byte-identity pin: a staircase list with one step
    /// (two teeth) must reproduce the L-shape path exactly — same
    /// positions, same error, for every k.
    #[test]
    fn two_teeth_reproduces_l_selection_byte_identically() {
        let lshapes: Vec<LShape> = (0..9)
            .map(|i| LShape::new_canonical(100 - 3 * i, 7, 10 + 2 * i, 5 + i))
            .collect();
        let llist = LList::from_sorted(lshapes.clone()).expect("valid chain");
        let slist =
            SList::from_sorted(lshapes.iter().map(|&l| Staircase::from_lshape(l)).collect())
                .expect("valid chain");
        for k in 2..=9 {
            let l_sel = l_selection(&llist, k).expect("selection");
            let s_sel = s_selection(&slist, k).expect("selection");
            assert_eq!(l_sel.positions, s_sel.positions, "k = {k}");
            assert_eq!(l_sel.error, s_sel.error, "k = {k}");
        }
    }

    #[test]
    fn reduce_slists_apportions_exactly() {
        let lists = [chain(10), chain(6), chain(4)];
        let kept = reduce_slists(&lists, 11).expect("overflow");
        let total: usize = kept.iter().map(Vec::len).sum();
        assert_eq!(total, 11);
        // No reduction when the set already fits.
        assert!(reduce_slists(&lists, 20).is_none());
        for (list, positions) in lists.iter().zip(&kept) {
            if positions.len() >= 2 {
                assert!(SList::from_sorted(list.subset(positions).into_vec()).is_ok());
            }
        }
    }

    fn arb_chain() -> impl Strategy<Value = SList> {
        proptest::collection::vec((1u64..5, 1u64..4), 1..10).prop_map(|steps| {
            let mut items = Vec::new();
            let (mut w1, mut w2, mut w3) = (200u64, 150u64, 100u64);
            let (mut h1, mut h2, mut h3) = (5u64, 20u64, 40u64);
            items.push(Staircase::new_canonical(vec![(w1, h1), (w2, h2), (w3, h3)]));
            for (dw, dh) in steps {
                w1 -= dw;
                w2 -= dw.min(w2 - w3 - 1).max(1);
                w3 -= 1;
                h1 += dh;
                h2 += dh;
                h3 += dh.max(1);
                items.push(Staircase::new_canonical(vec![(w1, h1), (w2, h2), (w3, h3)]));
            }
            SList::from_sorted(items).expect("constructed chain is valid")
        })
    }

    /// Exhaustive optimum over all endpoint-keeping subsets.
    fn brute_force(list: &SList, k: usize) -> u128 {
        let n = list.len();
        let mid: Vec<usize> = (1..n - 1).collect();
        let mut best = u128::MAX;
        for mask in 0u32..(1 << mid.len()) {
            if mask.count_ones() as usize != k - 2 {
                continue;
            }
            let mut pos = vec![0];
            pos.extend(
                mid.iter()
                    .enumerate()
                    .filter(|&(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &p)| p),
            );
            pos.push(n - 1);
            best = best.min(s_selection_error(list, &pos));
        }
        best
    }

    proptest! {
        /// The CSPP reduction is optimal on staircase chains too.
        #[test]
        fn optimal_vs_brute_force(list in arb_chain(), k_seed in 0usize..10) {
            prop_assume!(list.len() >= 2);
            let k = 2 + k_seed % (list.len() - 1);
            let sel = s_selection(&list, k).expect("selection");
            if k < list.len() {
                prop_assert_eq!(sel.positions.len(), k);
                prop_assert_eq!(sel.error, brute_force(&list, k));
            }
        }

        /// Distances are additive along the chain (the Lemma 2 analogue
        /// the crossover build relies on).
        #[test]
        fn profile_distance_is_additive(list in arb_chain()) {
            let n = list.len();
            for i in 0..n {
                for j in i..n {
                    for q in i..=j {
                        prop_assert_eq!(
                            list[i].profile_dist_l1(&list[j]),
                            list[i].profile_dist_l1(&list[q])
                                + list[q].profile_dist_l1(&list[j]));
                    }
                }
            }
        }
    }

    #[test]
    fn metric_module_still_reexported() {
        // Guard that the generalized table did not change the L path.
        let _ = Metric::L1;
    }
}
