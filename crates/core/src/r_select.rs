//! `R_Selection` (paper §4.2, Theorem 2): optimal subset selection for
//! irreducible R-lists via constrained shortest paths.

use fp_cspp::{solve_selection, CsppScratch};
use fp_geom::Area;
use fp_shape::RList;

use crate::{RErrorPrefix, SelectError};

/// The result of `R_Selection`: the positions (indices into the original
/// R-list) of the kept implementations and the optimal `ERROR(R, R')`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RSelection {
    /// Strictly increasing indices of the kept implementations; always
    /// includes `0` and `n - 1`.
    pub positions: Vec<usize>,
    /// The minimized staircase-gap area `ERROR(R, R')`.
    pub error: Area,
}

impl RSelection {
    /// The identity selection (everything kept, zero error).
    fn identity(n: usize) -> Self {
        RSelection {
            positions: (0..n).collect(),
            error: 0,
        }
    }
}

/// Optimally selects `k` implementations from an irreducible R-list,
/// minimizing the bounded area between the original and reduced staircase
/// curves.
///
/// This is the paper's `R_Selection`: build the `error(r_i, r_j)` table
/// with `Compute_R_Error`, form the complete DAG on the list with those
/// edge weights, and solve the constrained shortest path from `r_1` to
/// `r_n` with exactly `k` vertices. Total time `O(k n²)` (Theorem 2).
///
/// If `k >= n` the list already fits: the identity selection is returned.
///
/// # Errors
///
/// * [`SelectError::EmptyList`] — the list is empty.
/// * [`SelectError::KTooSmall`] — `k < 2` while `n >= 2` (both staircase
///   endpoints must be kept), or `k == 0`.
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
/// use fp_shape::RList;
/// use fp_select::r_selection;
///
/// let list = RList::from_candidates(vec![
///     Rect::new(12, 1), Rect::new(10, 2), Rect::new(5, 3), Rect::new(1, 10),
/// ]);
/// let sel = r_selection(&list, 3)?;
/// // Dropping r_2 wastes (12-10)*(3-2) = 2; dropping r_3 wastes
/// // (10-5)*(10-3) = 35. The optimum drops r_2.
/// assert_eq!(sel.positions, vec![0, 2, 3]);
/// assert_eq!(sel.error, 2);
/// # Ok::<(), fp_select::SelectError>(())
/// ```
pub fn r_selection(list: &RList, k: usize) -> Result<RSelection, SelectError> {
    let mut scratch = CsppScratch::new();
    r_selection_scratch(list, k, &mut scratch)
}

/// [`r_selection`] through a caller-owned [`CsppScratch`] arena: a
/// warmed arena performs no per-call allocation beyond the returned
/// positions vector.
///
/// The selection DAG is never materialized. Its interval weights come
/// from the O(1) [`RErrorPrefix`] oracle (`O(n)` setup instead of the
/// `O(n²)` table) and the DP runs in the flat layered kernel — which,
/// for irreducible R-lists, certifies the Monge property and takes the
/// `O(n log n)`-per-layer divide-and-conquer path. Results are exactly
/// those of the reference table-and-`Dag` formulation.
///
/// # Errors
///
/// Same as [`r_selection`].
pub fn r_selection_scratch(
    list: &RList,
    k: usize,
    scratch: &mut CsppScratch<Area>,
) -> Result<RSelection, SelectError> {
    let n = list.len();
    if n == 0 {
        return Err(SelectError::EmptyList);
    }
    if k >= n {
        return Ok(RSelection::identity(n));
    }
    if k < 2 {
        // n >= 2 here (k < n), so both endpoints must be kept.
        return Err(SelectError::KTooSmall { k, n });
    }

    let prefix = RErrorPrefix::new(list);
    let outcome = match solve_selection(n, k, |i, j| prefix.error(i, j), scratch) {
        Ok(out) => out,
        // The chain 0 → 1 → … exists for every k <= n, so the selection
        // DAG always has a k-vertex path.
        Err(e) => unreachable!("complete DAG always has a k-vertex path: {e:?}"),
    };
    Ok(RSelection {
        positions: scratch.path().to_vec(),
        error: outcome.weight,
    })
}

/// Convenience: run [`r_selection`] and apply it, returning the reduced
/// list together with the incurred error.
///
/// # Errors
///
/// Same as [`r_selection`].
pub fn r_selection_apply(list: &RList, k: usize) -> Result<(RList, Area), SelectError> {
    let sel = r_selection(list, k)?;
    Ok((list.subset(&sel.positions), sel.error))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::Rect;
    use fp_shape::staircase;
    use proptest::prelude::*;

    fn rl(pairs: &[(u64, u64)]) -> RList {
        RList::from_candidates(pairs.iter().map(|&(w, h)| Rect::new(w, h)).collect())
    }

    fn staircase_list(n: u64) -> RList {
        rl(&(1..=n)
            .map(|i| (2 * (n + 1 - i), 3 * i))
            .collect::<Vec<_>>())
    }

    #[test]
    fn identity_when_k_large_enough() {
        let list = staircase_list(5);
        for k in 5..8 {
            let sel = r_selection(&list, k).expect("identity");
            assert_eq!(sel.positions, vec![0, 1, 2, 3, 4]);
            assert_eq!(sel.error, 0);
        }
    }

    #[test]
    fn endpoints_always_kept() {
        let list = staircase_list(8);
        for k in 2..8 {
            let sel = r_selection(&list, k).expect("selection");
            assert_eq!(sel.positions.len(), k);
            assert_eq!(sel.positions[0], 0);
            assert_eq!(*sel.positions.last().expect("non-empty"), 7);
        }
    }

    #[test]
    fn errors_on_bad_input() {
        assert_eq!(r_selection(&RList::new(), 3), Err(SelectError::EmptyList));
        let list = staircase_list(4);
        assert_eq!(
            r_selection(&list, 1),
            Err(SelectError::KTooSmall { k: 1, n: 4 })
        );
        assert_eq!(
            r_selection(&list, 0),
            Err(SelectError::KTooSmall { k: 0, n: 4 })
        );
        // Singleton lists accept k = 1 via the identity path.
        let single = rl(&[(3, 3)]);
        assert_eq!(
            r_selection(&single, 1).expect("identity").positions,
            vec![0]
        );
    }

    #[test]
    fn reported_error_matches_geometry() {
        let list = rl(&[(20, 1), (16, 2), (11, 4), (7, 7), (4, 11), (1, 17)]);
        for k in 2..6 {
            let sel = r_selection(&list, k).expect("selection");
            assert_eq!(
                sel.error,
                staircase::area_between(&list, &sel.positions),
                "k = {k}"
            );
        }
    }

    #[test]
    fn apply_returns_reduced_list() {
        let list = staircase_list(6);
        let (reduced, err) = r_selection_apply(&list, 3).expect("selection");
        assert_eq!(reduced.len(), 3);
        assert_eq!(reduced.widest(), list.widest());
        assert_eq!(reduced.tallest(), list.tallest());
        assert!(err > 0);
    }

    /// Exhaustive optimum over all C(n-2, k-2) endpoint-keeping subsets.
    fn brute_force(list: &RList, k: usize) -> Area {
        let n = list.len();
        let mid: Vec<usize> = (1..n - 1).collect();
        let mut best = Area::MAX;
        let picks = k - 2;
        // Iterate over combinations via bitmask (n small in tests).
        for mask in 0u32..(1 << mid.len()) {
            if mask.count_ones() as usize != picks {
                continue;
            }
            let mut pos = vec![0];
            pos.extend(
                mid.iter()
                    .enumerate()
                    .filter(|&(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &p)| p),
            );
            pos.push(n - 1);
            best = best.min(staircase::area_between(list, &pos));
        }
        best
    }

    proptest! {
        /// The CSPP reduction is optimal: it matches exhaustive search.
        #[test]
        fn optimal_vs_brute_force(
            pairs in proptest::collection::vec((1u64..50, 1u64..50), 2..12),
            k_seed in 0usize..12,
        ) {
            let list = RList::from_candidates(
                pairs.into_iter().map(|(w, h)| Rect::new(w, h)).collect());
            prop_assume!(list.len() >= 2);
            let k = 2 + k_seed % (list.len() - 1);
            let sel = r_selection(&list, k).expect("selection");
            if k < list.len() {
                prop_assert_eq!(sel.positions.len(), k);
            }
            prop_assert_eq!(sel.error, brute_force(&list, sel.positions.len()));
            prop_assert_eq!(sel.error, staircase::area_between(&list, &sel.positions));
        }
    }
}
