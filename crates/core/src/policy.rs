//! Reduction policies: when and how the selection algorithms fire during a
//! bottom-up optimization run (paper §3 and the §5 engineering techniques).

use fp_cspp::{CsppScratch, SelectScratch};
use fp_shape::{LListSet, RList};

use crate::{
    heuristic_l_reduction, l_selection_float_scratch, l_selection_scratch, r_selection_scratch,
    Metric, RSelection, SelectError,
};

/// What an [`RReductionPolicy`] does once it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RAction {
    /// Reduce to exactly `K₁` implementations (the paper's behaviour).
    ToSize(usize),
    /// Reduce to the smallest subset whose staircase error stays within
    /// the budget (via [`crate::curve::r_selection_within`]).
    WithinError(fp_geom::Area),
}

/// Policy for rectangular blocks: reduce any R-list that exceeds `limit`
/// (the paper's user parameter `K₁`) back down to `limit` implementations
/// with `R_Selection` — or, in *error-budget* mode, down to the smallest
/// subset whose staircase error fits a budget.
///
/// ```
/// use fp_select::RReductionPolicy;
///
/// let policy = RReductionPolicy::new(30);
/// assert_eq!(policy.limit(), 30);
/// let budgeted = RReductionPolicy::error_budget(30, 500);
/// assert_eq!(budgeted.limit(), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RReductionPolicy {
    limit: usize,
    action: RAction,
}

impl RReductionPolicy {
    /// Creates the paper's policy: lists exceeding `limit` are reduced to
    /// exactly `limit` implementations.
    ///
    /// # Panics
    ///
    /// Panics if `limit < 2`: a staircase always needs both endpoints.
    #[must_use]
    pub fn new(limit: usize) -> Self {
        assert!(limit >= 2, "K1 must be at least 2, got {limit}");
        RReductionPolicy {
            limit,
            action: RAction::ToSize(limit),
        }
    }

    /// Creates the error-budget variant: lists exceeding `trigger_len`
    /// are reduced to the **smallest** subset whose `ERROR(R, R')` does
    /// not exceed `max_error` (which may keep more or fewer than
    /// `trigger_len` implementations, depending on the list's geometry).
    ///
    /// # Panics
    ///
    /// Panics if `trigger_len < 2`.
    #[must_use]
    pub fn error_budget(trigger_len: usize, max_error: fp_geom::Area) -> Self {
        assert!(
            trigger_len >= 2,
            "trigger length must be at least 2, got {trigger_len}"
        );
        RReductionPolicy {
            limit: trigger_len,
            action: RAction::WithinError(max_error),
        }
    }

    /// The trigger length (`K₁` in fixed-size mode).
    #[inline]
    #[must_use]
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Applies the policy: `Some(selection)` when the list exceeds the
    /// trigger, `None` when no reduction is needed.
    #[must_use]
    pub fn apply(&self, list: &RList) -> Option<RSelection> {
        self.apply_scratch(list, &mut CsppScratch::new())
    }

    /// [`RReductionPolicy::apply`] through a caller-owned scratch arena:
    /// the fixed-size (`ToSize`) selection reuses the arena's buffers.
    /// The error-budget mode runs the legacy curve machinery and ignores
    /// the arena. Results are identical either way.
    #[must_use]
    pub fn apply_scratch(
        &self,
        list: &RList,
        scratch: &mut CsppScratch<fp_geom::Area>,
    ) -> Option<RSelection> {
        if list.len() <= self.limit {
            return None;
        }
        match self.action {
            RAction::ToSize(k) => reduce_rlist_scratch(list, k, scratch),
            RAction::WithinError(budget) => Some(
                crate::curve::r_selection_within(list, budget)
                    .expect("list is non-empty past the trigger"),
            ),
        }
    }
}

/// Reduces `list` to `k1` implementations if it exceeds that limit.
/// Returns `None` when the list already fits.
#[must_use]
pub fn reduce_rlist(list: &RList, k1: usize) -> Option<RSelection> {
    reduce_rlist_scratch(list, k1, &mut CsppScratch::new())
}

/// [`reduce_rlist`] through a caller-owned scratch arena.
#[must_use]
pub fn reduce_rlist_scratch(
    list: &RList,
    k1: usize,
    scratch: &mut CsppScratch<fp_geom::Area>,
) -> Option<RSelection> {
    if list.len() <= k1 {
        return None;
    }
    match r_selection_scratch(list, k1.max(2), scratch) {
        Ok(sel) => Some(sel),
        Err(SelectError::EmptyList | SelectError::KTooSmall { .. }) => {
            unreachable!("len > k1 >= 2 makes r_selection infallible")
        }
    }
}

/// Policy for L-shaped blocks (paper §4.3 tail and §5): reduce a block
/// whose total implementation count `X` exceeds `K₂`, subject to two
/// engineering controls:
///
/// * **θ trigger** — only run the expensive reduction when `K₂ / X < θ`,
///   i.e. when the overflow is substantial. `θ = 1` reduces on any
///   overflow.
/// * **heuristic prefilter `S`** — any single list longer than `S` is first
///   cut to `S` by the greedy [`heuristic_l_reduction`], then optimally by
///   `L_Selection` (which is `O(n³)` and too slow on huge lists).
///
/// The budget for each list `L` out of the block's `N` total
/// implementations is `⌊K₂ · |L| / N⌋` (dynamically proportional), clamped
/// to at least 2 (or 1 for singleton lists) so every list keeps its
/// endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct LReductionPolicy {
    k2: usize,
    theta: f64,
    prefilter: Option<usize>,
    metric: Metric,
    parallel: bool,
    workers: Option<usize>,
}

impl LReductionPolicy {
    /// Creates the policy with limit `K₂`, θ = 1 (always fire on overflow),
    /// no prefilter, and the Manhattan metric.
    ///
    /// # Panics
    ///
    /// Panics if `k2 < 2`.
    #[must_use]
    pub fn new(k2: usize) -> Self {
        assert!(k2 >= 2, "K2 must be at least 2, got {k2}");
        LReductionPolicy {
            k2,
            theta: 1.0,
            prefilter: None,
            metric: Metric::L1,
            parallel: false,
            workers: None,
        }
    }

    /// Runs the per-list selections on scoped worker threads. The result
    /// is bit-identical to the sequential path (each list is reduced
    /// independently); only wall-clock time changes, so leave this off
    /// when reproducing the paper's single-threaded CPU columns.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Caps the scoped worker pool used by the parallel path. `None`
    /// (the default) sizes the pool from `available_parallelism()`;
    /// callers that already own a thread budget — the tree-level
    /// scheduler in `fp-optimizer` — pass their per-worker share here
    /// (typically 1) so nested reductions never oversubscribe the
    /// machine. A budget of 0 or 1 takes the sequential path outright.
    /// Like [`LReductionPolicy::with_parallel`], this never changes the
    /// reduction's output, so it is excluded from the policy
    /// fingerprint that addresses the block cache.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the θ trigger: the reduction only fires when `K₂ / X < θ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < theta <= 1`.
    #[must_use]
    pub fn with_theta(mut self, theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "theta must be in (0, 1], got {theta}"
        );
        self.theta = theta;
        self
    }

    /// Sets the prefilter threshold `S`: lists longer than `S` are first
    /// reduced greedily to `S`.
    ///
    /// # Panics
    ///
    /// Panics if `s < 2`.
    #[must_use]
    pub fn with_prefilter(mut self, s: usize) -> Self {
        assert!(s >= 2, "S must be at least 2, got {s}");
        self.prefilter = Some(s);
        self
    }

    /// Sets the distance metric.
    #[must_use]
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// The limit `K₂`.
    #[inline]
    #[must_use]
    pub fn k2(&self) -> usize {
        self.k2
    }

    /// The θ trigger.
    #[inline]
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The prefilter threshold `S`, if set.
    #[inline]
    #[must_use]
    pub fn prefilter(&self) -> Option<usize> {
        self.prefilter
    }

    /// The metric.
    #[inline]
    #[must_use]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Whether reductions run on worker threads.
    #[inline]
    #[must_use]
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// The worker-pool cap for the parallel path, if one was set.
    #[inline]
    #[must_use]
    pub fn workers(&self) -> Option<usize> {
        self.workers
    }

    /// The worker-pool size this policy resolves to, under the one
    /// documented precedence order: an explicit
    /// [`LReductionPolicy::with_workers`] budget, else the
    /// `FP_LRED_WORKERS` environment variable, else the machine's
    /// available parallelism. (When a reduction actually runs, the pool
    /// is additionally capped at the block's list count.)
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        self.workers.unwrap_or_else(default_lred_workers)
    }

    /// Applies the policy to a block's L-list set: `Some(kept positions per
    /// list)` when the reduction fires, `None` otherwise.
    #[must_use]
    pub fn apply(&self, set: &LListSet) -> Option<Vec<Vec<usize>>> {
        reduce_llist_set(set, self)
    }

    /// [`LReductionPolicy::apply`] through a caller-owned scratch arena
    /// pair (see [`reduce_llist_set_scratch`]).
    #[must_use]
    pub fn apply_scratch(
        &self,
        set: &LListSet,
        scratch: &mut SelectScratch,
    ) -> Option<Vec<Vec<usize>>> {
        reduce_llist_set_scratch(set, self, scratch)
    }
}

/// The worker-pool default when no explicit budget was set: the
/// `FP_LRED_WORKERS` environment variable if it parses, else the
/// machine's available parallelism. Cached for the process lifetime so
/// every join sees one consistent answer.
fn default_lred_workers() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("FP_LRED_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
    })
}

/// Applies an [`LReductionPolicy`] to a block's set of irreducible L-lists.
///
/// Returns the kept positions for every list (in `set.lists()` order) when
/// the reduction fires; `None` when the block is within budget or the θ
/// trigger vetoes the reduction.
///
/// The paper prescribes the per-list budget `⌊K₂·|L|/N⌋` but leaves
/// sub-2 budgets unspecified (its L-lists were few and long). To keep the
/// reduction a *hard* bound when a block holds many short lists, budgets
/// here are apportioned by largest remainder so they sum to exactly `K₂`:
/// a list with budget 0 is dropped entirely, a list with budget 1 keeps
/// its 1-median (the implementation minimizing the summed distance to the
/// rest), and budgets of 2 or more run the optimal `L_Selection`. At
/// least one implementation always survives, so feasibility is preserved.
#[must_use]
pub fn reduce_llist_set(set: &LListSet, policy: &LReductionPolicy) -> Option<Vec<Vec<usize>>> {
    reduce_llist_set_scratch(set, policy, &mut SelectScratch::new())
}

/// [`reduce_llist_set`] through a caller-owned [`SelectScratch`] arena
/// pair: the sequential path reuses the caller's arena across every
/// list; the parallel path gives each scoped worker its own local arena
/// (workers cannot share one `&mut`), so its allocation profile is
/// unchanged. Output is bit-identical to [`reduce_llist_set`] either way.
#[must_use]
pub fn reduce_llist_set_scratch(
    set: &LListSet,
    policy: &LReductionPolicy,
    scratch: &mut SelectScratch,
) -> Option<Vec<Vec<usize>>> {
    let total = set.total_len();
    if total <= policy.k2 {
        return None;
    }
    // §5 technique 1: only reduce when X is sufficiently larger than K2.
    if policy.k2 as f64 / total as f64 >= policy.theta {
        return None;
    }

    // Largest-remainder apportionment of K2 across lists by length.
    let lists = set.lists();
    let mut budgets: Vec<usize> = lists.iter().map(|l| policy.k2 * l.len() / total).collect();
    let assigned: usize = budgets.iter().sum();
    let mut order: Vec<usize> = (0..lists.len()).collect();
    order.sort_by_key(|&i| core::cmp::Reverse(policy.k2 * lists[i].len() % total));
    for &i in order.iter().take(policy.k2.saturating_sub(assigned)) {
        budgets[i] += 1;
    }

    // The pool is sized by the caller's budget when one was given (the
    // tree-level scheduler passes its per-worker share), by the
    // FP_LRED_WORKERS environment default or the machine otherwise. A
    // budget of 0 or 1 degenerates to the sequential path.
    let workers = policy
        .workers
        .unwrap_or_else(default_lred_workers)
        .min(lists.len());
    if policy.parallel && workers > 1 {
        // Each list reduces independently: fan the lists out over scoped
        // threads in fixed-size stripes and reassemble in order.
        let mut out: Vec<Vec<Vec<usize>>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let budgets = &budgets;
                handles.push(scope.spawn(move || {
                    let mut local = SelectScratch::new();
                    lists
                        .iter()
                        .zip(budgets)
                        .enumerate()
                        .filter(|(i, _)| i % workers == w)
                        .map(|(_, (list, &budget))| reduce_one(list, budget, policy, &mut local))
                        .collect::<Vec<_>>()
                }));
            }
            out = handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect();
        });
        // Un-stripe: element j of worker w is list w + j * workers.
        let mut result = vec![Vec::new(); lists.len()];
        for (w, chunk) in out.into_iter().enumerate() {
            for (j, positions) in chunk.into_iter().enumerate() {
                result[w + j * workers] = positions;
            }
        }
        Some(result)
    } else {
        Some(
            lists
                .iter()
                .zip(&budgets)
                .map(|(list, &b)| reduce_one(list, b, policy, scratch))
                .collect(),
        )
    }
}

/// Reduces a single list to its budget under the policy's controls.
fn reduce_one(
    list: &fp_shape::LList,
    budget: usize,
    policy: &LReductionPolicy,
    scratch: &mut SelectScratch,
) -> Vec<usize> {
    let n = list.len();
    let budget = budget.min(n);
    match budget {
        0 => Vec::new(),
        1 => vec![medoid(list, policy.metric)],
        b if b >= n => (0..n).collect(),
        b => match policy.prefilter {
            // §5 technique 2: prefilter huge lists greedily to S first.
            Some(s) if n > s && s > b => {
                let coarse = heuristic_l_reduction(list, s, policy.metric);
                let reduced = list.subset(&coarse);
                let inner = select_positions(&reduced, b, policy.metric, scratch);
                inner.into_iter().map(|i| coarse[i]).collect()
            }
            _ => select_positions(list, b, policy.metric, scratch),
        },
    }
}

/// The 1-median of a list: the position minimizing the summed distance to
/// every other implementation (the optimal single survivor).
fn medoid(list: &fp_shape::LList, metric: Metric) -> usize {
    let n = list.len();
    let cost = |j: usize| -> f64 { (0..n).map(|i| metric.dist(list[i], list[j])).sum() };
    (0..n)
        .min_by(|&a, &b| cost(a).partial_cmp(&cost(b)).expect("finite distances"))
        .expect("medoid of a non-empty list")
}

/// Runs the optimal selection (integer for L₁, float otherwise).
fn select_positions(
    list: &fp_shape::LList,
    k: usize,
    metric: Metric,
    scratch: &mut SelectScratch,
) -> Vec<usize> {
    if metric.is_l1() {
        l_selection_scratch(list, k, &mut scratch.int)
            .expect("k >= 2 and list non-empty")
            .positions
    } else {
        l_selection_float_scratch(list, k, metric, &mut scratch.float)
            .expect("k >= 2 and list non-empty")
            .positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::{LShape, Rect};

    fn chain(n: u64, w2: u64) -> Vec<LShape> {
        (0..n)
            .map(|i| LShape::new_canonical(400 - 3 * i, w2, 10 + 2 * i, 3 + i))
            .collect()
    }

    #[test]
    fn r_policy_fires_only_on_overflow() {
        let small = RList::from_candidates((1..=5u64).map(|i| Rect::new(12 - 2 * i, i)).collect());
        let policy = RReductionPolicy::new(5);
        assert_eq!(policy.apply(&small), None);
        let big = RList::from_candidates((1..=20u64).map(|i| Rect::new(42 - 2 * i, i)).collect());
        let sel = policy.apply(&big).expect("overflow fires");
        assert_eq!(sel.positions.len(), 5);
    }

    #[test]
    #[should_panic(expected = "K1 must be at least 2")]
    fn r_policy_rejects_tiny_limit() {
        let _ = RReductionPolicy::new(1);
    }

    #[test]
    fn r_error_budget_mode() {
        let list =
            RList::from_candidates((1..=20u64).map(|i| Rect::new(44 - 2 * i, 3 * i)).collect());
        // Zero budget => keep everything (error must be 0).
        let strict = RReductionPolicy::error_budget(10, 0);
        let sel = strict.apply(&list).expect("triggered");
        assert_eq!(sel.positions.len(), 20);
        assert_eq!(sel.error, 0);
        // Huge budget => endpoints only.
        let lax = RReductionPolicy::error_budget(10, fp_geom::Area::MAX);
        let sel = lax.apply(&list).expect("triggered");
        assert_eq!(sel.positions.len(), 2);
        // Below the trigger nothing happens.
        let small = RList::from_candidates(vec![Rect::new(4, 1), Rect::new(1, 4)]);
        assert_eq!(lax.apply(&small), None);
        // The selection respects the budget and is minimal.
        let mid = RReductionPolicy::error_budget(10, 100);
        let sel = mid.apply(&list).expect("triggered");
        assert!(sel.error <= 100);
        let curve = crate::curve::r_selection_curve(&list);
        for p in curve {
            if p.k < sel.positions.len() {
                assert!(p.error > 100, "k = {} should exceed the budget", p.k);
            }
        }
    }

    #[test]
    fn l_policy_budget_is_proportional() {
        // Two lists of 30 and 10; K2 = 20 => budgets 15 and 5. The second
        // chain lives in a disjoint size regime so no cross-list dominance.
        let mut shapes = chain(30, 5);
        shapes.extend(
            (0..10u64).map(|i| LShape::new_canonical(150 - 3 * i, 7, 500 + 2 * i, 300 + i)),
        );
        let set = LListSet::from_candidates(shapes);
        assert_eq!(set.lists().len(), 2);
        assert_eq!(set.total_len(), 40);
        let policy = LReductionPolicy::new(20);
        let kept = policy.apply(&set).expect("overflow fires");
        let sizes: Vec<usize> = kept.iter().map(Vec::len).collect();
        let budgets: Vec<usize> = set.lists().iter().map(|l| 20 * l.len() / 40).collect();
        assert_eq!(sizes, budgets);
        assert!(kept.iter().all(|p| p[0] == 0));
    }

    #[test]
    fn l_policy_within_budget_is_none() {
        let set = LListSet::from_candidates(chain(10, 5));
        assert_eq!(LReductionPolicy::new(10).apply(&set), None);
        assert_eq!(LReductionPolicy::new(2000).apply(&set), None);
    }

    #[test]
    fn theta_vetoes_marginal_overflows() {
        let set = LListSet::from_candidates(chain(25, 5));
        // X = 25, K2 = 20: K2/X = 0.8. theta = 0.5 vetoes; theta = 0.9 fires.
        let veto = LReductionPolicy::new(20).with_theta(0.5);
        assert_eq!(veto.apply(&set), None);
        let fire = LReductionPolicy::new(20).with_theta(0.9);
        assert!(fire.apply(&set).is_some());
    }

    #[test]
    fn prefilter_path_composes_positions() {
        let set = LListSet::from_candidates(chain(60, 5));
        let plain = LReductionPolicy::new(12);
        let prefiltered = LReductionPolicy::new(12).with_prefilter(25);
        let kept_plain = plain.apply(&set).expect("fires");
        let kept_pre = prefiltered.apply(&set).expect("fires");
        assert_eq!(kept_plain[0].len(), 12);
        assert_eq!(kept_pre[0].len(), 12);
        // Prefiltered positions still index the original list.
        assert_eq!(kept_pre[0][0], 0);
        assert_eq!(*kept_pre[0].last().expect("non-empty"), 59);
        assert!(kept_pre[0].windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tiny_lists_keep_endpoints() {
        // Many singleton-ish lists: budget floor would be 0 without the clamp.
        let mut shapes = Vec::new();
        for w2 in 1..=12u64 {
            shapes.push(LShape::new_canonical(100, w2, 50, 20));
        }
        let set = LListSet::from_candidates(shapes);
        // Mutually incomparable? w2 varies, others equal: (100, w2, 50, 20)
        // with larger w2 dominates smaller w2. Only the smallest survives.
        assert_eq!(set.total_len(), 1);
        assert_eq!(LReductionPolicy::new(2).apply(&set), None);
    }

    #[test]
    fn many_short_lists_stay_within_k2() {
        // 40 mutually incomparable singleton-ish chains: per-list floors of
        // the naive formula would keep 2 x 40 = 80; the apportionment keeps
        // at most K2 = 10 total by dropping whole lists.
        let mut shapes = Vec::new();
        for i in 0..40u64 {
            // Distinct w2 per chain, anti-correlated sizes: no dominance.
            shapes.push(LShape::new_canonical(500 - i, 100 + i, 40 + i, 10 + i));
        }
        let set = LListSet::from_candidates(shapes);
        assert_eq!(set.total_len(), 40);
        assert_eq!(set.lists().len(), 40);
        let kept = LReductionPolicy::new(10).apply(&set).expect("fires");
        let total_kept: usize = kept.iter().map(Vec::len).collect::<Vec<_>>().iter().sum();
        assert!(total_kept <= 10, "kept {total_kept}");
        assert!(total_kept >= 1);
    }

    #[test]
    fn medoid_minimizes_total_distance() {
        // A dense cluster at the start with two far outliers: the medoid is
        // the cluster member closest to the outliers (unique minimum).
        let list = fp_shape::LList::from_sorted(vec![
            LShape::new_canonical(100, 5, 10, 10),
            LShape::new_canonical(99, 5, 11, 10),
            LShape::new_canonical(98, 5, 12, 11),
            LShape::new_canonical(20, 5, 80, 70),
            LShape::new_canonical(10, 5, 90, 80),
        ])
        .expect("valid chain");
        assert_eq!(super::medoid(&list, Metric::L1), 2);
    }

    #[test]
    fn parallel_reduction_is_bit_identical() {
        // Many lists of varying length in disjoint size regimes.
        let mut shapes = Vec::new();
        for g in 0..12u64 {
            let len = 3 + (g % 5);
            for i in 0..len {
                // Anti-correlated across groups (wider groups are flatter)
                // so no cross-group dominance removes whole lists.
                shapes.push(LShape::new_canonical(
                    1000 * (13 - g) - 3 * i,
                    50 + g,
                    100 * (g + 1) + 2 * i,
                    40 * (g + 1) + i,
                ));
            }
        }
        let set = LListSet::from_candidates(shapes);
        assert!(set.lists().len() >= 10);
        let seq = LReductionPolicy::new(20).apply(&set).expect("fires");
        let par = LReductionPolicy::new(20)
            .with_parallel(true)
            .apply(&set)
            .expect("fires");
        assert_eq!(seq, par);
        // Any explicit worker budget (including the degenerate 0/1 that
        // falls back to the sequential path) is bit-identical too.
        for budget in [0usize, 1, 2, 3, 64] {
            let capped = LReductionPolicy::new(20)
                .with_parallel(true)
                .with_workers(budget)
                .apply(&set)
                .expect("fires");
            assert_eq!(seq, capped, "budget {budget} diverged");
        }
    }

    #[test]
    fn metric_variants_run() {
        let set = LListSet::from_candidates(chain(30, 5));
        for metric in [Metric::L1, Metric::L2, Metric::Linf] {
            let policy = LReductionPolicy::new(10).with_metric(metric);
            let kept = policy.apply(&set).expect("fires");
            assert_eq!(kept[0].len(), 10 * 30 / 30);
        }
    }
}
