//! `Compute_L_Error` (paper §4.3): the pairwise discarded-shape cost table
//! for irreducible L-lists.

use fp_shape::LList;

use crate::Metric;

/// The table of `error(l_i, l_j)` values for an irreducible L-list: the cost
/// of keeping `l_i` and `l_j` as consecutive selections while discarding
/// everything strictly between them. By Lemma 3, each discarded `l_q` costs
/// `min(dist(l_i, l_q), dist(l_q, l_j))` — its distance to the nearer of its
/// two kept neighbours.
///
/// Stored triangularly in `O(n²)` space. The paper's `Compute_L_Error`
/// is a triple loop in `O(n³)`; this build exploits Lemma 2 instead:
/// along an irreducible L-list the per-coordinate sizes are monotone, so
/// for a fixed gap `(i, j)` the discarded cost switches from the
/// `dist(l_i, l_q)` branch to the `dist(l_q, l_j)` branch at a single
/// crossover index `m`, and that crossover is itself monotone in `i` for
/// fixed `j`. With per-row prefix sums of `dist(l_i, ·)` and a per-`j`
/// suffix buffer of `dist(·, l_j)`, an amortized pointer sweep fills the
/// whole table in **`O(n²)`** distance evaluations, producing exactly
/// the same per-entry values as the triple loop (each term *is* the
/// min; only the float summation order differs). Distances use an exact
/// integer representation for the Manhattan metric and scaled floats
/// otherwise; the table generic `W` is chosen by the callers in
/// [`crate::l_selection`]/[`crate::l_selection_float`].
#[derive(Debug, Clone)]
pub struct LErrorTable<W> {
    n: usize,
    values: Vec<W>,
}

impl LErrorTable<u128> {
    /// Runs `Compute_L_Error` under the exact integer Manhattan metric.
    ///
    /// # Example
    ///
    /// ```
    /// use fp_geom::LShape;
    /// use fp_shape::LList;
    /// use fp_select::LErrorTable;
    ///
    /// let list = LList::from_sorted(vec![
    ///     LShape::new(9, 3, 2, 1)?,
    ///     LShape::new(8, 3, 3, 2)?,
    ///     LShape::new(5, 3, 6, 4)?,
    /// ]).expect("valid chain");
    /// let t = LErrorTable::new_l1(&list);
    /// assert_eq!(t.error(0, 1), 0); // nothing discarded between neighbours
    /// // Discarding l_2: min(dist(l_1, l_2), dist(l_2, l_3))
    /// //              = min(1+1+1, 3+3+2) = 3.
    /// assert_eq!(t.error(0, 2), 3);
    /// # Ok::<(), fp_geom::InvalidShapeError>(())
    /// ```
    #[must_use]
    pub fn new_l1(list: &LList) -> Self {
        Self::build(list, |a, b| u128::from(Metric::L1.dist_l1(a, b)))
    }
}

impl LErrorTable<fp_cspp::OrderedF64> {
    /// Runs `Compute_L_Error` under an arbitrary [`Metric`], with distances
    /// as floats.
    #[must_use]
    pub fn new_metric(list: &LList, metric: Metric) -> Self {
        Self::build(list, move |a, b| {
            fp_cspp::OrderedF64::new(metric.dist(a, b)).expect("L_p distances are finite")
        })
    }
}

impl<W: fp_cspp::Weight> LErrorTable<W> {
    fn build(list: &LList, dist: impl Fn(fp_geom::LShape, fp_geom::LShape) -> W) -> Self {
        Self::from_items(list.as_slice(), |a, b| dist(*a, *b))
    }

    /// Runs the `O(n²)` crossover build over any monotone chain of items
    /// — the staircase generalization. `items` must be an irreducible
    /// chain under `dist`: along the slice every profile coordinate is
    /// monotone, so distances are non-decreasing with list separation
    /// (Lemma 2) — the property the crossover pointer sweep relies on.
    /// For [`LList`] slices with the Manhattan metric this is exactly
    /// [`LErrorTable::new_l1`].
    #[must_use]
    pub fn from_items<T>(items: &[T], dist: impl Fn(&T, &T) -> W) -> Self {
        let n = items.len();
        let mut values = vec![W::ZERO; n.saturating_sub(1) * n / 2];
        if n < 3 {
            // Only adjacent (zero-cost) gaps exist.
            return LErrorTable { n, values };
        }

        // pre[offset(i) + (q-i-1)] = Σ_{p=i+1..=q} dist(l_i, l_p): the
        // left-branch prefix sums, one triangular pass.
        let mut pre = vec![W::ZERO; n.saturating_sub(1) * n / 2];
        for i in 0..n - 1 {
            let row = Self::offset_for(n, i);
            let mut acc = W::ZERO;
            for q in i + 1..n {
                acc = acc + dist(&items[i], &items[q]);
                pre[row + (q - i - 1)] = acc;
            }
        }

        // For each right endpoint j: sfx[q] = Σ_{p=q..j-1} dist(l_p, l_j),
        // then sweep i downward. The crossover m(i, j) — the largest q
        // with dist(l_i, l_q) <= dist(l_q, l_j) — only moves left as i
        // decreases (Lemma 2), so the pointer walk is amortized O(j).
        let mut sfx = vec![W::ZERO; n + 1];
        for j in 2..n {
            sfx[j] = W::ZERO;
            for q in (1..j).rev() {
                sfx[q] = sfx[q + 1] + dist(&items[q], &items[j]);
            }
            let mut m = j - 1;
            for i in (0..j - 1).rev() {
                while m > i && dist(&items[i], &items[m]) > dist(&items[m], &items[j]) {
                    m -= 1;
                }
                let left = if m == i {
                    W::ZERO
                } else {
                    pre[Self::offset_for(n, i) + (m - i - 1)]
                };
                values[Self::offset_for(n, i) + (j - i - 1)] = left + sfx[m + 1];
            }
        }
        LErrorTable { n, values }
    }

    fn offset_for(n: usize, i: usize) -> usize {
        i * (2 * n - i - 1) / 2
    }

    /// The list length this table was built for.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the table is for an empty list.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `error(l_i, l_j)`: the cost of discarding everything strictly
    /// between positions `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics unless `i < j < n`.
    #[inline]
    #[must_use]
    pub fn error(&self, i: usize, j: usize) -> W {
        assert!(
            i < j && j < self.n,
            "error({i}, {j}) out of range for n = {}",
            self.n
        );
        self.values[Self::offset_for(self.n, i) + (j - i - 1)]
    }

    /// The total `ERROR(L, L')` of a selection (Equation 3): the sum of
    /// consecutive-gap errors.
    ///
    /// # Panics
    ///
    /// Panics if positions are not strictly increasing or out of range.
    #[must_use]
    pub fn selection_error(&self, positions: &[usize]) -> W {
        positions
            .windows(2)
            .map(|w| self.error(w[0], w[1]))
            .fold(W::ZERO, |acc, x| acc + x)
    }
}

/// Evaluates `ERROR(L, L')` directly for a given endpoint-keeping selection
/// under the Manhattan metric, in `O(n)` — no table needed. Each discarded
/// implementation costs its distance to the nearer of its two kept list
/// neighbours (Lemma 3).
///
/// # Panics
///
/// Panics if `positions` is empty, not strictly increasing, out of range,
/// or missing either endpoint of a non-empty list.
#[must_use]
pub fn l_selection_error(list: &LList, positions: &[usize]) -> u128 {
    if list.is_empty() {
        assert!(positions.is_empty(), "positions for an empty list");
        return 0;
    }
    assert!(!positions.is_empty(), "selection must be non-empty");
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "positions must be strictly increasing"
    );
    assert_eq!(
        positions[0], 0,
        "selection must keep the first implementation"
    );
    assert_eq!(
        *positions.last().expect("non-empty"),
        list.len() - 1,
        "selection must keep the last implementation"
    );
    let m = Metric::L1;
    let mut total = 0u128;
    for win in positions.windows(2) {
        let (i, j) = (win[0], win[1]);
        for q in i + 1..j {
            total += u128::from(m.dist_l1(list[i], list[q]).min(m.dist_l1(list[q], list[j])));
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::LShape;
    use proptest::prelude::*;

    fn chain(n: u64) -> LList {
        // A deterministic valid chain: w1 decreasing, heights increasing.
        LList::from_sorted(
            (0..n)
                .map(|i| LShape::new_canonical(50 - 2 * i, 5, 10 + 3 * i, 4 + i))
                .collect(),
        )
        .expect("valid chain")
    }

    #[test]
    fn neighbours_cost_zero() {
        let t = LErrorTable::new_l1(&chain(6));
        for i in 0..5 {
            assert_eq!(t.error(i, i + 1), 0);
        }
    }

    /// Lemma 3 cross-check: error(i, j) equals the sum over discarded
    /// elements of the distance to the nearest kept element **of the whole
    /// list** (not just the neighbours), because of Lemma 2.
    #[test]
    fn lemma3_localization_holds() {
        let list = chain(7);
        let t = LErrorTable::new_l1(&list);
        let m = Metric::L1;
        for i in 0..6 {
            for j in i + 1..7 {
                let mut expected = 0u128;
                for q in i + 1..j {
                    // Nearest over *all* kept implementations {i, j}.
                    let d = m.dist_l1(list[i], list[q]).min(m.dist_l1(list[q], list[j]));
                    expected += u128::from(d);
                }
                assert_eq!(t.error(i, j), expected);
            }
        }
    }

    #[test]
    fn metric_table_l1_matches_integer_table() {
        let list = chain(6);
        let exact = LErrorTable::new_l1(&list);
        let float = LErrorTable::new_metric(&list, Metric::L1);
        for i in 0..5 {
            for j in i + 1..6 {
                assert_eq!(float.error(i, j).into_inner(), exact.error(i, j) as f64);
            }
        }
    }

    #[test]
    fn selection_error_sums_gaps() {
        let t = LErrorTable::new_l1(&chain(6));
        let total = t.selection_error(&[0, 2, 5]);
        assert_eq!(total, t.error(0, 2) + t.error(2, 5));
        assert_eq!(t.selection_error(&[0]), 0);
    }

    #[test]
    fn empty_list_table() {
        let t = LErrorTable::new_l1(&LList::new());
        assert!(t.is_empty());
    }

    fn arb_chain() -> impl Strategy<Value = LList> {
        proptest::collection::vec((1u64..8, 0u64..5, 0u64..5), 2..12).prop_map(|steps| {
            let mut w1 = 200u64;
            let mut h1 = 1u64;
            let mut h2 = 1u64;
            let mut items = Vec::new();
            items.push(LShape::new_canonical(w1, 1, h1.max(h2), h2.min(h1)));
            for (dw, dh1, dh2) in steps {
                w1 -= dw;
                // Ensure at least one height strictly grows.
                if dh1 == 0 && dh2 == 0 {
                    h1 += 1;
                } else {
                    h1 += dh1;
                    h2 += dh2;
                }
                let (lo, hi) = (h1.min(h2), h1.max(h2));
                items.push(LShape::new_canonical(w1, 1, hi, lo));
            }
            // Heights must be monotone per coordinate: rebuild properly.
            let mut fixed = Vec::new();
            let (mut ch1, mut ch2) = (1u64, 1u64);
            let mut cw = 200u64;
            for (idx, _) in items.iter().enumerate() {
                cw -= 1 + idx as u64 % 3;
                ch1 += 1 + (idx as u64 % 2);
                ch2 += idx as u64 % 2;
                fixed.push(LShape::new_canonical(cw, 1, ch1.max(ch2), ch2.min(ch1)));
            }
            LList::from_sorted(fixed).expect("constructed chain is valid")
        })
    }

    /// The paper's `Compute_L_Error` triple loop — the `O(n³)` reference
    /// the production build must reproduce entry for entry.
    fn reference_build<W: fp_cspp::Weight>(
        list: &LList,
        dist: impl Fn(fp_geom::LShape, fp_geom::LShape) -> W,
    ) -> Vec<Vec<W>> {
        let n = list.len();
        let items = list.as_slice();
        let mut out = vec![vec![W::ZERO; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let mut acc = W::ZERO;
                for q in i + 1..j {
                    acc = acc + dist(items[i], items[q]).min(dist(items[q], items[j]));
                }
                out[i][j] = acc;
            }
        }
        out
    }

    #[test]
    fn crossover_build_matches_triple_loop_on_fixture() {
        let list = chain(9);
        let t = LErrorTable::new_l1(&list);
        let reference = reference_build(&list, |a, b| u128::from(Metric::L1.dist_l1(a, b)));
        for (i, row) in reference.iter().enumerate() {
            for (j, &want) in row.iter().enumerate().skip(i + 1) {
                assert_eq!(t.error(i, j), want, "pair ({i}, {j})");
            }
        }
    }

    proptest! {
        /// The O(n²) crossover build equals the O(n³) triple loop exactly
        /// under the integer metric, and up to summation-order rounding
        /// under the float metrics.
        #[test]
        fn crossover_build_matches_triple_loop(list in arb_chain()) {
            let n = list.len();
            let exact = LErrorTable::new_l1(&list);
            let exact_ref = reference_build(&list, |a, b| u128::from(Metric::L1.dist_l1(a, b)));
            for metric in [Metric::L1, Metric::L2, Metric::Linf] {
                let float = LErrorTable::new_metric(&list, metric);
                let float_ref = reference_build(&list, |a, b| {
                    fp_cspp::OrderedF64::new(metric.dist(a, b)).expect("finite")
                });
                for i in 0..n {
                    for j in i + 1..n {
                        prop_assert_eq!(exact.error(i, j), exact_ref[i][j],
                            "L1 pair ({}, {})", i, j);
                        let (a, b) = (float.error(i, j).into_inner(),
                                      float_ref[i][j].into_inner());
                        prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0),
                            "{:?} pair ({}, {}): {} vs {}", metric, i, j, a, b);
                    }
                }
            }
        }

        /// Lemma 2: distances grow with list separation.
        #[test]
        fn lemma2_distance_monotonicity(list in arb_chain()) {
            let n = list.len();
            let m = Metric::L1;
            for i in 0..n {
                for j in i..n {
                    if i > 0 {
                        prop_assert!(m.dist_l1(list[i], list[j])
                            <= m.dist_l1(list[i - 1], list[j]));
                    }
                    if j + 1 < n {
                        prop_assert!(m.dist_l1(list[i], list[j])
                            <= m.dist_l1(list[i], list[j + 1]));
                    }
                }
            }
        }

        /// error(i, j) is monotone: widening a gap cannot reduce its cost.
        #[test]
        fn gap_error_monotone(list in arb_chain()) {
            let t = LErrorTable::new_l1(&list);
            let n = list.len();
            for i in 0..n.saturating_sub(2) {
                for j in i + 1..n - 1 {
                    prop_assert!(t.error(i, j) <= t.error(i, j + 1));
                }
            }
        }
    }
}
