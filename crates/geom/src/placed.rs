//! Placed geometry: positioned rectangles used to realize and verify final
//! layouts.

use core::fmt;

use crate::{area, Area, Coord, Rect};

/// A point on the chip grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Coord,
    /// Vertical coordinate.
    pub y: Coord,
}

impl Point {
    /// Creates a point.
    #[inline]
    #[must_use]
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(Coord, Coord)> for Point {
    #[inline]
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle placed at an absolute position (lower-left
/// corner at `origin`).
///
/// Used when a floorplan solution is *realized*: every basic rectangle
/// becomes a `PlacedRect`, and the layout validator checks pairwise
/// non-overlap plus containment in the enveloping rectangle.
///
/// ```
/// use fp_geom::{PlacedRect, Point, Rect};
///
/// let a = PlacedRect::new(Point::new(0, 0), Rect::new(4, 4));
/// let b = PlacedRect::new(Point::new(4, 0), Rect::new(4, 4));
/// assert!(!a.overlaps(&b)); // edge-adjacent rectangles do not overlap
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacedRect {
    /// Lower-left corner.
    pub origin: Point,
    /// Size.
    pub size: Rect,
}

impl PlacedRect {
    /// Places `size` with its lower-left corner at `origin`.
    #[inline]
    #[must_use]
    pub const fn new(origin: Point, size: Rect) -> Self {
        PlacedRect { origin, size }
    }

    /// Left edge x-coordinate.
    #[inline]
    #[must_use]
    pub const fn x_min(&self) -> Coord {
        self.origin.x
    }

    /// Right edge x-coordinate.
    #[inline]
    #[must_use]
    pub const fn x_max(&self) -> Coord {
        self.origin.x + self.size.w
    }

    /// Bottom edge y-coordinate.
    #[inline]
    #[must_use]
    pub const fn y_min(&self) -> Coord {
        self.origin.y
    }

    /// Top edge y-coordinate.
    #[inline]
    #[must_use]
    pub const fn y_max(&self) -> Coord {
        self.origin.y + self.size.h
    }

    /// The enclosed area.
    #[inline]
    #[must_use]
    pub fn area(&self) -> Area {
        self.size.area()
    }

    /// `true` if the *open interiors* of the rectangles intersect.
    ///
    /// Rectangles that merely share an edge or a corner do not overlap.
    /// Zero-area rectangles never overlap anything.
    #[inline]
    #[must_use]
    pub fn overlaps(&self, other: &PlacedRect) -> bool {
        if self.area() == 0 || other.area() == 0 {
            return false;
        }
        self.x_min() < other.x_max()
            && other.x_min() < self.x_max()
            && self.y_min() < other.y_max()
            && other.y_min() < self.y_max()
    }

    /// `true` if `self` lies entirely inside `other` (boundary inclusive).
    #[inline]
    #[must_use]
    pub fn contained_in(&self, other: &PlacedRect) -> bool {
        self.x_min() >= other.x_min()
            && self.x_max() <= other.x_max()
            && self.y_min() >= other.y_min()
            && self.y_max() <= other.y_max()
    }

    /// `true` if the point lies inside `self` (boundary inclusive).
    #[inline]
    #[must_use]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.x_min() && p.x <= self.x_max() && p.y >= self.y_min() && p.y <= self.y_max()
    }

    /// Translates the rectangle by `(dx, dy)`.
    #[inline]
    #[must_use]
    pub const fn translated(self, dx: Coord, dy: Coord) -> Self {
        PlacedRect {
            origin: Point::new(self.origin.x + dx, self.origin.y + dy),
            size: self.size,
        }
    }
}

impl fmt::Display for PlacedRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.size, self.origin)
    }
}

/// An accumulating axis-aligned bounding box.
///
/// ```
/// use fp_geom::{BoundingBox, PlacedRect, Point, Rect};
///
/// let mut bb = BoundingBox::new();
/// bb.include(&PlacedRect::new(Point::new(1, 2), Rect::new(3, 3)));
/// bb.include(&PlacedRect::new(Point::new(0, 4), Rect::new(2, 2)));
/// assert_eq!(bb.extent(), Some(Rect::new(4, 4)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoundingBox {
    bounds: Option<(Point, Point)>,
}

impl BoundingBox {
    /// An empty bounding box.
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        BoundingBox { bounds: None }
    }

    /// Extends the box to include `r`.
    pub fn include(&mut self, r: &PlacedRect) {
        let lo = Point::new(r.x_min(), r.y_min());
        let hi = Point::new(r.x_max(), r.y_max());
        self.bounds = Some(match self.bounds {
            None => (lo, hi),
            Some((a, b)) => (
                Point::new(a.x.min(lo.x), a.y.min(lo.y)),
                Point::new(b.x.max(hi.x), b.y.max(hi.y)),
            ),
        });
    }

    /// The lower-left corner, if any rectangle was included.
    #[inline]
    #[must_use]
    pub fn min(&self) -> Option<Point> {
        self.bounds.map(|(a, _)| a)
    }

    /// The upper-right corner, if any rectangle was included.
    #[inline]
    #[must_use]
    pub fn max(&self) -> Option<Point> {
        self.bounds.map(|(_, b)| b)
    }

    /// The width × height of the box, if non-empty.
    #[inline]
    #[must_use]
    pub fn extent(&self) -> Option<Rect> {
        self.bounds.map(|(a, b)| Rect::new(b.x - a.x, b.y - a.y))
    }

    /// The area of the box (`0` when empty).
    #[inline]
    #[must_use]
    pub fn area(&self) -> Area {
        self.extent().map_or(0, |r| r.area())
    }
}

impl Extend<PlacedRect> for BoundingBox {
    fn extend<T: IntoIterator<Item = PlacedRect>>(&mut self, iter: T) {
        for r in iter {
            self.include(&r);
        }
    }
}

impl FromIterator<PlacedRect> for BoundingBox {
    fn from_iter<T: IntoIterator<Item = PlacedRect>>(iter: T) -> Self {
        let mut bb = BoundingBox::new();
        bb.extend(iter);
        bb
    }
}

/// Checks that no two rectangles in `rects` overlap; returns the indices of
/// the first offending pair, or `None` when the set is overlap-free.
///
/// This is the O(n log n) sweep used by the layout validator; it is exact
/// for the modest rectangle counts of floorplan verification.
#[must_use]
pub fn first_overlap(rects: &[PlacedRect]) -> Option<(usize, usize)> {
    // Sweep over x: sort by x_min, keep an active window of rectangles whose
    // x-interval may still intersect subsequent ones.
    let mut order: Vec<usize> = (0..rects.len()).collect();
    order.sort_by_key(|&i| rects[i].x_min());
    let mut active: Vec<usize> = Vec::new();
    for &i in &order {
        let r = &rects[i];
        active.retain(|&j| rects[j].x_max() > r.x_min());
        for &j in &active {
            if rects[j].overlaps(r) {
                return Some((j.min(i), j.max(i)));
            }
        }
        active.push(i);
    }
    None
}

/// The sum of the rectangle areas.
#[must_use]
pub fn total_area(rects: &[PlacedRect]) -> Area {
    rects.iter().map(PlacedRect::area).sum()
}

/// Dead space of a set of rectangles inside an envelope: envelope area minus
/// the sum of rectangle areas.
///
/// # Panics
///
/// Panics if the rectangles' total area exceeds the envelope area (which
/// implies an overlap or escape, i.e. an invalid layout).
#[must_use]
pub fn dead_space(envelope: Rect, rects: &[PlacedRect]) -> Area {
    let used = total_area(rects);
    let total = area(envelope.w, envelope.h);
    assert!(
        used <= total,
        "rectangles exceed the envelope: {used} > {total}"
    );
    total - used
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pr(x: Coord, y: Coord, w: Coord, h: Coord) -> PlacedRect {
        PlacedRect::new(Point::new(x, y), Rect::new(w, h))
    }

    #[test]
    fn edges_and_area() {
        let r = pr(2, 3, 4, 5);
        assert_eq!((r.x_min(), r.x_max(), r.y_min(), r.y_max()), (2, 6, 3, 8));
        assert_eq!(r.area(), 20);
    }

    #[test]
    fn overlap_semantics_open_interior() {
        let a = pr(0, 0, 4, 4);
        assert!(a.overlaps(&pr(3, 3, 4, 4))); // corner area shared
        assert!(!a.overlaps(&pr(4, 0, 4, 4))); // edge adjacency
        assert!(!a.overlaps(&pr(4, 4, 4, 4))); // corner adjacency
        assert!(!a.overlaps(&pr(2, 2, 0, 5))); // zero-width never overlaps
        assert!(a.overlaps(&pr(1, 1, 2, 2))); // containment overlaps
    }

    #[test]
    fn containment_boundary_inclusive() {
        let outer = pr(0, 0, 10, 10);
        assert!(pr(0, 0, 10, 10).contained_in(&outer));
        assert!(pr(2, 2, 8, 8).contained_in(&outer));
        assert!(!pr(2, 2, 9, 8).contained_in(&outer));
    }

    #[test]
    fn bounding_box_accumulates() {
        let bb: BoundingBox = [pr(1, 2, 3, 3), pr(0, 4, 2, 2)].into_iter().collect();
        assert_eq!(bb.min(), Some(Point::new(0, 2)));
        assert_eq!(bb.max(), Some(Point::new(4, 6)));
        assert_eq!(bb.extent(), Some(Rect::new(4, 4)));
        assert_eq!(bb.area(), 16);
        assert_eq!(BoundingBox::new().extent(), None);
        assert_eq!(BoundingBox::new().area(), 0);
    }

    #[test]
    fn first_overlap_finds_pairs() {
        let tiling = [pr(0, 0, 4, 4), pr(4, 0, 4, 4), pr(0, 4, 8, 4)];
        assert_eq!(first_overlap(&tiling), None);
        let clash = [pr(0, 0, 4, 4), pr(4, 0, 4, 4), pr(3, 3, 2, 2)];
        assert_eq!(first_overlap(&clash), Some((0, 2)));
        assert_eq!(first_overlap(&[]), None);
        assert_eq!(first_overlap(&[pr(0, 0, 1, 1)]), None);
    }

    #[test]
    fn dead_space_of_exact_tiling_is_zero() {
        let tiling = [pr(0, 0, 4, 4), pr(4, 0, 4, 4), pr(0, 4, 8, 4)];
        assert_eq!(dead_space(Rect::new(8, 8), &tiling), 0);
        assert_eq!(dead_space(Rect::new(9, 8), &tiling), 8);
    }

    #[test]
    #[should_panic(expected = "exceed the envelope")]
    fn dead_space_panics_on_overfull() {
        let _ = dead_space(Rect::new(2, 2), &[pr(0, 0, 3, 3)]);
    }

    proptest! {
        /// Brute-force cross-check of the sweep-based overlap detector.
        #[test]
        fn sweep_matches_brute_force(
            raw in proptest::collection::vec((0u64..20, 0u64..20, 1u64..6, 1u64..6), 0..12)
        ) {
            let rects: Vec<PlacedRect> =
                raw.into_iter().map(|(x, y, w, h)| pr(x, y, w, h)).collect();
            let brute = (0..rects.len()).flat_map(|i| (i + 1..rects.len()).map(move |j| (i, j)))
                .any(|(i, j)| rects[i].overlaps(&rects[j]));
            prop_assert_eq!(first_overlap(&rects).is_some(), brute);
        }

        #[test]
        fn overlap_symmetric(a in (0u64..20, 0u64..20, 0u64..6, 0u64..6),
                             b in (0u64..20, 0u64..20, 0u64..6, 0u64..6)) {
            let ra = pr(a.0, a.1, a.2, a.3);
            let rb = pr(b.0, b.1, b.2, b.3);
            prop_assert_eq!(ra.overlaps(&rb), rb.overlaps(&ra));
        }
    }
}
