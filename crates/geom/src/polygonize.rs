//! Layout post-processing: polygonize a realized placement into
//! dead-space regions and merged block outlines.
//!
//! A realized layout is a set of non-overlapping [`PlacedRect`]s inside
//! an envelope. This module runs one scanline union over them and
//! reports the layout as *geometry* rather than a single area number:
//!
//! * the dead space decomposed into connected regions (4-connected
//!   through shared positive-length edges), each as a strip-rectangle
//!   decomposition with its exact area — whitespace count / total /
//!   largest-region distribution;
//! * the merged outline of the occupied area as closed rectilinear
//!   rings (counterclockwise outer boundaries, clockwise holes), for
//!   export.
//!
//! Everything is exact integer arithmetic: for any overlap-free layout
//! the region areas and the block areas partition the envelope area
//! (`Σ blocks + Σ whitespace == w·h`), a conservation law the property
//! tests pin down.

use crate::{Area, Coord, PlacedRect, Point, Rect};

/// One connected dead-space region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadRegion {
    /// A disjoint rectangle decomposition of the region (one rectangle
    /// per vertical strip the region crosses).
    pub rects: Vec<PlacedRect>,
    /// The exact region area (the sum of `rects` areas).
    pub area: Area,
}

/// The whitespace distribution of a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhitespaceReport {
    /// Connected dead-space regions, largest area first (ties broken by
    /// lower-left corner for determinism).
    pub regions: Vec<DeadRegion>,
    /// Total dead-space area (the sum over regions).
    pub total: Area,
}

impl WhitespaceReport {
    /// The number of connected dead-space regions.
    #[must_use]
    pub fn count(&self) -> usize {
        self.regions.len()
    }

    /// The largest region's area (`0` for a perfect tiling).
    #[must_use]
    pub fn largest(&self) -> Area {
        self.regions.first().map_or(0, |r| r.area)
    }
}

/// The polygonized view of a realized layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polygonized {
    /// Dead-space regions and their distribution.
    pub whitespace: WhitespaceReport,
    /// Closed rectilinear rings of the occupied area's boundary:
    /// counterclockwise outer boundaries, clockwise holes. Each ring
    /// lists its corners in walking order (interior on the left) with
    /// collinear points merged; the first corner is not repeated.
    pub outlines: Vec<Vec<Point>>,
}

/// Polygonizes a layout: scanline union of `blocks` inside `envelope`.
///
/// `blocks` must be overlap-free and contained in the envelope (the
/// state every validated layout is in); the scanline clamps stray
/// geometry to the envelope but the conservation law (`Σ block areas +
/// Σ whitespace == envelope area`) is only meaningful for valid input.
#[must_use]
pub fn polygonize(envelope: Rect, blocks: &[PlacedRect]) -> Polygonized {
    let strips = StripDecomposition::build(envelope, blocks);
    Polygonized {
        whitespace: strips.whitespace(),
        outlines: strips.outlines(),
    }
}

/// [`polygonize`] when only the whitespace distribution is needed
/// (skips boundary extraction).
#[must_use]
pub fn whitespace(envelope: Rect, blocks: &[PlacedRect]) -> WhitespaceReport {
    StripDecomposition::build(envelope, blocks).whitespace()
}

/// The scanline union: per vertical strip, the merged covered
/// y-intervals.
struct StripDecomposition {
    envelope: Rect,
    /// Strip boundaries `x_0 < x_1 < … < x_m` (x_0 = 0, x_m = w).
    xs: Vec<Coord>,
    /// Per strip `i` (`[xs[i], xs[i+1])`): merged covered y-intervals.
    covered: Vec<Vec<(Coord, Coord)>>,
}

impl StripDecomposition {
    fn build(envelope: Rect, blocks: &[PlacedRect]) -> StripDecomposition {
        // Degenerate envelopes have no strips at all.
        if envelope.w == 0 || envelope.h == 0 {
            return StripDecomposition {
                envelope,
                xs: Vec::new(),
                covered: Vec::new(),
            };
        }
        let mut xs: Vec<Coord> = Vec::with_capacity(2 * blocks.len() + 2);
        xs.push(0);
        xs.push(envelope.w);
        for b in blocks {
            if b.area() == 0 {
                continue;
            }
            xs.push(b.x_min().min(envelope.w));
            xs.push(b.x_max().min(envelope.w));
        }
        xs.sort_unstable();
        xs.dedup();

        // Sweep: per strip, the y-intervals of the blocks spanning it,
        // merged. Entry/exit events keep the active set incremental.
        let mut order: Vec<usize> = (0..blocks.len())
            .filter(|&i| blocks[i].area() > 0)
            .collect();
        order.sort_unstable_by_key(|&i| blocks[i].x_min());
        let mut active: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let mut covered = Vec::with_capacity(xs.len().saturating_sub(1));
        let mut intervals: Vec<(Coord, Coord)> = Vec::new();
        for win in xs.windows(2) {
            let (x1, x2) = (win[0], win[1]);
            while next < order.len() && blocks[order[next]].x_min() <= x1 {
                active.push(order[next]);
                next += 1;
            }
            active.retain(|&i| blocks[i].x_max() > x1);
            intervals.clear();
            for &i in &active {
                let b = &blocks[i];
                debug_assert!(b.x_min() <= x1 && b.x_max() >= x2, "strip cut missed");
                let y1 = b.y_min().min(envelope.h);
                let y2 = b.y_max().min(envelope.h);
                if y1 < y2 {
                    intervals.push((y1, y2));
                }
            }
            intervals.sort_unstable();
            let mut merged: Vec<(Coord, Coord)> = Vec::with_capacity(intervals.len());
            for &(y1, y2) in &*intervals {
                match merged.last_mut() {
                    Some(last) if y1 <= last.1 => last.1 = last.1.max(y2),
                    _ => merged.push((y1, y2)),
                }
            }
            covered.push(merged);
        }
        StripDecomposition {
            envelope,
            xs,
            covered,
        }
    }

    /// Free (uncovered) y-intervals of strip `i`.
    fn free_intervals(&self, i: usize) -> Vec<(Coord, Coord)> {
        let mut free = Vec::new();
        let mut y = 0;
        for &(y1, y2) in &self.covered[i] {
            if y < y1 {
                free.push((y, y1));
            }
            y = y2;
        }
        if y < self.envelope.h {
            free.push((y, self.envelope.h));
        }
        free
    }

    fn whitespace(&self) -> WhitespaceReport {
        // Free rectangles per strip, then union-find across adjacent
        // strips on positive-length y-overlap.
        let mut rects: Vec<PlacedRect> = Vec::new();
        let mut strip_of: Vec<usize> = Vec::new();
        let mut strip_start: Vec<usize> = Vec::with_capacity(self.covered.len() + 1);
        for i in 0..self.covered.len() {
            strip_start.push(rects.len());
            let (x1, x2) = (self.xs[i], self.xs[i + 1]);
            for (y1, y2) in self.free_intervals(i) {
                rects.push(PlacedRect::new(
                    Point::new(x1, y1),
                    Rect::new(x2 - x1, y2 - y1),
                ));
                strip_of.push(i);
            }
        }
        strip_start.push(rects.len());

        let mut dsu = Dsu::new(rects.len());
        for i in 1..self.covered.len() {
            // Two-pointer over the sorted free intervals of strips i-1, i.
            let (mut a, mut b) = (strip_start[i - 1], strip_start[i]);
            while a < strip_start[i] && b < strip_start[i + 1] {
                let ra = &rects[a];
                let rb = &rects[b];
                if ra.y_min() < rb.y_max() && rb.y_min() < ra.y_max() {
                    dsu.union(a, b);
                }
                if ra.y_max() <= rb.y_max() {
                    a += 1;
                } else {
                    b += 1;
                }
            }
        }

        let mut by_root: std::collections::HashMap<usize, Vec<PlacedRect>> =
            std::collections::HashMap::new();
        for (idx, r) in rects.iter().enumerate() {
            by_root.entry(dsu.find(idx)).or_default().push(*r);
        }
        let mut regions: Vec<DeadRegion> = by_root
            .into_values()
            .map(|rects| {
                let area = rects.iter().map(PlacedRect::area).sum();
                DeadRegion { rects, area }
            })
            .collect();
        // Largest first; deterministic tiebreak on the lower-left corner
        // (strip construction makes the first rect the region's leftmost
        // lowest).
        regions.sort_by(|a, b| {
            b.area
                .cmp(&a.area)
                .then_with(|| a.rects[0].origin.cmp(&b.rects[0].origin))
        });
        let total = regions.iter().map(|r| r.area).sum();
        WhitespaceReport { regions, total }
    }

    /// Directed boundary edges of the covered union, interior on the
    /// left, stitched into closed rings.
    fn outlines(&self) -> Vec<Vec<Point>> {
        let mut edges: Vec<(Point, Point)> = Vec::new();
        let m = self.covered.len();
        let empty: Vec<(Coord, Coord)> = Vec::new();
        // Vertical edges at every strip boundary: segments covered on
        // exactly one side. Interior on the left walks up; on the right,
        // down.
        for i in 0..=m {
            let x = if i < m { self.xs[i] } else { self.envelope.w };
            let left = if i == 0 { &empty } else { &self.covered[i - 1] };
            let right = if i == m { &empty } else { &self.covered[i] };
            for (y1, y2) in interval_difference(left, right) {
                edges.push((Point::new(x, y1), Point::new(x, y2))); // up
            }
            for (y1, y2) in interval_difference(right, left) {
                edges.push((Point::new(x, y2), Point::new(x, y1))); // down
            }
        }
        // Horizontal edges: each covered interval's bottom (interior
        // above, walk right) and top (interior below, walk left).
        for i in 0..m {
            let (x1, x2) = (self.xs[i], self.xs[i + 1]);
            for &(y1, y2) in &self.covered[i] {
                edges.push((Point::new(x1, y1), Point::new(x2, y1)));
                edges.push((Point::new(x2, y2), Point::new(x1, y2)));
            }
        }
        stitch_rings(edges)
    }
}

/// Maximal segments of `a \ b` for two sorted disjoint interval lists.
fn interval_difference(a: &[(Coord, Coord)], b: &[(Coord, Coord)]) -> Vec<(Coord, Coord)> {
    let mut out = Vec::new();
    let mut bi = 0usize;
    for &(mut y1, y2) in a {
        while y1 < y2 {
            // Skip b-intervals entirely below y1.
            while bi < b.len() && b[bi].1 <= y1 {
                bi += 1;
            }
            match b.get(bi) {
                Some(&(b1, b2)) if b1 < y2 => {
                    if y1 < b1 {
                        out.push((y1, b1));
                    }
                    y1 = b2.min(y2);
                }
                _ => {
                    out.push((y1, y2));
                    y1 = y2;
                }
            }
        }
        // A b-interval can straddle two a-intervals; step back so the
        // next a-interval re-examines it.
        bi = bi.saturating_sub(1);
    }
    out
}

/// Stitches directed boundary edges (interior on the left) into closed
/// rings, resolving corner-touch vertices by always taking the
/// left-most available turn; merges collinear corners.
fn stitch_rings(edges: Vec<(Point, Point)>) -> Vec<Vec<Point>> {
    use std::collections::HashMap;
    let mut out_edges: HashMap<Point, Vec<usize>> = HashMap::new();
    for (idx, (from, _)) in edges.iter().enumerate() {
        out_edges.entry(*from).or_default().push(idx);
    }
    let mut used = vec![false; edges.len()];
    let mut rings = Vec::new();
    for start in 0..edges.len() {
        if used[start] {
            continue;
        }
        let mut ring: Vec<Point> = Vec::new();
        let mut current = start;
        loop {
            used[current] = true;
            let (from, to) = edges[current];
            ring.push(from);
            if to == edges[start].0 {
                break;
            }
            let incoming = direction(from, to);
            let candidates = out_edges.get(&to).expect("boundary edges are closed");
            // Left turn first, then straight, then right: keeps the
            // interior-on-the-left invariant through corner-touches.
            current = *candidates
                .iter()
                .filter(|&&e| !used[e])
                .min_by_key(|&&e| turn_rank(incoming, direction(edges[e].0, edges[e].1)))
                .expect("boundary edges are closed");
        }
        rings.push(merge_collinear(ring));
    }
    rings
}

/// Unit direction of an axis-aligned edge, encoded as (dx, dy) signs.
fn direction(from: Point, to: Point) -> (i8, i8) {
    (
        (to.x > from.x) as i8 - (to.x < from.x) as i8,
        (to.y > from.y) as i8 - (to.y < from.y) as i8,
    )
}

/// 0 = left turn, 1 = straight, 2 = right turn, 3 = U-turn.
fn turn_rank(incoming: (i8, i8), outgoing: (i8, i8)) -> u8 {
    let cross = incoming.0 * outgoing.1 - incoming.1 * outgoing.0;
    let dot = incoming.0 * outgoing.0 + incoming.1 * outgoing.1;
    match (cross, dot) {
        (1, _) => 0,
        (0, 1) => 1,
        (-1, _) => 2,
        _ => 3,
    }
}

fn merge_collinear(ring: Vec<Point>) -> Vec<Point> {
    let n = ring.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let prev = ring[(i + n - 1) % n];
        let next = ring[(i + 1) % n];
        if direction(prev, ring[i]) != direction(ring[i], next) {
            out.push(ring[i]);
        }
    }
    // Deterministic starting corner: rotate the cycle to its minimal point.
    if let Some(lead) = out
        .iter()
        .enumerate()
        .min_by_key(|(_, p)| **p)
        .map(|(i, _)| i)
    {
        out.rotate_left(lead);
    }
    out
}

/// A plain union-find over `0..n`.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pr(x: Coord, y: Coord, w: Coord, h: Coord) -> PlacedRect {
        PlacedRect::new(Point::new(x, y), Rect::new(w, h))
    }

    #[test]
    fn perfect_tiling_has_no_whitespace() {
        let tiling = [pr(0, 0, 4, 4), pr(4, 0, 4, 4), pr(0, 4, 8, 4)];
        let poly = polygonize(Rect::new(8, 8), &tiling);
        assert_eq!(poly.whitespace.count(), 0);
        assert_eq!(poly.whitespace.total, 0);
        assert_eq!(poly.whitespace.largest(), 0);
        // One outer ring: the envelope itself.
        assert_eq!(poly.outlines.len(), 1);
        assert_eq!(
            poly.outlines[0],
            vec![
                Point::new(0, 0),
                Point::new(8, 0),
                Point::new(8, 8),
                Point::new(0, 8)
            ]
        );
    }

    #[test]
    fn single_block_leaves_an_l_of_whitespace() {
        // A 4x4 block in the corner of an 8x8 envelope: the dead space
        // is one connected L-shaped region of area 48.
        let ws = whitespace(Rect::new(8, 8), &[pr(0, 0, 4, 4)]);
        assert_eq!(ws.count(), 1);
        assert_eq!(ws.total, 48);
        assert_eq!(ws.largest(), 48);
    }

    #[test]
    fn corner_touch_does_not_connect_regions() {
        // Two blocks on the anti-diagonal of a 2x2: the two free cells
        // touch only at the centre corner — two regions.
        let ws = whitespace(Rect::new(2, 2), &[pr(0, 0, 1, 1), pr(1, 1, 1, 1)]);
        assert_eq!(ws.count(), 2);
        assert_eq!(ws.total, 2);
        assert_eq!(ws.largest(), 1);
    }

    #[test]
    fn enclosed_hole_is_a_region_and_a_clockwise_ring() {
        // A 3x3 donut: 8 unit blocks around an empty centre cell, in a
        // 3x3 envelope. One dead region (the hole), and the outline has
        // an outer ring plus a hole ring.
        let blocks = [
            pr(0, 0, 3, 1), // bottom row
            pr(0, 2, 3, 1), // top row
            pr(0, 1, 1, 1), // left middle
            pr(2, 1, 1, 1), // right middle
        ];
        let poly = polygonize(Rect::new(3, 3), &blocks);
        assert_eq!(poly.whitespace.count(), 1);
        assert_eq!(poly.whitespace.total, 1);
        assert_eq!(poly.outlines.len(), 2);
        let signed: Vec<i128> = poly.outlines.iter().map(|r| signed_area(r)).collect();
        // One CCW outer ring (+9 area), one CW hole (-1).
        assert!(signed.contains(&18), "outer ring twice-area: {signed:?}");
        assert!(signed.contains(&-2), "hole ring twice-area: {signed:?}");
    }

    #[test]
    fn separate_blocks_make_separate_rings() {
        let poly = polygonize(Rect::new(10, 4), &[pr(0, 0, 2, 2), pr(5, 1, 3, 2)]);
        assert_eq!(poly.outlines.len(), 2);
        assert_eq!(poly.whitespace.count(), 1);
        assert_eq!(poly.whitespace.total, 40 - 4 - 6);
    }

    #[test]
    fn empty_layout_is_all_whitespace() {
        let ws = whitespace(Rect::new(5, 3), &[]);
        assert_eq!(ws.count(), 1);
        assert_eq!(ws.total, 15);
        assert!(polygonize(Rect::new(5, 3), &[]).outlines.is_empty());
        // Degenerate envelope.
        let ws = whitespace(Rect::new(0, 3), &[]);
        assert_eq!(ws.count(), 0);
        assert_eq!(ws.total, 0);
    }

    #[test]
    fn region_decomposition_rects_are_disjoint_and_exact() {
        let blocks = [pr(2, 0, 3, 5), pr(7, 2, 2, 2)];
        let ws = whitespace(Rect::new(10, 5), &blocks);
        let all: Vec<PlacedRect> = ws.regions.iter().flat_map(|r| r.rects.clone()).collect();
        assert_eq!(crate::first_overlap(&all), None);
        let sum: Area = all.iter().map(PlacedRect::area).sum();
        assert_eq!(sum, ws.total);
        assert_eq!(ws.total + 15 + 4, 50);
    }

    fn signed_area(ring: &[Point]) -> i128 {
        let n = ring.len();
        let mut twice = 0i128;
        for i in 0..n {
            let a = ring[i];
            let b = ring[(i + 1) % n];
            twice += i128::from(a.x) * i128::from(b.y) - i128::from(b.x) * i128::from(a.y);
        }
        twice
    }

    /// Deterministic non-overlapping layout generator: slice the
    /// envelope guillotine-style, keep a pseudo-random subset of cells.
    fn arb_layout() -> impl Strategy<Value = (Rect, Vec<PlacedRect>)> {
        (
            2u64..24,
            2u64..24,
            proptest::collection::vec((0u64..24, 0u64..24, 1u64..8, 1u64..8, 0u64..2), 0..16),
        )
            .prop_map(|(w, h, raw)| {
                let envelope = Rect::new(w, h);
                let mut blocks: Vec<PlacedRect> = Vec::new();
                for (x, y, bw, bh, keep) in raw {
                    if keep == 0 || x >= w || y >= h {
                        continue;
                    }
                    let r = pr(x, y, bw.min(w - x), bh.min(h - y));
                    if blocks.iter().all(|b| !b.overlaps(&r)) {
                        blocks.push(r);
                    }
                }
                (envelope, blocks)
            })
    }

    proptest! {
        /// Conservation: blocks + whitespace == envelope, exactly.
        #[test]
        fn conservation_law((envelope, blocks) in arb_layout()) {
            let ws = whitespace(envelope, &blocks);
            let used: Area = blocks.iter().map(PlacedRect::area).sum();
            prop_assert_eq!(used + ws.total, crate::area(envelope.w, envelope.h));
            prop_assert_eq!(ws.total, crate::dead_space(envelope, &blocks));
            // Largest <= total, and the region list is sorted.
            prop_assert!(ws.largest() <= ws.total);
            for win in ws.regions.windows(2) {
                prop_assert!(win[0].area >= win[1].area);
            }
        }

        /// The outline rings' signed areas sum to the occupied area
        /// (outer rings positive, holes negative).
        #[test]
        fn outline_signed_areas_sum_to_occupied((envelope, blocks) in arb_layout()) {
            let poly = polygonize(envelope, &blocks);
            let used: i128 = blocks.iter().map(|b| b.area() as i128).sum();
            let twice: i128 = poly.outlines.iter().map(|r| signed_area(r)).sum();
            prop_assert_eq!(twice, 2 * used);
            // Rings are simple walks: consecutive corners differ in
            // exactly one axis.
            for ring in &poly.outlines {
                prop_assert!(ring.len() >= 4);
                for i in 0..ring.len() {
                    let a = ring[i];
                    let b = ring[(i + 1) % ring.len()];
                    prop_assert!((a.x == b.x) != (a.y == b.y));
                }
            }
        }
    }
}
