//! Rectangle implementations: `(w, h)` pairs with dominance.

use core::cmp::Ordering;
use core::fmt;

use crate::{area, Area, Coord};

/// An implementation of a rectangular block: a width/height pair.
///
/// In floorplan area optimization every module and every rectangular
/// sub-floorplan is characterized by a finite set of such implementations;
/// the optimizer only ever keeps the *non-redundant* (Pareto-minimal) ones.
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
///
/// let r = Rect::new(30, 20);
/// assert_eq!(r.area(), 600);
/// assert_eq!(r.rotated(), Rect::new(20, 30));
/// assert!(Rect::new(31, 20).dominates(r)); // bigger in every dimension
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    /// Width.
    pub w: Coord,
    /// Height.
    pub h: Coord,
}

impl Rect {
    /// Creates a rectangle implementation of the given width and height.
    #[inline]
    #[must_use]
    pub const fn new(w: Coord, h: Coord) -> Self {
        Rect { w, h }
    }

    /// The area `w * h`.
    #[inline]
    #[must_use]
    pub fn area(self) -> Area {
        area(self.w, self.h)
    }

    /// The half-perimeter `w + h` (a common secondary cost measure).
    #[inline]
    #[must_use]
    pub fn half_perimeter(self) -> Area {
        Area::from(self.w) + Area::from(self.h)
    }

    /// The 90°-rotated implementation `(h, w)`.
    #[inline]
    #[must_use]
    pub const fn rotated(self) -> Self {
        Rect {
            w: self.h,
            h: self.w,
        }
    }

    /// Returns `true` if `self` dominates `other`, i.e. `self` is at least
    /// as large in **both** dimensions (paper Definition 1 for rectangles).
    ///
    /// A dominating implementation is *redundant*: anything that fits in
    /// `other` also fits in `self`, so keeping `self` can never help.
    #[inline]
    #[must_use]
    pub fn dominates(self, other: Rect) -> bool {
        self.w >= other.w && self.h >= other.h
    }

    /// Returns `true` if `self` strictly dominates `other` (dominates and
    /// differs).
    #[inline]
    #[must_use]
    pub fn strictly_dominates(self, other: Rect) -> bool {
        self != other && self.dominates(other)
    }

    /// Returns `true` if a module of this size fits in (is dominated by) a
    /// basic rectangle of size `container`.
    #[inline]
    #[must_use]
    pub fn fits_in(self, container: Rect) -> bool {
        container.dominates(self)
    }

    /// Componentwise maximum (the smallest rectangle containing both).
    #[inline]
    #[must_use]
    pub fn union_max(self, other: Rect) -> Rect {
        Rect::new(self.w.max(other.w), self.h.max(other.h))
    }

    /// The aspect ratio `max(w,h) / min(w,h)` as a float; `1.0` for squares.
    ///
    /// Returns `f64::INFINITY` if one side is zero and the other is not,
    /// and `1.0` for the degenerate `0×0` rectangle.
    #[must_use]
    pub fn aspect_ratio(self) -> f64 {
        let (lo, hi) = if self.w <= self.h {
            (self.w, self.h)
        } else {
            (self.h, self.w)
        };
        if hi == 0 {
            1.0
        } else if lo == 0 {
            f64::INFINITY
        } else {
            hi as f64 / lo as f64
        }
    }

    /// Orders by `(w, h)` lexicographically. This is **not** dominance; it
    /// is the canonical sort used to build staircases.
    #[inline]
    #[must_use]
    pub fn cmp_lex(self, other: Rect) -> Ordering {
        (self.w, self.h).cmp(&(other.w, other.h))
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect({}x{})", self.w, self.h)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.w, self.h)
    }
}

impl From<(Coord, Coord)> for Rect {
    #[inline]
    fn from((w, h): (Coord, Coord)) -> Self {
        Rect::new(w, h)
    }
}

impl From<Rect> for (Coord, Coord) {
    #[inline]
    fn from(r: Rect) -> Self {
        (r.w, r.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn area_and_half_perimeter() {
        let r = Rect::new(30, 20);
        assert_eq!(r.area(), 600);
        assert_eq!(r.half_perimeter(), 50);
        assert_eq!(Rect::new(0, 7).area(), 0);
    }

    #[test]
    fn area_no_overflow_at_max() {
        let r = Rect::new(Coord::MAX, Coord::MAX);
        assert_eq!(r.area(), Area::from(Coord::MAX) * Area::from(Coord::MAX));
    }

    #[test]
    fn dominance_is_reflexive_and_componentwise() {
        let r = Rect::new(4, 7);
        assert!(r.dominates(r));
        assert!(!r.strictly_dominates(r));
        assert!(Rect::new(4, 8).dominates(r));
        assert!(Rect::new(5, 7).dominates(r));
        assert!(!Rect::new(3, 100).dominates(r));
        assert!(!r.dominates(Rect::new(3, 100)));
    }

    #[test]
    fn fits_in_is_dominance_reversed() {
        assert!(Rect::new(3, 3).fits_in(Rect::new(3, 4)));
        assert!(!Rect::new(3, 5).fits_in(Rect::new(3, 4)));
    }

    #[test]
    fn rotation_is_involutive() {
        let r = Rect::new(13, 5);
        assert_eq!(r.rotated().rotated(), r);
    }

    #[test]
    fn union_max_contains_both() {
        let a = Rect::new(4, 9);
        let b = Rect::new(6, 2);
        let u = a.union_max(b);
        assert!(u.dominates(a) && u.dominates(b));
        assert_eq!(u, Rect::new(6, 9));
    }

    #[test]
    fn aspect_ratio_cases() {
        assert_eq!(Rect::new(4, 4).aspect_ratio(), 1.0);
        assert_eq!(Rect::new(8, 2).aspect_ratio(), 4.0);
        assert_eq!(Rect::new(2, 8).aspect_ratio(), 4.0);
        assert_eq!(Rect::new(0, 0).aspect_ratio(), 1.0);
        assert!(Rect::new(0, 5).aspect_ratio().is_infinite());
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Rect::new(3, 4).to_string(), "3x4");
        assert_eq!(format!("{:?}", Rect::new(3, 4)), "Rect(3x4)");
    }

    proptest! {
        #[test]
        fn dominance_antisymmetric_up_to_equality(a in 0u64..1000, b in 0u64..1000,
                                                  c in 0u64..1000, d in 0u64..1000) {
            let r = Rect::new(a, b);
            let s = Rect::new(c, d);
            if r.dominates(s) && s.dominates(r) {
                prop_assert_eq!(r, s);
            }
        }

        #[test]
        fn dominance_transitive(dims in proptest::collection::vec(0u64..100, 6)) {
            let r = Rect::new(dims[0], dims[1]);
            let s = Rect::new(dims[2], dims[3]);
            let t = Rect::new(dims[4], dims[5]);
            if r.dominates(s) && s.dominates(t) {
                prop_assert!(r.dominates(t));
            }
        }

        #[test]
        fn rotation_preserves_area(w in 0u64..10_000, h in 0u64..10_000) {
            let r = Rect::new(w, h);
            prop_assert_eq!(r.area(), r.rotated().area());
        }
    }
}
