//! The sealed [`Shape`] API: one vocabulary over every block geometry.
//!
//! The DAC'92 machinery grew up speaking [`Rect`] and [`LShape`]
//! concretely; the staircase generalization makes a third concrete
//! geometry. [`Shape`] is the redesigned common surface: the geometric
//! queries every implementation kind answers, with [`Staircase`] as the
//! unifying canonical embedding ([`Shape::to_staircase`]). The trait is
//! **sealed** — the selection and pruning kernels are written against
//! exactly these three representations (their tuple layouts are what the
//! SoA kernels vectorize over), so downstream crates cannot add
//! implementors the kernels would silently mishandle.

use crate::{Area, Coord, LShape, Rect, Staircase};

mod sealed {
    /// The sealing trait: only geometry types defined in `fp-geom` may
    /// implement [`super::Shape`].
    pub trait Sealed {}

    impl Sealed for crate::Rect {}
    impl Sealed for crate::LShape {}
    impl Sealed for crate::Staircase {}
    impl Sealed for super::AnyShape {}
}

/// Geometric queries common to every block implementation kind.
///
/// Sealed: implemented by [`Rect`], [`LShape`], [`Staircase`], and the
/// [`AnyShape`] sum — nothing else. All three concrete geometries embed
/// canonically into [`Staircase`] (a rectangle is one tooth, an L two),
/// and for regions expressible in a smaller representation the queries
/// agree exactly — pinned by the equivalence tests.
///
/// # Example
///
/// ```
/// use fp_geom::{LShape, Rect, Shape, Staircase};
///
/// let r = Rect::new(10, 8);
/// let l = LShape::new(10, 4, 8, 3)?;
/// assert_eq!(r.bounding_box(), l.bounding_box());
/// assert_eq!(l.to_staircase().area(), l.area());
/// assert!(Staircase::from_rect(r).dominates(&l.to_staircase()));
/// # Ok::<(), fp_geom::InvalidShapeError>(())
/// ```
pub trait Shape: sealed::Sealed {
    /// The enclosed area.
    fn area(&self) -> Area;

    /// The smallest rectangle containing the canonical region.
    fn bounding_box(&self) -> Rect;

    /// The boundary perimeter. For every monotone rectilinear shape this
    /// equals the bounding-box perimeter.
    fn perimeter(&self) -> Area;

    /// The boundary polygon, counterclockwise from the origin.
    fn outline(&self) -> Vec<(Coord, Coord)>;

    /// Whether the canonical region contains `(x, y)`, boundary inclusive.
    fn contains_point(&self, x: Coord, y: Coord) -> bool;

    /// The canonical staircase embedding of the region.
    fn to_staircase(&self) -> Staircase;
}

impl Shape for Rect {
    #[inline]
    fn area(&self) -> Area {
        Rect::area(*self)
    }

    #[inline]
    fn bounding_box(&self) -> Rect {
        *self
    }

    #[inline]
    fn perimeter(&self) -> Area {
        2 * self.half_perimeter()
    }

    fn outline(&self) -> Vec<(Coord, Coord)> {
        vec![(0, 0), (self.w, 0), (self.w, self.h), (0, self.h)]
    }

    #[inline]
    fn contains_point(&self, x: Coord, y: Coord) -> bool {
        x <= self.w && y <= self.h
    }

    #[inline]
    fn to_staircase(&self) -> Staircase {
        Staircase::from_rect(*self)
    }
}

impl Shape for LShape {
    #[inline]
    fn area(&self) -> Area {
        LShape::area(*self)
    }

    #[inline]
    fn bounding_box(&self) -> Rect {
        LShape::bounding_box(*self)
    }

    #[inline]
    fn perimeter(&self) -> Area {
        LShape::perimeter(*self)
    }

    fn outline(&self) -> Vec<(Coord, Coord)> {
        LShape::outline(*self)
    }

    #[inline]
    fn contains_point(&self, x: Coord, y: Coord) -> bool {
        LShape::contains_point(*self, x, y)
    }

    #[inline]
    fn to_staircase(&self) -> Staircase {
        Staircase::from_lshape(*self)
    }
}

impl Shape for Staircase {
    #[inline]
    fn area(&self) -> Area {
        Staircase::area(self)
    }

    #[inline]
    fn bounding_box(&self) -> Rect {
        Staircase::bounding_box(self)
    }

    #[inline]
    fn perimeter(&self) -> Area {
        Staircase::perimeter(self)
    }

    fn outline(&self) -> Vec<(Coord, Coord)> {
        Staircase::outline(self)
    }

    #[inline]
    fn contains_point(&self, x: Coord, y: Coord) -> bool {
        Staircase::contains_point(self, x, y)
    }

    #[inline]
    fn to_staircase(&self) -> Staircase {
        self.clone()
    }
}

/// A block implementation of any of the three geometries, normalized to
/// the smallest representation that expresses its region: a 1-tooth
/// staircase is stored as a [`Rect`], a 2-tooth one as an [`LShape`].
///
/// This is the type mixed-geometry containers (module libraries with
/// staircase implementations, layout export) carry; the invariant means
/// pure-rect/L content never silently migrates into the staircase
/// representation — the byte-identity guarantee the selection path
/// relies on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AnyShape {
    /// A rectangular implementation.
    Rect(Rect),
    /// An L-shaped implementation (non-degenerate).
    L(LShape),
    /// A staircase implementation with 2 or more steps.
    Staircase(Staircase),
}

impl AnyShape {
    /// Normalizes a staircase into the smallest representation.
    #[must_use]
    pub fn from_staircase(s: Staircase) -> AnyShape {
        match s.teeth() {
            1 => AnyShape::Rect(s.as_rect().expect("one tooth")),
            2 => AnyShape::L(s.as_lshape().expect("two teeth")),
            _ => AnyShape::Staircase(s),
        }
    }

    /// The number of notch steps (0 for rectangles, 1 for L-shapes).
    #[must_use]
    pub fn steps(&self) -> usize {
        match self {
            AnyShape::Rect(_) => 0,
            AnyShape::L(_) => 1,
            AnyShape::Staircase(s) => s.steps(),
        }
    }
}

impl From<Rect> for AnyShape {
    #[inline]
    fn from(r: Rect) -> Self {
        AnyShape::Rect(r)
    }
}

impl From<LShape> for AnyShape {
    fn from(l: LShape) -> Self {
        match l.as_rect() {
            Some(r) => AnyShape::Rect(r),
            None => AnyShape::L(l),
        }
    }
}

impl From<Staircase> for AnyShape {
    #[inline]
    fn from(s: Staircase) -> Self {
        AnyShape::from_staircase(s)
    }
}

impl Shape for AnyShape {
    fn area(&self) -> Area {
        match self {
            AnyShape::Rect(r) => Shape::area(r),
            AnyShape::L(l) => Shape::area(l),
            AnyShape::Staircase(s) => Shape::area(s),
        }
    }

    fn bounding_box(&self) -> Rect {
        match self {
            AnyShape::Rect(r) => Shape::bounding_box(r),
            AnyShape::L(l) => Shape::bounding_box(l),
            AnyShape::Staircase(s) => Shape::bounding_box(s),
        }
    }

    fn perimeter(&self) -> Area {
        match self {
            AnyShape::Rect(r) => Shape::perimeter(r),
            AnyShape::L(l) => Shape::perimeter(l),
            AnyShape::Staircase(s) => Shape::perimeter(s),
        }
    }

    fn outline(&self) -> Vec<(Coord, Coord)> {
        match self {
            AnyShape::Rect(r) => Shape::outline(r),
            AnyShape::L(l) => Shape::outline(l),
            AnyShape::Staircase(s) => Shape::outline(s),
        }
    }

    fn contains_point(&self, x: Coord, y: Coord) -> bool {
        match self {
            AnyShape::Rect(r) => Shape::contains_point(r, x, y),
            AnyShape::L(l) => Shape::contains_point(l, x, y),
            AnyShape::Staircase(s) => Shape::contains_point(s, x, y),
        }
    }

    fn to_staircase(&self) -> Staircase {
        match self {
            AnyShape::Rect(r) => Shape::to_staircase(r),
            AnyShape::L(l) => Shape::to_staircase(l),
            AnyShape::Staircase(s) => s.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_agree_on_shared_regions() {
        let r = Rect::new(9, 4);
        let l = LShape::new_canonical(10, 4, 8, 3);
        for shape in [AnyShape::from(r), AnyShape::from(l)] {
            let s = shape.to_staircase();
            assert_eq!(Shape::area(&shape), Shape::area(&s));
            assert_eq!(Shape::bounding_box(&shape), Shape::bounding_box(&s));
            assert_eq!(Shape::perimeter(&shape), Shape::perimeter(&s));
            assert_eq!(Shape::outline(&shape), Shape::outline(&s));
            for x in 0..12 {
                for y in 0..10 {
                    assert_eq!(
                        Shape::contains_point(&shape, x, y),
                        Shape::contains_point(&s, x, y),
                        "({x}, {y})"
                    );
                }
            }
        }
    }

    #[test]
    fn any_shape_normalizes_small_staircases() {
        let rect_stair = Staircase::from_rect(Rect::new(5, 5));
        assert_eq!(
            AnyShape::from_staircase(rect_stair),
            AnyShape::Rect(Rect::new(5, 5))
        );
        let l_stair = Staircase::from_lshape(LShape::new_canonical(10, 4, 8, 3));
        assert_eq!(
            AnyShape::from_staircase(l_stair),
            AnyShape::L(LShape::new_canonical(10, 4, 8, 3))
        );
        let deep = Staircase::new_canonical(vec![(10, 2), (7, 5), (3, 9)]);
        assert_eq!(
            AnyShape::from_staircase(deep.clone()),
            AnyShape::Staircase(deep)
        );
        // Degenerate L-shapes normalize to rectangles too.
        assert_eq!(
            AnyShape::from(LShape::new_canonical(6, 6, 5, 2)),
            AnyShape::Rect(Rect::new(6, 5))
        );
    }

    #[test]
    fn rect_outline_is_counterclockwise_square() {
        let r = Rect::new(3, 2);
        assert_eq!(Shape::outline(&r), vec![(0, 0), (3, 0), (3, 2), (0, 2)]);
        assert_eq!(Shape::perimeter(&r), 10);
    }
}
