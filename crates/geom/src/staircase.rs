//! Bounded-staircase rectilinear implementations: monotone step lists.

use core::fmt;

use crate::{area, Area, Coord, LShape, Rect, Transform};

/// The maximum number of *steps* (inner notch corners) a [`Staircase`]
/// may carry after canonicalization.
///
/// A rectangle has 0 steps, an L-shape 1; the cap bounds both the memory
/// per implementation and the profile length the selection machinery
/// measures distances over, keeping every kernel `O(1)` per shape.
pub const MAX_STAIRCASE_STEPS: usize = 8;

/// Error returned when a corner list cannot form a valid [`Staircase`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidStaircaseError {
    message: String,
}

impl InvalidStaircaseError {
    fn new(message: impl Into<String>) -> Self {
        InvalidStaircaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for InvalidStaircaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid staircase: {}", self.message)
    }
}

impl std::error::Error for InvalidStaircaseError {}

/// An implementation of a bounded-staircase rectilinear block.
///
/// The canonical staircase occupies the union of origin-anchored
/// rectangles
///
/// ```text
/// [0, w_1] x [0, h_1]  ∪  [0, w_2] x [0, h_2]  ∪  …  ∪  [0, w_t] x [0, h_t]
/// ```
///
/// with widths strictly decreasing and heights strictly increasing — a
/// monotone step list descending toward the bottom-right, with every
/// notch in the top-right quadrant. `t = 1` is a rectangle; `t = 2` is
/// exactly the canonical [`LShape`] (`(w_1, h_1) = (w1, h2)`,
/// `(w_2, h_2) = (w2, h1)` in the L's 4-tuple naming). The number of
/// *steps* (inner corners) is `t - 1`, capped at
/// [`MAX_STAIRCASE_STEPS`].
///
/// Like [`LShape`], implementations are stored canonically (notches
/// top-right); a block's physical orientation inside a floorplan is the
/// combination of a [`Transform`] acting through
/// [`Staircase::transformed`] and the notch-corner bookkeeping callers
/// already use for L-shaped blocks ([`crate::LOrient`]).
///
/// # Example
///
/// ```
/// use fp_geom::Staircase;
///
/// // A 3-tooth staircase: 10x2 ∪ 7x5 ∪ 3x9.
/// let s = Staircase::from_corners(vec![(10, 2), (7, 5), (3, 9)])?;
/// assert_eq!(s.steps(), 2);
/// assert_eq!(s.area(), 10 * 2 + 7 * 3 + 3 * 4);
/// assert_eq!(s.bounding_box(), fp_geom::Rect::new(10, 9));
/// # Ok::<(), fp_geom::InvalidStaircaseError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Staircase {
    /// Outer corners `(w_i, h_i)`, widths strictly decreasing, heights
    /// strictly increasing. Never empty.
    corners: Vec<(Coord, Coord)>,
}

impl Staircase {
    /// Builds the canonical staircase covering the union of the given
    /// origin-anchored `w x h` corner rectangles.
    ///
    /// The input need not be sorted or minimal: dominated corners are
    /// dropped and duplicates merge, so the result is the unique
    /// canonical form of the union. This is the canonicalization the
    /// redesigned shape API guarantees: equal regions compare equal.
    ///
    /// # Errors
    ///
    /// [`InvalidStaircaseError`] when the list is empty, a corner has a
    /// zero dimension, or the canonical form exceeds
    /// [`MAX_STAIRCASE_STEPS`] steps.
    pub fn from_corners(corners: Vec<(Coord, Coord)>) -> Result<Self, InvalidStaircaseError> {
        if corners.is_empty() {
            return Err(InvalidStaircaseError::new("no corners"));
        }
        if let Some(&(w, h)) = corners.iter().find(|&&(w, h)| w == 0 || h == 0) {
            return Err(InvalidStaircaseError::new(format!(
                "zero dimension in corner {w}x{h}"
            )));
        }
        let mut sorted = corners;
        // Width descending, height descending on ties: a later corner can
        // then only survive by being strictly taller than the running
        // maximum, which is exactly Pareto-maximality of the union.
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut canonical: Vec<(Coord, Coord)> = Vec::with_capacity(sorted.len());
        let mut max_h = 0;
        for (w, h) in sorted {
            if h > max_h {
                // A new tallest corner at an equal width supersedes the
                // previous one (equal widths sort taller-first, so this
                // cannot happen; strictly narrower is guaranteed).
                canonical.push((w, h));
                max_h = h;
            }
        }
        if canonical.len() > MAX_STAIRCASE_STEPS + 1 {
            return Err(InvalidStaircaseError::new(format!(
                "{} steps exceed the cap of {MAX_STAIRCASE_STEPS}",
                canonical.len() - 1
            )));
        }
        Ok(Staircase { corners: canonical })
    }

    /// [`Staircase::from_corners`] for construction paths where validity
    /// holds by construction.
    ///
    /// # Panics
    ///
    /// Panics on any input [`Staircase::from_corners`] rejects.
    #[must_use]
    pub fn new_canonical(corners: Vec<(Coord, Coord)>) -> Self {
        Staircase::from_corners(corners).expect("canonical staircase")
    }

    /// The 1-tooth staircase equal to rectangle `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` has a zero dimension (staircases describe placed
    /// module implementations, which are always non-empty).
    #[must_use]
    pub fn from_rect(r: Rect) -> Self {
        assert!(r.w > 0 && r.h > 0, "staircase from empty rectangle {r}");
        Staircase {
            corners: vec![(r.w, r.h)],
        }
    }

    /// The staircase equal to the canonical region of `l`: two teeth for
    /// a true L, one for a degenerate rectangle.
    ///
    /// # Panics
    ///
    /// Panics if `l` has a zero bounding dimension.
    #[must_use]
    pub fn from_lshape(l: LShape) -> Self {
        if let Some(r) = l.as_rect() {
            return Staircase::from_rect(r);
        }
        Staircase {
            corners: vec![(l.w1, l.h2), (l.w2, l.h1)],
        }
    }

    /// The outer corners `(w_i, h_i)`, widths strictly decreasing.
    #[inline]
    #[must_use]
    pub fn corners(&self) -> &[(Coord, Coord)] {
        &self.corners
    }

    /// The number of teeth (corner rectangles) in the canonical form.
    #[inline]
    #[must_use]
    pub fn teeth(&self) -> usize {
        self.corners.len()
    }

    /// The number of steps (inner notch corners): `teeth() - 1`. A
    /// rectangle has 0, an L-shape 1.
    #[inline]
    #[must_use]
    pub fn steps(&self) -> usize {
        self.corners.len() - 1
    }

    /// The enclosed area: `Σ w_i · (h_i − h_{i−1})`.
    #[must_use]
    pub fn area(&self) -> Area {
        let mut prev_h = 0;
        let mut total = 0;
        for &(w, h) in &self.corners {
            total += area(w, h - prev_h);
            prev_h = h;
        }
        total
    }

    /// The smallest rectangle containing the staircase:
    /// `w_1 x h_t` (widest tooth by tallest tooth).
    #[inline]
    #[must_use]
    pub fn bounding_box(&self) -> Rect {
        Rect::new(self.corners[0].0, self.corners[self.corners.len() - 1].1)
    }

    /// `true` if the canonical form is a plain rectangle (one tooth).
    #[inline]
    #[must_use]
    pub fn is_rect(&self) -> bool {
        self.corners.len() == 1
    }

    /// If the staircase has one tooth, the equivalent rectangle.
    #[inline]
    #[must_use]
    pub fn as_rect(&self) -> Option<Rect> {
        self.is_rect().then(|| self.bounding_box())
    }

    /// If the staircase has at most two teeth, the equivalent canonical
    /// [`LShape`] (degenerate for one tooth).
    #[must_use]
    pub fn as_lshape(&self) -> Option<LShape> {
        match self.corners.as_slice() {
            [(w, h)] => Some(LShape::from_rect(Rect::new(*w, *h))),
            [(w1, h2), (w2, h1)] => Some(LShape::new_canonical(*w1, *w2, *h1, *h2)),
            _ => None,
        }
    }

    /// The covered width at height `y` (the length of the horizontal
    /// cross-section `[0, width] x {y}`, measuring the half-open row
    /// `[y, y+1)`): the widest tooth reaching above `y`, or 0 past the top.
    #[must_use]
    pub fn width_at(&self, y: Coord) -> Coord {
        self.corners
            .iter()
            .find(|&&(_, h)| h > y)
            .map_or(0, |&(w, _)| w)
    }

    /// The covered height at horizontal position `x` (measuring the
    /// half-open column `[x, x+1)`): the tallest tooth reaching right of
    /// `x`, or 0 past the right edge.
    #[must_use]
    pub fn height_at(&self, x: Coord) -> Coord {
        self.corners
            .iter()
            .rev()
            .find(|&&(w, _)| w > x)
            .map_or(0, |&(_, h)| h)
    }

    /// Returns `true` if `self` dominates `other`: its canonical region
    /// contains the other's (the staircase generalization of paper
    /// Definition 1 — for rectangles and L-shapes this coincides with
    /// componentwise tuple dominance).
    #[must_use]
    pub fn dominates(&self, other: &Staircase) -> bool {
        other
            .corners
            .iter()
            .all(|&(w, h)| self.width_at(h - 1) >= w)
    }

    /// Returns `true` if `self` dominates `other` and differs from it.
    #[inline]
    #[must_use]
    pub fn strictly_dominates(&self, other: &Staircase) -> bool {
        self != other && self.dominates(other)
    }

    /// The transposed staircase (reflection across the main diagonal):
    /// widths and heights swap roles; the result is canonical.
    #[must_use]
    pub fn transposed(&self) -> Staircase {
        Staircase {
            corners: self.corners.iter().rev().map(|&(w, h)| (h, w)).collect(),
        }
    }

    /// Applies a [`Transform`] to the canonical measurements: mirrors are
    /// no-ops (they only move the notches, which orientation bookkeeping
    /// tracks), transposition swaps the axes.
    #[must_use]
    pub fn transformed(&self, t: Transform) -> Staircase {
        if t.transpose() {
            self.transposed()
        } else {
            self.clone()
        }
    }

    /// Returns `true` if the canonical region contains the point
    /// `(x, y)` (boundary inclusive).
    #[must_use]
    pub fn contains_point(&self, x: Coord, y: Coord) -> bool {
        self.corners.iter().any(|&(w, h)| x <= w && y <= h)
    }

    /// The boundary polygon of the canonical region, counterclockwise
    /// from the origin: `2t + 2` corners for `t` teeth.
    ///
    /// ```
    /// use fp_geom::Staircase;
    ///
    /// let s = Staircase::from_corners(vec![(10, 3), (4, 8)])?;
    /// assert_eq!(
    ///     s.outline(),
    ///     vec![(0, 0), (10, 0), (10, 3), (4, 3), (4, 8), (0, 8)]
    /// );
    /// # Ok::<(), fp_geom::InvalidStaircaseError>(())
    /// ```
    #[must_use]
    pub fn outline(&self) -> Vec<(Coord, Coord)> {
        let mut out = Vec::with_capacity(2 * self.corners.len() + 2);
        out.push((0, 0));
        out.push((self.corners[0].0, 0));
        for i in 0..self.corners.len() {
            let (w, h) = self.corners[i];
            out.push((w, h));
            match self.corners.get(i + 1) {
                Some(&(next_w, _)) => out.push((next_w, h)),
                None => out.push((0, h)),
            }
        }
        out
    }

    /// The boundary perimeter of the canonical region. As for any
    /// monotone staircase region it equals the bounding-box perimeter:
    /// the notches add no length.
    #[must_use]
    pub fn perimeter(&self) -> Area {
        let bb = self.bounding_box();
        2 * (Area::from(bb.w) + Area::from(bb.h))
    }

    /// The exact `L₁` distance between the profile vectors of two
    /// staircases with the same tooth count: `Σ|Δw_i| + Σ|Δh_i|`.
    ///
    /// This is the distance the DAC'92 `L_Selection` machinery measures
    /// between L-shape 4-tuples, generalized to `2t`-dimensional
    /// staircase profiles; for `t = 2` it is exactly
    /// `Metric::L1.dist` of the corresponding L-shapes.
    ///
    /// # Panics
    ///
    /// Panics if the tooth counts differ — profile distances are only
    /// defined along the aligned chains the selection path builds.
    #[must_use]
    pub fn profile_dist_l1(&self, other: &Staircase) -> Area {
        assert_eq!(
            self.teeth(),
            other.teeth(),
            "profile distance requires aligned staircases"
        );
        self.corners
            .iter()
            .zip(&other.corners)
            .map(|(&(aw, ah), &(bw, bh))| Area::from(aw.abs_diff(bw)) + Area::from(ah.abs_diff(bh)))
            .sum()
    }
}

impl fmt::Debug for Staircase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Staircase{:?}", self.corners)
    }
}

impl fmt::Display for Staircase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .corners
            .iter()
            .map(|&(w, h)| format!("{w}x{h}"))
            .collect();
        f.write_str(&parts.join("/"))
    }
}

impl From<Rect> for Staircase {
    #[inline]
    fn from(r: Rect) -> Self {
        Staircase::from_rect(r)
    }
}

impl From<LShape> for Staircase {
    #[inline]
    fn from(l: LShape) -> Self {
        Staircase::from_lshape(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn stair(corners: &[(Coord, Coord)]) -> Staircase {
        Staircase::from_corners(corners.to_vec()).expect("valid staircase")
    }

    #[test]
    fn canonicalization_drops_dominated_corners() {
        let s =
            Staircase::from_corners(vec![(4, 4), (10, 2), (10, 2), (7, 5), (3, 3)]).expect("valid");
        assert_eq!(s.corners(), &[(10, 2), (7, 5)]);
        assert_eq!(s.steps(), 1);
    }

    #[test]
    fn equal_regions_compare_equal() {
        let a = stair(&[(10, 2), (7, 5)]);
        let b = Staircase::from_corners(vec![(7, 5), (10, 2), (7, 3)]).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Staircase::from_corners(vec![]).is_err());
        assert!(Staircase::from_corners(vec![(0, 5)]).is_err());
        assert!(Staircase::from_corners(vec![(5, 0)]).is_err());
        // MAX_STAIRCASE_STEPS + 2 incomparable corners exceed the cap.
        let too_many: Vec<(Coord, Coord)> = (0..MAX_STAIRCASE_STEPS as Coord + 2)
            .map(|i| (100 - i, 1 + i))
            .collect();
        let err = Staircase::from_corners(too_many).expect_err("over cap");
        assert!(err.to_string().contains("exceed the cap"));
        // Exactly at the cap is fine.
        let at_cap: Vec<(Coord, Coord)> = (0..MAX_STAIRCASE_STEPS as Coord + 1)
            .map(|i| (100 - i, 1 + i))
            .collect();
        assert_eq!(stair(&at_cap).steps(), MAX_STAIRCASE_STEPS);
    }

    #[test]
    fn rect_and_lshape_round_trips() {
        let r = Rect::new(9, 4);
        let s = Staircase::from_rect(r);
        assert_eq!(s.steps(), 0);
        assert_eq!(s.as_rect(), Some(r));
        assert_eq!(s.as_lshape(), Some(LShape::from_rect(r)));
        assert_eq!(s.area(), r.area());

        let l = LShape::new_canonical(10, 4, 8, 3);
        let s = Staircase::from_lshape(l);
        assert_eq!(s.steps(), 1);
        assert_eq!(s.as_lshape(), Some(l));
        assert_eq!(s.as_rect(), None);
        assert_eq!(s.area(), l.area());
        assert_eq!(s.bounding_box(), l.bounding_box());
        assert_eq!(s.outline(), l.outline());
        assert_eq!(s.perimeter(), l.perimeter());

        let degenerate = LShape::new_canonical(6, 6, 5, 2);
        assert_eq!(Staircase::from_lshape(degenerate).steps(), 0);
    }

    #[test]
    fn area_by_shoelace_cross_check() {
        let s = stair(&[(10, 2), (7, 5), (3, 9)]);
        let outline = s.outline();
        let mut twice_area = 0i128;
        for i in 0..outline.len() {
            let (x1, y1) = outline[i];
            let (x2, y2) = outline[(i + 1) % outline.len()];
            twice_area += i128::from(x1) * i128::from(y2) - i128::from(x2) * i128::from(y1);
        }
        assert_eq!(s.area() as i128 * 2, twice_area);
    }

    #[test]
    fn cross_sections() {
        let s = stair(&[(10, 2), (7, 5), (3, 9)]);
        assert_eq!(s.width_at(0), 10);
        assert_eq!(s.width_at(1), 10);
        assert_eq!(s.width_at(2), 7);
        assert_eq!(s.width_at(4), 7);
        assert_eq!(s.width_at(5), 3);
        assert_eq!(s.width_at(8), 3);
        assert_eq!(s.width_at(9), 0);
        assert_eq!(s.height_at(0), 9);
        assert_eq!(s.height_at(2), 9);
        assert_eq!(s.height_at(3), 5);
        assert_eq!(s.height_at(7), 2);
        assert_eq!(s.height_at(9), 2);
        assert_eq!(s.height_at(10), 0);
    }

    #[test]
    fn dominance_matches_lshape_dominance_on_two_teeth() {
        let pairs = [
            ((9, 3, 2, 1), (8, 3, 3, 2)),
            ((9, 3, 4, 2), (8, 3, 3, 2)),
            ((10, 5, 10, 5), (9, 4, 9, 4)),
            ((7, 2, 8, 1), (7, 2, 8, 1)),
        ];
        for ((a1, a2, a3, a4), (b1, b2, b3, b4)) in pairs {
            let la = LShape::new_canonical(a1, a2, a3, a4);
            let lb = LShape::new_canonical(b1, b2, b3, b4);
            let sa = Staircase::from_lshape(la);
            let sb = Staircase::from_lshape(lb);
            assert_eq!(sa.dominates(&sb), la.dominates(lb), "{la:?} vs {lb:?}");
            assert_eq!(sb.dominates(&sa), lb.dominates(la), "{lb:?} vs {la:?}");
        }
    }

    #[test]
    fn transpose_is_involutive_and_swaps_axes() {
        let s = stair(&[(10, 2), (7, 5), (3, 9)]);
        let t = s.transposed();
        assert_eq!(t.corners(), &[(9, 3), (5, 7), (2, 10)]);
        assert_eq!(t.transposed(), s);
        assert_eq!(t.area(), s.area());
        assert_eq!(t.bounding_box(), s.bounding_box().rotated());
        assert_eq!(s.transformed(Transform::TRANSPOSE), t);
        assert_eq!(s.transformed(Transform::FLIP_X), s);
        assert_eq!(s.transformed(Transform::ROTATE_180), s);
    }

    #[test]
    fn profile_distance_matches_lshape_l1_on_two_teeth() {
        let la = LShape::new_canonical(9, 3, 2, 1);
        let lb = LShape::new_canonical(8, 3, 3, 2);
        let expected = Area::from(
            la.w1.abs_diff(lb.w1)
                + la.w2.abs_diff(lb.w2)
                + la.h1.abs_diff(lb.h1)
                + la.h2.abs_diff(lb.h2),
        );
        assert_eq!(
            Staircase::from_lshape(la).profile_dist_l1(&Staircase::from_lshape(lb)),
            expected
        );
    }

    #[test]
    fn display_round_readable() {
        assert_eq!(stair(&[(10, 2), (7, 5)]).to_string(), "10x2/7x5");
        assert_eq!(stair(&[(4, 4)]).to_string(), "4x4");
    }

    fn arb_staircase() -> impl Strategy<Value = Staircase> {
        // Canonicalization never increases the corner count, so up to
        // MAX_STAIRCASE_STEPS + 1 raw corners always validate.
        proptest::collection::vec((1u64..30, 1u64..30), 1..=MAX_STAIRCASE_STEPS + 1)
            .prop_map(|corners| Staircase::from_corners(corners).expect("within cap"))
    }

    proptest! {
        /// Canonicalization is idempotent and order-independent.
        #[test]
        fn canonical_form_is_stable(s in arb_staircase()) {
            let again = Staircase::from_corners(s.corners().to_vec()).expect("valid");
            prop_assert_eq!(&again, &s);
            let mut reversed = s.corners().to_vec();
            reversed.reverse();
            prop_assert_eq!(Staircase::from_corners(reversed).expect("valid"), s);
        }

        /// Area equals the column sum of height_at (unit-width columns).
        #[test]
        fn area_matches_column_sum(s in arb_staircase()) {
            let bb = s.bounding_box();
            let columns: Area = (0..bb.w).map(|x| Area::from(s.height_at(x))).sum();
            prop_assert_eq!(s.area(), columns);
        }

        /// Dominance is geometric containment of cross-sections.
        #[test]
        fn dominance_is_containment(a in arb_staircase(), b in arb_staircase()) {
            let contains = (0..b.bounding_box().h)
                .all(|y| a.width_at(y) >= b.width_at(y));
            prop_assert_eq!(a.dominates(&b), contains);
        }

        /// Transpose preserves area and inverts dominance symmetrically.
        #[test]
        fn transpose_round_trip(s in arb_staircase()) {
            prop_assert_eq!(s.transposed().transposed(), s.clone());
            prop_assert_eq!(s.transposed().area(), s.area());
        }
    }
}
