//! Axis-aligned transforms (the dihedral group D4 without rotations spelled
//! out: transpose + mirrors generate all eight symmetries).

use core::fmt;

use crate::{LShape, Rect};

/// An axis-aligned symmetry: an optional transposition (reflection across
/// `y = x`) followed by optional mirrors about the vertical (`flip_x`) and
/// horizontal (`flip_y`) axes.
///
/// These eight transforms form the dihedral group D4. They act on
/// [`Rect`]/[`LShape`] *sizes* (where only transposition matters — mirrors do
/// not change measurements) and on [`crate::LOrient`] block orientations
/// (where all three components matter).
///
/// # Example
///
/// ```
/// use fp_geom::{LOrient, Rect, Transform};
///
/// let t = Transform::TRANSPOSE.then(Transform::FLIP_X);
/// assert_eq!(t.apply_rect(Rect::new(3, 7)), Rect::new(7, 3));
/// assert_eq!(LOrient::NotchSw.transformed(t), LOrient::NotchSe);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transform {
    transpose: bool,
    flip_x: bool,
    flip_y: bool,
}

impl Transform {
    /// The identity transform.
    pub const IDENTITY: Transform = Transform {
        transpose: false,
        flip_x: false,
        flip_y: false,
    };
    /// Mirror about the vertical axis (x := -x).
    pub const FLIP_X: Transform = Transform {
        transpose: false,
        flip_x: true,
        flip_y: false,
    };
    /// Mirror about the horizontal axis (y := -y).
    pub const FLIP_Y: Transform = Transform {
        transpose: false,
        flip_x: false,
        flip_y: true,
    };
    /// Reflection across the main diagonal `y = x`.
    pub const TRANSPOSE: Transform = Transform {
        transpose: true,
        flip_x: false,
        flip_y: false,
    };
    /// 180° rotation (both mirrors).
    pub const ROTATE_180: Transform = Transform {
        transpose: false,
        flip_x: true,
        flip_y: true,
    };

    /// All eight transforms of D4.
    pub const ALL: [Transform; 8] = [
        Transform {
            transpose: false,
            flip_x: false,
            flip_y: false,
        },
        Transform {
            transpose: false,
            flip_x: true,
            flip_y: false,
        },
        Transform {
            transpose: false,
            flip_x: false,
            flip_y: true,
        },
        Transform {
            transpose: false,
            flip_x: true,
            flip_y: true,
        },
        Transform {
            transpose: true,
            flip_x: false,
            flip_y: false,
        },
        Transform {
            transpose: true,
            flip_x: true,
            flip_y: false,
        },
        Transform {
            transpose: true,
            flip_x: false,
            flip_y: true,
        },
        Transform {
            transpose: true,
            flip_x: true,
            flip_y: true,
        },
    ];

    /// Creates a transform from its three components. The transposition is
    /// applied first, then the mirrors.
    #[inline]
    #[must_use]
    pub const fn new(transpose: bool, flip_x: bool, flip_y: bool) -> Self {
        Transform {
            transpose,
            flip_x,
            flip_y,
        }
    }

    /// Whether this transform transposes (swaps the axes) first.
    #[inline]
    #[must_use]
    pub const fn transpose(self) -> bool {
        self.transpose
    }

    /// Whether this transform mirrors about the vertical axis.
    #[inline]
    #[must_use]
    pub const fn flip_x(self) -> bool {
        self.flip_x
    }

    /// Whether this transform mirrors about the horizontal axis.
    #[inline]
    #[must_use]
    pub const fn flip_y(self) -> bool {
        self.flip_y
    }

    /// Composition: the transform that applies `self` first, then `other`.
    #[inline]
    #[must_use]
    pub const fn then(self, other: Transform) -> Transform {
        // self = F_s ∘ T_s, other = F_o ∘ T_o (transpose applied first).
        // other ∘ self = F_o ∘ (T_o ∘ F_s) ∘ T_s and T ∘ F_x = F_y ∘ T,
        // so pulling F_s through T_o swaps its components when T_o holds.
        let (sx, sy) = if other.transpose {
            (self.flip_y, self.flip_x)
        } else {
            (self.flip_x, self.flip_y)
        };
        Transform {
            transpose: self.transpose != other.transpose,
            flip_x: sx != other.flip_x,
            flip_y: sy != other.flip_y,
        }
    }

    /// The inverse transform (`t.then(t.inverse()) == IDENTITY`).
    #[inline]
    #[must_use]
    pub const fn inverse(self) -> Transform {
        // F ∘ T inverted is T ∘ F = (T F T) ∘ T: swap flips when transposing.
        if self.transpose {
            Transform {
                transpose: true,
                flip_x: self.flip_y,
                flip_y: self.flip_x,
            }
        } else {
            self
        }
    }

    /// Applies the transform to a rectangle size (mirrors are no-ops on
    /// sizes; transposition swaps width and height).
    #[inline]
    #[must_use]
    pub const fn apply_rect(self, r: Rect) -> Rect {
        if self.transpose {
            r.rotated()
        } else {
            r
        }
    }

    /// Applies the transform to a canonical L-shape tuple.
    ///
    /// Mirrors leave the canonical measurements unchanged (they only move
    /// the notch, which [`crate::LOrient`] tracks); transposition swaps the
    /// width and height roles.
    #[inline]
    #[must_use]
    pub const fn apply_lshape(self, l: LShape) -> LShape {
        if self.transpose {
            l.transposed()
        } else {
            l
        }
    }
}

impl fmt::Debug for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Transform(transpose={}, flip_x={}, flip_y={})",
            self.transpose, self.flip_x, self.flip_y
        )
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Transform::IDENTITY {
            return f.write_str("id");
        }
        let mut parts = Vec::new();
        if self.transpose {
            parts.push("T");
        }
        if self.flip_x {
            parts.push("Fx");
        }
        if self.flip_y {
            parts.push("Fy");
        }
        f.write_str(&parts.join("·"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LOrient;

    /// Reference implementation: act on a labelled unit-square corner set.
    /// Represent an orientation by the notch corner as (x, y) ∈ {0,1}².
    fn corner(o: LOrient) -> (i8, i8) {
        match o {
            LOrient::NotchNe => (1, 1),
            LOrient::NotchNw => (0, 1),
            LOrient::NotchSe => (1, 0),
            LOrient::NotchSw => (0, 0),
        }
    }

    fn apply_to_corner(t: Transform, (x, y): (i8, i8)) -> (i8, i8) {
        let (mut x, mut y) = if t.transpose() { (y, x) } else { (x, y) };
        if t.flip_x() {
            x = 1 - x;
        }
        if t.flip_y() {
            y = 1 - y;
        }
        (x, y)
    }

    #[test]
    fn orientation_action_matches_corner_model() {
        for t in Transform::ALL {
            for o in LOrient::ALL {
                assert_eq!(
                    corner(o.transformed(t)),
                    apply_to_corner(t, corner(o)),
                    "transform {t} on {o}"
                );
            }
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        for a in Transform::ALL {
            for b in Transform::ALL {
                let c = a.then(b);
                for o in LOrient::ALL {
                    assert_eq!(
                        o.transformed(a).transformed(b),
                        o.transformed(c),
                        "composition {a} then {b}"
                    );
                }
                for r in [Rect::new(3, 7), Rect::new(5, 5)] {
                    assert_eq!(b.apply_rect(a.apply_rect(r)), c.apply_rect(r));
                }
            }
        }
    }

    #[test]
    fn inverse_is_two_sided() {
        for t in Transform::ALL {
            assert_eq!(
                t.then(t.inverse()),
                Transform::IDENTITY,
                "{t} right inverse"
            );
            assert_eq!(t.inverse().then(t), Transform::IDENTITY, "{t} left inverse");
        }
    }

    #[test]
    fn group_is_closed_with_eight_elements() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in Transform::ALL {
            for b in Transform::ALL {
                seen.insert(format!("{:?}", a.then(b)));
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn lshape_action_transposes_only() {
        let l = LShape::new_canonical(10, 4, 8, 3);
        assert_eq!(Transform::FLIP_X.apply_lshape(l), l);
        assert_eq!(Transform::FLIP_Y.apply_lshape(l), l);
        assert_eq!(Transform::TRANSPOSE.apply_lshape(l), l.transposed());
    }

    #[test]
    fn display_names() {
        assert_eq!(Transform::IDENTITY.to_string(), "id");
        assert_eq!(
            Transform::TRANSPOSE.then(Transform::ROTATE_180).to_string(),
            "T·Fx·Fy"
        );
    }
}
