//! Integer geometry primitives for floorplan area optimization.
//!
//! This crate provides the geometric vocabulary of the Wang–Wong floorplan
//! area optimization papers (DAC'90, DAC'92):
//!
//! * [`Rect`] — an implementation of a *rectangular block*, a `(w, h)` pair.
//! * [`LShape`] — an implementation of an *L-shaped block*, a canonical
//!   `(w1, w2, h1, h2)` 4-tuple with `w1 >= w2` and `h1 >= h2`.
//! * [`LOrient`] — the four axis-aligned orientations an L-shaped block can
//!   take inside a floorplan (the canonical tuple is orientation-free; the
//!   block carries the orientation).
//! * [`Transform`] — axis mirrors and transposition acting on shapes and
//!   orientations.
//! * [`Staircase`] — a bounded monotone *staircase block*: the rectilinear
//!   generalization of rectangles (one tooth) and L-shapes (two teeth), with
//!   at most [`MAX_STAIRCASE_STEPS`] notch steps.
//! * [`Shape`] / [`AnyShape`] — the sealed common API over the three
//!   geometries, with [`Staircase`] as the canonical embedding.
//! * Placed geometry ([`Point`], [`PlacedRect`]) used to realize and verify
//!   final layouts.
//! * Layout post-processing ([`polygonize`], [`whitespace`]) — scanline
//!   union of a realized placement into dead-space regions
//!   ([`WhitespaceReport`]) and merged block outline rings.
//!
//! All coordinates are non-negative integers ([`Coord`] = `u64`), i.e. a
//! fixed-point grid (e.g. nanometres or lambda units). Areas use [`Area`] =
//! `u128` so that no realistic floorplan can overflow.
//!
//! # Example
//!
//! ```
//! use fp_geom::{LShape, Rect};
//!
//! let a = Rect::new(4, 7);
//! let b = Rect::new(3, 9);
//! assert!(!a.dominates(b)); // neither dominates: Pareto-incomparable
//!
//! let l = LShape::new(10, 4, 8, 3)?;
//! assert_eq!(l.area(), 10 * 3 + 4 * (8 - 3));
//! # Ok::<(), fp_geom::InvalidShapeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lshape;
mod placed;
mod polygonize;
mod rect;
mod shape_api;
mod staircase;
mod transform;

pub use lshape::{InvalidShapeError, LOrient, LShape};
pub use placed::{dead_space, first_overlap, total_area, BoundingBox, PlacedRect, Point};
pub use polygonize::{polygonize, whitespace, DeadRegion, Polygonized, WhitespaceReport};
pub use rect::Rect;
pub use shape_api::{AnyShape, Shape};
pub use staircase::{InvalidStaircaseError, Staircase, MAX_STAIRCASE_STEPS};
pub use transform::Transform;

/// Grid coordinate / length type. All module and block dimensions are
/// non-negative integers on a fixed-point grid.
pub type Coord = u64;

/// Area type; wide enough that `Coord * Coord` sums never overflow.
pub type Area = u128;

/// The largest coordinate the library guarantees overflow-free arithmetic
/// for: composition sums coordinates along the floorplan hierarchy, so a
/// floorplan of up to 2²⁰ modules with every dimension at most
/// `MAX_COORD = 2⁴⁰` keeps every computed width/height below 2⁶⁰ — well
/// inside [`Coord`]. Input layers ([`crate::Rect`]-producing constructors
/// in downstream crates) validate against this bound.
pub const MAX_COORD: Coord = 1 << 40;

/// Multiplies two coordinates into an [`Area`] without overflow.
///
/// ```
/// assert_eq!(fp_geom::area(3, 4), 12);
/// ```
#[inline]
#[must_use]
pub fn area(w: Coord, h: Coord) -> Area {
    Area::from(w) * Area::from(h)
}
