//! L-shape implementations: canonical `(w1, w2, h1, h2)` 4-tuples.

use core::fmt;

use crate::{area, Area, Coord, Rect};

/// Error returned when an L-shape 4-tuple violates the canonical invariant
/// `w1 >= w2 && h1 >= h2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidShapeError {
    tuple: (Coord, Coord, Coord, Coord),
}

impl fmt::Display for InvalidShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (w1, w2, h1, h2) = self.tuple;
        write!(
            f,
            "invalid L-shape ({w1}, {w2}, {h1}, {h2}): requires w1 >= w2 and h1 >= h2"
        )
    }
}

impl std::error::Error for InvalidShapeError {}

/// An implementation of an L-shaped block (paper §2, Figure 2).
///
/// The canonical L occupies the union of two origin-anchored rectangles
///
/// ```text
/// [0, w1] x [0, h2]   (the wide bottom part)
/// [0, w2] x [0, h1]   (the tall left part)
/// ```
///
/// with `w1 >= w2` and `h1 >= h2`, so the *notch* (the missing corner) is at
/// the top-right. `w1`/`w2` are the widths of the bottom/top edges and
/// `h1`/`h2` the heights of the left/right edges. The physical orientation
/// of an L-shaped *block* inside a floorplan is tracked separately by
/// [`LOrient`]; implementations are always stored canonically.
///
/// A tuple with `w1 == w2` or `h1 == h2` degenerates to a rectangle; this is
/// permitted (it arises naturally when joining blocks whose edges align) and
/// reported by [`LShape::is_degenerate`].
///
/// # Example
///
/// ```
/// use fp_geom::LShape;
///
/// let l = LShape::new(10, 4, 8, 3)?;
/// assert_eq!(l.area(), 10 * 3 + 4 * 5);
/// assert_eq!(l.bounding_box(), fp_geom::Rect::new(10, 8));
/// assert!(!l.is_degenerate());
/// # Ok::<(), fp_geom::InvalidShapeError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LShape {
    /// Width of the bottom edge (`w1 >= w2`).
    pub w1: Coord,
    /// Width of the top edge.
    pub w2: Coord,
    /// Height of the left edge (`h1 >= h2`).
    pub h1: Coord,
    /// Height of the right edge.
    pub h2: Coord,
}

impl LShape {
    /// Creates a canonical L-shape implementation.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidShapeError`] unless `w1 >= w2` and `h1 >= h2`.
    #[inline]
    pub fn new(w1: Coord, w2: Coord, h1: Coord, h2: Coord) -> Result<Self, InvalidShapeError> {
        if w1 >= w2 && h1 >= h2 {
            Ok(LShape { w1, w2, h1, h2 })
        } else {
            Err(InvalidShapeError {
                tuple: (w1, w2, h1, h2),
            })
        }
    }

    /// Creates a canonical L-shape implementation, panicking on invalid input.
    ///
    /// Use this in construction paths where canonicality holds by
    /// construction; prefer [`LShape::new`] at API boundaries.
    ///
    /// # Panics
    ///
    /// Panics unless `w1 >= w2` and `h1 >= h2`.
    #[inline]
    #[must_use]
    pub fn new_canonical(w1: Coord, w2: Coord, h1: Coord, h2: Coord) -> Self {
        assert!(
            w1 >= w2 && h1 >= h2,
            "invalid L-shape ({w1}, {w2}, {h1}, {h2}): requires w1 >= w2 and h1 >= h2",
        );
        LShape { w1, w2, h1, h2 }
    }

    /// The degenerate L-shape equal to rectangle `r` (`w1 == w2`, `h1 == h2`).
    #[inline]
    #[must_use]
    pub const fn from_rect(r: Rect) -> Self {
        LShape {
            w1: r.w,
            w2: r.w,
            h1: r.h,
            h2: r.h,
        }
    }

    /// The enclosed area: `w1 * h2 + w2 * (h1 - h2)`.
    #[inline]
    #[must_use]
    pub fn area(self) -> Area {
        area(self.w1, self.h2) + area(self.w2, self.h1 - self.h2)
    }

    /// The smallest rectangle containing the L: `w1 x h1`.
    #[inline]
    #[must_use]
    pub const fn bounding_box(self) -> Rect {
        Rect::new(self.w1, self.h1)
    }

    /// The size of the missing corner: `(w1 - w2) x (h1 - h2)`.
    ///
    /// A rectangle of exactly this size placed in the notch completes the L
    /// into its bounding box.
    #[inline]
    #[must_use]
    pub const fn notch(self) -> Rect {
        Rect::new(self.w1 - self.w2, self.h1 - self.h2)
    }

    /// `true` if the tuple is actually a rectangle (`w1 == w2 || h1 == h2`).
    #[inline]
    #[must_use]
    pub fn is_degenerate(self) -> bool {
        self.w1 == self.w2 || self.h1 == self.h2
    }

    /// If degenerate, the equivalent rectangle (`w1 x h1`), else `None`.
    #[inline]
    #[must_use]
    pub fn as_rect(self) -> Option<Rect> {
        self.is_degenerate().then(|| self.bounding_box())
    }

    /// Returns `true` if `self` dominates `other`: at least as large in all
    /// four measurements (paper Definition 1).
    ///
    /// Componentwise dominance coincides with geometric containment of the
    /// canonical regions, so a dominating implementation is redundant.
    #[inline]
    #[must_use]
    pub fn dominates(self, other: LShape) -> bool {
        self.w1 >= other.w1 && self.w2 >= other.w2 && self.h1 >= other.h1 && self.h2 >= other.h2
    }

    /// Returns `true` if `self` dominates `other` and differs from it.
    #[inline]
    #[must_use]
    pub fn strictly_dominates(self, other: LShape) -> bool {
        self != other && self.dominates(other)
    }

    /// The transposed implementation (reflection across the main diagonal):
    /// widths and heights swap roles, the tuple stays canonical.
    #[inline]
    #[must_use]
    pub const fn transposed(self) -> Self {
        LShape {
            w1: self.h1,
            w2: self.h2,
            h1: self.w1,
            h2: self.w2,
        }
    }

    /// Returns `true` if the canonical region of `self` contains the point
    /// `(x, y)` (boundary inclusive).
    #[inline]
    #[must_use]
    pub fn contains_point(self, x: Coord, y: Coord) -> bool {
        (x <= self.w1 && y <= self.h2) || (x <= self.w2 && y <= self.h1)
    }

    /// The 4-tuple `(w1, w2, h1, h2)`.
    #[inline]
    #[must_use]
    pub const fn as_tuple(self) -> (Coord, Coord, Coord, Coord) {
        (self.w1, self.w2, self.h1, self.h2)
    }

    /// The boundary polygon of the canonical region, counterclockwise
    /// from the origin: six corners for a true L, four for a degenerate
    /// rectangle.
    ///
    /// ```
    /// use fp_geom::LShape;
    ///
    /// let l = LShape::new(10, 4, 8, 3)?;
    /// assert_eq!(
    ///     l.outline(),
    ///     vec![(0, 0), (10, 0), (10, 3), (4, 3), (4, 8), (0, 8)]
    /// );
    /// # Ok::<(), fp_geom::InvalidShapeError>(())
    /// ```
    #[must_use]
    pub fn outline(self) -> Vec<(Coord, Coord)> {
        if self.is_degenerate() {
            return vec![(0, 0), (self.w1, 0), (self.w1, self.h1), (0, self.h1)];
        }
        vec![
            (0, 0),
            (self.w1, 0),
            (self.w1, self.h2),
            (self.w2, self.h2),
            (self.w2, self.h1),
            (0, self.h1),
        ]
    }

    /// The boundary perimeter of the canonical region.
    ///
    /// For any rectilinear L (or rectangle) this equals the bounding-box
    /// perimeter `2(w1 + h1)` — the notch adds no length.
    #[must_use]
    pub fn perimeter(self) -> Area {
        2 * (Area::from(self.w1) + Area::from(self.h1))
    }
}

impl fmt::Debug for LShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LShape({}, {}, {}, {})",
            self.w1, self.w2, self.h1, self.h2
        )
    }
}

impl fmt::Display for LShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.w1, self.w2, self.h1, self.h2)
    }
}

impl From<Rect> for LShape {
    #[inline]
    fn from(r: Rect) -> Self {
        LShape::from_rect(r)
    }
}

/// Orientation of an L-shaped block inside a floorplan: the compass corner
/// where the notch (missing corner) sits.
///
/// Implementations are always stored as canonical [`LShape`] tuples (notch
/// conceptually at the top-right); the block's orientation says how the
/// canonical frame maps to chip coordinates. [`crate::Transform`]s act on
/// orientations.
///
/// ```
/// use fp_geom::{LOrient, Transform};
///
/// assert_eq!(LOrient::NotchNe.transformed(Transform::FLIP_X), LOrient::NotchNw);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LOrient {
    /// Notch at the top-right (the canonical orientation).
    #[default]
    NotchNe,
    /// Notch at the top-left.
    NotchNw,
    /// Notch at the bottom-right.
    NotchSe,
    /// Notch at the bottom-left.
    NotchSw,
}

impl LOrient {
    /// All four orientations.
    pub const ALL: [LOrient; 4] = [
        LOrient::NotchNe,
        LOrient::NotchNw,
        LOrient::NotchSe,
        LOrient::NotchSw,
    ];

    /// The orientation after mirroring about the vertical axis (x := -x).
    #[inline]
    #[must_use]
    pub const fn flipped_x(self) -> Self {
        match self {
            LOrient::NotchNe => LOrient::NotchNw,
            LOrient::NotchNw => LOrient::NotchNe,
            LOrient::NotchSe => LOrient::NotchSw,
            LOrient::NotchSw => LOrient::NotchSe,
        }
    }

    /// The orientation after mirroring about the horizontal axis (y := -y).
    #[inline]
    #[must_use]
    pub const fn flipped_y(self) -> Self {
        match self {
            LOrient::NotchNe => LOrient::NotchSe,
            LOrient::NotchSe => LOrient::NotchNe,
            LOrient::NotchNw => LOrient::NotchSw,
            LOrient::NotchSw => LOrient::NotchNw,
        }
    }

    /// The orientation after transposing (reflecting across `y = x`).
    ///
    /// Transposition fixes NE and SW and swaps NW with SE.
    #[inline]
    #[must_use]
    pub const fn transposed(self) -> Self {
        match self {
            LOrient::NotchNe => LOrient::NotchNe,
            LOrient::NotchSw => LOrient::NotchSw,
            LOrient::NotchNw => LOrient::NotchSe,
            LOrient::NotchSe => LOrient::NotchNw,
        }
    }

    /// Applies a [`crate::Transform`] to this orientation.
    #[inline]
    #[must_use]
    pub const fn transformed(self, t: crate::Transform) -> Self {
        let mut o = self;
        if t.transpose() {
            o = o.transposed();
        }
        if t.flip_x() {
            o = o.flipped_x();
        }
        if t.flip_y() {
            o = o.flipped_y();
        }
        o
    }
}

impl fmt::Display for LOrient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LOrient::NotchNe => "NE",
            LOrient::NotchNw => "NW",
            LOrient::NotchSe => "SE",
            LOrient::NotchSw => "SW",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_validates_invariant() {
        assert!(LShape::new(10, 4, 8, 3).is_ok());
        assert!(LShape::new(4, 10, 8, 3).is_err());
        assert!(LShape::new(10, 4, 3, 8).is_err());
        let err = LShape::new(1, 2, 3, 4).unwrap_err();
        assert!(err.to_string().contains("invalid L-shape"));
    }

    #[test]
    #[should_panic(expected = "invalid L-shape")]
    fn new_canonical_panics_on_bad_tuple() {
        let _ = LShape::new_canonical(1, 2, 1, 1);
    }

    #[test]
    fn area_matches_decomposition() {
        // Figure-2 style L: bottom 10x3, tall-left column 4 wide up to 8.
        let l = LShape::new_canonical(10, 4, 8, 3);
        assert_eq!(l.area(), 30 + 20);
        // Degenerate cases equal their bounding box area.
        let sq = LShape::from_rect(Rect::new(6, 5));
        assert_eq!(sq.area(), 30);
        assert_eq!(LShape::new_canonical(6, 6, 9, 2).area(), 54);
        assert_eq!(LShape::new_canonical(9, 2, 6, 6).area(), 54);
    }

    #[test]
    fn degenerate_detection_and_as_rect() {
        assert_eq!(
            LShape::new_canonical(6, 6, 9, 2).as_rect(),
            Some(Rect::new(6, 9))
        );
        assert_eq!(
            LShape::new_canonical(9, 2, 6, 6).as_rect(),
            Some(Rect::new(9, 6))
        );
        assert_eq!(LShape::new_canonical(9, 2, 6, 5).as_rect(), None);
    }

    #[test]
    fn notch_completes_bounding_box() {
        let l = LShape::new_canonical(10, 4, 8, 3);
        let n = l.notch();
        assert_eq!(n, Rect::new(6, 5));
        assert_eq!(l.area() + n.area(), l.bounding_box().area());
    }

    #[test]
    fn dominance_definition_1() {
        let i2 = LShape::new_canonical(10, 4, 8, 3);
        assert!(LShape::new_canonical(10, 4, 8, 3).dominates(i2));
        assert!(LShape::new_canonical(11, 4, 8, 3).strictly_dominates(i2));
        assert!(LShape::new_canonical(11, 5, 9, 4).dominates(i2));
        assert!(!LShape::new_canonical(11, 3, 9, 4).dominates(i2)); // w2 smaller
        assert!(!LShape::new_canonical(9, 4, 9, 4).dominates(i2)); // w1 smaller
    }

    #[test]
    fn contains_point_boundary() {
        let l = LShape::new_canonical(10, 4, 8, 3);
        assert!(l.contains_point(10, 3)); // bottom-right corner
        assert!(l.contains_point(4, 8)); // top of the column
        assert!(!l.contains_point(5, 4)); // inside the notch
        assert!(l.contains_point(0, 0));
        assert!(!l.contains_point(11, 0));
    }

    #[test]
    fn transpose_involutive_and_area_preserving() {
        let l = LShape::new_canonical(10, 4, 8, 3);
        assert_eq!(l.transposed().transposed(), l);
        assert_eq!(l.transposed().area(), l.area());
        assert_eq!(l.transposed(), LShape::new_canonical(8, 3, 10, 4));
    }

    #[test]
    fn orient_transform_table() {
        use crate::Transform;
        assert_eq!(LOrient::NotchNe.flipped_x(), LOrient::NotchNw);
        assert_eq!(LOrient::NotchNe.flipped_y(), LOrient::NotchSe);
        assert_eq!(LOrient::NotchNe.flipped_x().flipped_y(), LOrient::NotchSw);
        assert_eq!(LOrient::NotchNe.transposed(), LOrient::NotchNe);
        assert_eq!(LOrient::NotchNw.transposed(), LOrient::NotchSe);
        for o in LOrient::ALL {
            assert_eq!(o.flipped_x().flipped_x(), o);
            assert_eq!(o.flipped_y().flipped_y(), o);
            assert_eq!(o.transposed().transposed(), o);
            assert_eq!(o.transformed(Transform::IDENTITY), o);
        }
    }

    /// Shoelace area of a counterclockwise polygon.
    fn shoelace(points: &[(u64, u64)]) -> i128 {
        let n = points.len();
        let mut twice: i128 = 0;
        for i in 0..n {
            let (x1, y1) = points[i];
            let (x2, y2) = points[(i + 1) % n];
            twice += i128::from(x1) * i128::from(y2) - i128::from(x2) * i128::from(y1);
        }
        twice / 2
    }

    #[test]
    fn outline_corners_and_perimeter() {
        let l = LShape::new_canonical(10, 4, 8, 3);
        assert_eq!(l.outline().len(), 6);
        assert_eq!(l.perimeter(), 36);
        let sq = LShape::from_rect(Rect::new(5, 7));
        assert_eq!(sq.outline().len(), 4);
        assert_eq!(sq.perimeter(), 24);
    }

    fn arb_lshape() -> impl Strategy<Value = LShape> {
        (0u64..100, 0u64..100, 0u64..100, 0u64..100)
            .prop_map(|(a, b, c, d)| LShape::new_canonical(a.max(b), a.min(b), c.max(d), c.min(d)))
    }

    proptest! {
        #[test]
        fn area_plus_notch_equals_bbox(l in arb_lshape()) {
            prop_assert_eq!(l.area() + l.notch().area(), l.bounding_box().area());
        }

        #[test]
        fn dominance_implies_containment(a in arb_lshape(), b in arb_lshape(),
                                         x in 0u64..100, y in 0u64..100) {
            if a.dominates(b) && b.contains_point(x, y) {
                prop_assert!(a.contains_point(x, y));
            }
        }

        #[test]
        fn dominance_implies_area_ge(a in arb_lshape(), b in arb_lshape()) {
            if a.dominates(b) {
                prop_assert!(a.area() >= b.area());
            }
        }

        /// Independent geometric cross-check: the shoelace formula over
        /// the outline equals the analytic area.
        #[test]
        fn outline_shoelace_matches_area(l in arb_lshape()) {
            let poly = l.outline();
            prop_assert_eq!(shoelace(&poly) as u128, l.area());
        }

        #[test]
        fn degenerate_iff_rect_area(l in arb_lshape()) {
            prop_assert_eq!(l.is_degenerate(), l.area() == l.bounding_box().area()
                || l.bounding_box().area() == 0);
        }
    }
}
