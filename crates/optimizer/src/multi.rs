//! Multi-objective optimization: wirelength-aware scalarizations and
//! Pareto sweeps over the solution [`Frontier`].
//!
//! The bottom-up enumeration is objective-agnostic — the frontier holds
//! *every* non-redundant root envelope, and the single-objective engine
//! only commits to one at the very end ([`Frontier::best`]). That makes
//! multi-objective optimization a post-pass: realize each envelope's
//! layout, evaluate its half-perimeter wirelength against a bound
//! netlist, and either scalarize ([`CompositeObjective`]) or keep the
//! whole non-dominated front ([`Optimizer::run_pareto`]).
//!
//! Area remains exact (the candidates are the exhaustive envelope set);
//! wirelength is evaluated on the realized layout of each candidate's
//! traced-back assignment. HPWL evaluations reuse one incremental
//! [`HpwlEvaluator`] across the sweep, so consecutive candidates — which
//! typically differ in a handful of module choices — only recompute the
//! nets they touch.
//!
//! ```
//! use fp_optimizer::{CompositeObjective, OptimizeConfig, Optimizer};
//! use fp_tree::generators;
//!
//! let bench = generators::fp1();
//! let library = generators::module_library(&bench.tree, 3, 1);
//! let netlist = fp_netlist::random_netlist(&library, 20, 1);
//! let bound = netlist.bind(&library).expect("binds");
//! let multi = Optimizer::new(&bench.tree, &library)
//!     .config(&OptimizeConfig::default())
//!     .run_composite(&bound, CompositeObjective::weighted(0.5))?;
//! assert!(multi.outcome.area > 0 && multi.hpwl > 0);
//! # Ok::<(), fp_optimizer::OptError>(())
//! ```

use std::time::Instant;

use fp_geom::Rect;
use fp_netlist::{pareto_insert, BoundNetlist, HpwlEvaluator, ParetoPoint};
use fp_trace::{TraceEvent, Tracer};
use fp_tree::layout::{realize, Assignment};
use fp_tree::{FloorplanTree, ModuleLibrary};

use crate::engine::{Frontier, OptError, Optimizer, Outcome};

/// How to collapse (area, wirelength) into one winner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompositeObjective {
    /// Minimize `alpha · area/area_min + (1 − alpha) · hpwl/hpwl_min`
    /// (both terms normalized by the candidate minima so the weight is
    /// scale-free). `alpha ≥ 1` reproduces the single-objective engine
    /// byte-for-byte — same envelope, same assignment; `alpha ≤ 0` is
    /// pure wirelength.
    WeightedSum {
        /// Weight on area, normally in `[0, 1]`.
        alpha: f64,
    },
    /// Minimize the configured area objective subject to
    /// `hpwl ≤ max_hpwl`. When no candidate meets the bound the
    /// minimum-HPWL candidate is returned instead (the constraint is
    /// reported as infeasible-but-served rather than failing the run).
    EpsilonConstraint {
        /// The wirelength budget.
        max_hpwl: u128,
    },
}

impl CompositeObjective {
    /// Weighted-sum scalarization with weight `alpha` on area.
    #[must_use]
    pub fn weighted(alpha: f64) -> Self {
        CompositeObjective::WeightedSum { alpha }
    }

    /// Epsilon-constraint scalarization with wirelength budget
    /// `max_hpwl`.
    #[must_use]
    pub fn epsilon(max_hpwl: u128) -> Self {
        CompositeObjective::EpsilonConstraint { max_hpwl }
    }
}

/// The winner of a composite run: the traced-back outcome plus its
/// wirelength.
#[derive(Debug, Clone)]
pub struct MultiOutcome {
    /// The chosen envelope's full outcome (area, assignment, stats).
    pub outcome: Outcome,
    /// Total half-perimeter wirelength of the realized layout.
    pub hpwl: u128,
    /// Frontier envelope index of the winner.
    pub index: usize,
    /// Whether the winner fits the configured outline (`true` when no
    /// outline was configured).
    pub fits: bool,
}

/// The result of a Pareto sweep: the non-dominated front plus the
/// frontier it was evaluated from (for tracing points back to
/// assignments).
pub struct ParetoSet {
    /// Non-dominated (area, HPWL, fits) points, area ascending.
    pub front: Vec<ParetoPoint>,
    /// Candidates evaluated (the frontier's envelope count).
    pub evaluated: usize,
    /// The underlying solution frontier; `front[i].index` indexes its
    /// envelopes.
    pub frontier: Frontier,
}

impl ParetoSet {
    /// Traces a front point back to its full outcome.
    #[must_use]
    pub fn outcome(&self, point: &ParetoPoint) -> Outcome {
        self.frontier.outcome(point.index)
    }
}

/// One evaluated frontier candidate.
struct Candidate {
    index: usize,
    envelope: Rect,
    hpwl: u128,
    fits: bool,
}

/// Realizes and HPWL-evaluates every frontier envelope, reusing one
/// incremental evaluator across the sweep.
fn sweep(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    frontier: &Frontier,
    bound: &BoundNetlist,
    outline: Option<Rect>,
    tracer: Option<&Tracer>,
) -> Result<Vec<Candidate>, OptError> {
    let mut evaluator = HpwlEvaluator::new(bound);
    let mut candidates = Vec::with_capacity(frontier.envelopes().len());
    for index in 0..frontier.envelopes().len() {
        let outcome = frontier.outcome(index);
        let hpwl = evaluate_assignment(tree, library, &outcome.assignment, &mut evaluator, tracer)?;
        candidates.push(Candidate {
            index,
            envelope: outcome.root_impl,
            hpwl,
            fits: outline.is_none_or(|o| outcome.root_impl.fits_in(o)),
        });
    }
    Ok(candidates)
}

/// Realizes `assignment` and runs one (incremental) HPWL evaluation,
/// emitting the `hpwl_eval` trace event.
fn evaluate_assignment(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    assignment: &Assignment,
    evaluator: &mut HpwlEvaluator<'_>,
    tracer: Option<&Tracer>,
) -> Result<u128, OptError> {
    let started = Instant::now();
    let layout = realize(tree, library, assignment).map_err(|_| OptError::Internal {
        what: "frontier assignment failed to realize",
        block: 0,
    })?;
    let hpwl = evaluator
        .update(tree, &layout, assignment)
        .map_err(|_| OptError::Internal {
            what: "netlist references a module absent from the layout",
            block: 0,
        })?;
    if let Some(tracer) = tracer {
        tracer.emit(
            0,
            TraceEvent::HpwlEval {
                nets: u32::try_from(evaluator.nets()).unwrap_or(u32::MAX),
                touched: u32::try_from(evaluator.last_touched()).unwrap_or(u32::MAX),
                dur_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            },
        );
    }
    Ok(hpwl)
}

/// The composite winner among `candidates` (which must be non-empty and
/// pre-filtered to outline fits).
fn pick(candidates: &[Candidate], objective: CompositeObjective) -> usize {
    match objective {
        CompositeObjective::WeightedSum { alpha } => {
            let a = alpha.clamp(0.0, 1.0);
            let area_min = candidates
                .iter()
                .map(|c| c.envelope.area())
                .min()
                .unwrap_or(1)
                .max(1) as f64;
            let hpwl_min = candidates.iter().map(|c| c.hpwl).min().unwrap_or(1).max(1) as f64;
            candidates
                .iter()
                .min_by(|x, y| {
                    let score = |c: &Candidate| {
                        a * (c.envelope.area() as f64 / area_min)
                            + (1.0 - a) * (c.hpwl as f64 / hpwl_min)
                    };
                    score(x).total_cmp(&score(y)).then_with(|| {
                        (x.envelope.area(), x.envelope.w, x.index).cmp(&(
                            y.envelope.area(),
                            y.envelope.w,
                            y.index,
                        ))
                    })
                })
                .map_or(0, |c| c.index)
        }
        CompositeObjective::EpsilonConstraint { max_hpwl } => {
            let within = |c: &&Candidate| c.hpwl <= max_hpwl;
            let area_key = |c: &&Candidate| (c.envelope.area(), c.envelope.w, c.index);
            if let Some(best) = candidates.iter().filter(within).min_by_key(area_key) {
                best.index
            } else {
                // Infeasible budget: serve the closest (minimum-HPWL)
                // candidate deterministically instead of failing.
                candidates
                    .iter()
                    .min_by_key(|c| (c.hpwl, c.envelope.area(), c.envelope.w, c.index))
                    .map_or(0, |c| c.index)
            }
        }
    }
}

impl<'a> Optimizer<'a> {
    /// Runs the enumeration and picks the winner of `objective` against
    /// `bound`, evaluating wirelength over every frontier envelope.
    ///
    /// `WeightedSum { alpha }` with `alpha ≥ 1` short-circuits to the
    /// single-objective path ([`Frontier::best`]) — the returned
    /// envelope and assignment are byte-identical to
    /// [`Optimizer::run_best`], with the winner's HPWL evaluated on
    /// top.
    ///
    /// # Errors
    ///
    /// Same as [`Optimizer::run_best`]; additionally
    /// [`OptError::Internal`] if the netlist references modules absent
    /// from the library's realized layouts.
    pub fn run_composite(
        self,
        bound: &BoundNetlist,
        objective: CompositeObjective,
    ) -> Result<MultiOutcome, OptError> {
        let (tree, library) = (self.tree, self.library);
        let config_objective = self.config.objective;
        let outline = self.config.outline;
        let tracer = self.tracer;
        let frontier = self.run_frontier()?;

        if let CompositeObjective::WeightedSum { alpha } = objective {
            if alpha >= 1.0 {
                // Exact single-objective path: byte-identical envelope
                // and assignment, HPWL evaluated on the winner only.
                let outcome = frontier.best(config_objective, outline)?;
                let mut evaluator = HpwlEvaluator::new(bound);
                let hpwl = evaluate_assignment(
                    tree,
                    library,
                    &outcome.assignment,
                    &mut evaluator,
                    tracer,
                )?;
                let fits = outline.is_none_or(|o| outcome.root_impl.fits_in(o));
                let index = frontier
                    .envelopes()
                    .iter()
                    .position(|r| *r == outcome.root_impl)
                    .unwrap_or(0);
                return Ok(MultiOutcome {
                    outcome,
                    hpwl,
                    index,
                    fits,
                });
            }
        }

        let candidates = sweep(tree, library, &frontier, bound, outline, tracer)?;
        let fitting: Vec<&Candidate> = candidates.iter().filter(|c| c.fits).collect();
        if fitting.is_empty() {
            // Same infeasibility report the single-objective path gives;
            // a success here would contradict the empty filter.
            return match frontier.best(config_objective, outline) {
                Err(e) => Err(e),
                Ok(_) => Err(OptError::Internal {
                    what: "outline filter disagrees with the frontier's best pick",
                    block: 0,
                }),
            };
        }
        let owned: Vec<Candidate> = fitting
            .iter()
            .map(|c| Candidate {
                index: c.index,
                envelope: c.envelope,
                hpwl: c.hpwl,
                fits: c.fits,
            })
            .collect();
        let index = pick(&owned, objective);
        let winner = candidates
            .iter()
            .find(|c| c.index == index)
            .ok_or(OptError::Internal {
                what: "pick returned an index missing from its input",
                block: 0,
            })?;
        Ok(MultiOutcome {
            outcome: frontier.outcome(index),
            hpwl: winner.hpwl,
            index,
            fits: winner.fits,
        })
    }

    /// Runs the enumeration and returns the non-dominated (area, HPWL,
    /// outline-fit) front over every frontier envelope, area ascending.
    /// Each surviving insertion emits a `pareto_insert` trace event.
    ///
    /// # Errors
    ///
    /// Same as [`Optimizer::run_composite`].
    pub fn run_pareto(self, bound: &BoundNetlist) -> Result<ParetoSet, OptError> {
        let (tree, library) = (self.tree, self.library);
        let outline = self.config.outline;
        let tracer = self.tracer;
        let frontier = self.run_frontier()?;
        let candidates = sweep(tree, library, &frontier, bound, outline, tracer)?;
        let evaluated = candidates.len();
        let mut front: Vec<ParetoPoint> = Vec::new();
        for c in candidates {
            let point = ParetoPoint {
                index: c.index,
                width: c.envelope.w,
                height: c.envelope.h,
                area: c.envelope.area(),
                hpwl: c.hpwl,
                fits: c.fits,
            };
            if pareto_insert(&mut front, point) {
                if let Some(tracer) = tracer {
                    tracer.emit(
                        0,
                        TraceEvent::ParetoInsert {
                            index: u32::try_from(c.index).unwrap_or(u32::MAX),
                            front_len: u32::try_from(front.len()).unwrap_or(u32::MAX),
                        },
                    );
                }
            }
        }
        front.sort_by_key(|p| (p.area, p.hpwl, p.index));
        Ok(ParetoSet {
            front,
            evaluated,
            frontier,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::OptimizeConfig;
    use fp_netlist::random_netlist;
    use fp_tree::generators;

    fn setup() -> (generators::Benchmark, ModuleLibrary, fp_netlist::Netlist) {
        let bench = generators::fp1();
        let library = generators::module_library(&bench.tree, 3, 1);
        let netlist = random_netlist(&library, 25, 2);
        (bench, library, netlist)
    }

    #[test]
    fn alpha_one_matches_single_objective_exactly() {
        let (bench, library, netlist) = setup();
        let bound = netlist.bind(&library).expect("binds");
        let config = OptimizeConfig::default();
        let single = Optimizer::new(&bench.tree, &library)
            .config(&config)
            .run_best()
            .expect("single-objective run");
        let multi = Optimizer::new(&bench.tree, &library)
            .config(&config)
            .run_composite(&bound, CompositeObjective::weighted(1.0))
            .expect("composite run");
        assert_eq!(multi.outcome.area, single.area);
        assert_eq!(multi.outcome.root_impl, single.root_impl);
        assert_eq!(multi.outcome.assignment.choices, single.assignment.choices);
    }

    #[test]
    fn alpha_zero_minimizes_wirelength() {
        let (bench, library, netlist) = setup();
        let bound = netlist.bind(&library).expect("binds");
        let config = OptimizeConfig::default();
        let pure_wire = Optimizer::new(&bench.tree, &library)
            .config(&config)
            .run_composite(&bound, CompositeObjective::weighted(0.0))
            .expect("composite run");
        // No other frontier point has strictly smaller HPWL.
        let pareto = Optimizer::new(&bench.tree, &library)
            .config(&config)
            .run_pareto(&bound)
            .expect("pareto run");
        let min_hpwl = pareto.front.iter().map(|p| p.hpwl).min().expect("front");
        assert_eq!(pure_wire.hpwl, min_hpwl);
    }

    #[test]
    fn epsilon_constraint_respects_budget_and_degrades_gracefully() {
        let (bench, library, netlist) = setup();
        let bound = netlist.bind(&library).expect("binds");
        let config = OptimizeConfig::default();
        let unconstrained = Optimizer::new(&bench.tree, &library)
            .config(&config)
            .run_composite(&bound, CompositeObjective::weighted(0.0))
            .expect("min-hpwl run");
        // A generous budget admits the area-optimal candidate.
        let generous = Optimizer::new(&bench.tree, &library)
            .config(&config)
            .run_composite(&bound, CompositeObjective::epsilon(u128::MAX))
            .expect("generous epsilon");
        let single = Optimizer::new(&bench.tree, &library)
            .config(&config)
            .run_best()
            .expect("single run");
        assert_eq!(generous.outcome.area, single.area);
        // An impossible budget falls back to the min-HPWL candidate.
        let impossible = Optimizer::new(&bench.tree, &library)
            .config(&config)
            .run_composite(&bound, CompositeObjective::epsilon(0))
            .expect("impossible epsilon still serves");
        assert_eq!(impossible.hpwl, unconstrained.hpwl);
    }

    #[test]
    fn pareto_front_is_mutually_non_dominated_and_traceable() {
        let (bench, library, netlist) = setup();
        let bound = netlist.bind(&library).expect("binds");
        let pareto = Optimizer::new(&bench.tree, &library)
            .config(&OptimizeConfig::default())
            .run_pareto(&bound)
            .expect("pareto run");
        assert!(!pareto.front.is_empty());
        assert!(pareto.evaluated >= pareto.front.len());
        for (i, p) in pareto.front.iter().enumerate() {
            for (j, q) in pareto.front.iter().enumerate() {
                if i != j {
                    assert!(!p.dominates(q), "front holds a dominated point");
                }
            }
            // Every point traces back to a realizable assignment with
            // the advertised envelope.
            let outcome = pareto.outcome(p);
            assert_eq!(outcome.root_impl.area(), p.area);
        }
        // Area ascending, HPWL (weakly) descending along the front.
        assert!(pareto.front.windows(2).all(|w| w[0].area <= w[1].area));
    }

    #[test]
    fn composite_emits_trace_events() {
        let (bench, library, netlist) = setup();
        let bound = netlist.bind(&library).expect("binds");
        let tracer = Tracer::new();
        let _ = Optimizer::new(&bench.tree, &library)
            .config(&OptimizeConfig::default())
            .tracer(&tracer)
            .run_pareto(&bound)
            .expect("pareto run");
        let summary = tracer.drain().summary();
        assert!(summary.hpwl_evals > 0);
        assert!(summary.nets_touched > 0);
        assert!(summary.pareto_inserts > 0);
    }
}
