//! Run-wide resource governing: implementation budget, wall-clock
//! deadline, cooperative cancellation, and deterministic fault injection.
//!
//! The paper's only resource model is the implementation count `M`
//! ([`MemoryMeter`]); a production optimizer also needs to stop on a
//! deadline, stop when the caller loses interest, and be *testable* under
//! resource exhaustion without actually exhausting anything. The
//! [`ResourceGovernor`] layers those three concerns over the meter behind
//! one `charge` call that the hot join loops already make per candidate:
//!
//! * **Budget** — delegated to [`MemoryMeter`]; trips as [`Trip::Budget`].
//! * **Deadline** — wall-clock, polled every [`POLL_INTERVAL`] charges so
//!   the `Instant::now` syscall stays off the per-candidate fast path.
//! * **Cancellation** — a shared [`CancelToken`] flag, polled on the same
//!   cadence; lets another thread abort a long optimization cooperatively.
//! * **Fault injection** — a [`FaultPlan`] of allocation ordinals; when
//!   total generated candidates cross a trip point the governor fails the
//!   charge exactly once, deterministically, regardless of machine. This
//!   is how the rescue ladder's edges are exercised in tests: "trip at the
//!   N-th allocation" reproduces a mid-block memory failure on any host.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fp_prng::SplitMix64;

use crate::meter::{BudgetExhausted, MemoryMeter};

/// How many `charge` calls pass between deadline/cancellation polls.
/// Power of two so the check compiles to a mask test.
pub const POLL_INTERVAL: u64 = 4096;

/// A shared cancellation flag for cooperative shutdown of a run.
///
/// Clone the token, hand one clone to the optimizer via
/// [`crate::OptimizeConfig::with_cancel`], keep the other; calling
/// [`CancelToken::cancel`] makes the run fail with
/// [`crate::OptError::Cancelled`] at its next poll point.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every governor polling this token trips.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A deterministic fault-injection plan: the run fails the charge during
/// which total generated candidates first reach each trip point. Each
/// point fires exactly once, so a rescued retry proceeds past it — this is
/// what lets tests drive every edge of the rescue ladder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Trip points as 1-based allocation ordinals, sorted ascending.
    points: Vec<u64>,
}

impl FaultPlan {
    /// A plan tripping at the given allocation ordinals (1-based: `1`
    /// fails the very first candidate). Unsorted and duplicate inputs are
    /// normalized; zeros are dropped.
    #[must_use]
    pub fn at_allocations(points: &[u64]) -> Self {
        let mut points: Vec<u64> = points.iter().copied().filter(|&p| p > 0).collect();
        points.sort_unstable();
        points.dedup();
        FaultPlan { points }
    }

    /// A seed-derived plan: `trips` points drawn uniformly from
    /// `[1, window]` via [`SplitMix64`], so a single `u64` reproduces the
    /// whole fault schedule.
    #[must_use]
    pub fn from_seed(seed: u64, trips: usize, window: u64) -> Self {
        let window = window.max(1);
        let mut mix = SplitMix64::new(seed ^ 0x4641_554C_5453); // "FAULTS"
        let points: Vec<u64> = (0..trips).map(|_| 1 + mix.next_u64() % window).collect();
        FaultPlan::at_allocations(&points)
    }

    /// The trip points, sorted ascending.
    #[must_use]
    pub fn points(&self) -> &[u64] {
        &self.points
    }

    /// Whether the plan has no remaining trip points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Why the governor stopped a run (or, for [`Trip::Internal`], why a join
/// detected a broken invariant). `Budget` and `Fault` are *rescuable*: the
/// rescue ladder may retry the in-flight block under stricter policies.
/// `Deadline` and `Cancelled` are final — time and intent do not come
/// back — and `Internal` is a bug report, never retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trip {
    /// The implementation budget was exhausted (real memory pressure).
    Budget(BudgetExhausted),
    /// A [`FaultPlan`] point fired (injected memory pressure).
    Fault {
        /// The allocation ordinal that tripped.
        allocation: u64,
    },
    /// The wall-clock deadline passed.
    Deadline {
        /// Time elapsed when the trip was detected.
        elapsed: Duration,
        /// The configured deadline.
        deadline: Duration,
    },
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// A join produced output violating an engine invariant.
    Internal(&'static str),
}

impl Trip {
    /// Whether the rescue ladder is allowed to retry after this trip.
    #[must_use]
    pub fn is_rescuable(&self) -> bool {
        matches!(self, Trip::Budget(_) | Trip::Fault { .. })
    }
}

/// The subset of governing that the join kernels need: candidate
/// charging, discard accounting, and deadline/cancellation polling.
///
/// The serial engine hands the kernels the full [`ResourceGovernor`];
/// the tree-level scheduler hands them a per-worker governor that does
/// local accounting against shared atomics. Making the kernels generic
/// over this trait keeps one copy of the join code for both paths.
pub(crate) trait Governor {
    /// Records `n` freshly generated candidates; `Err` aborts the block.
    fn charge(&mut self, n: usize) -> Result<(), Trip>;
    /// Returns `n` candidates that pruning removed again.
    fn discard(&mut self, n: usize);
    /// Immediate deadline/cancellation check at a block boundary.
    fn poll(&self) -> Result<(), Trip>;
}

impl Governor for ResourceGovernor {
    fn charge(&mut self, n: usize) -> Result<(), Trip> {
        // Inherent methods win resolution, so these call the real ones.
        ResourceGovernor::charge(self, n)
    }

    fn discard(&mut self, n: usize) {
        ResourceGovernor::discard(self, n);
    }

    fn poll(&self) -> Result<(), Trip> {
        ResourceGovernor::poll(self)
    }
}

/// The per-run resource governor: a [`MemoryMeter`] plus deadline,
/// cancellation, and fault injection, checked inside the same `charge`
/// call the join loops already make per generated candidate.
#[derive(Debug, Clone)]
pub struct ResourceGovernor {
    meter: MemoryMeter,
    start: Instant,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    /// Remaining fault points, ascending; `fault_cursor` indexes the next.
    faults: Vec<u64>,
    fault_cursor: usize,
    /// Charge calls since the last deadline/cancellation poll.
    calls: u64,
}

impl ResourceGovernor {
    /// A governor with the given budget and no deadline, cancellation, or
    /// faults.
    #[must_use]
    pub fn new(limit: Option<usize>) -> Self {
        ResourceGovernor {
            meter: match limit {
                Some(limit) => MemoryMeter::with_limit(limit),
                None => MemoryMeter::unbounded(),
            },
            start: Instant::now(),
            deadline: None,
            cancel: None,
            faults: Vec::new(),
            fault_cursor: 0,
            calls: 0,
        }
    }

    /// Adds a wall-clock deadline, measured from governor construction.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Backdates the governor's epoch (deadline measurement origin) to
    /// `start`. The parallel scheduler uses this when it falls back to
    /// the serial path: the replacement run keeps the original run's
    /// deadline budget instead of getting a fresh one.
    #[must_use]
    pub(crate) fn with_start(mut self, start: Instant) -> Self {
        self.start = start;
        self
    }

    /// Adds a cancellation token to poll.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Option<CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Adds a fault-injection plan.
    #[must_use]
    pub fn with_faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.faults = plan.map(|p| p.points).unwrap_or_default();
        self.fault_cursor = 0;
        self
    }

    /// Records `n` freshly generated candidates, checking every governed
    /// resource. Mirrors [`MemoryMeter::charge`]; `charge(0)` is a no-op.
    ///
    /// # Errors
    ///
    /// The first [`Trip`] detected: an injected fault, the budget, or (at
    /// poll points) the deadline or cancellation.
    pub fn charge(&mut self, n: usize) -> Result<(), Trip> {
        if n == 0 {
            return Ok(());
        }
        let before = self.meter.generated();
        self.meter.charge(n).map_err(Trip::Budget)?;
        if let Some(&point) = self.faults.get(self.fault_cursor) {
            if self.meter.generated() >= point && before < point {
                // Consume the point so a rescued retry proceeds past it.
                self.fault_cursor += 1;
                return Err(Trip::Fault { allocation: point });
            }
        }
        self.calls += 1;
        if self.calls.is_multiple_of(POLL_INTERVAL) {
            self.poll()?;
        }
        Ok(())
    }

    /// Checks deadline and cancellation immediately (called at block
    /// boundaries, where a trip is cheapest to honour).
    ///
    /// # Errors
    ///
    /// [`Trip::Deadline`] or [`Trip::Cancelled`].
    pub fn poll(&self) -> Result<(), Trip> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Err(Trip::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            let elapsed = self.start.elapsed();
            if elapsed > deadline {
                return Err(Trip::Deadline { elapsed, deadline });
            }
        }
        Ok(())
    }

    /// See [`MemoryMeter::discard`].
    pub fn discard(&mut self, n: usize) {
        self.meter.discard(n);
    }

    /// See [`MemoryMeter::commit`].
    pub fn commit(&mut self, n: usize) {
        self.meter.commit(n);
    }

    /// See [`MemoryMeter::abort_block`].
    pub fn abort_block(&mut self) -> usize {
        self.meter.abort_block()
    }

    /// See [`MemoryMeter::release`].
    pub fn release(&mut self, n: usize) {
        self.meter.release(n);
    }

    /// See [`MemoryMeter::live`].
    #[must_use]
    pub fn live(&self) -> usize {
        self.meter.live()
    }

    /// See [`MemoryMeter::peak`].
    #[must_use]
    pub fn peak(&self) -> usize {
        self.meter.peak()
    }

    /// See [`MemoryMeter::generated`].
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.meter.generated()
    }

    /// See [`MemoryMeter::limit`].
    #[must_use]
    pub fn limit(&self) -> Option<usize> {
        self.meter.limit()
    }

    /// Time since the governor was constructed.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_normalizes_points() {
        let plan = FaultPlan::at_allocations(&[30, 10, 0, 10, 20]);
        assert_eq!(plan.points(), &[10, 20, 30]);
        assert!(!plan.is_empty());
        assert!(FaultPlan::at_allocations(&[0]).is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_window() {
        let a = FaultPlan::from_seed(42, 5, 1000);
        let b = FaultPlan::from_seed(42, 5, 1000);
        let c = FaultPlan::from_seed(43, 5, 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.points().iter().all(|&p| (1..=1000).contains(&p)));
    }

    #[test]
    fn faults_fire_once_at_their_ordinal() {
        let mut gov =
            ResourceGovernor::new(None).with_faults(Some(FaultPlan::at_allocations(&[5])));
        gov.charge(3).expect("below the trip point");
        let err = gov.charge(3).expect_err("crosses allocation 5");
        assert_eq!(err, Trip::Fault { allocation: 5 });
        assert!(err.is_rescuable());
        // Consumed: the retry proceeds.
        gov.charge(100).expect("point already fired");
    }

    #[test]
    fn budget_trips_as_rescuable() {
        let mut gov = ResourceGovernor::new(Some(4));
        let err = gov.charge(5).expect_err("over budget");
        assert!(matches!(
            err,
            Trip::Budget(BudgetExhausted { live: 5, limit: 4 })
        ));
        assert!(err.is_rescuable());
    }

    #[test]
    fn zero_deadline_trips_on_poll_not_charge_fast_path() {
        let gov = ResourceGovernor::new(None).with_deadline(Some(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        let err = gov.poll().expect_err("deadline passed");
        assert!(matches!(err, Trip::Deadline { .. }));
        assert!(!err.is_rescuable());
    }

    #[test]
    fn cancellation_is_cooperative() {
        let token = CancelToken::new();
        let gov = ResourceGovernor::new(None).with_cancel(Some(token.clone()));
        gov.poll().expect("not cancelled yet");
        token.cancel();
        assert_eq!(gov.poll(), Err(Trip::Cancelled));
        assert!(!Trip::Cancelled.is_rescuable());
    }

    #[test]
    fn hot_loop_polling_detects_cancellation_mid_block() {
        let token = CancelToken::new();
        token.cancel();
        let mut gov = ResourceGovernor::new(None).with_cancel(Some(token));
        // One-candidate charges, as the join loops issue them: the poll
        // cadence must catch the flag within POLL_INTERVAL calls.
        let mut tripped = false;
        for _ in 0..POLL_INTERVAL + 1 {
            if gov.charge(1).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "cancellation never observed in the hot loop");
    }

    #[test]
    fn rollback_and_release_mirror_the_meter() {
        let mut gov = ResourceGovernor::new(Some(100));
        gov.charge(40).expect("fits");
        gov.commit(40);
        gov.charge(50).expect("fits");
        assert_eq!(gov.abort_block(), 50);
        assert_eq!(gov.live(), 40);
        gov.release(15);
        assert_eq!(gov.live(), 25);
        assert_eq!(gov.peak(), 90);
    }
}
